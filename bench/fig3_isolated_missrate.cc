/**
 * @file
 * Reproduces Fig. 3: last-level-cache miss rates of each workload run
 * in isolation, across sharing degrees and scheduling policies,
 * normalized to the 16 MB fully-shared isolation baseline.
 *
 * Paper shape: misses increase as the LLC capacity seen by each
 * thread decreases; at shared-4-way, round robin has the worst miss
 * rate because it replicates read-shared data in every partition.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout, "Fig 3: Isolated Workload Miss Rates",
                "Figure 3 (LLC miss rate relative to fully-shared)",
                "miss rate rises as capacity/thread falls; RR worst "
                "at shared-4-way (replication of read-shared data)");
    JsonReport jrep("fig3", "Isolated Workload Miss Rates",
                    JsonReport::pathFromArgs(argc, argv));

    struct Point
    {
        SharingDegree sharing;
        SchedPolicy policy;
        const char *label;
    };
    const Point points[] = {
        {SharingDegree::Shared16, SchedPolicy::Affinity, "shared"},
        {SharingDegree::Shared8, SchedPolicy::Affinity, "aff 2-LL$"},
        {SharingDegree::Shared8, SchedPolicy::RoundRobin, "rr 2-LL$"},
        {SharingDegree::Shared4, SchedPolicy::Affinity, "aff 4-LL$"},
        {SharingDegree::Shared4, SchedPolicy::RoundRobin, "rr 4-LL$"},
        {SharingDegree::Shared2, SchedPolicy::Affinity, "aff 8-LL$"},
        {SharingDegree::Shared2, SchedPolicy::RoundRobin, "rr 8-LL$"},
        {SharingDegree::Private, SchedPolicy::RoundRobin, "private"},
    };

    std::vector<std::string> headers = {"config"};
    for (const auto &p : WorkloadProfile::all())
        headers.push_back(p.name);
    TextTable table(headers);

    for (const auto &pt : points) {
        std::vector<std::string> row = {pt.label};
        for (const auto &prof : WorkloadProfile::all()) {
            const auto &base = isolationBaseline(
                prof.kind, SchedPolicy::Affinity,
                SharingDegree::Shared16, benchSeeds());
            const RunConfig cfg =
                isolationConfig(prof.kind, pt.policy, pt.sharing);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                base.missRate > 0.0
                    ? r.meanMissRate(prof.kind) / base.missRate
                    : 0.0;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("label", pt.label);
                jpt.set("workload", prof.name);
                jpt.set("normalized_miss_rate", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = LLC miss rate with 16MB fully-shared L2)\n";
    jrep.write();
    return 0;
}
