/**
 * @file
 * perf_smoke: the simulator's performance trajectory in one JSON
 * line. Measures (a) single-simulation throughput in simulated
 * cycles per wall-second (exercises the calendar-queue event core)
 * and (b) wall time for an 8-config sweep run serially vs. on the
 * parallel sweep engine. Future PRs diff these numbers to catch
 * perf regressions.
 *
 * Knobs: CONSIM_PERF_CYCLES (measurement window per sim, default
 * 300000), CONSIM_JOBS (sweep parallelism, default
 * hardware_concurrency).
 *
 * Output (one line on stdout):
 *   {"bench":"perf_smoke","sim_cycles":...,"sim_wall_s":...,
 *    "cycles_per_sec":...,"sweep_configs":8,"sweep_serial_s":...,
 *    "sweep_parallel_s":...,"sweep_speedup":...,"jobs":N}
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

Cycle
perfCycles()
{
    if (const char *v = std::getenv("CONSIM_PERF_CYCLES")) {
        const auto parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return 300'000;
}

} // namespace

int
main()
{
    logging::setVerbose(false);
    const Cycle cycles = perfCycles();

    // --- single-sim throughput (event core hot path) ---
    // A consolidated 4-VM mix keeps all 16 cores busy so the event
    // queue sees realistic pressure.
    RunConfig single = mixConfig(Mix::byName("Mix 1"),
                                 SchedPolicy::Affinity,
                                 SharingDegree::Shared4);
    single.warmupCycles = cycles / 2;
    single.measureCycles = cycles;
    const auto t0 = std::chrono::steady_clock::now();
    (void)runExperiment(single);
    const double sim_wall =
        seconds(std::chrono::steady_clock::now() - t0);
    const Cycle simulated = single.warmupCycles + single.measureCycles;
    const double cps =
        sim_wall > 0.0 ? static_cast<double>(simulated) / sim_wall
                       : 0.0;

    // --- sweep scaling: 8 configs, serial vs parallel ---
    std::vector<RunConfig> sweep;
    for (auto policy :
         {SchedPolicy::Affinity, SchedPolicy::RoundRobin}) {
        for (auto kind :
             {WorkloadKind::TpcW, WorkloadKind::TpcH,
              WorkloadKind::SpecJbb, WorkloadKind::SpecWeb}) {
            RunConfig cfg = isolationConfig(kind, policy);
            cfg.warmupCycles = cycles / 2;
            cfg.measureCycles = cycles;
            sweep.push_back(cfg);
        }
    }

    SweepOptions serial;
    serial.jobs = 1;
    const auto t1 = std::chrono::steady_clock::now();
    const auto serial_results = runSweep(sweep, serial);
    const auto t2 = std::chrono::steady_clock::now();
    const auto parallel_results = runSweep(sweep);
    const auto t3 = std::chrono::steady_clock::now();

    // Paranoia: the parallel engine must reproduce the serial runs.
    CONSIM_ASSERT(serial_results.size() == parallel_results.size(),
                  "sweep result count mismatch");
    for (std::size_t i = 0; i < serial_results.size(); ++i) {
        CONSIM_ASSERT(serial_results[i].netPackets ==
                          parallel_results[i].netPackets,
                      "parallel sweep diverged from serial at config ",
                      i);
    }

    const double serial_s = seconds(t2 - t1);
    const double parallel_s = seconds(t3 - t2);
    const double speedup =
        parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    std::printf(
        "{\"bench\":\"perf_smoke\",\"sim_cycles\":%llu,"
        "\"sim_wall_s\":%.3f,\"cycles_per_sec\":%.0f,"
        "\"sweep_configs\":%zu,\"sweep_serial_s\":%.3f,"
        "\"sweep_parallel_s\":%.3f,\"sweep_speedup\":%.2f,"
        "\"jobs\":%d}\n",
        static_cast<unsigned long long>(simulated), sim_wall, cps,
        sweep.size(), serial_s, parallel_s, speedup, sweepJobs());
    return 0;
}
