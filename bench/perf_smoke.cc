/**
 * @file
 * perf_smoke: the simulator's performance trajectory in one JSON
 * line (schema consim.bench.v1). Measures (a) single-simulation
 * throughput in simulated cycles per wall-second (exercises the
 * calendar-queue event core), timed median-of-3 so one slow outlier
 * on a shared runner cannot fake a regression, (b) the same
 * simulation under the tile-parallel event core at --run-jobs 1/2/4
 * with its speedup over serial (and a hard equality check — parallel
 * must reproduce serial exactly), (c) wall time for an 8-config
 * sweep run serially vs. on the parallel sweep engine, and (d) a
 * 64-core (8x8 mesh) consolidation point, also median-of-3, so the
 * trajectory tracks the scale path and not only the paper's 16-core
 * chip. Future PRs diff these numbers to catch perf regressions
 * (tools/ci.sh gates on cycles_per_sec against the committed
 * BENCH_<pr>.json); the envelope carries host metadata (CPU model,
 * load average) so a regression report can be told apart from a
 * busy host.
 *
 * Knobs: CONSIM_PERF_CYCLES (measurement window per sim, default
 * 300000), CONSIM_JOBS (sweep parallelism, default
 * hardware_concurrency).
 *
 * Output (one line on stdout):
 *   {"schema":"consim.bench.v1","bench":"perf_smoke",
 *    "host_cpus":N,"cpu_model":"...","loadavg_1m":...,
 *    "timing_reps":3,"sim_cycles":...,"sim_wall_s":...,
 *    "cycles_per_sec":...,
 *    "run_jobs":[{"jobs":1,"wall_s":...,"cycles_per_sec":...,
 *                 "speedup_vs_serial":...},...]
 *      (or {"skipped":"single-cpu host"} when the host has fewer
 *       than two CPUs and multi-worker timings would be noise),
 *    "sweep_configs":8,"sweep_serial_s":...,
 *    "sweep_parallel_s":...,"sweep_speedup":...,"jobs":N,
 *    "cores_64":{"mesh":"8x8","sim_cycles":...,"sim_wall_s":...,
 *                "cycles_per_sec":...}}
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;
using benchutil::medianWall;
using benchutil::seconds;

Cycle
perfCycles()
{
    // Strict: a malformed CONSIM_PERF_CYCLES is fatal, not silently
    // the default window (which would fake a perf regression/gain).
    const std::uint64_t v = envU64("CONSIM_PERF_CYCLES", 0);
    return v ? v : 300'000;
}

/** The two results must agree exactly (parallel determinism gate). */
void
assertSameResult(const RunResult &a, const RunResult &b, int jobs)
{
    CONSIM_ASSERT(a.vms.size() == b.vms.size() &&
                      a.netPackets == b.netPackets &&
                      a.netAvgLatency == b.netAvgLatency,
                  "run-jobs ", jobs, " diverged from serial");
    for (std::size_t i = 0; i < a.vms.size(); ++i) {
        CONSIM_ASSERT(a.vms[i].transactions == b.vms[i].transactions &&
                          a.vms[i].l2Misses == b.vms[i].l2Misses &&
                          a.vms[i].avgMissLatency ==
                              b.vms[i].avgMissLatency,
                      "run-jobs ", jobs,
                      " diverged from serial on vm ", i);
    }
}

} // namespace

int
main()
{
    logging::setVerbose(false);
    const Cycle cycles = perfCycles();

    // --- single-sim throughput (event core hot path) ---
    // A consolidated 4-VM mix keeps all 16 cores busy so the event
    // queue sees realistic pressure. Median of three runs: the sim
    // is deterministic, so the repeats only differ by host noise.
    constexpr int timingReps = 3;
    RunConfig single = mixConfig(Mix::byName("Mix 1"),
                                 SchedPolicy::Affinity,
                                 SharingDegree::Shared4);
    single.warmupCycles = cycles / 2;
    single.measureCycles = cycles;
    single.runJobs = 1;
    const RunResult serial_result = runExperiment(single);
    const double sim_wall = medianWall(
        timingReps, [&] { (void)runExperiment(single); });
    const Cycle simulated = single.warmupCycles + single.measureCycles;
    const double cps =
        sim_wall > 0.0 ? static_cast<double>(simulated) / sim_wall
                       : 0.0;

    // --- tile-parallel event core: --run-jobs 1/2/4 ---
    // jobs=1 re-times the serial engine (the dispatch path, not the
    // lane machinery) so speedup_vs_serial starts from a fresh
    // same-process baseline rather than the cold-start run above.
    // On a single-CPU host the multi-worker timings are pure
    // scheduling noise, so the whole section is skipped and marked
    // as such in the JSON.
    struct RunJobsPoint
    {
        int jobs;
        double wall_s;
        double cps;
        double speedup;
    };
    const unsigned hw = std::thread::hardware_concurrency();
    const bool single_cpu = hw < 2;
    std::vector<RunJobsPoint> points;
    double base_wall = 0.0;
    for (const int jobs : single_cpu ? std::vector<int>{}
                                     : std::vector<int>{1, 2, 4}) {
        RunConfig cfg = single;
        cfg.runJobs = jobs;
        const auto s0 = std::chrono::steady_clock::now();
        const RunResult r = runExperiment(cfg);
        const double wall =
            seconds(std::chrono::steady_clock::now() - s0);
        assertSameResult(serial_result, r, jobs);
        if (jobs == 1)
            base_wall = wall;
        RunJobsPoint p;
        p.jobs = jobs;
        p.wall_s = wall;
        p.cps = wall > 0.0 ? static_cast<double>(simulated) / wall
                           : 0.0;
        p.speedup = wall > 0.0 ? base_wall / wall : 0.0;
        points.push_back(p);
    }

    // --- sweep scaling: 8 configs, serial vs parallel ---
    std::vector<RunConfig> sweep;
    for (auto policy :
         {SchedPolicy::Affinity, SchedPolicy::RoundRobin}) {
        for (auto kind :
             {WorkloadKind::TpcW, WorkloadKind::TpcH,
              WorkloadKind::SpecJbb, WorkloadKind::SpecWeb}) {
            RunConfig cfg = isolationConfig(kind, policy);
            cfg.warmupCycles = cycles / 2;
            cfg.measureCycles = cycles;
            sweep.push_back(cfg);
        }
    }

    SweepOptions serial;
    serial.jobs = 1;
    const auto t1 = std::chrono::steady_clock::now();
    const auto serial_results = runSweep(sweep, serial);
    const auto t2 = std::chrono::steady_clock::now();
    const auto parallel_results = runSweep(sweep);
    const auto t3 = std::chrono::steady_clock::now();

    // Paranoia: the parallel engine must reproduce the serial runs.
    CONSIM_ASSERT(serial_results.size() == parallel_results.size(),
                  "sweep result count mismatch");
    for (std::size_t i = 0; i < serial_results.size(); ++i) {
        CONSIM_ASSERT(serial_results[i].netPackets ==
                          parallel_results[i].netPackets,
                      "parallel sweep diverged from serial at config ",
                      i);
    }

    const double serial_s = seconds(t2 - t1);
    const double parallel_s = seconds(t3 - t2);
    const double speedup =
        parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    // --- 64-core consolidation point (8x8 mesh, 4 x 16 threads) ---
    // A quarter of the 16-core window keeps the wall time comparable
    // (the machine has 4x the tiles to tick per cycle).
    RunConfig big = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared8);
    big.machine.meshX = 8;
    big.machine.meshY = 8;
    big.vmThreads = {16, 16, 16, 16};
    big.warmupCycles = cycles / 8;
    big.measureCycles = cycles / 4;
    big.runJobs = 1;
    const Cycle big_cycles = big.warmupCycles + big.measureCycles;
    const double big_wall = medianWall(
        timingReps, [&] { (void)runExperiment(big); });
    const double big_cps =
        big_wall > 0.0 ? static_cast<double>(big_cycles) / big_wall
                       : 0.0;

    std::printf(
        "{\"schema\":\"consim.bench.v1\",\"bench\":\"perf_smoke\",");
    benchutil::printHostMeta();
    std::printf(
        ",\"timing_reps\":%d,\"sim_cycles\":%llu,"
        "\"sim_wall_s\":%.3f,\"cycles_per_sec\":%.0f,\"run_jobs\":",
        timingReps, static_cast<unsigned long long>(simulated),
        sim_wall, cps);
    if (single_cpu) {
        std::printf("{\"skipped\":\"single-cpu host\"}");
    } else {
        std::printf("[");
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::printf("%s{\"jobs\":%d,\"wall_s\":%.3f,"
                        "\"cycles_per_sec\":%.0f,"
                        "\"speedup_vs_serial\":%.2f}",
                        i ? "," : "", points[i].jobs, points[i].wall_s,
                        points[i].cps, points[i].speedup);
        }
        std::printf("]");
    }
    std::printf(
        ",\"sweep_configs\":%zu,\"sweep_serial_s\":%.3f,"
        "\"sweep_parallel_s\":%.3f,\"sweep_speedup\":%.2f,"
        "\"jobs\":%d,"
        "\"cores_64\":{\"mesh\":\"8x8\",\"sim_cycles\":%llu,"
        "\"sim_wall_s\":%.3f,\"cycles_per_sec\":%.0f}}\n",
        sweep.size(), serial_s, parallel_s, speedup, sweepJobs(),
        static_cast<unsigned long long>(big_cycles), big_wall,
        big_cps);
    return 0;
}
