/**
 * @file
 * Reproduces Fig. 11: effect of the degree of sharing on average
 * miss latency for the heterogeneous mixes, restricted (as in the
 * paper) to affinity scheduling and normalized to the shared-4-way
 * isolation latencies. Partially shared degrees swept: shared-2-way
 * (8 caches), shared-4-way (4 caches), shared-8-way (2 caches).
 *
 * Paper shape: TPC-H has the lowest latency at shared-4-way (its own
 * partition: no replication, no interference); shared-8-way's
 * flexibility helps SPECjbb, especially when mixed with the
 * low-pressure TPC-H; with only two caches TPC-H must share and
 * suffers; TPC-W and SPECjbb prefer fewer, larger caches.
 */

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 11: Miss Latency vs Degree of Sharing "
                "(heterogeneous, affinity)",
                "Figure 11 (miss latency relative to isolation, "
                "affinity, shared-4-way)",
                "TPC-H best at shared-4-way; SPECjbb helped by "
                "shared-8-way; TPC-H hurt with only 2 caches");
    JsonReport jrep("fig11", "Miss Latency vs Degree of Sharing",
                    JsonReport::pathFromArgs(argc, argv));

    const SharingDegree degrees[] = {
        SharingDegree::Shared2, SharingDegree::Shared4,
        SharingDegree::Shared8};
    constexpr std::size_t numDegrees = std::size(degrees);

    TextTable table({"mix", "workload", "shared-2-way (8$)",
                     "shared-4-way (4$)", "shared-8-way (2$)"});

    // One simulation per (mix x degree x seed), all in one parallel
    // sweep; every workload row of a mix reads the same RunResult.
    const auto &mixes = Mix::heterogeneous();
    std::vector<BaselineRequest> wants;
    std::vector<RunConfig> configs;
    for (const auto &mix : mixes) {
        for (auto k : mix.vms) {
            wants.push_back({k, SchedPolicy::Affinity,
                             SharingDegree::Shared4});
        }
        for (auto degree : degrees) {
            configs.push_back(
                mixConfig(mix, SchedPolicy::Affinity, degree));
        }
    }
    prewarmIsolationBaselines(wants, benchSeeds());
    const auto results = runSweepAveraged(configs, benchSeeds());

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &mix = mixes[m];
        std::vector<WorkloadKind> kinds;
        for (auto k : mix.vms) {
            if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
                kinds.push_back(k);
        }
        std::vector<json::Value> norms;
        for (std::size_t d = 0; d < numDegrees; ++d)
            norms.push_back(json::Value::object());
        for (auto kind : kinds) {
            const auto &base = isolationBaseline(
                kind, SchedPolicy::Affinity, SharingDegree::Shared4,
                benchSeeds());
            std::vector<std::string> row = {
                mix.name + " (" + std::to_string(mix.count(kind)) +
                    "x)",
                toString(kind)};
            for (std::size_t d = 0; d < numDegrees; ++d) {
                const RunResult &r = results[m * numDegrees + d];
                const double norm =
                    base.missLatency > 0.0
                        ? r.meanMissLatency(kind) / base.missLatency
                        : 0.0;
                norms[d].set(toString(kind), norm);
                row.push_back(TextTable::num(norm, 2));
            }
            table.addRow(std::move(row));
        }
        if (jrep.enabled()) {
            for (std::size_t d = 0; d < numDegrees; ++d) {
                auto jpt =
                    runResultJson(configs[m * numDegrees + d],
                                  results[m * numDegrees + d]);
                jpt.set("mix", mix.name);
                jpt.set("normalized_miss_latency",
                        std::move(norms[d]));
                jrep.point(std::move(jpt));
            }
        }
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation, affinity, shared-4-way)\n";
    jrep.write();
    return 0;
}
