/**
 * @file
 * Reproduces Table II of the paper: per-workload cache-to-cache
 * transfer statistics and working-set size.
 *
 * Setup mirrors the paper's characterization: each workload runs in
 * isolation (four threads) with private last-level caches, so every
 * inter-thread sharing miss becomes an on-chip cache-to-cache
 * transfer between private L2s. Reported:
 *   - %% of last-private-level misses served by a c2c transfer
 *   - clean/dirty split of those transfers
 *   - number of distinct 64B blocks touched (model footprint is the
 *     configured working set; measured coverage grows with run time)
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout, "Table II: Workload Statistics",
                "Table II (workload characterization)",
                "TPC-H most c2c (69%, mostly dirty); SPECjbb 52% "
                "mostly clean; SPECweb 37%; TPC-W 15%; footprints "
                "TPC-W > SPECweb > SPECjbb > TPC-H");
    JsonReport jrep("table2", "Workload Statistics",
                    JsonReport::pathFromArgs(argc, argv));

    TextTable table({"workload", "c2c(all)", "paper", "clean", "paper",
                     "dirty", "paper", "blocks(model)", "blocks(paper)",
                     "blocks(touched)"});

    for (const auto &prof : WorkloadProfile::all()) {
        RunConfig cfg = isolationConfig(prof.kind, SchedPolicy::RoundRobin,
                                        SharingDegree::Private);
        const RunResult r = runAveraged(cfg, benchSeeds());
        const auto &v = r.vms.at(0);

        table.addRow({prof.name,
                      TextTable::pct(v.c2cFraction, 0),
                      TextTable::pct(prof.paperC2cAll, 0),
                      TextTable::pct(1.0 - v.c2cDirtyShare, 0),
                      TextTable::pct(prof.paperC2cClean, 0),
                      TextTable::pct(v.c2cDirtyShare, 0),
                      TextTable::pct(prof.paperC2cDirty, 0),
                      std::to_string(prof.totalBlocks() / 1000) + " K",
                      std::to_string(prof.paperBlocks / 1000) + " K",
                      std::to_string(v.distinctBlocks / 1000) + " K"});
        if (jrep.enabled()) {
            auto jpt = runResultJson(cfg, r);
            jpt.set("workload", prof.name);
            jpt.set("model_blocks", prof.totalBlocks());
            jpt.set("paper_blocks", prof.paperBlocks);
            jrep.point(std::move(jpt));
        }
    }
    table.print(std::cout);

    std::cout << "\nNote: blocks(model) is the synthetic working set "
                 "sized to the paper's Table II;\nblocks(touched) is "
                 "coverage within this measurement window only.\n";

    if (std::getenv("CONSIM_DIAG")) {
        std::cout << "\nDiagnostics (private-L2 isolation runs):\n";
        TextTable diag({"workload", "LLC missRate", "missLat(cy)",
                        "l2Accesses", "l2Misses", "c2cClean",
                        "c2cDirty", "txns"});
        for (const auto &prof : WorkloadProfile::all()) {
            RunConfig cfg = isolationConfig(prof.kind,
                                            SchedPolicy::RoundRobin,
                                            SharingDegree::Private);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const auto &v = r.vms.at(0);
            diag.addRow({prof.name, TextTable::pct(v.missRate),
                         TextTable::num(v.avgMissLatency, 1),
                         std::to_string(v.l2Accesses),
                         std::to_string(v.l2Misses),
                         std::to_string(v.c2cClean),
                         std::to_string(v.c2cDirty),
                         std::to_string(v.transactions)});
        }
        diag.print(std::cout);
    }
    jrep.write();
    return 0;
}
