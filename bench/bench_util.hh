/**
 * @file
 * Shared helpers for the bench.v1 emitters: wall-clock timing with
 * repeat/median smoothing and host metadata for the envelope.
 *
 * Perf numbers from shared or single-CPU runners are noisy; every
 * bench that feeds the CI perf gate times its hot section
 * best-of-N/median (the simulator is deterministic, so repeats only
 * differ in wall time) and records enough host context (CPU count,
 * CPU model, 1-minute load average) that a regression report can be
 * told apart from a busy host.
 */

#ifndef CONSIM_BENCH_BENCH_UTIL_HH
#define CONSIM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace consim::benchutil
{

inline double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/**
 * Run @p fn @p reps times and return the median wall-clock seconds.
 * The simulator is deterministic, so the repeats compute identical
 * results and the spread is pure host noise; the median is robust to
 * one slow outlier (page cache, scheduler preemption).
 */
template <typename Fn>
double
medianWall(int reps, Fn &&fn)
{
    std::vector<double> walls;
    walls.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        walls.push_back(
            seconds(std::chrono::steady_clock::now() - t0));
    }
    std::sort(walls.begin(), walls.end());
    return walls[walls.size() / 2];
}

/** First "model name" line from /proc/cpuinfo ("unknown" elsewhere),
 *  sanitized for embedding in a JSON string. */
inline std::string
cpuModel()
{
    std::string model = "unknown";
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto key = line.find("model name");
        if (key != 0)
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            break;
        auto start = line.find_first_not_of(" \t", colon + 1);
        if (start == std::string::npos)
            break;
        model = line.substr(start);
        break;
    }
    for (char &c : model) {
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
            c = ' ';
    }
    return model;
}

/** 1-minute load average, or -1 when the host cannot report one. */
inline double
loadAvg1m()
{
    double loads[1] = {-1.0};
    if (getloadavg(loads, 1) < 1)
        return -1.0;
    return loads[0];
}

/** Emit the shared host-metadata fields (no surrounding braces):
 *  "host_cpus":N,"cpu_model":"...","loadavg_1m":X */
inline void
printHostMeta()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\"host_cpus\":%u,\"cpu_model\":\"%s\","
                "\"loadavg_1m\":%.2f",
                hw ? hw : 1, cpuModel().c_str(), loadAvg1m());
}

} // namespace consim::benchutil

#endif // CONSIM_BENCH_BENCH_UTIL_HH
