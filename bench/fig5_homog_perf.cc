/**
 * @file
 * Reproduces Fig. 5: single-workload performance of the homogeneous
 * mixes (four instances of the same workload, Table IV Mixes A-D) at
 * shared-4-way under the four scheduling policies, normalized to one
 * instance run in isolation with the 16 MB fully-shared L2.
 *
 * Paper shape: affinity is the best policy (shared data stays in one
 * partition); SPECjbb and SPECweb degrade badly under round robin;
 * TPC-W does best with random placement (less interconnect
 * congestion than affinity's hotspots).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 5: Homogeneous Mix Performance by Policy",
                "Figure 5 (cycles/txn relative to isolation)",
                "affinity best; SPECjbb/SPECweb degrade most under "
                "round robin");
    JsonReport jrep("fig5", "Homogeneous Mix Performance by Policy",
                    JsonReport::pathFromArgs(argc, argv));

    const SchedPolicy policies[] = {
        SchedPolicy::RoundRobin, SchedPolicy::Affinity,
        SchedPolicy::AffinityRR, SchedPolicy::Random};

    std::vector<std::string> headers = {"mix"};
    for (auto p : policies)
        headers.push_back(toString(p));
    TextTable table(headers);

    for (const auto &mix : Mix::homogeneous()) {
        const WorkloadKind kind = mix.vms.front();
        const auto &base =
            isolationBaseline(kind, SchedPolicy::Affinity,
                              SharingDegree::Shared16, benchSeeds());
        std::vector<std::string> row = {
            mix.name + " (" + toString(kind) + ")"};
        for (auto policy : policies) {
            const RunConfig cfg =
                mixConfig(mix, policy, SharingDegree::Shared4);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                r.meanCyclesPerTxn(kind) / base.cyclesPerTxn;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("mix", mix.name);
                jpt.set("policy", toString(policy));
                jpt.set("normalized_cycles_per_txn", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = one instance alone with 16MB fully-"
                 "shared L2; higher is slower)\n";
    jrep.write();
    return 0;
}
