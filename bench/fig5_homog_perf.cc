/**
 * @file
 * Reproduces Fig. 5: single-workload performance of the homogeneous
 * mixes (four instances of the same workload, Table IV Mixes A-D) at
 * shared-4-way under the four scheduling policies, normalized to one
 * instance run in isolation with the 16 MB fully-shared L2.
 *
 * Paper shape: affinity is the best policy (shared data stays in one
 * partition); SPECjbb and SPECweb degrade badly under round robin;
 * TPC-W does best with random placement (less interconnect
 * congestion than affinity's hotspots).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main()
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 5: Homogeneous Mix Performance by Policy",
                "Figure 5 (cycles/txn relative to isolation)",
                "affinity best; SPECjbb/SPECweb degrade most under "
                "round robin");

    const SchedPolicy policies[] = {
        SchedPolicy::RoundRobin, SchedPolicy::Affinity,
        SchedPolicy::AffinityRR, SchedPolicy::Random};

    std::vector<std::string> headers = {"mix"};
    for (auto p : policies)
        headers.push_back(toString(p));
    TextTable table(headers);

    for (const auto &mix : Mix::homogeneous()) {
        const WorkloadKind kind = mix.vms.front();
        const auto &base =
            isolationBaseline(kind, SchedPolicy::Affinity,
                              SharingDegree::Shared16, benchSeeds());
        std::vector<std::string> row = {
            mix.name + " (" + toString(kind) + ")"};
        for (auto policy : policies) {
            const RunConfig cfg =
                mixConfig(mix, policy, SharingDegree::Shared4);
            const RunResult r = runAveraged(cfg, benchSeeds());
            row.push_back(TextTable::num(
                r.meanCyclesPerTxn(kind) / base.cyclesPerTxn, 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = one instance alone with 16MB fully-"
                 "shared L2; higher is slower)\n";
    return 0;
}
