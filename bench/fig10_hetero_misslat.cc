/**
 * @file
 * Reproduces Fig. 10: average miss latencies of the heterogeneous
 * mixes (shared-4-way), separated by the workloads in each mix and
 * normalized, as in the paper, to each workload's latency in
 * isolation with affinity scheduling and a shared-4-way cache.
 *
 * Paper shape: consolidation raises relative miss latency, but not
 * uniformly -- SPECjbb's latency is the least sensitive to its
 * co-runners while TPC-W's is the most sensitive; the wide spread
 * demonstrates sensitivity to co-scheduled workloads.
 */

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 10: Heterogeneous Mix Miss Latencies",
                "Figure 10 (miss latency relative to isolation, "
                "affinity, shared-4-way)",
                "SPECjbb least latency-sensitive; TPC-W most");
    JsonReport jrep("fig10", "Heterogeneous Mix Miss Latencies",
                    JsonReport::pathFromArgs(argc, argv));

    TextTable table({"mix", "workload", "affinity", "round-robin"});

    // One parallel sweep over every (mix x policy x seed) point.
    const auto &mixes = Mix::heterogeneous();
    std::vector<BaselineRequest> wants;
    std::vector<RunConfig> configs;
    for (const auto &mix : mixes) {
        for (auto k : mix.vms) {
            wants.push_back({k, SchedPolicy::Affinity,
                             SharingDegree::Shared4});
        }
        configs.push_back(mixConfig(mix, SchedPolicy::Affinity,
                                    SharingDegree::Shared4));
        configs.push_back(mixConfig(mix, SchedPolicy::RoundRobin,
                                    SharingDegree::Shared4));
    }
    prewarmIsolationBaselines(wants, benchSeeds());
    const auto results = runSweepAveraged(configs, benchSeeds());

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &mix = mixes[m];
        const RunResult &aff = results[2 * m];
        const RunResult &rr = results[2 * m + 1];
        std::vector<WorkloadKind> kinds;
        for (auto k : mix.vms) {
            if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
                kinds.push_back(k);
        }
        auto aff_norm = json::Value::object();
        auto rr_norm = json::Value::object();
        for (auto kind : kinds) {
            const auto &base = isolationBaseline(
                kind, SchedPolicy::Affinity, SharingDegree::Shared4,
                benchSeeds());
            const double denom = base.missLatency;
            aff_norm.set(toString(kind),
                         denom > 0.0
                             ? aff.meanMissLatency(kind) / denom
                             : 0.0);
            rr_norm.set(toString(kind),
                        denom > 0.0
                            ? rr.meanMissLatency(kind) / denom
                            : 0.0);
            table.addRow(
                {mix.name + " (" +
                     std::to_string(mix.count(kind)) + "x)",
                 toString(kind),
                 TextTable::num(
                     denom > 0.0 ? aff.meanMissLatency(kind) / denom
                                 : 0.0,
                     2),
                 TextTable::num(
                     denom > 0.0 ? rr.meanMissLatency(kind) / denom
                                 : 0.0,
                     2)});
        }
        if (jrep.enabled()) {
            auto jaff = runResultJson(configs[2 * m], aff);
            jaff.set("mix", mix.name);
            jaff.set("normalized_miss_latency", std::move(aff_norm));
            jrep.point(std::move(jaff));
            auto jrr = runResultJson(configs[2 * m + 1], rr);
            jrr.set("mix", mix.name);
            jrr.set("normalized_miss_latency", std::move(rr_norm));
            jrep.point(std::move(jrr));
        }
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation, affinity, shared-4-way)\n";
    jrep.write();
    return 0;
}
