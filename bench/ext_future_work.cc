/**
 * @file
 * Extensions from the paper's Future Work section (SSVII), built on
 * the same machine:
 *
 *  1. Dynamic scheduling: instead of the paper's static startup
 *     binding, threads are periodically migrated between cores (a
 *     hypervisor reassigning virtual CPUs / an over-committed
 *     system). Sweeping the migration interval shows the cost of
 *     losing cache affinity.
 *
 *  2. Different numbers of threads per workload: an asymmetric mix
 *     (one 8-thread SPECjbb + two 4-thread TPC-H) on the same chip.
 *
 *  3. Higher degrees of consolidation per workload: two 8-thread
 *     instances instead of four 4-thread instances.
 */

#include <iostream>
#include <memory>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

namespace
{

using namespace consim;

void
dynamicSchedulingSweep(JsonReport &jrep)
{
    std::cout << "1) Dynamic thread migration (Mix C, affinity "
                 "start, shared-4-way):\n";
    TextTable table({"migration interval", "cycles/txn",
                     "LLC miss rate", "miss lat (cy)"});
    struct Point
    {
        Cycle interval;
        const char *label;
    };
    const Point points[] = {{0, "static (paper)"},
                            {400'000, "every 400K cycles"},
                            {100'000, "every 100K cycles"},
                            {25'000, "every 25K cycles"}};
    for (const auto &pt : points) {
        RunConfig cfg = mixConfig(Mix::byName("Mix C"),
                                  SchedPolicy::Affinity,
                                  SharingDegree::Shared4);
        cfg.migrationIntervalCycles = pt.interval;
        const RunResult r = runAveraged(cfg, benchSeeds());
        if (jrep.enabled()) {
            auto jpt = runResultJson(cfg, r);
            jpt.set("label", pt.label);
            jrep.point(std::move(jpt));
        }
        table.addRow(
            {pt.label,
             TextTable::num(r.meanCyclesPerTxn(WorkloadKind::SpecJbb),
                            0),
             TextTable::pct(r.meanMissRate(WorkloadKind::SpecJbb)),
             TextTable::num(
                 r.meanMissLatency(WorkloadKind::SpecJbb), 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

/** Run a custom set of (profile, seed) VMs and report per VM. */
void
runCustom(const char *title,
          const std::vector<WorkloadProfile> &profiles,
          SchedPolicy policy, JsonReport &jrep)
{
    std::vector<std::unique_ptr<VirtualMachine>> storage;
    std::vector<VirtualMachine *> vms;
    std::vector<int> threads;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        storage.push_back(std::make_unique<VirtualMachine>(
            profiles[i], static_cast<VmId>(i), 1000003ull + i));
        vms.push_back(storage.back().get());
        threads.push_back(profiles[i].numThreads);
    }
    MachineConfig machine;
    machine.sharing = SharingDegree::Shared4;
    const auto placements =
        scheduleThreads(machine, threads, policy, 1);
    System sys(machine, vms, placements);
    sys.run(defaultWarmupCycles());
    sys.resetStats();
    const Cycle measure = defaultMeasureCycles();
    sys.run(measure);

    std::cout << title << "\n";
    TextTable table({"vm", "threads", "cycles/txn", "LLC miss rate",
                     "miss lat (cy)"});
    for (auto *vm : vms) {
        const auto &s = vm->vmStats();
        const double cpt =
            s.transactions.value()
                ? static_cast<double>(measure) /
                      static_cast<double>(s.transactions.value())
                : 0.0;
        table.addRow({toString(vm->profile().kind) + " #" +
                          std::to_string(vm->id()),
                      std::to_string(vm->profile().numThreads),
                      TextTable::num(cpt, 0),
                      TextTable::pct(s.missRate()),
                      TextTable::num(s.missLatency.mean(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
    if (jrep.enabled()) {
        // Custom-built Systems have no RunConfig; export the whole
        // registry tree instead.
        auto jpt = json::Value::object();
        jpt.set("label", title);
        jpt.set("stats", sys.statsRoot().toJson());
        jrep.point(std::move(jpt));
    }
}

WorkloadProfile
withThreads(WorkloadKind kind, int threads)
{
    WorkloadProfile p = WorkloadProfile::get(kind);
    p.numThreads = threads;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Extensions: paper SSVII future work",
                "dynamic scheduling; asymmetric thread counts; "
                "higher consolidation degree",
                "migration churn should cost cache affinity; bigger "
                "instances amplify intra-workload sharing");
    JsonReport jrep("ext_future_work", "Paper SSVII future work",
                    JsonReport::pathFromArgs(argc, argv));

    dynamicSchedulingSweep(jrep);

    runCustom("2) Asymmetric mix: 8-thread SPECjbb + 2x 4-thread "
              "TPC-H (affinity):",
              {withThreads(WorkloadKind::SpecJbb, 8),
               withThreads(WorkloadKind::TpcH, 4),
               withThreads(WorkloadKind::TpcH, 4)},
              SchedPolicy::Affinity, jrep);

    runCustom("3) Higher degree: 2x 8-thread SPECjbb (affinity) -- "
              "compare with Mix C's 4x4:",
              {withThreads(WorkloadKind::SpecJbb, 8),
               withThreads(WorkloadKind::SpecJbb, 8)},
              SchedPolicy::Affinity, jrep);
    jrep.write();
    return 0;
}
