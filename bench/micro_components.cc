/**
 * @file
 * Micro-benchmarks (google-benchmark) for the simulator's hot paths:
 * RNG, cache-array operations, mesh packet transport, and whole-
 * system simulation throughput. These gate simulator performance,
 * not paper results.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "common/rng.hh"
#include "core/experiment.hh"
#include "noc/mesh.hh"

namespace consim
{
namespace
{

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngBelow(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1'000'000));
}
BENCHMARK(BM_RngBelow);

void
BM_CacheArrayLookupHit(benchmark::State &state)
{
    CacheGeometry g;
    g.sizeBytes = 1024 * 1024;
    g.assoc = 8;
    CacheArray<L2CacheLine> array(g);
    for (BlockAddr b = 0; b < 1024; ++b)
        array.install(array.victim(b), b);
    BlockAddr b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.lookup(b));
        b = (b + 1) % 1024;
    }
}
BENCHMARK(BM_CacheArrayLookupHit);

void
BM_CacheArrayMissAndFill(benchmark::State &state)
{
    CacheGeometry g;
    g.sizeBytes = 64 * 1024;
    g.assoc = 4;
    CacheArray<PrivateCacheLine> array(g);
    BlockAddr b = 0;
    for (auto _ : state) {
        auto *victim = array.victim(b);
        array.install(victim, b);
        ++b;
    }
}
BENCHMARK(BM_CacheArrayMissAndFill);

void
BM_MeshUniformRandomTraffic(benchmark::State &state)
{
    MachineConfig cfg;
    Mesh mesh(cfg);
    int delivered = 0;
    mesh.setDeliver([&](const Msg &) { ++delivered; });
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        // One injection attempt plus one mesh cycle per iteration.
        const auto src = static_cast<CoreId>(rng.below(16));
        const auto dst = static_cast<CoreId>(rng.below(16));
        if (src != dst) {
            Msg m;
            m.type = rng.chance(0.3) ? MsgType::Data : MsgType::GetS;
            m.srcTile = src;
            m.dstTile = dst;
            m.injectCycle = now;
            mesh.inject(m);
        }
        mesh.tick(now++);
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshUniformRandomTraffic);

void
BM_SystemCyclesPerSecond(benchmark::State &state)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix C"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    // Build once; measure steady-state simulation throughput.
    std::vector<std::unique_ptr<VirtualMachine>> vms;
    std::vector<VirtualMachine *> ptrs;
    std::vector<int> tpv;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        vms.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i), 1));
        ptrs.push_back(vms.back().get());
        tpv.push_back(prof.numThreads);
    }
    const auto placements =
        scheduleThreads(cfg.machine, tpv, cfg.policy, 1);
    System sys(cfg.machine, ptrs, placements);
    sys.run(20'000); // warm
    for (auto _ : state)
        sys.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemCyclesPerSecond);

} // namespace
} // namespace consim
