/**
 * @file
 * Isolation-guarantee extension (beyond the paper): what QoS hardware
 * buys a protected VM when a co-scheduled antagonist attacks the
 * shared resources. A SPECjbb VM (the paper's most cache-friendly
 * workload) shares a fully-shared chip with deterministic bully VMs
 * (LLC-streaming antagonists, ~100% miss rate), and the bully
 * intensity is swept via per-VM thread counts. Each point runs under
 * three QoS modes: no QoS, static partitioning (fixed L2 ways + one
 * reserved VC + MC token buckets) and dynamic (the utility-driven
 * repartitioner adjusting the way split at epoch boundaries).
 *
 * The chip is configured bandwidth-constrained (memIssueInterval
 * raised from 4 to 96 cycles): consolidation nodes are sized for the
 * average tenant, so a streaming antagonist saturates the memory
 * controllers and the protected VM's misses queue behind the bully's.
 * That is the contention channel the MC token buckets close; the way
 * partition and the reserved VC guard the LLC and NoC channels. A
 * small-LLC scenario (2 MB) adds the capacity channel: there the
 * bully's fills actually turn the cache over, a static partition at
 * the configured floor is too small for the protected VM, and the
 * dynamic repartitioner earns its keep by growing past the floor
 * once the occupancy gate sees the allocation filled.
 *
 * Slowdown is cycles/txn relative to the protected VM running alone
 * on the *same* machine (same mesh, same constrained memory system),
 * measured inline — not the paper's Fig 2 baseline.
 *
 * Expected shape: protected-VM worst-case slowdown orders
 * no-QoS > static >= dynamic, and the bullies (not the protected VM)
 * absorb the MC throttle stalls.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

/** One consolidation scenario: a chip, an LLC size and a bully
 *  intensity, plus the protected way floor its QoS modes use. */
struct Scenario
{
    int meshX;
    int meshY;
    std::uint64_t l2Bytes; ///< 0 = library default (16 MB)
    int bullies;           ///< number of bully VMs
    int bullyThreads;      ///< threads per bully VM (the intensity)
    int ways;              ///< protected way floor for static/dynamic
    std::string name() const
    {
        return std::to_string(meshX * meshY) + "-core" +
               (l2Bytes ? "/" + std::to_string(l2Bytes >> 20) + "MB"
                        : "") +
               " x" + std::to_string(bullies) + " bully(t=" +
               std::to_string(bullyThreads) + ")";
    }
};

/** The bandwidth-constrained consolidation node (see file header). */
MachineConfig
constrainedMachine(const Scenario &sc)
{
    MachineConfig m;
    m.meshX = sc.meshX;
    m.meshY = sc.meshY;
    m.sharing = sharingDegree(sc.meshX * sc.meshY);
    m.memIssueInterval = 96;
    if (sc.l2Bytes)
        m.l2TotalBytes = sc.l2Bytes;
    return m;
}

/**
 * QoS spec for one mode. tokens=1/refill=2048 caps each bully VM to
 * one memory read per 2048 cycles per controller: even the 64-core
 * chip's 15 bullies then demand ~0.007 reads/cycle/MC, under the
 * constrained channel's 1/96 capacity, so the protected VM's reads
 * stop queueing behind the bullies'. Static and dynamic share every
 * knob, so the only delta between them is the repartitioner.
 */
std::string
qosSpec(const std::string &mode, int ways)
{
    std::string s = mode + ":vm=0,ways=" + std::to_string(ways) +
                    ",vcs=1,tokens=1,refill=2048";
    if (mode == "dynamic")
        s += ",epoch=100000";
    return s;
}

RunConfig
scenarioConfig(const Scenario &sc, const std::string &qos_spec)
{
    RunConfig cfg;
    cfg.machine = constrainedMachine(sc);
    cfg.workloads.push_back(WorkloadKind::SpecJbb);
    cfg.vmThreads.push_back(0); // protected VM: profile default
    for (int i = 0; i < sc.bullies; ++i) {
        cfg.workloads.push_back(WorkloadKind::Bully);
        cfg.vmThreads.push_back(sc.bullyThreads);
    }
    cfg.warmupCycles = 500'000;
    cfg.measureCycles = 1'000'000;
    if (!qos_spec.empty()) {
        std::string err;
        CONSIM_ASSERT(QosConfig::parse(qos_spec, cfg.qos, &err),
                      "fig15 qos spec: ", err);
    }
    return cfg;
}

/** The protected VM alone on the same constrained machine. */
RunConfig
isolatedConfig(const Scenario &sc)
{
    RunConfig cfg;
    cfg.machine = constrainedMachine(sc);
    cfg.workloads.push_back(WorkloadKind::SpecJbb);
    cfg.warmupCycles = 500'000;
    cfg.measureCycles = 1'000'000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 15: Performance Isolation under a Bully VM",
                "isolation extension (no paper counterpart; the paper "
                "consolidates cooperative commercial workloads only)",
                "protected-VM worst-case slowdown: no-QoS > static >= "
                "dynamic; bullies absorb the MC throttle stalls");
    JsonReport jrep("fig15", "Performance Isolation under a Bully VM",
                    JsonReport::pathFromArgs(argc, argv));

    const char *modes[] = {"no-qos", "static", "dynamic"};

    // 16-core chip: 3 bullies at rising intensity on the paper's
    // 16 MB LLC, plus the 2 MB capacity-channel point (way floor 2).
    // 64-core chip: 15 bullies, fully committed (the scaled-up
    // worst case).
    const Scenario scenarios[] = {{4, 4, 0, 3, 1, 4},
                                  {4, 4, 0, 3, 2, 4},
                                  {4, 4, 0, 3, 4, 4},
                                  {4, 4, 2ull << 20, 3, 4, 2},
                                  {8, 8, 0, 15, 4, 4}};
    const std::size_t kNumScenarios = std::size(scenarios);

    // One parallel sweep over every (scenario, mode) point plus one
    // isolated baseline per distinct machine.
    std::vector<RunConfig> configs;
    std::vector<std::string> labels;
    std::vector<int> scen_of;
    for (std::size_t s = 0; s < kNumScenarios; ++s) {
        for (const char *mode : modes) {
            const std::string spec =
                std::string(mode) == "no-qos"
                    ? ""
                    : qosSpec(mode, scenarios[s].ways);
            configs.push_back(scenarioConfig(scenarios[s], spec));
            labels.push_back(mode);
            scen_of.push_back(static_cast<int>(s));
        }
    }
    // Baseline index per scenario, deduped by machine signature.
    std::vector<std::size_t> base_of(kNumScenarios);
    {
        std::vector<Scenario> done;
        for (std::size_t s = 0; s < kNumScenarios; ++s) {
            bool found = false;
            for (std::size_t d = 0; d < done.size(); ++d) {
                if (done[d].meshX == scenarios[s].meshX &&
                    done[d].meshY == scenarios[s].meshY &&
                    done[d].l2Bytes == scenarios[s].l2Bytes) {
                    base_of[s] = base_of[d];
                    found = true;
                    break;
                }
            }
            if (!found) {
                base_of[s] = configs.size();
                configs.push_back(isolatedConfig(scenarios[s]));
                labels.push_back("isolated");
                scen_of.push_back(-1);
            }
            done.push_back(scenarios[s]);
        }
    }

    auto results = runSweepAveraged(configs, benchSeeds());

    TextTable table({"scenario", "qos", "protected cy/txn", "slowdown",
                     "prot miss lat", "bully stalls"});
    // Worst-case (over scenarios) protected slowdown per mode.
    double worst[3] = {0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < kNumScenarios * 3; ++i) {
        const Scenario &sc = scenarios[scen_of[i]];
        RunResult &r = results[i];
        const double iso =
            results[base_of[scen_of[i]]].vms[0].cyclesPerTransaction;
        VmResult &prot = r.vms[0];
        const double slow =
            iso > 0.0 ? prot.cyclesPerTransaction / iso : 0.0;
        prot.slowdownVsIsolated = slow;
        std::uint64_t bully_stalls = 0;
        for (std::size_t v = 1; v < r.vms.size(); ++v)
            bully_stalls += r.vms[v].mcThrottleStalls;
        worst[i % 3] = std::max(worst[i % 3], slow);
        table.addRow({sc.name(), labels[i],
                      TextTable::num(prot.cyclesPerTransaction, 0),
                      TextTable::num(slow, 3),
                      TextTable::num(prot.avgMissLatency, 1),
                      std::to_string(bully_stalls)});
        if (jrep.enabled()) {
            auto jpt = runResultJson(configs[i], r);
            jpt.set("scenario", sc.name());
            jpt.set("qos_mode", labels[i]);
            jpt.set("bully_threads", sc.bullyThreads);
            jpt.set("protected_slowdown", slow);
            jrep.point(std::move(jpt));
        }
    }
    table.print(std::cout);

    std::cout << "\nworst-case protected slowdown: no-qos "
              << TextTable::num(worst[0], 3) << " > static "
              << TextTable::num(worst[1], 3) << " >= dynamic "
              << TextTable::num(worst[2], 3) << " : "
              << (worst[0] > worst[1] && worst[1] >= worst[2]
                      ? "holds"
                      : "VIOLATED")
              << "\n";
    if (jrep.enabled()) {
        auto summary = json::Value::object();
        summary.set("worst_no_qos", worst[0]);
        summary.set("worst_static", worst[1]);
        summary.set("worst_dynamic", worst[2]);
        summary.set("ordering_holds",
                    worst[0] > worst[1] && worst[1] >= worst[2]);
        jrep.set("summary", std::move(summary));
    }
    jrep.write();
    return 0;
}
