/**
 * @file
 * Reproduces Fig. 6: effect of the thread scheduling policy on miss
 * latency for the homogeneous mixes (shared-4-way), normalized as in
 * the paper to each workload's latency in isolation with affinity
 * scheduling.
 *
 * Paper shape: going from isolation to homogeneous mixes, TPC-W
 * shows the greatest miss-latency increase (its large footprint
 * thrashes when it must compete for cache space); affinity keeps
 * dirty responses close.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 6: Homogeneous Mix Miss Latency by Policy",
                "Figure 6 (miss latency relative to isolation with "
                "affinity)",
                "TPC-W's latency rises most from isolation to mix; "
                "affinity lowest");
    JsonReport jrep("fig6", "Homogeneous Mix Miss Latency by Policy",
                    JsonReport::pathFromArgs(argc, argv));

    const SchedPolicy policies[] = {
        SchedPolicy::RoundRobin, SchedPolicy::Affinity,
        SchedPolicy::AffinityRR, SchedPolicy::Random};

    std::vector<std::string> headers = {"mix"};
    for (auto p : policies)
        headers.push_back(toString(p));
    TextTable table(headers);

    for (const auto &mix : Mix::homogeneous()) {
        const WorkloadKind kind = mix.vms.front();
        const auto &base =
            isolationBaseline(kind, SchedPolicy::Affinity,
                              SharingDegree::Shared4, benchSeeds());
        std::vector<std::string> row = {
            mix.name + " (" + toString(kind) + ")"};
        for (auto policy : policies) {
            const RunConfig cfg =
                mixConfig(mix, policy, SharingDegree::Shared4);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                base.missLatency > 0.0
                    ? r.meanMissLatency(kind) / base.missLatency
                    : 0.0;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("mix", mix.name);
                jpt.set("policy", toString(policy));
                jpt.set("normalized_miss_latency", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation, affinity, shared-4-way)\n";
    jrep.write();
    return 0;
}
