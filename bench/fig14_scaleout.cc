/**
 * @file
 * Scale-out extension (beyond the paper): the consolidation study
 * replayed on larger chips. Sweeps 16-core (4x4), 32-core (8x4) and
 * 64-core (8x8) meshes across the five sharing degrees, with the VM
 * count scaled to keep the chip exactly fully committed, plus one
 * heterogeneous consolidation point per scaled-out chip mixing 2-,
 * 4- and 8-thread VMs (the paper's VMs are uniformly 4-threaded).
 *
 * Expected shape: the paper's sharing-degree tradeoff (private
 * degrees isolate but replicate; shared degrees pool capacity but
 * interfere) persists at 32 and 64 cores, while average miss latency
 * grows with mesh diameter; heterogeneous VM sizes stress the
 * affinity scheduler's packing without changing the tradeoff.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

struct Chip
{
    int meshX;
    int meshY;
    int cores() const { return meshX * meshY; }
    std::string name() const
    {
        return std::to_string(meshX) + "x" + std::to_string(meshY);
    }
};

/** Fully committed homogeneous-size load: cores/16 copies of the
 *  paper's 4-VM consolidation (each VM 4-threaded). */
std::vector<WorkloadKind>
scaledWorkloads(int cores)
{
    const WorkloadKind base[] = {WorkloadKind::SpecJbb,
                                 WorkloadKind::TpcW, WorkloadKind::TpcH,
                                 WorkloadKind::SpecWeb};
    std::vector<WorkloadKind> out;
    for (int i = 0; i < cores / 4; ++i)
        out.push_back(base[i % 4]);
    return out;
}

/** Heterogeneous consolidation: 8-, 4- and 2-thread VMs filling
 *  @p cores exactly (two 8s, two 4s, four 2s per 32 cores). */
void
heteroMix(int cores, std::vector<WorkloadKind> &workloads,
          std::vector<int> &threads)
{
    const WorkloadKind kinds[] = {WorkloadKind::SpecJbb,
                                  WorkloadKind::TpcW, WorkloadKind::TpcH,
                                  WorkloadKind::SpecWeb};
    const int sizes[] = {8, 8, 4, 4, 2, 2, 2, 2}; // sums to 32
    int placed = 0, i = 0;
    while (placed < cores) {
        const int t = sizes[i % 8];
        workloads.push_back(kinds[i % 4]);
        threads.push_back(t);
        placed += t;
        ++i;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 14: Consolidation at Scale (16 / 32 / 64 cores)",
                "scale-out extension (no paper counterpart; paper "
                "machine is the 16-core point)",
                "sharing-degree tradeoff persists at 32/64 cores; "
                "miss latency grows with mesh diameter");
    JsonReport jrep("fig14", "Consolidation at Scale",
                    JsonReport::pathFromArgs(argc, argv));

    const Chip chips[] = {{4, 4}, {8, 4}, {8, 8}};
    const int degrees[] = {1, 2, 4, 8, 16};

    // Homogeneous-size sweep: every chip x every degree, plus one
    // heterogeneous 2/4/8-thread point per scaled-out chip, all in
    // one parallel sweep.
    std::vector<RunConfig> configs;
    std::vector<std::string> labels;
    std::vector<bool> hetero;
    for (const Chip &chip : chips) {
        for (const int degree : degrees) {
            RunConfig cfg;
            cfg.machine.meshX = chip.meshX;
            cfg.machine.meshY = chip.meshY;
            cfg.machine.sharing = sharingDegree(degree);
            cfg.workloads = scaledWorkloads(chip.cores());
            configs.push_back(cfg);
            labels.push_back(chip.name());
            hetero.push_back(false);
        }
        if (chip.cores() > 16) {
            RunConfig cfg;
            cfg.machine.meshX = chip.meshX;
            cfg.machine.meshY = chip.meshY;
            cfg.machine.sharing = sharingDegree(4);
            heteroMix(chip.cores(), cfg.workloads, cfg.vmThreads);
            configs.push_back(cfg);
            labels.push_back(chip.name() + " hetero");
            hetero.push_back(true);
        }
    }
    const auto results = runSweepAveraged(configs, benchSeeds());

    TextTable table({"chip", "cores", "sharing", "VMs",
                     "cycles/txn (mean)", "miss latency", "net latency"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunConfig &cfg = configs[i];
        const RunResult &r = results[i];
        double cpt = 0.0, lat = 0.0;
        for (const auto &v : r.vms) {
            cpt += v.cyclesPerTransaction;
            lat += v.avgMissLatency;
        }
        const double n = r.vms.empty()
                             ? 1.0
                             : static_cast<double>(r.vms.size());
        table.addRow({labels[i],
                      std::to_string(cfg.machine.numCores()),
                      toString(cfg.machine.sharing),
                      std::to_string(cfg.workloads.size()),
                      TextTable::num(cpt / n, 1),
                      TextTable::num(lat / n, 1),
                      TextTable::num(r.netAvgLatency, 1)});
        if (jrep.enabled()) {
            auto jpt = runResultJson(cfg, r);
            jpt.set("cores", cfg.machine.numCores());
            jpt.set("mesh",
                    std::to_string(cfg.machine.meshX) + "x" +
                        std::to_string(cfg.machine.meshY));
            jpt.set("cores_per_group",
                    coresPerGroup(cfg.machine.sharing));
            jpt.set("heterogeneous", static_cast<bool>(hetero[i]));
            jrep.point(std::move(jpt));
        }
    }
    table.print(std::cout);
    std::cout << "\n(16-core rows replay the paper's machine; 32/64-"
                 "core rows scale the consolidation load with the "
                 "chip)\n";
    jrep.write();
    return 0;
}
