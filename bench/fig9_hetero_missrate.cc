/**
 * @file
 * Reproduces Fig. 9: single-workload LLC miss rates of the
 * heterogeneous mixes (shared-4-way) relative to the workloads run
 * in isolation with the fully-shared 16 MB L2.
 *
 * Paper shape: SPECjbb's miss rate blows up when combined with
 * TPC-W (Mixes 7-9: both pressure the cache); TPC-H with affinity
 * sees almost no increase with respect to a 16 MB cache.
 */

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 9: Heterogeneous Mix Miss Rates",
                "Figure 9 (LLC miss rate relative to isolation)",
                "SPECjbb's miss rate jumps with TPC-W (Mixes 7-9); "
                "TPC-H/affinity stays near 1.0");
    JsonReport jrep("fig9", "Heterogeneous Mix Miss Rates",
                    JsonReport::pathFromArgs(argc, argv));

    TextTable table({"mix", "workload", "affinity", "round-robin"});

    // Batch every (mix x policy x seed) point into one parallel
    // sweep; the isolation baselines prewarm the same way.
    const auto &mixes = Mix::heterogeneous();
    std::vector<BaselineRequest> wants;
    std::vector<RunConfig> configs;
    for (const auto &mix : mixes) {
        for (auto k : mix.vms) {
            wants.push_back({k, SchedPolicy::Affinity,
                             SharingDegree::Shared16});
        }
        configs.push_back(mixConfig(mix, SchedPolicy::Affinity,
                                    SharingDegree::Shared4));
        configs.push_back(mixConfig(mix, SchedPolicy::RoundRobin,
                                    SharingDegree::Shared4));
    }
    prewarmIsolationBaselines(wants, benchSeeds());
    const auto results = runSweepAveraged(configs, benchSeeds());

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &mix = mixes[m];
        const RunResult &aff = results[2 * m];
        const RunResult &rr = results[2 * m + 1];
        std::vector<WorkloadKind> kinds;
        for (auto k : mix.vms) {
            if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
                kinds.push_back(k);
        }
        auto aff_norm = json::Value::object();
        auto rr_norm = json::Value::object();
        for (auto kind : kinds) {
            const auto &base = isolationBaseline(
                kind, SchedPolicy::Affinity, SharingDegree::Shared16,
                benchSeeds());
            const double denom = base.missRate;
            aff_norm.set(toString(kind),
                         denom > 0.0 ? aff.meanMissRate(kind) / denom
                                     : 0.0);
            rr_norm.set(toString(kind),
                        denom > 0.0 ? rr.meanMissRate(kind) / denom
                                    : 0.0);
            table.addRow(
                {mix.name + " (" +
                     std::to_string(mix.count(kind)) + "x)",
                 toString(kind),
                 TextTable::num(
                     denom > 0.0 ? aff.meanMissRate(kind) / denom
                                 : 0.0,
                     2),
                 TextTable::num(
                     denom > 0.0 ? rr.meanMissRate(kind) / denom
                                 : 0.0,
                     2)});
        }
        if (jrep.enabled()) {
            auto jaff = runResultJson(configs[2 * m], aff);
            jaff.set("mix", mix.name);
            jaff.set("normalized_miss_rate", std::move(aff_norm));
            jrep.point(std::move(jaff));
            auto jrr = runResultJson(configs[2 * m + 1], rr);
            jrr.set("mix", mix.name);
            jrr.set("normalized_miss_rate", std::move(rr_norm));
            jrep.point(std::move(jrr));
        }
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation with 16MB fully-shared L2)\n";
    jrep.write();
    return 0;
}
