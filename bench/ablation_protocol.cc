/**
 * @file
 * Ablations on the coherence protocol design choices DESIGN.md calls
 * out:
 *
 *  1. Clean forwarding (a Shared sharer supplies data cache-to-cache)
 *     vs classic Origin (memory supplies clean data). The paper's
 *     workloads are dominated by *clean* c2c transfers (Table II), so
 *     clean forwarding is what makes them latency-tolerant on chip.
 *
 *  2. Per-tile directory caches vs none (every home lookup fetches
 *     directory state off-chip). The paper augments each core with a
 *     directory cache "to reduce the number of off-chip references".
 *
 * Each ablation runs a c2c-heavy point (TPC-H isolated, private L2s)
 * and a consolidated point (Mix 5 affinity, shared-4-way).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

namespace
{

using namespace consim;

void
runGrid(const char *title, RunConfig base, WorkloadKind focus,
        JsonReport &jrep)
{
    TextTable table({"clean fwd", "dir cache", "miss lat (cy)",
                     "cycles/txn", "c2c fraction"});
    for (bool clean_fwd : {true, false}) {
        for (bool dir_cache : {true, false}) {
            RunConfig cfg = base;
            cfg.machine.cleanForwarding = clean_fwd;
            cfg.machine.dirCacheEnabled = dir_cache;
            const RunResult r = runAveraged(cfg, benchSeeds());
            double c2c = 0.0;
            int n = 0;
            for (const auto &v : r.vms) {
                if (v.kind == focus) {
                    c2c += v.c2cFraction;
                    ++n;
                }
            }
            table.addRow({clean_fwd ? "on" : "off",
                          dir_cache ? "on" : "off",
                          TextTable::num(r.meanMissLatency(focus), 1),
                          TextTable::num(r.meanCyclesPerTxn(focus), 0),
                          TextTable::pct(n ? c2c / n : 0.0, 0)});
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("label", title);
                jpt.set("focus", toString(focus));
                jrep.point(std::move(jpt));
            }
        }
    }
    std::cout << title << "\n";
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout, "Ablation: protocol design choices",
                "DESIGN.md ablation index",
                "clean forwarding should cut miss latency for "
                "c2c-heavy workloads; directory caches should cut "
                "latency everywhere");
    JsonReport jrep("ablation_protocol", "Protocol design choices",
                    JsonReport::pathFromArgs(argc, argv));

    runGrid("TPC-H isolated, private L2s (c2c-heavy):",
            isolationConfig(WorkloadKind::TpcH, SchedPolicy::RoundRobin,
                            SharingDegree::Private),
            WorkloadKind::TpcH, jrep);

    runGrid("Mix 5 (2x SPECjbb + 2x TPC-H), affinity, shared-4-way "
            "(SPECjbb metrics):",
            mixConfig(Mix::byName("Mix 5"), SchedPolicy::Affinity,
                      SharingDegree::Shared4),
            WorkloadKind::SpecJbb, jrep);
    jrep.write();
    return 0;
}
