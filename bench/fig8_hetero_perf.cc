/**
 * @file
 * Reproduces Fig. 8: single-workload performance of the nine
 * heterogeneous mixes (Table IV) on shared-4-way caches, with
 * affinity and round-robin scheduling, normalized to each workload's
 * run in isolation with the 16 MB fully-shared L2. Isolated
 * shared-4-way reference points are printed for comparison, as in
 * the figure.
 *
 * Paper shape: TPC-H is largely unaffected by co-runners (small
 * footprint, high c2c service rate); SPECjbb sees large degradation,
 * worst when combined with TPC-W (Mixes 7-9).
 */

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 8: Heterogeneous Mix Performance",
                "Figure 8 (cycles/txn relative to isolation, "
                "fully-shared)",
                "TPC-H barely affected; SPECjbb degrades most, "
                "especially with TPC-W (Mixes 7-9)");
    JsonReport jrep("fig8", "Heterogeneous Mix Performance",
                    JsonReport::pathFromArgs(argc, argv));

    TextTable table({"mix", "workload", "affinity", "round-robin"});

    for (const auto &mix : Mix::heterogeneous()) {
        const RunConfig aff_cfg =
            mixConfig(mix, SchedPolicy::Affinity,
                      SharingDegree::Shared4);
        const RunConfig rr_cfg =
            mixConfig(mix, SchedPolicy::RoundRobin,
                      SharingDegree::Shared4);
        const RunResult aff = runAveraged(aff_cfg, benchSeeds());
        const RunResult rr = runAveraged(rr_cfg, benchSeeds());
        std::vector<WorkloadKind> kinds;
        for (auto k : mix.vms) {
            if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
                kinds.push_back(k);
        }
        auto aff_norm = json::Value::object();
        auto rr_norm = json::Value::object();
        for (auto kind : kinds) {
            const auto &base = isolationBaseline(
                kind, SchedPolicy::Affinity, SharingDegree::Shared16,
                benchSeeds());
            aff_norm.set(toString(kind),
                         aff.meanCyclesPerTxn(kind) /
                             base.cyclesPerTxn);
            rr_norm.set(toString(kind),
                        rr.meanCyclesPerTxn(kind) / base.cyclesPerTxn);
            table.addRow(
                {mix.name + " (" +
                     std::to_string(mix.count(kind)) + "x)",
                 toString(kind),
                 TextTable::num(
                     aff.meanCyclesPerTxn(kind) / base.cyclesPerTxn,
                     2),
                 TextTable::num(
                     rr.meanCyclesPerTxn(kind) / base.cyclesPerTxn,
                     2)});
        }
        if (jrep.enabled()) {
            auto jaff = runResultJson(aff_cfg, aff);
            jaff.set("mix", mix.name);
            jaff.set("normalized_cycles_per_txn",
                     std::move(aff_norm));
            jrep.point(std::move(jaff));
            auto jrr = runResultJson(rr_cfg, rr);
            jrr.set("mix", mix.name);
            jrr.set("normalized_cycles_per_txn", std::move(rr_norm));
            jrep.point(std::move(jrr));
        }
        table.addSeparator();
    }

    // Isolated shared-4-way reference (degree of isolation check).
    for (const auto &prof : WorkloadProfile::all()) {
        const auto &base =
            isolationBaseline(prof.kind, SchedPolicy::Affinity,
                              SharingDegree::Shared16, benchSeeds());
        std::vector<std::string> row = {"isolated 4-way",
                                        prof.name};
        for (auto policy :
             {SchedPolicy::Affinity, SchedPolicy::RoundRobin}) {
            const RunConfig cfg = isolationConfig(
                prof.kind, policy, SharingDegree::Shared4);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                r.meanCyclesPerTxn(prof.kind) / base.cyclesPerTxn;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("mix", "isolated 4-way");
                jpt.set("workload", prof.name);
                jpt.set("normalized_cycles_per_txn", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\n(1.00 = isolation with 16MB fully-shared L2; "
                 "higher is slower)\n";
    jrep.write();
    return 0;
}
