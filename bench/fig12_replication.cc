/**
 * @file
 * Reproduces Fig. 12: percentage of last-level-cache lines that are
 * replicated across the partitions, for the homogeneous mixes at
 * shared-4-way under round-robin, affinity-round-robin, and random
 * scheduling, with the private configuration as the maximum-
 * replication bound (rightmost bar of the figure). Affinity is
 * omitted, as in the paper, because it cannot replicate at
 * shared-4-way. Snapshots are taken at the end of the measurement
 * window (the paper snapshots at 500M instructions).
 *
 * Paper shape: round robin replicates most (every thread in a
 * different partition); SPECjbb and SPECweb replicate the most
 * read-shared data (the paper reports 73% and 64% of their lines
 * NOT replicated under RR, i.e. 27%/36% replicated); aff-rr and
 * random replicate less; private is the upper bound.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 12: Replicated LLC Lines (homogeneous mixes)",
                "Figure 12 (% of valid LLC lines with a copy in "
                "another partition)",
                "RR > aff-rr/random; SPECjbb & SPECweb most "
                "replication; private = max bound");
    JsonReport jrep("fig12", "Replicated LLC Lines",
                    JsonReport::pathFromArgs(argc, argv));

    struct Point
    {
        SharingDegree sharing;
        SchedPolicy policy;
        const char *label;
    };
    const Point points[] = {
        {SharingDegree::Shared4, SchedPolicy::RoundRobin, "rr"},
        {SharingDegree::Shared4, SchedPolicy::AffinityRR, "aff-rr"},
        {SharingDegree::Shared4, SchedPolicy::Random, "random"},
        {SharingDegree::Private, SchedPolicy::RoundRobin,
         "private (max)"},
    };

    std::vector<std::string> headers = {"mix"};
    for (const auto &pt : points)
        headers.push_back(pt.label);
    TextTable table(headers);

    for (const auto &mix : Mix::homogeneous()) {
        std::vector<std::string> row = {
            mix.name + " (" + toString(mix.vms.front()) + ")"};
        for (const auto &pt : points) {
            RunConfig cfg = mixConfig(mix, pt.policy, pt.sharing);
            cfg.seed = benchSeeds().front();
            const RunResult r = runExperiment(cfg);
            row.push_back(
                TextTable::pct(r.replication.replicatedFraction()));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("mix", mix.name);
                jpt.set("label", pt.label);
                jpt.set("replicated_fraction",
                        r.replication.replicatedFraction());
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(snapshot at the end of the measurement window; "
                 "paper: RR leaves only 73%/64% of SPECjbb/SPECweb "
                 "lines un-replicated)\n";
    jrep.write();
    return 0;
}
