/**
 * @file
 * Reproduces Fig. 2: performance of each workload run in isolation
 * (four active cores of sixteen) across last-level-cache sharing
 * degrees and scheduling policies. Values are cycle counts per
 * transaction normalized to the paper's baseline: the same workload
 * with the full 16 MB fully-shared L2.
 *
 * Paper shape: performance degrades as the cache seen by the
 * workload shrinks (private worst); round robin beats affinity for
 * capacity-hungry workloads (TPC-W) because it keeps the whole
 * chip's cache reachable and spreads interconnect traffic.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 2: Isolated Workload Performance",
                "Figure 2 (normalized cycle count, higher = slower)",
                "slowdown grows as per-workload cache shrinks; "
                "affinity limits reachable capacity (worst for TPC-W)");
    JsonReport jrep("fig2", "Isolated Workload Performance",
                    JsonReport::pathFromArgs(argc, argv));

    struct Point
    {
        SharingDegree sharing;
        SchedPolicy policy;
        const char *label;
    };
    const Point points[] = {
        {SharingDegree::Shared16, SchedPolicy::Affinity, "shared"},
        {SharingDegree::Shared8, SchedPolicy::Affinity, "aff 2-LL$"},
        {SharingDegree::Shared8, SchedPolicy::RoundRobin, "rr 2-LL$"},
        {SharingDegree::Shared4, SchedPolicy::Affinity, "aff 4-LL$"},
        {SharingDegree::Shared4, SchedPolicy::RoundRobin, "rr 4-LL$"},
        {SharingDegree::Shared2, SchedPolicy::Affinity, "aff 8-LL$"},
        {SharingDegree::Shared2, SchedPolicy::RoundRobin, "rr 8-LL$"},
        {SharingDegree::Private, SchedPolicy::RoundRobin, "private"},
    };

    std::vector<std::string> headers = {"config"};
    for (const auto &p : WorkloadProfile::all())
        headers.push_back(p.name);
    TextTable table(headers);

    for (const auto &pt : points) {
        std::vector<std::string> row = {pt.label};
        for (const auto &prof : WorkloadProfile::all()) {
            const auto &base = isolationBaseline(
                prof.kind, SchedPolicy::Affinity,
                SharingDegree::Shared16, benchSeeds());
            const RunConfig cfg =
                isolationConfig(prof.kind, pt.policy, pt.sharing);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                r.meanCyclesPerTxn(prof.kind) / base.cyclesPerTxn;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("label", pt.label);
                jpt.set("workload", prof.name);
                jpt.set("normalized_cycles_per_txn", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation with 16MB fully-shared L2; "
                 "higher is slower)\n";
    jrep.write();
    return 0;
}
