/**
 * @file
 * Reproduces Fig. 13: snapshot of cache utilization per workload for
 * the heterogeneous mixes -- the fraction of each shared-4-way
 * partition's capacity occupied by each VM, under round-robin
 * scheduling (chosen by the paper to exacerbate collocation).
 *
 * Paper shape: TPC-H occupies less than its fair 25% share in almost
 * every cache; SPECjbb splits capacity evenly against copies of
 * itself but is squeezed hard by TPC-W (Mixes 7-9).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 13: Cache Utilization per Workload "
                "(heterogeneous, rr, shared-4-way)",
                "Figure 13 (per-partition capacity share by VM)",
                "TPC-H takes < its fair 25%; TPC-W squeezes SPECjbb");
    JsonReport jrep("fig13", "Cache Utilization per Workload",
                    JsonReport::pathFromArgs(argc, argv));

    for (const auto &mix : Mix::heterogeneous()) {
        RunConfig cfg =
            mixConfig(mix, SchedPolicy::RoundRobin,
                      SharingDegree::Shared4);
        cfg.seed = benchSeeds().front();
        const RunResult r = runExperiment(cfg);
        const auto &occ = r.occupancy;

        std::vector<std::string> headers = {"vm"};
        for (std::size_t g = 0; g < occ.lines.size(); ++g)
            headers.push_back("cache " + std::to_string(g));
        headers.push_back("mean");
        TextTable table(headers);

        for (std::size_t vm = 0; vm < mix.vms.size(); ++vm) {
            std::vector<std::string> row = {
                toString(mix.vms[vm]) + " #" + std::to_string(vm)};
            double sum = 0.0;
            for (std::size_t g = 0; g < occ.lines.size(); ++g) {
                const double share =
                    occ.share(static_cast<GroupId>(g),
                              static_cast<VmId>(vm));
                sum += share;
                row.push_back(TextTable::pct(share, 0));
            }
            row.push_back(TextTable::pct(
                sum / static_cast<double>(occ.lines.size()), 0));
            table.addRow(std::move(row));
        }
        std::cout << mix.name << " ("
                  << toString(mix.vms.front()) << " x"
                  << mix.count(mix.vms.front()) << " + "
                  << toString(mix.vms.back()) << " x"
                  << mix.count(mix.vms.back()) << ")\n";
        table.print(std::cout);
        std::cout << "\n";
        if (jrep.enabled()) {
            auto jpt = runResultJson(cfg, r);
            jpt.set("mix", mix.name);
            jrep.point(std::move(jpt));
        }
    }
    std::cout << "(fair share is 25% per VM; shares below 100% "
                 "column sums are free/other lines)\n";
    jrep.write();
    return 0;
}
