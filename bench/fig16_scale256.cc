/**
 * @file
 * fig16_scale256: the consolidation study replayed at 128 and 256
 * cores with over-committed schedules (schema consim.bench.v1).
 *
 * The paper stops at a 16-core chip; the scale extension asks what
 * the same four-VM consolidation looks like when the chip grows to
 * 128 (16x8 mesh) and 256 (16x16 mesh) tiles and the hypervisor
 * over-commits it — every scale point schedules 1.5x as many VM
 * threads as cores, so each core multiplexes contexts on the
 * round-robin timeslice (see Core::enqueueContext). The bench
 * reports simulator throughput (simulated cycles per wall-second,
 * median-of-3) and aggregate guest progress per point; the CI perf
 * gate and EXPERIMENTS.md track these numbers across PRs.
 *
 * Knobs: CONSIM_SCALE_CYCLES (measurement window per point, default
 * 40000; warmup is half that).
 *
 * Output (one line on stdout):
 *   {"schema":"consim.bench.v1","bench":"fig16_scale256",
 *    "host_cpus":N,"cpu_model":"...","loadavg_1m":...,
 *    "timing_reps":3,
 *    "points":[{"cores":128,"mesh":"16x8","vm_threads":192,
 *               "sim_cycles":...,"sim_wall_s":...,
 *               "cycles_per_sec":...,"instructions":...,
 *               "transactions":...}, {"cores":256,...}]}
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/experiment.hh"
#include "core/mix.hh"

namespace
{

using namespace consim;

Cycle
scaleCycles()
{
    // Strict: a malformed CONSIM_SCALE_CYCLES is fatal, not silently
    // the default window (which would fake a perf regression/gain).
    const std::uint64_t v = envU64("CONSIM_SCALE_CYCLES", 0);
    return v ? v : 40'000;
}

struct ScalePoint
{
    int meshX;
    int meshY;
};

} // namespace

int
main()
{
    logging::setVerbose(false);
    const Cycle cycles = scaleCycles();
    constexpr int timingReps = 3;

    std::printf("{\"schema\":\"consim.bench.v1\","
                "\"bench\":\"fig16_scale256\",");
    benchutil::printHostMeta();
    std::printf(",\"timing_reps\":%d,\"points\":[", timingReps);

    const std::vector<ScalePoint> points = {{16, 8}, {16, 16}};
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const int cores = points[pi].meshX * points[pi].meshY;
        // 1.5x over-commit, split evenly over the mix's four VMs.
        const int per_vm = cores * 3 / 2 / 4;
        RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                                  SchedPolicy::Affinity,
                                  SharingDegree::Shared16);
        cfg.machine.meshX = points[pi].meshX;
        cfg.machine.meshY = points[pi].meshY;
        cfg.vmThreads = {per_vm, per_vm, per_vm, per_vm};
        cfg.seed = 13;
        cfg.warmupCycles = cycles / 2;
        cfg.measureCycles = cycles;
        cfg.runJobs = 1;

        const RunResult result = runExperiment(cfg);
        const double wall = benchutil::medianWall(
            timingReps, [&] { (void)runExperiment(cfg); });
        const Cycle simulated = cfg.warmupCycles + cfg.measureCycles;
        const double cps =
            wall > 0.0 ? static_cast<double>(simulated) / wall : 0.0;

        unsigned long long instr = 0, txns = 0;
        for (const auto &vm : result.vms) {
            instr += vm.instructions;
            txns += vm.transactions;
        }
        std::printf(
            "%s{\"cores\":%d,\"mesh\":\"%dx%d\",\"vm_threads\":%d,"
            "\"sim_cycles\":%llu,\"sim_wall_s\":%.3f,"
            "\"cycles_per_sec\":%.0f,\"instructions\":%llu,"
            "\"transactions\":%llu}",
            pi ? "," : "", cores, points[pi].meshX, points[pi].meshY,
            4 * per_vm, static_cast<unsigned long long>(simulated),
            wall, cps, instr, txns);
    }
    std::printf("]}\n");
    return 0;
}
