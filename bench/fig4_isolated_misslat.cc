/**
 * @file
 * Reproduces Fig. 4: average miss latencies (cycles from a miss at
 * the last private level to its fill) of each workload in isolation
 * for three cache configurations (fully shared, shared-4-way,
 * private) under both affinity and round-robin scheduling.
 *
 * Paper shape: affinity keeps communicating cores close, giving
 * faster dirty-block responses; configurations with more, smaller
 * caches serve a larger share of misses from nearby partitions.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout, "Fig 4: Isolated Workload Miss Latencies",
                "Figure 4 (average miss latency, cycles)",
                "c2c-heavy workloads (TPC-H) show the lowest "
                "latencies; capacity-bound workloads pay memory");
    JsonReport jrep("fig4", "Isolated Workload Miss Latencies",
                    JsonReport::pathFromArgs(argc, argv));

    struct Point
    {
        SharingDegree sharing;
        SchedPolicy policy;
        const char *label;
    };
    const Point points[] = {
        {SharingDegree::Shared16, SchedPolicy::Affinity, "shared aff"},
        {SharingDegree::Shared16, SchedPolicy::RoundRobin, "shared rr"},
        {SharingDegree::Shared4, SchedPolicy::Affinity, "4-way aff"},
        {SharingDegree::Shared4, SchedPolicy::RoundRobin, "4-way rr"},
        {SharingDegree::Private, SchedPolicy::Affinity, "private aff"},
        {SharingDegree::Private, SchedPolicy::RoundRobin, "private rr"},
    };

    std::vector<std::string> headers = {"config"};
    for (const auto &p : WorkloadProfile::all())
        headers.push_back(p.name);
    TextTable table(headers);

    for (const auto &pt : points) {
        std::vector<std::string> row = {pt.label};
        for (const auto &prof : WorkloadProfile::all()) {
            const RunConfig cfg =
                isolationConfig(prof.kind, pt.policy, pt.sharing);
            const RunResult r = runAveraged(cfg, benchSeeds());
            row.push_back(
                TextTable::num(r.meanMissLatency(prof.kind), 1));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("label", pt.label);
                jpt.set("workload", prof.name);
                jpt.set("miss_latency_cycles",
                        r.meanMissLatency(prof.kind));
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(average cycles from L1 miss to fill; includes "
                 "L2, c2c transfers, and memory)\n";
    jrep.write();
    return 0;
}
