/**
 * @file
 * Dynamic-scheduling extension (beyond the paper): what online thread
 * migration buys over the paper's static hypervisor placements. Every
 * scenario runs under the four static policies (rr, affinity, aff-rr,
 * random) and the three dynamic migration policies (load-balance,
 * affinity-repair, contention-aware) layered on the default affinity
 * placement, sampling the stats registry at epoch boundaries.
 *
 * Scenarios: two Table IV consolidation mixes (one heterogeneous, one
 * homogeneous) as the steady-state check — the paper's workloads
 * have no phase changes a migration policy could exploit, so every
 * migration there is churn; the feedback loop (revert unhelpful
 * swaps, exponential backoff) must keep that churn tax bounded, and
 * affinity-repair, whose c2c trigger never fires on an intact
 * affinity placement, must exactly track the static baseline. The
 * third scenario is built for the opposite case: three 4-thread
 * Bursty VMs on a sharing-2 chip with a 2 MB L2 (256 KB
 * partitions). VM 0 holds a sustained burst phase whose per-thread
 * hot window (~160 KB) overflows a partition when two threads are
 * packed into it but fits when a thread has a partition to itself,
 * and four cores sit idle — so the contention-aware policy can beat
 * every static placement by spreading the burster's threads into
 * the idle partitions.
 *
 * The chip-level figure of merit is aggregate cycles per transaction
 * (measured cycles / total committed transactions, lower is better).
 *
 * Expected shape: on the steady mixes affinity-repair equals static
 * affinity and the migrating policies stay within a bounded churn
 * tax of it; at least one dynamic policy beats the best static
 * placement on the bursty mix.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace
{

using namespace consim;

/** One policy column: a static placement, optionally with a dynamic
 *  migration policy layered on top. */
struct PolicyPoint
{
    const char *label;
    SchedPolicy base;
    const char *dynSpec; ///< "" = static only
    bool isDynamic() const { return dynSpec[0] != '\0'; }
};

/** The seven policy columns every scenario runs under. The dynamic
 *  policies all start from the affinity placement (the library
 *  default), so their delta vs the "affinity" row is purely the
 *  migrations. */
const PolicyPoint kPolicies[] = {
    {"static:rr", SchedPolicy::RoundRobin, ""},
    {"static:affinity", SchedPolicy::Affinity, ""},
    {"static:aff-rr", SchedPolicy::AffinityRR, ""},
    {"static:random", SchedPolicy::Random, ""},
    {"load-balance", SchedPolicy::Affinity, "load-balance,epoch=25000"},
    {"affinity-repair", SchedPolicy::Affinity,
     "affinity-repair,epoch=25000"},
    {"contention-aware", SchedPolicy::Affinity,
     "contention-aware,epoch=25000"},
};
constexpr std::size_t kNumPolicies = std::size(kPolicies);

/** A consolidation scenario: either a Table IV mix or the bursty
 *  small-chip workload. */
struct Scenario
{
    const char *name;
    const char *mix; ///< Table IV name, or nullptr for the bursty mix
};

const Scenario kScenarios[] = {
    {"Mix 5 (hetero)", "Mix 5"},
    {"Mix A (homog)", "Mix A"},
    {"bursty x3", nullptr},
};
constexpr std::size_t kNumScenarios = std::size(kScenarios);

RunConfig
scenarioConfig(const Scenario &sc, const PolicyPoint &pp)
{
    RunConfig cfg;
    if (sc.mix != nullptr) {
        const Mix &mix = Mix::byName(sc.mix);
        cfg.workloads = mix.vms;
        cfg.vmThreads = mix.threads;
        cfg.warmupCycles = 200'000;
        cfg.measureCycles = 600'000;
    } else {
        // The bursty chip: a 2 MB L2 at sharing 2 gives eight
        // 256 KB partitions, so two packed burster threads
        // (~160 KB hot window each) overflow their partition while
        // one alone fits; three 4-thread Bursty VMs leave four
        // cores idle — headroom a migration policy can steer the
        // bursting VM's threads into.
        cfg.machine.sharing = sharingDegree(2);
        cfg.machine.l2TotalBytes = 2ull << 20;
        for (int i = 0; i < 3; ++i) {
            cfg.workloads.push_back(WorkloadKind::Bursty);
            cfg.vmThreads.push_back(4);
        }
        cfg.warmupCycles = 200'000;
        cfg.measureCycles = 1'200'000;
    }
    cfg.policy = pp.base;
    if (pp.isDynamic()) {
        std::string err;
        CONSIM_ASSERT(
            DynSchedConfig::parse(pp.dynSpec, cfg.dynSched, &err),
            "fig17 dyn spec: ", err);
    }
    return cfg;
}

/** Chip-level cycles per transaction (lower is better). */
double
aggregateCpt(const RunResult &r)
{
    std::uint64_t txns = 0;
    for (const auto &vm : r.vms)
        txns += vm.transactions;
    return txns ? static_cast<double>(r.measuredCycles) /
                      static_cast<double>(txns)
                : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    logging::setVerbose(false);

    printHeader(
        std::cout, "Fig 17: Dynamic vs Static Hypervisor Scheduling",
        "dynamic-scheduling extension (no paper counterpart; the "
        "paper's hypervisor binds threads once, before the run)",
        "bounded churn tax vs static affinity on the steady Table IV "
        "mixes; at least one dynamic policy beats the best static "
        "placement on the bursty mix");
    JsonReport jrep("fig17", "Dynamic vs Static Hypervisor Scheduling",
                    JsonReport::pathFromArgs(argc, argv));
    if (jrep.enabled()) {
        auto host = json::Value::object();
        const unsigned hw = std::thread::hardware_concurrency();
        host.set("host_cpus", hw ? hw : 1u);
        host.set("cpu_model", benchutil::cpuModel());
        host.set("loadavg_1m", benchutil::loadAvg1m());
        jrep.set("host", std::move(host));
    }

    // One parallel sweep over every (scenario, policy) point.
    std::vector<RunConfig> configs;
    for (std::size_t s = 0; s < kNumScenarios; ++s)
        for (std::size_t p = 0; p < kNumPolicies; ++p)
            configs.push_back(
                scenarioConfig(kScenarios[s], kPolicies[p]));

    const auto results = runSweepAveraged(configs, benchSeeds());

    // Per-scenario best static / best dynamic by aggregate cy/txn.
    double best_static[kNumScenarios];
    double best_dynamic[kNumScenarios];
    std::size_t best_static_p[kNumScenarios];
    std::size_t best_dynamic_p[kNumScenarios];

    TextTable table({"scenario", "policy", "agg cy/txn", "miss rate",
                     "migrations"});
    for (std::size_t s = 0; s < kNumScenarios; ++s) {
        best_static[s] = best_dynamic[s] = 0.0;
        best_static_p[s] = best_dynamic_p[s] = 0;
        for (std::size_t p = 0; p < kNumPolicies; ++p) {
            const std::size_t i = s * kNumPolicies + p;
            const RunResult &r = results[i];
            const double cpt = aggregateCpt(r);
            double miss = 0.0;
            for (const auto &vm : r.vms)
                miss += vm.missRate;
            miss /= static_cast<double>(r.vms.size());
            double &best = kPolicies[p].isDynamic() ? best_dynamic[s]
                                                    : best_static[s];
            std::size_t &best_p = kPolicies[p].isDynamic()
                                      ? best_dynamic_p[s]
                                      : best_static_p[s];
            if (best == 0.0 || cpt < best) {
                best = cpt;
                best_p = p;
            }
            table.addRow({kScenarios[s].name, kPolicies[p].label,
                          TextTable::num(cpt, 1),
                          TextTable::pct(miss),
                          std::to_string(r.dynMigrations)});
            if (jrep.enabled()) {
                auto jpt = runResultJson(configs[i], r);
                jpt.set("scenario", kScenarios[s].name);
                jpt.set("sched_point", kPolicies[p].label);
                jpt.set("agg_cycles_per_txn", cpt);
                jrep.point(std::move(jpt));
            }
        }
    }
    table.print(std::cout);

    // The acceptance gate lives on the bursty scenario (the last
    // one): a phase-changing workload is where migration must win.
    const std::size_t sb = kNumScenarios - 1;
    const bool dyn_wins = best_dynamic[sb] > 0.0 &&
                          best_dynamic[sb] < best_static[sb];
    std::cout << "\nbursty mix: best dynamic ("
              << kPolicies[best_dynamic_p[sb]].label << ") "
              << TextTable::num(best_dynamic[sb], 1)
              << " cy/txn vs best static ("
              << kPolicies[best_static_p[sb]].label << ") "
              << TextTable::num(best_static[sb], 1) << " : "
              << (dyn_wins ? "dynamic wins" : "VIOLATED") << "\n";
    if (jrep.enabled()) {
        auto summary = json::Value::object();
        summary.set("bursty_best_static", best_static[sb]);
        summary.set("bursty_best_static_policy",
                    kPolicies[best_static_p[sb]].label);
        summary.set("bursty_best_dynamic", best_dynamic[sb]);
        summary.set("bursty_best_dynamic_policy",
                    kPolicies[best_dynamic_p[sb]].label);
        summary.set("dynamic_beats_static", dyn_wins);
        jrep.set("summary", std::move(summary));
    }
    jrep.write();
    return 0;
}
