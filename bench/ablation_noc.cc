/**
 * @file
 * Interconnect ablation: the flit-level 2-D mesh vs an idealized
 * fixed-latency network, across scheduling policies. Isolates how
 * much of the scheduling-policy gap comes from interconnect
 * congestion and distance rather than cache behaviour.
 *
 * The paper observes that round-robin placement spreads traffic and
 * achieves ~20% lower interconnect latency than affinity for TPC-W;
 * with an ideal network that congestion component disappears.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout, "Ablation: mesh vs ideal interconnect",
                "DESIGN.md ablation index; paper SS V-A interconnect "
                "latency discussion",
                "the RR-vs-affinity network-latency gap exists only "
                "on the real mesh");
    JsonReport jrep("ablation_noc", "Mesh vs ideal interconnect",
                    JsonReport::pathFromArgs(argc, argv));

    TextTable table({"workload/mix", "network", "policy",
                     "net latency (cy)", "miss lat (cy)",
                     "cycles/txn"});

    struct Case
    {
        const char *label;
        RunConfig cfg;
        WorkloadKind focus;
    };
    const Case cases[] = {
        {"TPC-W isolated 4-way",
         isolationConfig(WorkloadKind::TpcW, SchedPolicy::Affinity,
                         SharingDegree::Shared4),
         WorkloadKind::TpcW},
        {"Mix C (4x SPECjbb) 4-way",
         mixConfig(Mix::byName("Mix C"), SchedPolicy::Affinity,
                   SharingDegree::Shared4),
         WorkloadKind::SpecJbb},
    };

    for (const auto &c : cases) {
        for (bool ideal : {false, true}) {
            for (auto policy :
                 {SchedPolicy::Affinity, SchedPolicy::RoundRobin}) {
                RunConfig cfg = c.cfg;
                cfg.machine.idealNoc = ideal;
                cfg.policy = policy;
                const RunResult r = runAveraged(cfg, benchSeeds());
                table.addRow(
                    {c.label, ideal ? "ideal" : "mesh",
                     toString(policy),
                     TextTable::num(r.netAvgLatency, 1),
                     TextTable::num(r.meanMissLatency(c.focus), 1),
                     TextTable::num(r.meanCyclesPerTxn(c.focus), 0)});
                if (jrep.enabled()) {
                    auto jpt = runResultJson(cfg, r);
                    jpt.set("label", c.label);
                    jpt.set("network", ideal ? "ideal" : "mesh");
                    jrep.point(std::move(jpt));
                }
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\n(ideal = fixed-latency, infinite-bandwidth "
                 "network; mesh = 4x4 VC wormhole mesh)\n";
    jrep.write();
    return 0;
}
