/**
 * @file
 * Reproduces Fig. 7: LLC miss rates of the homogeneous mixes
 * (shared-4-way) relative to the workloads run in isolation with the
 * fully-shared L2.
 *
 * Paper shape: every workload's miss rate rises when four instances
 * compete for the same 16 MB; the increase accounts for the latency
 * growth of Fig. 6 and spills pressure into the interconnect and
 * memory controllers.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;
    logging::setVerbose(false);

    printHeader(std::cout,
                "Fig 7: Homogeneous Mix Miss Rates by Policy",
                "Figure 7 (LLC miss rate relative to isolation)",
                "all workloads miss more under consolidation; "
                "affinity suffers least");
    JsonReport jrep("fig7", "Homogeneous Mix Miss Rates by Policy",
                    JsonReport::pathFromArgs(argc, argv));

    const SchedPolicy policies[] = {
        SchedPolicy::RoundRobin, SchedPolicy::Affinity,
        SchedPolicy::AffinityRR, SchedPolicy::Random};

    std::vector<std::string> headers = {"mix"};
    for (auto p : policies)
        headers.push_back(toString(p));
    TextTable table(headers);

    for (const auto &mix : Mix::homogeneous()) {
        const WorkloadKind kind = mix.vms.front();
        const auto &base =
            isolationBaseline(kind, SchedPolicy::Affinity,
                              SharingDegree::Shared16, benchSeeds());
        std::vector<std::string> row = {
            mix.name + " (" + toString(kind) + ")"};
        for (auto policy : policies) {
            const RunConfig cfg =
                mixConfig(mix, policy, SharingDegree::Shared4);
            const RunResult r = runAveraged(cfg, benchSeeds());
            const double norm =
                base.missRate > 0.0
                    ? r.meanMissRate(kind) / base.missRate
                    : 0.0;
            row.push_back(TextTable::num(norm, 2));
            if (jrep.enabled()) {
                auto jpt = runResultJson(cfg, r);
                jpt.set("mix", mix.name);
                jpt.set("policy", toString(policy));
                jpt.set("normalized_miss_rate", norm);
                jrep.point(std::move(jpt));
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(1.00 = isolation with 16MB fully-shared L2)\n";
    jrep.write();
    return 0;
}
