#include "common/check.hh"

#include <cstdlib>

namespace consim
{

const char *
toString(SimErrorKind k)
{
    switch (k) {
      case SimErrorKind::Invariant:
        return "invariant";
      case SimErrorKind::Watchdog:
        return "watchdog";
      case SimErrorKind::Deadline:
        return "deadline";
    }
    return "?";
}

namespace check
{

namespace
{

int
levelFromEnv()
{
    if (const char *v = std::getenv("CONSIM_CHECK")) {
        Level l;
        if (parseLevel(v, l))
            return static_cast<int>(l);
        CONSIM_WARN("CONSIM_CHECK='", v,
                    "' is not off|basic|full; checks stay off");
    }
    return static_cast<int>(Level::Off);
}

} // namespace

std::atomic<int> &
levelStorage()
{
    static std::atomic<int> storage{levelFromEnv()};
    return storage;
}

void
setLevel(Level l)
{
    levelStorage().store(static_cast<int>(l),
                         std::memory_order_relaxed);
}

bool
parseLevel(const std::string &s, Level &out)
{
    if (s == "off" || s == "0") {
        out = Level::Off;
        return true;
    }
    if (s == "basic" || s == "1") {
        out = Level::Basic;
        return true;
    }
    if (s == "full" || s == "2") {
        out = Level::Full;
        return true;
    }
    return false;
}

const char *
toString(Level l)
{
    switch (l) {
      case Level::Off:
        return "off";
      case Level::Basic:
        return "basic";
      case Level::Full:
        return "full";
    }
    return "?";
}

} // namespace check

namespace logging
{

void
invariantFailImpl(const char *file, int line, const std::string &msg)
{
    if (check::enabled(check::Level::Basic)) {
        throw SimError(SimErrorKind::Invariant,
                       format("assertion failed: ", msg, " at ", file,
                              ":", line));
    }
    panicImpl(file, line, format("assertion failed: ", msg));
}

} // namespace logging

} // namespace consim
