/**
 * @file
 * Width-parametric core/group bitsets for sharer and presence
 * tracking.
 *
 * The directory and the L2 banks historically tracked sharers in
 * 16-bit masks, which hard-wired the paper's 16-core chip into the
 * coherence layer. CoreSet replaces those masks with a set that is
 * parametric in width while staying as dense as a plain word for
 * every configuration up to 64 cores/groups:
 *
 *  - bits 0..63 live in an inline word (no allocation, ops compile
 *    to the same and/or/shift instructions the old masks used);
 *  - bits >= 64 spill into a heap-allocated word vector, so 128- and
 *    256-core meshes work without a separate type.
 *
 * Sets auto-grow on set(): callers never declare a width up front,
 * and a default-constructed CoreSet is the empty set. This keeps
 * sizeof(CoreSet) at two pointers, which matters because DirEntry is
 * allocated once per block for every VM footprint (~1M entries/VM).
 *
 * Semantics are pure value semantics: copies are deep, equality
 * ignores trailing zero words, and word I/O (words()/fromWords())
 * gives checkpoints a stable, width-independent serialization.
 */

#ifndef CONSIM_COMMON_CORESET_HH
#define CONSIM_COMMON_CORESET_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace consim
{

/** Dynamically-sized bitset over core (or group) indices. */
class CoreSet
{
  public:
    CoreSet() = default;

    CoreSet(const CoreSet &o) : w0_(o.w0_)
    {
        if (o.ext_)
            ext_ = new std::vector<std::uint64_t>(*o.ext_);
    }

    CoreSet(CoreSet &&o) noexcept : w0_(o.w0_), ext_(o.ext_)
    {
        o.w0_ = 0;
        o.ext_ = nullptr;
    }

    CoreSet &
    operator=(const CoreSet &o)
    {
        if (this != &o) {
            CoreSet tmp(o);
            swap(tmp);
        }
        return *this;
    }

    CoreSet &
    operator=(CoreSet &&o) noexcept
    {
        swap(o);
        return *this;
    }

    ~CoreSet() { delete ext_; }

    void
    swap(CoreSet &o) noexcept
    {
        std::swap(w0_, o.w0_);
        std::swap(ext_, o.ext_);
    }

    /** @return the set containing only @p idx. */
    static CoreSet
    single(int idx)
    {
        CoreSet s;
        s.set(idx);
        return s;
    }

    /** Make this set exactly { @p idx } in place. Unlike assigning
     *  single(idx), spilled storage is reused, not reallocated. */
    void
    assignSingle(int idx)
    {
        reset();
        set(idx);
    }

    /** Add @p idx to the set (grows storage as needed). */
    void
    set(int idx)
    {
        CONSIM_ASSERT(idx >= 0, "CoreSet::set: negative index ", idx);
        if (idx < 64) {
            w0_ |= std::uint64_t(1) << idx;
            return;
        }
        const std::size_t w = static_cast<std::size_t>(idx) / 64;
        if (!ext_)
            ext_ = new std::vector<std::uint64_t>();
        if (ext_->size() < w)
            ext_->resize(w, 0);
        (*ext_)[w - 1] |= std::uint64_t(1) << (idx % 64);
    }

    /** Remove @p idx from the set (no-op when absent). */
    void
    clear(int idx)
    {
        CONSIM_ASSERT(idx >= 0, "CoreSet::clear: negative index ", idx);
        if (idx < 64) {
            w0_ &= ~(std::uint64_t(1) << idx);
            return;
        }
        const std::size_t w = static_cast<std::size_t>(idx) / 64;
        if (ext_ && w <= ext_->size())
            (*ext_)[w - 1] &= ~(std::uint64_t(1) << (idx % 64));
    }

    /** @return true iff @p idx is in the set. */
    bool
    test(int idx) const
    {
        if (idx < 0)
            return false;
        if (idx < 64)
            return (w0_ >> idx) & 1;
        const std::size_t w = static_cast<std::size_t>(idx) / 64;
        if (!ext_ || w > ext_->size())
            return false;
        return ((*ext_)[w - 1] >> (idx % 64)) & 1;
    }

    /** Remove every member. Keeps any spilled storage for reuse. */
    void
    reset()
    {
        w0_ = 0;
        if (ext_)
            for (std::uint64_t &w : *ext_)
                w = 0;
    }

    /** @return true iff the set is non-empty. */
    bool
    any() const
    {
        if (w0_)
            return true;
        if (ext_)
            for (std::uint64_t w : *ext_)
                if (w)
                    return true;
        return false;
    }

    /** @return true iff the set is empty. */
    bool none() const { return !any(); }

    /** @return number of members. */
    int
    count() const
    {
        int n = popCount(w0_);
        if (ext_)
            for (std::uint64_t w : *ext_)
                n += popCount(w);
        return n;
    }

    /** @return lowest member index, or -1 when empty. */
    int
    findFirst() const
    {
        if (w0_)
            return lowestSetBit(w0_);
        if (ext_) {
            for (std::size_t i = 0; i < ext_->size(); ++i) {
                if ((*ext_)[i])
                    return static_cast<int>((i + 1) * 64) +
                           lowestSetBit((*ext_)[i]);
            }
        }
        return -1;
    }

    /** @return true iff the set is exactly { @p idx }. */
    bool
    isExactly(int idx) const
    {
        return test(idx) && count() == 1;
    }

    /** Call @p f(int idx) for every member, ascending. */
    template <typename F>
    void
    forEachSet(F &&f) const
    {
        for (std::uint64_t w = w0_; w;) {
            const int b = lowestSetBit(w);
            f(b);
            w &= w - 1;
        }
        if (ext_) {
            for (std::size_t i = 0; i < ext_->size(); ++i) {
                for (std::uint64_t w = (*ext_)[i]; w;) {
                    const int b = lowestSetBit(w);
                    f(static_cast<int>((i + 1) * 64) + b);
                    w &= w - 1;
                }
            }
        }
    }

    /** Equality over members (trailing zero words are irrelevant). */
    bool
    operator==(const CoreSet &o) const
    {
        if (w0_ != o.w0_)
            return false;
        const std::size_t na = ext_ ? ext_->size() : 0;
        const std::size_t nb = o.ext_ ? o.ext_->size() : 0;
        for (std::size_t i = 0; i < (na > nb ? na : nb); ++i) {
            const std::uint64_t a = i < na ? (*ext_)[i] : 0;
            const std::uint64_t b = i < nb ? (*o.ext_)[i] : 0;
            if (a != b)
                return false;
        }
        return true;
    }

    bool operator!=(const CoreSet &o) const { return !(*this == o); }

    /**
     * @return the set as little-endian 64-bit words with trailing
     * zero words trimmed (empty vector for the empty set). Stable
     * across widths, so checkpoints serialize it directly.
     */
    std::vector<std::uint64_t>
    words() const
    {
        std::vector<std::uint64_t> out;
        out.push_back(w0_);
        if (ext_)
            for (std::uint64_t w : *ext_)
                out.push_back(w);
        while (!out.empty() && out.back() == 0)
            out.pop_back();
        return out;
    }

    /** Rebuild a set from words() output. */
    static CoreSet
    fromWords(const std::vector<std::uint64_t> &words)
    {
        CoreSet s;
        if (!words.empty())
            s.w0_ = words[0];
        if (words.size() > 1) {
            s.ext_ = new std::vector<std::uint64_t>(words.begin() + 1,
                                                    words.end());
        }
        return s;
    }

  private:
    std::uint64_t w0_ = 0;                   ///< members 0..63
    std::vector<std::uint64_t> *ext_ = nullptr; ///< members 64.. (rare)
};

/** Sharer sets are indexed by GroupId; same representation. */
using GroupSet = CoreSet;

} // namespace consim

#endif // CONSIM_COMMON_CORESET_HH
