/**
 * @file
 * Plain-text table rendering for the benchmark harness. Every
 * table/figure bench prints its rows through TextTable so the output
 * format (aligned columns, optional normalization) is uniform and easy
 * to diff against EXPERIMENTS.md.
 */

#ifndef CONSIM_COMMON_TABLE_HH
#define CONSIM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace consim
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** @param headers column titles, defining the column count. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with column alignment to the stream. */
    void print(std::ostream &os) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

    /** Format a percentage (0.153 -> "15.3%"). */
    static std::string pct(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row = separator
};

} // namespace consim

#endif // CONSIM_COMMON_TABLE_HH
