/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * random scheduling, random replacement) draws from instances of Rng so
 * that every simulation is exactly reproducible from its seed. The
 * generator is xoshiro256** (public domain, Blackman & Vigna), chosen
 * for speed and quality; <random> engines are avoided because their
 * distributions are not bit-reproducible across standard libraries.
 */

#ifndef CONSIM_COMMON_RNG_HH
#define CONSIM_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"

namespace consim
{

/** Small, fast, reproducible PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so any 64-bit seed is usable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        CONSIM_ASSERT(bound > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        CONSIM_ASSERT(lo <= hi, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(c[i - 1], c[j]);
        }
    }

    /** Raw generator state (checkpointing). */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore raw generator state (checkpointing). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace consim

#endif // CONSIM_COMMON_RNG_HH
