/**
 * @file
 * Global allocation counter.
 *
 * The library replaces the global operator new/delete pair with
 * malloc/free wrappers that bump a relaxed atomic counter per
 * allocation. The hot paths are engineered to be allocation-free in
 * steady state (pooled transaction tables, ring-buffered queues,
 * in-place sharer sets, small-buffer event closures); the counter is
 * how tests and benches *prove* that instead of assuming it. The
 * counter costs one relaxed atomic increment per allocation, which
 * is noise precisely because steady state performs none.
 *
 * Usage: snapshot allocCount() after warm-up, run the measure
 * window, and assert the delta is zero.
 */

#ifndef CONSIM_COMMON_ALLOC_HOOK_HH
#define CONSIM_COMMON_ALLOC_HOOK_HH

#include <cstdint>

namespace consim
{

/** @return global operator-new invocations since process start. */
std::uint64_t allocCount();

/**
 * Debug tripwire: while armed, the next few allocations dump their
 * call stacks to stderr (raw addresses — resolve with addr2line).
 * Arm it after warmup to find whatever broke a zero-allocation
 * window.
 */
void allocTrap(bool on);

} // namespace consim

#endif // CONSIM_COMMON_ALLOC_HOOK_HH
