/**
 * @file
 * Hardening layer core: recoverable simulation errors and runtime
 * check levels.
 *
 * Philosophy: a production sweep service must contain failures, not
 * die of them. Three pieces cooperate:
 *
 *  - SimError: a recoverable exception carrying a machine-readable
 *    kind and (optionally) a `consim.diag.v1` JSON dump. One wedged
 *    simulation point throws; the sweep engine catches, retries, and
 *    salvages the rest of the batch.
 *
 *  - Check levels (CONSIM_CHECK env / setCheckLevel):
 *      off   — seed behaviour: invariant violations abort the process
 *              (CONSIM_ASSERT panics), no extra checking anywhere.
 *      basic — CONSIM_ASSERT violations throw SimError instead of
 *              aborting, so one bad point cannot take down a fleet of
 *              sweep workers.
 *      full  — basic, plus cross-component audits at measurement
 *              window boundaries: directory/L1/L2 sharer-state
 *              consistency, NoC VC credit/flit conservation, and
 *              stuck-transaction (MSHR leak) detection.
 *
 *  - CONSIM_CHECK_ACTIVE(level): the guard every checker call site
 *    sits behind. Compiling with -DCONSIM_NO_CHECKS turns the guard
 *    into a literal `false`, so checker code is dead-stripped and the
 *    hot path carries zero cost; otherwise it is a single relaxed
 *    atomic load, paid only at window boundaries, never per cycle.
 */

#ifndef CONSIM_COMMON_CHECK_HH
#define CONSIM_COMMON_CHECK_HH

#include <atomic>
#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace consim
{

/** What went wrong, machine-readable (serialized into sweep.v2). */
enum class SimErrorKind
{
    Invariant, ///< a CONSIM_ASSERT / checker audit failed
    Watchdog,  ///< forward-progress watchdog detected a stall
    Deadline,  ///< per-point simulated-cycle deadline exceeded
};

/** @return stable lower-case tag ("invariant", "watchdog", ...). */
const char *toString(SimErrorKind k);

/**
 * Recoverable simulation failure. Thrown instead of aborting when the
 * check level is basic or above (and always by the watchdog/deadline,
 * which exist precisely to convert hangs into reportable errors).
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &msg,
             std::string diag = "")
        : std::runtime_error(msg), kind_(kind), diag_(std::move(diag))
    {
    }

    SimErrorKind kind() const { return kind_; }

    /** `consim.diag.v1` JSON text captured at failure (may be ""). */
    const std::string &diag() const { return diag_; }

    /** Attach the most recent pre-trip checkpoint (may be ""). */
    void setCkpt(std::string ckpt) { ckpt_ = std::move(ckpt); }

    /** `consim.ckpt.v5` JSON text of the last snapshot before the
     *  failure ("" when periodic snapshotting was off). */
    const std::string &ckpt() const { return ckpt_; }

  private:
    SimErrorKind kind_;
    std::string diag_;
    std::string ckpt_;
};

namespace check
{

/** Runtime checking intensity; see file header. */
enum class Level : int
{
    Off = 0,
    Basic = 1,
    Full = 2,
};

/** Cached level; initialized from CONSIM_CHECK on first use. */
std::atomic<int> &levelStorage();

/** @return the current check level. */
inline Level
level()
{
    return static_cast<Level>(
        levelStorage().load(std::memory_order_relaxed));
}

/** Override the level (tests, tools; also wins over the env). */
void setLevel(Level l);

/** Parse "off" | "basic" | "full" (also 0/1/2); false on garbage. */
bool parseLevel(const std::string &s, Level &out);

/** @return human-readable level name. */
const char *toString(Level l);

/** @return true when checking at @p min or stronger is active. */
inline bool
enabled(Level min)
{
    return level() >= min;
}

} // namespace check

} // namespace consim

/**
 * Guard for checker call sites. `CONSIM_CHECK_ACTIVE(Full)` reads the
 * runtime level; building with -DCONSIM_NO_CHECKS compiles every
 * guarded block out entirely.
 */
#ifdef CONSIM_NO_CHECKS
#define CONSIM_CHECK_ACTIVE(lvl) (false)
#else
#define CONSIM_CHECK_ACTIVE(lvl)                                             \
    (::consim::check::enabled(::consim::check::Level::lvl))
#endif

/**
 * Report a checker audit failure: always throws SimError (checkers
 * only run in checked mode, where recoverability is the point).
 */
#define CONSIM_CHECK_FAIL(...)                                               \
    throw ::consim::SimError(                                                \
        ::consim::SimErrorKind::Invariant,                                   \
        ::consim::logging::format(__VA_ARGS__, " at ", __FILE__, ":",        \
                                  __LINE__))

#endif // CONSIM_COMMON_CHECK_HH
