/**
 * @file
 * Lightweight statistics package: named scalar counters, running
 * averages, and fixed-bucket histograms, grouped per component and
 * dumpable as text. Modelled loosely on the gem5 stats package but
 * much smaller: the consolidation framework extracts most results
 * through typed accessors rather than by parsing dumps.
 */

#ifndef CONSIM_COMMON_STATS_HH
#define CONSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace consim
{

namespace stats
{

/** A named monotonically increasing scalar. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Sum + count, reporting a mean. */
class Average
{
  public:
    Average() = default;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    /** @return mean of all samples, or 0 when empty. */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-width-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets  number of regular buckets; samples at or
     *                     beyond bucket_width*num_buckets land in the
     *                     overflow bucket.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size() - 1)
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /** @return sample count in bucket i (last bucket = overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }

    /**
     * @return value below which the given fraction of samples fall
     * (resolved to bucket upper edges); 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        sum_ = 0;
        count_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A registry of named statistics owned by one component, supporting
 * text dumps and bulk reset. Components embed a Group and register
 * their stats in their constructor; registration stores pointers, so
 * a Group must not outlive its members (embed them side by side).
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void add(const std::string &stat_name, Counter *c);
    void add(const std::string &stat_name, Average *a);
    void add(const std::string &stat_name, Histogram *h);

    /** Reset every registered statistic. */
    void resetAll();

    /** Write "group.stat value" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Average *> averages_;
    std::map<std::string, Histogram *> histograms_;
};

} // namespace stats

} // namespace consim

#endif // CONSIM_COMMON_STATS_HH
