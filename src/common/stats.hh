/**
 * @file
 * Lightweight statistics package: named scalar counters, running
 * averages, and fixed-bucket histograms, registered into a
 * hierarchical Group tree. Modelled loosely on the gem5 stats
 * package but much smaller.
 *
 * Groups nest: every component embeds a Group, the System roots them
 * all under "sys", and a stat's full name is the dot-joined path of
 * its ancestors (e.g. "sys.tile03.l1.misses"). The whole tree
 * supports bulk reset, typed visitation, text dumps, JSON export
 * (common/json.hh), and typed path lookup — RunResult extraction
 * reads the registry rather than reaching into component structs.
 */

#ifndef CONSIM_COMMON_STATS_HH
#define CONSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

namespace consim
{

namespace stats
{

/** A named monotonically increasing scalar. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Restore a checkpointed value. */
    void restore(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Sum + count, reporting a mean. */
class Average
{
  public:
    Average() = default;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    /** @return mean of all samples, or 0 when empty. */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    /** Restore checkpointed raw state. */
    void
    restore(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-width-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (must be > 0)
     * @param num_buckets  number of regular buckets; samples at or
     *                     beyond bucket_width*num_buckets land in the
     *                     overflow bucket.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {
        CONSIM_ASSERT(bucket_width > 0,
                      "histogram bucket width must be positive");
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size() - 1)
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t rawSum() const { return sum_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /** @return sample count in bucket i (last bucket = overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }

    /**
     * @return value below which the given fraction of samples fall,
     * resolved to bucket upper edges (the overflow bucket reports
     * the tracked max()); 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        sum_ = 0;
        count_ = 0;
        max_ = 0;
    }

    /** Restore checkpointed raw state; bucket count must match the
     *  constructed shape (shape is config, not state). */
    void
    restore(const std::vector<std::uint64_t> &buckets,
            std::uint64_t sum, std::uint64_t count, std::uint64_t max)
    {
        CONSIM_ASSERT(buckets.size() == buckets_.size(),
                      "histogram shape mismatch on restore");
        buckets_ = buckets;
        sum_ = sum;
        count_ = count;
        max_ = max;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A node of the hierarchical statistics registry. Components embed a
 * Group, register their stats in their constructor, and the owner of
 * the component tree links the Groups into one tree (System roots
 * everything at "sys"). Registration stores pointers, so a Group
 * must not outlive its members (embed them side by side), and parent
 * Groups must not be destroyed before their children are done being
 * queried (a destroyed Group detaches itself from both sides).
 */
class Group
{
  public:
    /**
     * @param name   node name; full names dot-join ancestors
     * @param parent optional parent to attach to immediately
     */
    explicit Group(std::string name, Group *parent = nullptr);
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register a stat; duplicate names in one Group are a bug. */
    void add(const std::string &stat_name, Counter *c);
    void add(const std::string &stat_name, Average *a);
    void add(const std::string &stat_name, Histogram *h);

    /**
     * Attach @p child under this Group. A child already attached
     * elsewhere is re-parented (components can be wired into a fresh
     * System's tree); name collisions with stats or other children
     * are a bug.
     */
    void addChild(Group *child);

    const std::string &name() const { return name_; }
    Group *parent() const { return parent_; }
    const std::vector<Group *> &children() const { return children_; }

    /** @return dot-joined path from the root, e.g. "sys.tile03.l1". */
    std::string fullName() const;

    /** Reset every stat in this subtree. */
    void resetAll();

    /** Typed visitation over a subtree (preorder). */
    struct Visitor
    {
        virtual ~Visitor() = default;
        /** The path is the full dotted name from the accept() root. */
        virtual void counter(const std::string &, const Counter &) {}
        virtual void average(const std::string &, const Average &) {}
        virtual void histogram(const std::string &, const Histogram &)
        {}
    };

    /** Visit every stat in this subtree with its full dotted name. */
    void accept(Visitor &v) const;

    /** Write "full.dotted.name value" lines for the whole subtree. */
    void dump(std::ostream &os) const;

    /**
     * JSON export: nested objects mirroring the Group tree; counters
     * become integers, averages {mean,count} objects, histograms
     * {mean,max,count,p50,p95} summaries.
     */
    json::Value toJson() const;

    /**
     * Lossless raw dump of every stat in the subtree (toJson() is a
     * summary — means and percentiles — and cannot be restored from).
     * Used by the checkpoint layer; restoreState() walks the same
     * tree and requires identical structure (same registration order,
     * i.e. the same machine configuration).
     */
    json::Value saveState() const;
    void restoreState(const json::Value &v);

    // --- typed path lookup (paths relative to this Group, i.e.
    //     excluding its own name: root.findCounter("tile03.l1.misses")) ---
    const Group *findGroup(std::string_view path) const;
    const Counter *findCounter(std::string_view path) const;
    const Average *findAverage(std::string_view path) const;
    const Histogram *findHistogram(std::string_view path) const;

  private:
    enum class StatKind
    {
        Counter,
        Average,
        Histogram,
    };

    struct StatRef
    {
        StatKind kind;
        void *ptr;
    };

    void addStat(const std::string &stat_name, StatKind kind, void *p);
    const StatRef *findStat(std::string_view path, StatKind kind) const;
    void accept(Visitor &v, const std::string &prefix) const;

    std::string name_;
    Group *parent_ = nullptr;
    std::vector<Group *> children_;
    std::map<std::string, StatRef, std::less<>> stats_;
};

} // namespace stats

/** Zero-padded component name, e.g. indexedName("tile", 3) = "tile03". */
std::string indexedName(const char *prefix, int index, int width = 2);

} // namespace consim

#endif // CONSIM_COMMON_STATS_HH
