#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace consim
{

namespace stats
{

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= target)
            return (i + 1) * width_;
    }
    return buckets_.size() * width_;
}

void
Group::add(const std::string &stat_name, Counter *c)
{
    CONSIM_ASSERT(c != nullptr, "null counter registered in ", name_);
    counters_[stat_name] = c;
}

void
Group::add(const std::string &stat_name, Average *a)
{
    CONSIM_ASSERT(a != nullptr, "null average registered in ", name_);
    averages_[stat_name] = a;
}

void
Group::add(const std::string &stat_name, Histogram *h)
{
    CONSIM_ASSERT(h != nullptr, "null histogram registered in ", name_);
    histograms_[stat_name] = h;
}

void
Group::resetAll()
{
    for (auto &[k, c] : counters_)
        c->reset();
    for (auto &[k, a] : averages_)
        a->reset();
    for (auto &[k, h] : histograms_)
        h->reset();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[k, c] : counters_)
        os << name_ << "." << k << " " << c->value() << "\n";
    for (const auto &[k, a] : averages_) {
        os << name_ << "." << k << ".mean " << a->mean() << "\n";
        os << name_ << "." << k << ".count " << a->count() << "\n";
    }
    for (const auto &[k, h] : histograms_) {
        os << name_ << "." << k << ".mean " << h->mean() << "\n";
        os << name_ << "." << k << ".max " << h->max() << "\n";
        os << name_ << "." << k << ".count " << h->count() << "\n";
    }
}

} // namespace stats

} // namespace consim
