#include "common/stats.hh"

#include <algorithm>

namespace consim
{

namespace stats
{

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        // Empty buckets can't satisfy the target: without this,
        // p=0 would report bucket 0's edge even when no sample
        // landed there.
        if (buckets_[i] == 0)
            continue;
        running += buckets_[i];
        if (running >= target) {
            // The overflow bucket has no meaningful upper edge;
            // report the largest sample actually seen.
            if (i + 1 == buckets_.size())
                return max_;
            return (i + 1) * width_;
        }
    }
    return max_;
}

// ---------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------

Group::Group(std::string name, Group *parent) : name_(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent_) {
        auto &siblings = parent_->children_;
        siblings.erase(
            std::remove(siblings.begin(), siblings.end(), this),
            siblings.end());
    }
    for (Group *c : children_)
        c->parent_ = nullptr;
}

void
Group::addStat(const std::string &stat_name, StatKind kind, void *p)
{
    CONSIM_ASSERT(p != nullptr, "null stat registered in ", name_);
    for (const Group *c : children_) {
        CONSIM_ASSERT(c->name_ != stat_name, "stat '", stat_name,
                      "' in ", name_, " collides with a child group");
    }
    const bool inserted =
        stats_.emplace(stat_name, StatRef{kind, p}).second;
    CONSIM_ASSERT(inserted, "duplicate stat '", stat_name,
                  "' registered in group ", name_);
}

void
Group::add(const std::string &stat_name, Counter *c)
{
    addStat(stat_name, StatKind::Counter, c);
}

void
Group::add(const std::string &stat_name, Average *a)
{
    addStat(stat_name, StatKind::Average, a);
}

void
Group::add(const std::string &stat_name, Histogram *h)
{
    addStat(stat_name, StatKind::Histogram, h);
}

void
Group::addChild(Group *child)
{
    CONSIM_ASSERT(child != nullptr, "null child group under ", name_);
    CONSIM_ASSERT(child != this, "group ", name_, " can't own itself");
    CONSIM_ASSERT(stats_.find(child->name_) == stats_.end(),
                  "child group '", child->name_, "' in ", name_,
                  " collides with a stat");
    for (const Group *c : children_) {
        CONSIM_ASSERT(c->name_ != child->name_,
                      "duplicate child group '", child->name_,
                      "' under ", name_);
    }
    if (child->parent_) {
        auto &siblings = child->parent_->children_;
        siblings.erase(
            std::remove(siblings.begin(), siblings.end(), child),
            siblings.end());
    }
    child->parent_ = this;
    children_.push_back(child);
}

std::string
Group::fullName() const
{
    if (!parent_)
        return name_;
    return parent_->fullName() + "." + name_;
}

void
Group::resetAll()
{
    for (auto &[k, s] : stats_) {
        switch (s.kind) {
          case StatKind::Counter:
            static_cast<Counter *>(s.ptr)->reset();
            break;
          case StatKind::Average:
            static_cast<Average *>(s.ptr)->reset();
            break;
          case StatKind::Histogram:
            static_cast<Histogram *>(s.ptr)->reset();
            break;
        }
    }
    for (Group *c : children_)
        c->resetAll();
}

void
Group::accept(Visitor &v, const std::string &prefix) const
{
    for (const auto &[k, s] : stats_) {
        const std::string path = prefix + "." + k;
        switch (s.kind) {
          case StatKind::Counter:
            v.counter(path, *static_cast<const Counter *>(s.ptr));
            break;
          case StatKind::Average:
            v.average(path, *static_cast<const Average *>(s.ptr));
            break;
          case StatKind::Histogram:
            v.histogram(path, *static_cast<const Histogram *>(s.ptr));
            break;
        }
    }
    for (const Group *c : children_)
        c->accept(v, prefix + "." + c->name_);
}

void
Group::accept(Visitor &v) const
{
    accept(v, name_);
}

void
Group::dump(std::ostream &os) const
{
    struct Dumper : Visitor
    {
        explicit Dumper(std::ostream &out) : os(out) {}

        void
        counter(const std::string &path, const Counter &c) override
        {
            os << path << " " << c.value() << "\n";
        }

        void
        average(const std::string &path, const Average &a) override
        {
            os << path << ".mean " << a.mean() << "\n";
            os << path << ".count " << a.count() << "\n";
        }

        void
        histogram(const std::string &path, const Histogram &h) override
        {
            os << path << ".mean " << h.mean() << "\n";
            os << path << ".max " << h.max() << "\n";
            os << path << ".count " << h.count() << "\n";
        }

        std::ostream &os;
    } dumper(os);
    accept(dumper);
}

json::Value
Group::toJson() const
{
    json::Value node = json::Value::object();
    for (const auto &[k, s] : stats_) {
        switch (s.kind) {
          case StatKind::Counter:
            node.set(k, static_cast<const Counter *>(s.ptr)->value());
            break;
          case StatKind::Average: {
            const auto *a = static_cast<const Average *>(s.ptr);
            json::Value v = json::Value::object();
            v.set("mean", a->mean());
            v.set("count", a->count());
            node.set(k, std::move(v));
            break;
          }
          case StatKind::Histogram: {
            const auto *h = static_cast<const Histogram *>(s.ptr);
            json::Value v = json::Value::object();
            v.set("mean", h->mean());
            v.set("max", h->max());
            v.set("count", h->count());
            v.set("p50", h->percentile(0.5));
            v.set("p95", h->percentile(0.95));
            node.set(k, std::move(v));
            break;
          }
        }
    }
    for (const Group *c : children_)
        node.set(c->name_, c->toJson());
    return node;
}

json::Value
Group::saveState() const
{
    json::Value node = json::Value::object();
    json::Value sv = json::Value::object();
    for (const auto &[k, s] : stats_) {
        switch (s.kind) {
          case StatKind::Counter:
            sv.set(k, static_cast<const Counter *>(s.ptr)->value());
            break;
          case StatKind::Average: {
            const auto *a = static_cast<const Average *>(s.ptr);
            json::Value v = json::Value::object();
            v.set("sum", a->sum());
            v.set("count", a->count());
            sv.set(k, std::move(v));
            break;
          }
          case StatKind::Histogram: {
            const auto *h = static_cast<const Histogram *>(s.ptr);
            json::Value v = json::Value::object();
            json::Value b = json::Value::array();
            for (std::size_t i = 0; i < h->numBuckets(); ++i)
                b.push(h->bucket(i));
            v.set("buckets", std::move(b));
            v.set("sum", h->rawSum());
            v.set("count", h->count());
            v.set("max", h->max());
            sv.set(k, std::move(v));
            break;
          }
        }
    }
    node.set("stats", std::move(sv));
    json::Value cv = json::Value::object();
    for (const Group *c : children_)
        cv.set(c->name_, c->saveState());
    node.set("children", std::move(cv));
    return node;
}

void
Group::restoreState(const json::Value &v)
{
    const json::Value *sv = v.find("stats");
    CONSIM_ASSERT(sv != nullptr, "stat state missing for ", name_);
    for (auto &[k, s] : stats_) {
        const json::Value *e = sv->find(k);
        CONSIM_ASSERT(e != nullptr, "stat '", k, "' missing in saved "
                      "state for group ", name_);
        switch (s.kind) {
          case StatKind::Counter:
            static_cast<Counter *>(s.ptr)->restore(e->asUint());
            break;
          case StatKind::Average: {
            const json::Value *sum = e->find("sum");
            const json::Value *count = e->find("count");
            CONSIM_ASSERT(sum && count, "bad average state for ", k);
            static_cast<Average *>(s.ptr)->restore(sum->number(),
                                                   count->asUint());
            break;
          }
          case StatKind::Histogram: {
            const json::Value *b = e->find("buckets");
            const json::Value *sum = e->find("sum");
            const json::Value *count = e->find("count");
            const json::Value *max = e->find("max");
            CONSIM_ASSERT(b && sum && count && max,
                          "bad histogram state for ", k);
            std::vector<std::uint64_t> buckets;
            buckets.reserve(b->size());
            for (const auto &item : b->items())
                buckets.push_back(item.asUint());
            static_cast<Histogram *>(s.ptr)->restore(
                buckets, sum->asUint(), count->asUint(),
                max->asUint());
            break;
          }
        }
    }
    const json::Value *cv = v.find("children");
    CONSIM_ASSERT(cv != nullptr, "child state missing for ", name_);
    for (Group *c : children_) {
        const json::Value *e = cv->find(c->name_);
        CONSIM_ASSERT(e != nullptr, "group '", c->name_,
                      "' missing in saved state under ", name_);
        c->restoreState(*e);
    }
}

const Group *
Group::findGroup(std::string_view path) const
{
    const Group *g = this;
    while (!path.empty()) {
        const auto dot = path.find('.');
        const std::string_view head = path.substr(0, dot);
        const Group *next = nullptr;
        for (const Group *c : g->children_) {
            if (c->name_ == head) {
                next = c;
                break;
            }
        }
        if (!next)
            return nullptr;
        g = next;
        path = dot == std::string_view::npos ? std::string_view{}
                                             : path.substr(dot + 1);
    }
    return g;
}

const Group::StatRef *
Group::findStat(std::string_view path, StatKind kind) const
{
    const Group *g = this;
    std::string_view leaf = path;
    const auto dot = path.rfind('.');
    if (dot != std::string_view::npos) {
        g = findGroup(path.substr(0, dot));
        leaf = path.substr(dot + 1);
    }
    if (!g)
        return nullptr;
    const auto it = g->stats_.find(leaf);
    if (it == g->stats_.end() || it->second.kind != kind)
        return nullptr;
    return &it->second;
}

const Counter *
Group::findCounter(std::string_view path) const
{
    const StatRef *s = findStat(path, StatKind::Counter);
    return s ? static_cast<const Counter *>(s->ptr) : nullptr;
}

const Average *
Group::findAverage(std::string_view path) const
{
    const StatRef *s = findStat(path, StatKind::Average);
    return s ? static_cast<const Average *>(s->ptr) : nullptr;
}

const Histogram *
Group::findHistogram(std::string_view path) const
{
    const StatRef *s = findStat(path, StatKind::Histogram);
    return s ? static_cast<const Histogram *>(s->ptr) : nullptr;
}

} // namespace stats

std::string
indexedName(const char *prefix, int index, int width)
{
    std::string digits = std::to_string(index);
    if (static_cast<int>(digits.size()) < width)
        digits.insert(0, width - digits.size(), '0');
    return prefix + digits;
}

} // namespace consim
