/**
 * @file
 * Machine configuration for the consolidation CMP (paper Table III)
 * and the mapping from cores to L2 sharing groups.
 *
 * The chip is a 4x4 mesh of tiles; each tile holds one in-order core,
 * private L0/L1 caches, one bank of its group's L2 partition, and one
 * slice of the global directory. The aggregate L2 is 16 MB regardless
 * of sharing degree:
 *   - private:       16 groups x 1 MB
 *   - shared-2-way:   8 groups x 2 MB
 *   - shared-4-way:   4 groups x 4 MB
 *   - shared-8-way:   2 groups x 8 MB
 *   - fully shared:   1 group x 16 MB
 * Groups are geometrically contiguous on the mesh (pairs, quadrants,
 * halves) as depicted in Fig. 1 of the paper.
 */

#ifndef CONSIM_COMMON_CONFIG_HH
#define CONSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Number of cores sharing one last-level-cache partition. */
enum class SharingDegree : int
{
    Private = 1,
    Shared2 = 2,
    Shared4 = 4,
    Shared8 = 8,
    Shared16 = 16,
};

/** @return cores per group as an int. */
constexpr int
coresPerGroup(SharingDegree d)
{
    return static_cast<int>(d);
}

/** @return human-readable name, matching the paper's labels. */
inline std::string
toString(SharingDegree d)
{
    switch (d) {
      case SharingDegree::Private:
        return "private";
      case SharingDegree::Shared2:
        return "shared-2-way";
      case SharingDegree::Shared4:
        return "shared-4-way";
      case SharingDegree::Shared8:
        return "shared-8-way";
      case SharingDegree::Shared16:
        return "fully-shared";
    }
    return "?";
}

/** Hypervisor thread-to-core scheduling policy (paper §III-D). */
enum class SchedPolicy
{
    RoundRobin,  ///< spread each workload's threads across groups
    Affinity,    ///< pack each workload's threads into few groups
    AffinityRR,  ///< round robin with >=2 threads per group
    Random,      ///< seeded random placement (over-committed VM model)
};

/** @return human-readable name. */
inline std::string
toString(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::Affinity:
        return "affinity";
      case SchedPolicy::AffinityRR:
        return "aff-rr";
      case SchedPolicy::Random:
        return "random";
    }
    return "?";
}

/** Full machine configuration (defaults follow paper Table III). */
struct MachineConfig
{
    // --- chip geometry ---
    int meshX = 4;                 ///< mesh columns
    int meshY = 4;                 ///< mesh rows
    int numCores() const { return meshX * meshY; }

    // --- private cache hierarchy ---
    std::uint64_t l0Bytes = 8 * 1024;   ///< 8 KB L0, 1 cycle
    int l0Assoc = 2;
    int l0Latency = 1;
    std::uint64_t l1Bytes = 64 * 1024;  ///< 64 KB L1, 2 cycles
    int l1Assoc = 4;
    int l1Latency = 2;

    // --- last level cache ---
    std::uint64_t l2TotalBytes = 16 * 1024 * 1024; ///< 16 MB aggregate
    int l2Assoc = 8;
    int l2Latency = 6;
    SharingDegree sharing = SharingDegree::Shared4;

    // --- memory system ---
    int memLatency = 150;          ///< off-chip access latency (cycles)
    int numMemCtrls = 4;           ///< controllers at the mesh corners
    int memIssueInterval = 4;      ///< min cycles between MC accepts
    /** Reply latency when the block came up with the directory-state
     *  fetch (state and data live in the same DRAM region, so an
     *  I-state miss that already paid the directory fetch only pays
     *  a transfer cost, not a second full access). */
    int memOverlapLatency = 25;

    // --- global directory ---
    bool dirCacheEnabled = true;   ///< per-tile directory caches
    std::uint64_t dirCacheEntries = 8192; ///< entries per tile slice
    int dirCacheAssoc = 8;
    int dirLatency = 2;            ///< directory-cache hit latency
    bool cleanForwarding = true;   ///< sharer supplies clean data (c2c)

    // --- interconnect ---
    bool idealNoc = false;         ///< ablation: fixed-latency network
    int idealNocLatency = 8;       ///< per-message latency when ideal
    /** Intra-group L1<->bank traffic takes a flat on-partition path
     *  (the paper's constant 6-cycle L2 regardless of sharing
     *  degree). Disable to route it over the mesh (ablation). */
    bool flatIntraGroup = true;
    int intraGroupLatency = 3;     ///< flat per-message latency
    int flitBytes = 16;            ///< 64B data + header = 5 flits
    int vcsPerVnet = 2;            ///< virtual channels per vnet
    int vcBufferFlits = 4;         ///< buffer depth per VC
    int numVnets = 3;              ///< request / forward / response

    // --- L2 group topology helpers ---

    /** @return number of L2 sharing groups. */
    int
    numGroups() const
    {
        return numCores() / coresPerGroup(sharing);
    }

    /** @return bytes per L2 partition. */
    std::uint64_t
    l2PartitionBytes() const
    {
        return l2TotalBytes / static_cast<std::uint64_t>(numGroups());
    }

    /** @return the group a core belongs to (contiguous grouping). */
    GroupId
    groupOfCore(CoreId core) const
    {
        CONSIM_ASSERT(core >= 0 && core < numCores(), "bad core ", core);
        switch (sharing) {
          case SharingDegree::Private:
            return core;
          case SharingDegree::Shared2:
            // horizontally adjacent pairs
            return core / 2;
          case SharingDegree::Shared4: {
            // 2x2 quadrants on the 4x4 mesh
            const int x = core % meshX;
            const int y = core / meshX;
            return (y / 2) * 2 + (x / 2);
          }
          case SharingDegree::Shared8:
            // top half / bottom half
            return core / 8;
          case SharingDegree::Shared16:
            return 0;
        }
        return invalidGroup;
    }

    /** @return the member cores of a group, ascending. */
    std::vector<CoreId>
    coresOfGroup(GroupId g) const
    {
        std::vector<CoreId> members;
        for (CoreId c = 0; c < numCores(); ++c) {
            if (groupOfCore(c) == g)
                members.push_back(c);
        }
        CONSIM_ASSERT(!members.empty(), "empty group ", g);
        return members;
    }

    /** Validate structural constraints; fatal on user error. */
    void
    validate() const
    {
        if (!isPow2(l0Bytes) || !isPow2(l1Bytes) || !isPow2(l2TotalBytes))
            CONSIM_FATAL("cache sizes must be powers of two");
        if (meshX != 4 || meshY != 4) {
            if (sharing != SharingDegree::Private &&
                sharing != SharingDegree::Shared16) {
                CONSIM_FATAL("contiguous grouping is defined for the "
                             "4x4 mesh only");
            }
        }
        if (numCores() % coresPerGroup(sharing) != 0)
            CONSIM_FATAL("cores not divisible into groups");
        if (numMemCtrls < 1 || numMemCtrls > numCores())
            CONSIM_FATAL("bad number of memory controllers");
        // Scale-out guard rails: several structures are sized for the
        // paper's 16-core chip and fail subtly, not loudly, beyond it.
        // Refuse such configs here with the specific item to fix.
        if (coresPerGroup(sharing) > 16)
            CONSIM_FATAL("sharing degree ", coresPerGroup(sharing),
                         " exceeds 16: DirEntry::sharers and "
                         "L2CacheLine::presence are 16-bit per-group "
                         "core masks; widen them before scaling out");
        if (numGroups() > 16)
            CONSIM_FATAL(numGroups(), " L2 groups exceed 16: the "
                         "directory's 24-bit per-VM block span "
                         "(DirectoryStorage::vmSpanBits) and the "
                         "group-contiguity tables assume at most the "
                         "16-core chip's group count");
        if (meshX < 2 || meshY < 2)
            CONSIM_FATAL("mesh must be at least 2x2 (got ", meshX, "x",
                         meshY, "): memory controllers sit on the four "
                         "chip corners (System::mcTiles_), which "
                         "degenerate on a 1-wide mesh");
    }
};

} // namespace consim

#endif // CONSIM_COMMON_CONFIG_HH
