/**
 * @file
 * Machine configuration for the consolidation CMP and the mapping
 * from cores to L2 sharing groups.
 *
 * The chip is an X-by-Y mesh of tiles; each tile holds one in-order
 * core, private L0/L1 caches, one bank of its group's L2 partition,
 * and one slice of the global directory. The aggregate L2 capacity is
 * fixed regardless of sharing degree: N cores in groups of K give
 * N/K partitions of l2TotalBytes/(N/K) each.
 *
 * The default configuration is the paper's Table III machine — a
 * 16-core 4x4 mesh with a 16 MB aggregate L2, whose five sharing
 * degrees partition it as:
 *   - private:       16 groups x 1 MB
 *   - shared-2-way:   8 groups x 2 MB
 *   - shared-4-way:   4 groups x 4 MB
 *   - shared-8-way:   2 groups x 8 MB
 *   - fully shared:   1 group x 16 MB
 * Groups are geometrically contiguous rectangles on the mesh; at the
 * 4x4 default these are exactly the pairs, quadrants, and halves
 * depicted in Fig. 1 of the paper, and on larger meshes (8x4, 8x8,
 * 16x8, ...) the same rule yields contiguous gx-by-gy blocks.
 */

#ifndef CONSIM_COMMON_CONFIG_HH
#define CONSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/**
 * Number of cores sharing one last-level-cache partition.
 *
 * Parametric: any positive core count is a valid degree (construct
 * one with sharingDegree(n)); the enumerators name the paper's five
 * studied points. The int underlying type means arbitrary degrees
 * round-trip through static_cast unchanged.
 */
enum class SharingDegree : int
{
    Private = 1,
    Shared2 = 2,
    Shared4 = 4,
    Shared8 = 8,
    Shared16 = 16,
};

/** @return cores per group as an int. */
constexpr int
coresPerGroup(SharingDegree d)
{
    return static_cast<int>(d);
}

/** @return the degree with @p cores_per_group cores per partition. */
constexpr SharingDegree
sharingDegree(int cores_per_group)
{
    return static_cast<SharingDegree>(cores_per_group);
}

/** @return human-readable name, matching the paper's labels for the
 *  five studied degrees and "shared-N-way" for any other N. */
inline std::string
toString(SharingDegree d)
{
    const int n = coresPerGroup(d);
    if (n == 1)
        return "private";
    if (n == 16)
        return "fully-shared";
    return "shared-" + std::to_string(n) + "-way";
}

/** Hypervisor thread-to-core scheduling policy (paper §III-D). */
enum class SchedPolicy
{
    RoundRobin,  ///< spread each workload's threads across groups
    Affinity,    ///< pack each workload's threads into few groups
    AffinityRR,  ///< round robin with >=2 threads per group
    Random,      ///< seeded random placement (over-committed VM model)
};

/** @return human-readable name. */
inline std::string
toString(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::Affinity:
        return "affinity";
      case SchedPolicy::AffinityRR:
        return "aff-rr";
      case SchedPolicy::Random:
        return "random";
    }
    return "?";
}

/** Full machine configuration (defaults follow paper Table III). */
struct MachineConfig
{
    // --- chip geometry ---
    int meshX = 4;                 ///< mesh columns
    int meshY = 4;                 ///< mesh rows
    int numCores() const { return meshX * meshY; }

    // --- private cache hierarchy ---
    std::uint64_t l0Bytes = 8 * 1024;   ///< 8 KB L0, 1 cycle
    int l0Assoc = 2;
    int l0Latency = 1;
    std::uint64_t l1Bytes = 64 * 1024;  ///< 64 KB L1, 2 cycles
    int l1Assoc = 4;
    int l1Latency = 2;

    // --- last level cache ---
    std::uint64_t l2TotalBytes = 16 * 1024 * 1024; ///< 16 MB aggregate
    int l2Assoc = 8;
    int l2Latency = 6;
    SharingDegree sharing = SharingDegree::Shared4;

    // --- memory system ---
    int memLatency = 150;          ///< off-chip access latency (cycles)
    int numMemCtrls = 4;           ///< controllers at the mesh corners
    int memIssueInterval = 4;      ///< min cycles between MC accepts
    /** Reply latency when the block came up with the directory-state
     *  fetch (state and data live in the same DRAM region, so an
     *  I-state miss that already paid the directory fetch only pays
     *  a transfer cost, not a second full access). */
    int memOverlapLatency = 25;

    // --- global directory ---
    bool dirCacheEnabled = true;   ///< per-tile directory caches
    std::uint64_t dirCacheEntries = 8192; ///< entries per tile slice
    int dirCacheAssoc = 8;
    int dirLatency = 2;            ///< directory-cache hit latency
    bool cleanForwarding = true;   ///< sharer supplies clean data (c2c)

    // --- interconnect ---
    bool idealNoc = false;         ///< ablation: fixed-latency network
    int idealNocLatency = 8;       ///< per-message latency when ideal
    /** Intra-group L1<->bank traffic takes a flat on-partition path
     *  (the paper's constant 6-cycle L2 regardless of sharing
     *  degree). Disable to route it over the mesh (ablation). */
    bool flatIntraGroup = true;
    int intraGroupLatency = 3;     ///< flat per-message latency
    int flitBytes = 16;            ///< 64B data + header = 5 flits
    int vcsPerVnet = 2;            ///< virtual channels per vnet
    int vcBufferFlits = 4;         ///< buffer depth per VC
    int numVnets = 3;              ///< request / forward / response

    // --- L2 group topology helpers ---

    /** @return number of L2 sharing groups. */
    int
    numGroups() const
    {
        return numCores() / coresPerGroup(sharing);
    }

    /** @return bytes per L2 partition. */
    std::uint64_t
    l2PartitionBytes() const
    {
        return l2TotalBytes / static_cast<std::uint64_t>(numGroups());
    }

    /**
     * Shape of one contiguous group rectangle on the mesh: gx-by-gy
     * tiles with gx*gy == coresPerGroup, gx | meshX, gy | meshY.
     *
     * Among the valid factorizations the widest shape no taller than
     * it is wide wins (gx >= gy, smallest such gx); when every valid
     * shape is taller than wide, the widest one wins. On the 4x4 mesh
     * this reproduces the paper's Fig. 1 groupings exactly: degree 2
     * picks 2x1 horizontal pairs, degree 4 the 2x2 quadrants, degree
     * 8 the 4x2 halves, degree 16 the full chip.
     *
     * @return {gx, gy}, or {0, 0} when no tiling exists (validate()
     * turns that into a fatal config error).
     */
    std::pair<int, int>
    groupTileShape() const
    {
        const int cpg = coresPerGroup(sharing);
        int best_gx = 0, best_gy = 0;
        for (int gx = 1; gx <= cpg; ++gx) {
            if (cpg % gx != 0)
                continue;
            const int gy = cpg / gx;
            if (gx > meshX || gy > meshY || meshX % gx != 0 ||
                meshY % gy != 0) {
                continue;
            }
            best_gx = gx;
            best_gy = gy;
            if (gx >= gy)
                break; // smallest gx with gx >= gy
        }
        return {best_gx, best_gy};
    }

    /** @return the group a core belongs to (contiguous rectangular
     *  grouping; see groupTileShape()). */
    GroupId
    groupOfCore(CoreId core) const
    {
        CONSIM_ASSERT(core >= 0 && core < numCores(), "bad core ", core);
        const auto [gx, gy] = groupTileShape();
        CONSIM_ASSERT(gx > 0, "no contiguous ",
                      coresPerGroup(sharing), "-core group tiling of a ",
                      meshX, "x", meshY, " mesh (validate() rejects "
                      "such configs)");
        const int x = core % meshX;
        const int y = core / meshX;
        return (y / gy) * (meshX / gx) + (x / gx);
    }

    /** @return the member cores of a group, ascending. */
    std::vector<CoreId>
    coresOfGroup(GroupId g) const
    {
        std::vector<CoreId> members;
        for (CoreId c = 0; c < numCores(); ++c) {
            if (groupOfCore(c) == g)
                members.push_back(c);
        }
        CONSIM_ASSERT(!members.empty(), "empty group ", g);
        return members;
    }

    /** Validate structural constraints; fatal on user error. */
    void
    validate() const
    {
        if (!isPow2(l0Bytes) || !isPow2(l1Bytes))
            CONSIM_FATAL("private cache sizes must be powers of two");
        // The aggregate L2 is striped one bank per tile; every bank
        // must hold a whole number of sets. Indexing is modulo-based
        // throughout, so the total need not be a power of two (a
        // 6x6 chip legitimately wants a 36-divisible aggregate).
        const std::uint64_t bank_quantum =
            static_cast<std::uint64_t>(numCores()) *
            static_cast<std::uint64_t>(blockBytes) *
            static_cast<std::uint64_t>(l2Assoc);
        if (l2TotalBytes == 0 || l2TotalBytes % bank_quantum != 0)
            CONSIM_FATAL("aggregate L2 (", l2TotalBytes, " bytes) must "
                         "split into one bank per tile holding whole ",
                         l2Assoc, "-way sets: want a multiple of ",
                         bank_quantum, " bytes for a ", numCores(),
                         "-core chip");
        const int cpg = coresPerGroup(sharing);
        if (cpg < 1 || cpg > numCores())
            CONSIM_FATAL("sharing degree ", cpg, " out of range for a ",
                         numCores(), "-core chip (want 1..", numCores(),
                         ")");
        if (numCores() % cpg != 0)
            CONSIM_FATAL("cores not divisible into groups");
        if (groupTileShape().first == 0)
            CONSIM_FATAL("no contiguous grouping: ", cpg,
                         "-core groups do not tile a ", meshX, "x",
                         meshY, " mesh as gx-by-gy rectangles (need "
                         "gx*gy == ", cpg, " with gx dividing ", meshX,
                         " and gy dividing ", meshY, "); pick a degree "
                         "whose factors divide the mesh dimensions");
        if (numMemCtrls < 1 || numMemCtrls > 4)
            CONSIM_FATAL("bad number of memory controllers (",
                         numMemCtrls, "): controllers sit at distinct "
                         "mesh corners, so 1..4 are supported");
        if (meshX < 2 || meshY < 2)
            CONSIM_FATAL("mesh must be at least 2x2 (got ", meshX, "x",
                         meshY, "): memory controllers sit on the four "
                         "chip corners (System::mcTiles_), which "
                         "degenerate on a 1-wide mesh");
    }
};

} // namespace consim

#endif // CONSIM_COMMON_CONFIG_HH
