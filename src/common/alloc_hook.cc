#include "common/alloc_hook.hh"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace consim
{

namespace
{

std::atomic<std::uint64_t> gAllocs{0};
std::atomic<int> gTrapBudget{0};

/** Dump the offender's stack to stderr (raw addresses; feed them to
 *  addr2line). backtrace() calls malloc, not operator new, so this
 *  cannot recurse into the hook. */
void
reportTrappedAlloc()
{
#if defined(__GLIBC__)
    void *frames[64];
    const int depth = backtrace(frames, 64);
    backtrace_symbols_fd(frames, depth, 2);
#endif
}

void *
countedAlloc(std::size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (gTrapBudget.load(std::memory_order_relaxed) > 0 &&
        gTrapBudget.fetch_sub(1, std::memory_order_relaxed) > 0)
        reportTrappedAlloc();
    void *p = std::malloc(n != 0 ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t n, std::size_t align)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, align, n != 0 ? n : align) != 0)
        throw std::bad_alloc();
    return p;
}

} // namespace

std::uint64_t
allocCount()
{
    return gAllocs.load(std::memory_order_relaxed);
}

void
allocTrap(bool on)
{
    gTrapBudget.store(on ? 8 : 0, std::memory_order_relaxed);
}

} // namespace consim

// Replaceable global allocation functions ([new.delete]): every form
// funnels into the counted malloc/free wrappers above.
void *
operator new(std::size_t n)
{
    return consim::countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return consim::countedAlloc(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return consim::countedAlloc(n);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return consim::countedAlloc(n);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new(std::size_t n, std::align_val_t a)
{
    return consim::countedAlignedAlloc(
        n, static_cast<std::size_t>(a));
}

void *
operator new[](std::size_t n, std::align_val_t a)
{
    return consim::countedAlignedAlloc(
        n, static_cast<std::size_t>(a));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
