/**
 * @file
 * Open-addressing hash maps for the coherence hot path.
 *
 * The bank and directory transaction tables were std::unordered_map,
 * which costs one node allocation per insert and one free per erase —
 * pure steady-state malloc traffic, and pointer-chasing on every
 * probe. BlockMap replaces them with linear-probing open addressing
 * over two parallel arrays (SoA: a dense key array that probes touch,
 * and a value array only the final hit touches). Deletion uses
 * backward-shift (no tombstones), so load factor — and therefore
 * probe length — never degrades over a long run.
 *
 * WaitQueueMap is the companion container for the per-block waiting
 * queues: a BlockMap of list heads over one shared free-listed node
 * pool, replacing a map of std::deque<Msg> (each of which allocated
 * its chunk map on creation and freed it when the queue drained —
 * again per-transaction malloc churn).
 *
 * Iteration order is unspecified, exactly like unordered_map; every
 * observable consumer (checkpoints, diag dumps) sorts keys first.
 */

#ifndef CONSIM_COMMON_BLOCK_MAP_HH
#define CONSIM_COMMON_BLOCK_MAP_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Linear-probing open-addressing map keyed by block address. */
template <typename V>
class BlockMap
{
  public:
    using key_type = BlockAddr;

    /** Keys are (vm << vmSpanBits) | offset, so all-ones is free to
     *  act as the empty-slot sentinel. */
    static constexpr BlockAddr kEmpty = ~BlockAddr(0);

    explicit BlockMap(std::size_t initial_capacity = 16)
    {
        rehash(roundUpPow2(initial_capacity < 8 ? 8
                                                : initial_capacity));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pre-size so @p n entries fit without growing. */
    void
    reserve(std::size_t n)
    {
        const std::size_t want = roundUpPow2(n * 4 / 3 + 8);
        if (want > keys_.size())
            rehash(want);
    }

    V *
    find(BlockAddr k)
    {
        const std::size_t i = probe(k);
        return keys_[i] == k ? &vals_[i] : nullptr;
    }

    const V *
    find(BlockAddr k) const
    {
        const std::size_t i = probe(k);
        return keys_[i] == k ? &vals_[i] : nullptr;
    }

    std::size_t count(BlockAddr k) const { return find(k) ? 1 : 0; }
    bool contains(BlockAddr k) const { return find(k) != nullptr; }

    V &
    at(BlockAddr k)
    {
        V *v = find(k);
        CONSIM_ASSERT(v, "BlockMap::at: missing key ", k);
        return *v;
    }

    const V &
    at(BlockAddr k) const
    {
        const V *v = find(k);
        CONSIM_ASSERT(v, "BlockMap::at: missing key ", k);
        return *v;
    }

    /** Insert-or-find. References stay valid until the next insert
     *  or erase (open addressing moves entries), unlike
     *  unordered_map — callers must not hold them across mutations. */
    V &
    operator[](BlockAddr k)
    {
        CONSIM_ASSERT(k != kEmpty, "BlockMap: reserved key");
        std::size_t i = probe(k);
        if (keys_[i] == k)
            return vals_[i];
        if ((size_ + 1) * 4 > keys_.size() * 3) {
            rehash(keys_.size() * 2);
            i = probe(k);
        }
        keys_[i] = k;
        vals_[i] = V();
        ++size_;
        return vals_[i];
    }

    std::size_t
    erase(BlockAddr k)
    {
        const std::size_t i = probe(k);
        if (keys_[i] != k)
            return 0;
        eraseSlot(i);
        return 1;
    }

    /** Drop every entry; capacity is retained. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmpty) {
                keys_[i] = kEmpty;
                if constexpr (!std::is_trivially_destructible_v<V>)
                    vals_[i] = V();
            }
        }
        size_ = 0;
    }

    /** Call @p fn(BlockAddr, const V &) for every entry (unordered). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != kEmpty)
                fn(keys_[i], vals_[i]);
        }
    }

    /** @return every key, unordered (callers sort for determinism). */
    std::vector<BlockAddr>
    keys() const
    {
        std::vector<BlockAddr> out;
        out.reserve(size_);
        forEach([&](BlockAddr k, const V &) { out.push_back(k); });
        return out;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t x)
    {
        return isPow2(x) ? x : std::size_t(1) << (floorLog2(x) + 1);
    }

    std::size_t homeOf(BlockAddr k) const { return mixBits(k) & mask_; }

    /** @return the slot holding @p k, or the empty slot where it
     *  would be inserted. */
    std::size_t
    probe(BlockAddr k) const
    {
        std::size_t i = homeOf(k);
        while (keys_[i] != k && keys_[i] != kEmpty)
            i = (i + 1) & mask_;
        return i;
    }

    /** Knuth backward-shift deletion: pull displaced entries back so
     *  probe chains never cross stale slots (no tombstones). */
    void
    eraseSlot(std::size_t i)
    {
        --size_;
        std::size_t j = i;
        for (;;) {
            std::size_t jn = j;
            for (;;) {
                jn = (jn + 1) & mask_;
                if (keys_[jn] == kEmpty) {
                    keys_[j] = kEmpty;
                    if constexpr (
                        !std::is_trivially_destructible_v<V>)
                        vals_[j] = V();
                    return;
                }
                const std::size_t h = homeOf(keys_[jn]);
                // Movable back to j iff its probe chain started at
                // or before j (cyclic distance test).
                if (((jn - h) & mask_) >= ((jn - j) & mask_))
                    break;
            }
            keys_[j] = keys_[jn];
            vals_[j] = std::move(vals_[jn]);
            j = jn;
        }
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<BlockAddr> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        keys_.assign(cap, kEmpty);
        vals_.assign(cap, V());
        mask_ = cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmpty)
                continue;
            const std::size_t s = probe(old_keys[i]);
            keys_[s] = old_keys[i];
            vals_[s] = std::move(old_vals[i]);
        }
    }

    std::vector<BlockAddr> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/**
 * Per-block FIFO queues of @p M over a shared free-listed node pool.
 * Empty queues do not exist: popFront() removes the key when the last
 * element leaves, matching how the protocol code managed its deque
 * map (every drain path erased emptied keys).
 */
template <typename M>
class WaitQueueMap
{
  public:
    explicit WaitQueueMap(std::size_t initial_capacity = 16)
        : refs_(initial_capacity)
    {
    }

    /** @return true when @p block has a (non-empty) queue. */
    bool has(BlockAddr block) const { return refs_.contains(block); }

    /** @return number of blocks with queued messages. */
    std::size_t size() const { return refs_.size(); }
    bool empty() const { return refs_.empty(); }

    std::size_t
    depth(BlockAddr block) const
    {
        const QueueRef *q = refs_.find(block);
        return q ? q->depth : 0;
    }

    const M &
    front(BlockAddr block) const
    {
        const QueueRef &q = refs_.at(block);
        return nodes_[static_cast<std::size_t>(q.head)].msg;
    }

    void
    pushBack(BlockAddr block, M m)
    {
        const std::int32_t n = allocNode(std::move(m));
        QueueRef &q = refs_[block];
        if (q.depth == 0) {
            q.head = q.tail = n;
        } else {
            nodes_[static_cast<std::size_t>(q.tail)].next = n;
            q.tail = n;
        }
        ++q.depth;
    }

    void
    pushFront(BlockAddr block, M m)
    {
        const std::int32_t n = allocNode(std::move(m));
        QueueRef &q = refs_[block];
        if (q.depth == 0) {
            q.head = q.tail = n;
        } else {
            nodes_[static_cast<std::size_t>(n)].next = q.head;
            q.head = n;
        }
        ++q.depth;
    }

    /** Pop the front message; drops the key when the queue empties. */
    M
    popFront(BlockAddr block)
    {
        QueueRef &q = refs_.at(block);
        const std::int32_t n = q.head;
        Node &node = nodes_[static_cast<std::size_t>(n)];
        M out = std::move(node.msg);
        q.head = node.next;
        if (--q.depth == 0)
            refs_.erase(block);
        freeNode(n);
        return out;
    }

    /** Walk @p block's messages front-to-back. */
    template <typename Fn>
    void
    forEachMsg(BlockAddr block, Fn &&fn) const
    {
        const QueueRef *q = refs_.find(block);
        if (!q)
            return;
        for (std::int32_t n = q->head; n != -1;
             n = nodes_[static_cast<std::size_t>(n)].next)
            fn(nodes_[static_cast<std::size_t>(n)].msg);
    }

    /** @return blocks with queued messages (unordered). */
    std::vector<BlockAddr> keys() const { return refs_.keys(); }

    /** Drop everything; node pool capacity is retained. */
    void
    clear()
    {
        refs_.clear();
        nodes_.clear();
        freeHead_ = -1;
    }

    /** Pre-size the node pool. */
    void
    reserveNodes(std::size_t n)
    {
        nodes_.reserve(n);
    }

    /** Pre-size for @p blocks distinct queues over @p nodes queued
     *  messages total, so neither the ref table nor the node pool
     *  grows once the machine is warmed up. */
    void
    reserve(std::size_t blocks, std::size_t nodes)
    {
        refs_.reserve(blocks);
        nodes_.reserve(nodes);
    }

  private:
    struct QueueRef
    {
        std::int32_t head = -1;
        std::int32_t tail = -1;
        std::uint32_t depth = 0;
    };

    struct Node
    {
        M msg;
        std::int32_t next = -1;
    };

    std::int32_t
    allocNode(M m)
    {
        if (freeHead_ != -1) {
            const std::int32_t n = freeHead_;
            Node &node = nodes_[static_cast<std::size_t>(n)];
            freeHead_ = node.next;
            node.msg = std::move(m);
            node.next = -1;
            return n;
        }
        const auto n = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{std::move(m), -1});
        return n;
    }

    void
    freeNode(std::int32_t n)
    {
        nodes_[static_cast<std::size_t>(n)].next = freeHead_;
        freeHead_ = n;
    }

    BlockMap<QueueRef> refs_;
    std::vector<Node> nodes_;
    std::int32_t freeHead_ = -1;
};

} // namespace consim

#endif // CONSIM_COMMON_BLOCK_MAP_HH
