/**
 * @file
 * Fixed-stride circular FIFO used on the NoC hot path.
 *
 * `std::deque` allocates and frees 512-byte chunks as a queue's head
 * crosses chunk boundaries, which shows up as steady-state malloc
 * traffic once a mesh has hundreds of routers ticking every cycle.
 * RingBuf keeps one power-of-two buffer that only grows (never
 * shrinks), so a warmed-up queue performs push/pop with two index
 * updates and no allocator calls.
 *
 * The interface is the subset of std::deque the NoC and the
 * checkpoint codec use: front/push_back/push_front/pop_front, size
 * inspection, clear(), and forward iteration in FIFO order.
 */

#ifndef CONSIM_COMMON_RING_HH
#define CONSIM_COMMON_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace consim
{

/** Growable power-of-two circular buffer (FIFO + push_front). */
template <typename T>
class RingBuf
{
  public:
    RingBuf() = default;

    bool empty() const { return n_ == 0; }
    std::size_t size() const { return n_; }

    T &
    front()
    {
        CONSIM_ASSERT(n_ != 0, "RingBuf::front on empty ring");
        return buf_[head_];
    }

    const T &
    front() const
    {
        CONSIM_ASSERT(n_ != 0, "RingBuf::front on empty ring");
        return buf_[head_];
    }

    /** @return element @p i positions behind the front. */
    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    void
    push_back(T v)
    {
        if (n_ == buf_.size())
            grow();
        buf_[(head_ + n_) & mask_] = std::move(v);
        ++n_;
    }

    void
    push_front(T v)
    {
        if (n_ == buf_.size())
            grow();
        head_ = (head_ + mask_) & mask_; // head - 1 mod capacity
        buf_[head_] = std::move(v);
        ++n_;
    }

    void
    pop_front()
    {
        CONSIM_ASSERT(n_ != 0, "RingBuf::pop_front on empty ring");
        head_ = (head_ + 1) & mask_;
        --n_;
    }

    /** Drop every element; capacity is retained. */
    void
    clear()
    {
        head_ = 0;
        n_ = 0;
    }

    /** Pre-size the buffer to at least @p cap elements. */
    void
    reserve(std::size_t cap)
    {
        if (cap > buf_.size())
            rebuffer(roundUpPow2(cap));
    }

    class const_iterator
    {
      public:
        const_iterator(const RingBuf *r, std::size_t i)
            : r_(r), i_(i)
        {
        }
        const T &operator*() const { return (*r_)[i_]; }
        const T *operator->() const { return &(*r_)[i_]; }
        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        const RingBuf *r_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, n_}; }

  private:
    static std::size_t
    roundUpPow2(std::size_t x)
    {
        return isPow2(x) ? x
                         : std::size_t(1)
                               << (floorLog2(x) + 1);
    }

    void grow() { rebuffer(buf_.empty() ? 8 : buf_.size() * 2); }

    void
    rebuffer(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < n_; ++i)
            next[i] = std::move((*this)[i]);
        buf_ = std::move(next);
        head_ = 0;
        mask_ = buf_.size() - 1;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t n_ = 0;
    std::size_t mask_ = 0; ///< buf_.size() - 1 (0 when unallocated)
};

} // namespace consim

#endif // CONSIM_COMMON_RING_HH
