/**
 * @file
 * Error / status reporting in the gem5 style.
 *
 * panic()  - simulator bug; should never happen regardless of input.
 * fatal()  - user error (bad configuration); clean exit.
 * warn()   - suspicious but survivable condition.
 * inform() - plain status output.
 */

#ifndef CONSIM_COMMON_LOGGING_HH
#define CONSIM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace consim
{

namespace logging
{

/** Abort with a "panic" message; indicates a simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Invariant-violation sink for CONSIM_ASSERT: throws a recoverable
 * SimError when the runtime check level is basic or above (so sweep
 * workers can contain the failure), panics otherwise. Implemented in
 * common/check.cc.
 */
[[noreturn]] void invariantFailImpl(const char *file, int line,
                                    const std::string &msg);

/** Exit(1) with a "fatal" message; indicates a user/config error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

/** Tiny printf-free formatter: concatenates streamable args. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace logging

} // namespace consim

#define CONSIM_PANIC(...)                                                    \
    ::consim::logging::panicImpl(__FILE__, __LINE__,                         \
                                 ::consim::logging::format(__VA_ARGS__))

#define CONSIM_FATAL(...)                                                    \
    ::consim::logging::fatalImpl(__FILE__, __LINE__,                         \
                                 ::consim::logging::format(__VA_ARGS__))

#define CONSIM_WARN(...)                                                     \
    ::consim::logging::warnImpl(::consim::logging::format(__VA_ARGS__))

#define CONSIM_INFORM(...)                                                   \
    ::consim::logging::informImpl(::consim::logging::format(__VA_ARGS__))

/**
 * Invariant check that survives NDEBUG; use for protocol invariants.
 * Aborts under CONSIM_CHECK=off (default); throws SimError in checked
 * mode so a sweep worker survives one poisoned simulation point.
 */
#define CONSIM_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::consim::logging::invariantFailImpl(                            \
                __FILE__, __LINE__,                                          \
                ::consim::logging::format(                                   \
                    #cond, " ",                                              \
                    ::consim::logging::format(__VA_ARGS__)));                \
        }                                                                    \
    } while (0)

#endif // CONSIM_COMMON_LOGGING_HH
