/**
 * @file
 * Small bit-manipulation helpers used by caches, directories, and the
 * mesh address interleaving.
 */

#ifndef CONSIM_COMMON_BITOPS_HH
#define CONSIM_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace consim
{

/** @return true iff x is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr int
floorLog2(std::uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** @return ceil(log2(x)); x must be non-zero. */
constexpr int
ceilLog2(std::uint64_t x)
{
    return isPow2(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** @return number of set bits. */
constexpr int
popCount(std::uint64_t x)
{
    return std::popcount(x);
}

/** @return index of lowest set bit; x must be non-zero. */
constexpr int
lowestSetBit(std::uint64_t x)
{
    return std::countr_zero(x);
}

/**
 * Mix the bits of a block address for bank/home interleaving. A simple
 * multiplicative hash avoids pathological striding when workloads walk
 * contiguous regions.
 */
constexpr std::uint64_t
mixBits(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

} // namespace consim

#endif // CONSIM_COMMON_BITOPS_HH
