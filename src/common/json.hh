/**
 * @file
 * Dependency-free JSON document model, writer, and minimal parser.
 *
 * The statistics registry (common/stats.hh) and the result/reporting
 * layer (core/report.hh) serialize through this one writer so that
 * every machine-readable artifact the simulator emits — stat dumps,
 * RunResult envelopes, figure data points — shares a format.
 *
 * Determinism: objects preserve insertion order and numbers are
 * formatted with std::to_chars (shortest round-trip, locale
 * independent), so serializing bit-identical values always produces
 * byte-identical text. The parallel-vs-serial sweep determinism test
 * relies on this.
 */

#ifndef CONSIM_COMMON_JSON_HH
#define CONSIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace consim
{

namespace json
{

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Uint,   ///< integral, stored exactly as uint64
        Int,    ///< integral, stored exactly as int64 (negatives)
        Double,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(std::nullptr_t) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(std::uint64_t u) : kind_(Kind::Uint), uint_(u) {}
    Value(std::int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(int i) : kind_(Kind::Int), int_(i) {}
    Value(unsigned i) : kind_(Kind::Uint), uint_(i) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    /** @return an empty array value. */
    static Value array() { return Value(Kind::Array); }

    /** @return an empty object value. */
    static Value object() { return Value(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Uint || kind_ == Kind::Int ||
               kind_ == Kind::Double;
    }

    bool boolean() const { return bool_; }
    const std::string &str() const { return str_; }

    /** @return the number coerced to double (0 for non-numbers). */
    double
    number() const
    {
        switch (kind_) {
          case Kind::Uint:
            return static_cast<double>(uint_);
          case Kind::Int:
            return static_cast<double>(int_);
          case Kind::Double:
            return double_;
          default:
            return 0.0;
        }
    }

    /** @return the number coerced to uint64 (0 for non-numbers). */
    std::uint64_t
    asUint() const
    {
        switch (kind_) {
          case Kind::Uint:
            return uint_;
          case Kind::Int:
            return static_cast<std::uint64_t>(int_);
          case Kind::Double:
            return static_cast<std::uint64_t>(double_);
          default:
            return 0;
        }
    }

    // --- array interface ---

    /** Append to an array (converts a Null value to an array). */
    Value &push(Value v);

    std::size_t size() const;
    const Value &at(std::size_t i) const { return arr_.at(i); }
    const std::vector<Value> &items() const { return arr_; }

    // --- object interface ---

    /**
     * Set a member (converts a Null value to an object). Keys keep
     * insertion order; setting an existing key overwrites in place.
     * @return reference to the stored value.
     */
    Value &set(std::string_view key, Value v);

    /** @return member or nullptr when absent / not an object. */
    const Value *find(std::string_view key) const;
    Value *find(std::string_view key);
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return obj_;
    }

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    void write(std::ostream &os, int indent = 0) const;

    /** @return the serialized text. */
    std::string dump(int indent = 0) const;

  private:
    explicit Value(Kind k) : kind_(k) {}

    void writeImpl(std::ostream &os, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/** Write @p s as a quoted, escaped JSON string literal. */
void writeEscaped(std::ostream &os, std::string_view s);

/**
 * Parse one JSON document (used by tests to validate emitted output;
 * integral number literals parse back to Uint/Int, everything else
 * to Double).
 * @param err optional; receives a message on failure.
 * @return true and fill @p out on success.
 */
bool parse(std::string_view text, Value &out, std::string *err = nullptr);

} // namespace json

} // namespace consim

#endif // CONSIM_COMMON_JSON_HH
