/**
 * @file
 * Fundamental scalar types and chip-wide constants for the consim
 * server-consolidation CMP simulator.
 *
 * The machine modelled throughout the library is a parametric tiled
 * CMP: an X-by-Y mesh of cores with private L0/L1 caches and a
 * shared-capacity L2 whose sharing degree is configurable. The
 * default configuration follows Table III of Enright Jerger et al.,
 * "An Evaluation of Server Consolidation Workloads for Multi-Core
 * Designs" (IISWC 2007) — a 16-core CMP on a 4x4 mesh with a 16 MB
 * aggregate L2 — but core count, mesh geometry, and group size scale
 * beyond it (see MachineConfig).
 */

#ifndef CONSIM_COMMON_TYPES_HH
#define CONSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace consim
{

/** Simulated clock cycle. Monotonically increasing from 0. */
using Cycle = std::uint64_t;

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Cache-block-granular address (byte address >> blockBits). */
using BlockAddr = std::uint64_t;

/** Index of a physical core / tile on the chip (0..numCores-1). */
using CoreId = std::int32_t;

/** Index of an L2 sharing group ("partition"), 0..numGroups-1. */
using GroupId = std::int32_t;

/** Index of a virtual machine (consolidated workload instance). */
using VmId = std::int32_t;

/** Sentinel for "no core" / "no owner". */
constexpr CoreId invalidCore = -1;

/** Sentinel for "no group". */
constexpr GroupId invalidGroup = -1;

/** Sentinel for "no VM" (e.g. an idle core). */
constexpr VmId invalidVm = -1;

/** Sentinel cycle value meaning "never" / "unscheduled". */
constexpr Cycle cycleNever = std::numeric_limits<Cycle>::max();

/** Cache block size in bytes (64 B lines, as in the paper). */
constexpr int blockBytes = 64;

/** log2(blockBytes). */
constexpr int blockBits = 6;

/** Convert a byte address to a block address. */
constexpr BlockAddr
blockOf(Addr a)
{
    return a >> blockBits;
}

/** Convert a block address back to the base byte address. */
constexpr Addr
addrOf(BlockAddr b)
{
    return b << blockBits;
}

} // namespace consim

#endif // CONSIM_COMMON_TYPES_HH
