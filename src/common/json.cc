#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace consim
{

namespace json
{

// ---------------------------------------------------------------------
// Value construction
// ---------------------------------------------------------------------

Value &
Value::push(Value v)
{
    CONSIM_ASSERT(kind_ == Kind::Array || kind_ == Kind::Null,
                  "push on a non-array JSON value");
    kind_ = Kind::Array;
    arr_.push_back(std::move(v));
    return arr_.back();
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

Value &
Value::set(std::string_view key, Value v)
{
    CONSIM_ASSERT(kind_ == Kind::Object || kind_ == Kind::Null,
                  "set on a non-object JSON value");
    kind_ = Kind::Object;
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    obj_.emplace_back(std::string(key), std::move(v));
    return obj_.back().second;
}

const Value *
Value::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value *
Value::find(std::string_view key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

namespace
{

void
writeDouble(std::ostream &os, double d)
{
    // JSON has no NaN/Inf literals; emit null like most writers do.
    if (!std::isfinite(d)) {
        os << "null";
        return;
    }
    // Shortest round-trip representation, locale independent.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    os.write(buf, res.ptr - buf);
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Value::writeImpl(std::ostream &os, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Int:
        os << int_;
        break;
      case Kind::Double:
        writeDouble(os, double_);
        break;
      case Kind::String:
        writeEscaped(os, str_);
        break;
      case Kind::Array: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                newlineIndent(os, indent, depth + 1);
            arr_[i].writeImpl(os, indent, depth + 1);
        }
        if (indent)
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            if (indent)
                newlineIndent(os, indent, depth + 1);
            writeEscaped(os, obj_[i].first);
            os << ':';
            if (indent)
                os << ' ';
            obj_[i].second.writeImpl(os, indent, depth + 1);
        }
        if (indent)
            newlineIndent(os, indent, depth);
        os << '}';
        break;
      }
    }
}

void
Value::write(std::ostream &os, int indent) const
{
    writeImpl(os, indent, 0);
}

std::string
Value::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        err = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    literal(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // BMP-only decoder (enough for the stats names
                    // and workload labels this library emits).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        const std::string_view tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("bad number");
        if (integral) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                const auto r = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (r.ec == std::errc()) {
                    out = Value(v);
                    return true;
                }
            } else {
                std::uint64_t v = 0;
                const auto r = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (r.ec == std::errc()) {
                    out = Value(v);
                    return true;
                }
            }
            // Fall through to double on overflow.
        }
        double d = 0.0;
        const auto r =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
            return fail("bad number");
        out = Value(d);
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Value::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Value::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = Value(true);
            return true;
        }
        if (literal("false")) {
            out = Value(false);
            return true;
        }
        if (literal("null")) {
            out = Value();
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *err)
{
    Parser p{text, 0, {}};
    if (!p.parseValue(out, 0)) {
        if (err)
            *err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing characters at offset " +
                   std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace json

} // namespace consim
