/**
 * @file
 * Strict string-to-number parsing for CLI front ends and config
 * grammars. Unlike atoi/strtoull-with-no-checks, these reject
 * trailing garbage, empty strings, and out-of-range values instead of
 * silently yielding 0 — a prerequisite for refusing to cast junk into
 * enums at the tool boundary.
 */

#ifndef CONSIM_COMMON_PARSE_HH
#define CONSIM_COMMON_PARSE_HH

#include <charconv>
#include <cstdint>
#include <string_view>

namespace consim
{

/** Parse an unsigned decimal; the whole string must be consumed. */
inline bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    const auto *first = s.data();
    const auto *last = s.data() + s.size();
    const auto res = std::from_chars(first, last, out, 10);
    return res.ec == std::errc{} && res.ptr == last;
}

/** Parse an int in [lo, hi]; the whole string must be consumed. */
inline bool
parseIntInRange(std::string_view s, int lo, int hi, int &out)
{
    if (s.empty())
        return false;
    int v = 0;
    const auto *last = s.data() + s.size();
    const auto res = std::from_chars(s.data(), last, v, 10);
    if (res.ec != std::errc{} || res.ptr != last || v < lo || v > hi)
        return false;
    out = v;
    return true;
}

} // namespace consim

#endif // CONSIM_COMMON_PARSE_HH
