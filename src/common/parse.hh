/**
 * @file
 * Strict string-to-number parsing for CLI front ends and config
 * grammars. Unlike atoi/strtoull-with-no-checks, these reject
 * trailing garbage, empty strings, and out-of-range values instead of
 * silently yielding 0 — a prerequisite for refusing to cast junk into
 * enums at the tool boundary.
 */

#ifndef CONSIM_COMMON_PARSE_HH
#define CONSIM_COMMON_PARSE_HH

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "common/logging.hh"

namespace consim
{

/** Parse an unsigned decimal; the whole string must be consumed. */
inline bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    const auto *first = s.data();
    const auto *last = s.data() + s.size();
    const auto res = std::from_chars(first, last, out, 10);
    return res.ec == std::errc{} && res.ptr == last;
}

/** Parse an int in [lo, hi]; the whole string must be consumed. */
inline bool
parseIntInRange(std::string_view s, int lo, int hi, int &out)
{
    if (s.empty())
        return false;
    int v = 0;
    const auto *last = s.data() + s.size();
    const auto res = std::from_chars(s.data(), last, v, 10);
    if (res.ec != std::errc{} || res.ptr != last || v < lo || v > hi)
        return false;
    out = v;
    return true;
}

/**
 * Read an environment variable as a strict unsigned integer. Unset
 * returns @p def; a set-but-malformed value (trailing garbage, empty,
 * negative, overflow) is a fatal user error — silently falling back to
 * the default would run a different experiment than the one asked for.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    std::uint64_t out = 0;
    if (!parseU64(v, out)) {
        CONSIM_FATAL(name, "='", v,
                     "' is not an unsigned integer; unset it or pass a "
                     "plain decimal value");
    }
    return out;
}

/** envU64 for bounded int knobs: fatal when outside [lo, hi]. */
inline int
envIntInRange(const char *name, int lo, int hi, int def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    int out = 0;
    if (!parseIntInRange(v, lo, hi, out)) {
        CONSIM_FATAL(name, "='", v, "' is not an integer in [", lo, ", ",
                     hi, "]; unset it or pass a value in range");
    }
    return out;
}

} // namespace consim

#endif // CONSIM_COMMON_PARSE_HH
