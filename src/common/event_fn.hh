/**
 * @file
 * EventFn: a move-only callable with small-buffer-optimized storage
 * for the simulator's event callbacks.
 *
 * The event core schedules millions of short-lived closures per
 * simulated second (protocol callbacks capturing `this` plus a Msg).
 * std::function heap-allocates those captures; EventFn stores any
 * callable up to `inlineCapacity` bytes inline in the event record,
 * so the System::schedule hot path never touches the allocator.
 * Larger callables still work (they fall back to the heap), keeping
 * the type a drop-in replacement.
 */

#ifndef CONSIM_COMMON_EVENT_FN_HH
#define CONSIM_COMMON_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace consim
{

/** Move-only `void()` callable with inline storage for captures. */
class EventFn
{
  public:
    /** Bytes of inline capture storage. Sized for the dominant
     *  capture shape, a component pointer plus a 64-byte Msg (72
     *  bytes with padding) — one byte short and every protocol
     *  callback heap-allocates. */
    static constexpr std::size_t inlineCapacity = 80;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineCapacity &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            using Ptr = Fn *;
            ::new (static_cast<void *>(buf_))
                Ptr(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_) {
                ops_->relocate(o.buf_, buf_);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { ops_->invoke(buf_); }

    /** @return true when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

  private:
    /** Manual vtable: one static instance per stored type. */
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *self) { (*static_cast<Fn *>(self))(); },
        [](void *src, void *dst) {
            auto *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *self) { static_cast<Fn *>(self)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *self) { (**static_cast<Fn **>(self))(); },
        [](void *src, void *dst) {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *self) { delete *static_cast<Fn **>(self); },
    };

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace consim

#endif // CONSIM_COMMON_EVENT_FN_HH
