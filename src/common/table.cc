#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace consim
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CONSIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    CONSIM_ASSERT(cells.size() == headers_.size(),
                  "row has ", cells.size(), " cells, expected ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // empty row encodes a separator
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&] {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            os << " " << s << std::string(widths[c] - s.size(), ' ')
               << " |";
        }
        os << "\n";
    };

    print_sep();
    print_cells(headers_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.empty())
            print_sep();
        else
            print_cells(row);
    }
    print_sep();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

} // namespace consim
