#include "cpu/core.hh"

#include "common/logging.hh"

namespace consim
{

Core::Core(Fabric &fabric, CoreId tile, L1Controller &l1)
    : fab_(fabric), tile_(tile), l1_(l1)
{
    l1_.setMissCallback([this] { missComplete(); });
    stats_.registerIn(statsGroup_);
}

void
Core::bindThread(InstrStream *stream, VmId vm)
{
    CONSIM_ASSERT(!blocked_, "rebinding a blocked core");
    stream_ = stream;
    vm_ = stream ? vm : invalidVm;
    haveSlice_ = false;
    busyUntil_ = 0;
}

void
Core::tick()
{
    if (stream_ == nullptr || blocked_ || wedged_)
        return;
    const Cycle now = fab_.now();
    if (now < busyUntil_)
        return;

    if (!haveSlice_) {
        slice_ = stream_->next();
        haveSlice_ = true;
        stats_.instructions += slice_.computeCycles + 1;
        retiredTotal_ += slice_.computeCycles + 1;
        fab_.recordInstructions(vm_, slice_.computeCycles + 1);
        if (slice_.computeCycles > 0) {
            busyUntil_ = now + slice_.computeCycles;
            return;
        }
    }

    if (slice_.noMemRef) {
        haveSlice_ = false;
        return;
    }

    // Compute burst done: issue the memory reference.
    ++stats_.memRefs;
    const AccessResult res = l1_.access(slice_.block, slice_.isWrite);
    if (res.hit) {
        busyUntil_ = now + res.latency;
        if (slice_.endsTransaction) {
            ++stats_.transactions;
            fab_.recordTransaction(vm_);
        }
        haveSlice_ = false;
    } else {
        blocked_ = true;
        blockStart_ = now;
    }
}

void
Core::missComplete()
{
    CONSIM_ASSERT(blocked_, "fill callback while not blocked");
    blocked_ = false;
    stats_.stallCycles += fab_.now() - blockStart_;
    busyUntil_ = fab_.now() + 1;
    if (slice_.endsTransaction) {
        ++stats_.transactions;
        fab_.recordTransaction(vm_);
    }
    haveSlice_ = false;
}

} // namespace consim
