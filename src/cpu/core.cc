#include "cpu/core.hh"

#include "common/logging.hh"

namespace consim
{

Core::Core(Fabric &fabric, CoreId tile, L1Controller &l1)
    : fab_(fabric), tile_(tile), l1_(l1)
{
    l1_.setMissCallback([this] { missComplete(); });
    stats_.registerIn(statsGroup_);
}

void
Core::bindThread(InstrStream *stream, VmId vm)
{
    CONSIM_ASSERT(!blocked_, "rebinding a blocked core");
    stream_ = stream;
    vm_ = stream ? vm : invalidVm;
    haveSlice_ = false;
    busyUntil_ = 0;
}

void
Core::enqueueContext(InstrStream *stream, VmId vm)
{
    CONSIM_ASSERT(stream != nullptr, "enqueueContext wants a stream");
    contexts_.push_back({stream, vm});
    if (contexts_.size() == 1)
        bindThread(stream, vm);
}

void
Core::scheduleRebind(InstrStream *stream, VmId vm)
{
    CONSIM_ASSERT(!wedged_, "migrating a wedged core");
    CONSIM_ASSERT(!multiplexed(), "migrating a time-sliced core");
    rebindPending_ = true;
    rebindStream_ = stream;
    rebindVm_ = vm;
}

void
Core::installRebind()
{
    rebindPending_ = false;
    bindThread(rebindStream_, rebindVm_);
    rebindStream_ = nullptr;
    rebindVm_ = invalidVm;
    // One dead cycle for the context switch: the incoming thread
    // starts fetching on the next tick, never the install tick.
    busyUntil_ = fab_.now() + 1;
}

void
Core::rotateContext(Cycle now)
{
    // Boundaries are absolute multiples of the quantum, so a resumed
    // run preempts on the same cycles as the original.
    nextSlice_ = (now / timeslice_ + 1) * timeslice_;
    ctxPos_ = (ctxPos_ + 1) % contexts_.size();
    bindThread(contexts_[ctxPos_].stream, contexts_[ctxPos_].vm);
}

void
Core::tick()
{
    // A deferred migration lands at the first clean instruction
    // boundary: never mid-miss (the fill retires against the old
    // binding first), never mid-slice. Deterministic in sim state,
    // so serial and parallel runs install on the same cycle.
    if (rebindPending_ && !blocked_ && !wedged_ && !haveSlice_ &&
        fab_.now() >= busyUntil_)
        installRebind();
    if (stream_ == nullptr || blocked_ || wedged_)
        return;
    const Cycle now = fab_.now();
    if (contexts_.size() > 1 && !haveSlice_ && now >= busyUntil_) {
        // Preempt only at clean instruction boundaries: never
        // mid-miss (blocked_ above), never mid-burst. A context
        // holding the core past its boundary yields at the first
        // boundary after it, which is deterministic in sim state.
        if (nextSlice_ == 0)
            nextSlice_ = (now / timeslice_ + 1) * timeslice_;
        else if (now >= nextSlice_)
            rotateContext(now);
    }
    if (now < busyUntil_)
        return;

    if (!haveSlice_) {
        slice_ = stream_->next();
        haveSlice_ = true;
        stats_.instructions += slice_.computeCycles + 1;
        retiredTotal_ += slice_.computeCycles + 1;
        fab_.recordInstructions(vm_, slice_.computeCycles + 1);
        if (slice_.computeCycles > 0) {
            busyUntil_ = now + slice_.computeCycles;
            return;
        }
    }

    if (slice_.noMemRef) {
        haveSlice_ = false;
        return;
    }

    // Compute burst done: issue the memory reference.
    ++stats_.memRefs;
    const AccessResult res = l1_.access(slice_.block, slice_.isWrite);
    if (res.hit) {
        busyUntil_ = now + res.latency;
        if (slice_.endsTransaction) {
            ++stats_.transactions;
            fab_.recordTransaction(vm_);
        }
        haveSlice_ = false;
    } else {
        blocked_ = true;
        blockStart_ = now;
    }
}

void
Core::missComplete()
{
    CONSIM_ASSERT(blocked_, "fill callback while not blocked");
    blocked_ = false;
    stats_.stallCycles += fab_.now() - blockStart_;
    busyUntil_ = fab_.now() + 1;
    if (slice_.endsTransaction) {
        ++stats_.transactions;
        fab_.recordTransaction(vm_);
    }
    haveSlice_ = false;
}

} // namespace consim
