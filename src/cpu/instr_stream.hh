/**
 * @file
 * The instruction-stream interface between workloads and cores. A
 * stream produces WorkSlices: a burst of non-memory instructions
 * followed by one memory reference. This granularity is exactly what
 * an in-order, blocking, 1-IPC core (the paper's Niagara-like cores)
 * needs for timing, while keeping generation fast.
 */

#ifndef CONSIM_CPU_INSTR_STREAM_HH
#define CONSIM_CPU_INSTR_STREAM_HH

#include <cstdint>

#include "common/types.hh"

namespace consim
{

/** A run of compute instructions ending in one memory reference. */
struct WorkSlice
{
    std::uint32_t computeCycles = 0; ///< non-memory instructions
    BlockAddr block = 0;             ///< block touched by the ref
    bool isWrite = false;
    bool endsTransaction = false;    ///< last ref of a transaction
    bool noMemRef = false;           ///< pure compute (idle filler)
};

/** Endless supplier of work for one hardware thread. */
class InstrStream
{
  public:
    virtual ~InstrStream() = default;

    /** @return the next slice; streams never terminate. */
    virtual WorkSlice next() = 0;
};

} // namespace consim

#endif // CONSIM_CPU_INSTR_STREAM_HH
