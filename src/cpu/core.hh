/**
 * @file
 * In-order, blocking, single-issue core model (paper Table III: 16
 * in-order cores mimicking Niagara). Non-memory instructions retire
 * at 1 IPC; memory references access the private hierarchy through
 * the L1 controller and stall the core until the fill returns.
 */

#ifndef CONSIM_CPU_CORE_HH
#define CONSIM_CPU_CORE_HH

#include "coherence/fabric.hh"
#include "coherence/l1_controller.hh"
#include "common/stats.hh"
#include "cpu/instr_stream.hh"

namespace consim
{

/** Per-core statistic counters. */
struct CoreStats
{
    stats::Counter instructions;
    stats::Counter memRefs;
    stats::Counter transactions;
    stats::Counter stallCycles; ///< cycles blocked on a miss

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("instructions", &instructions);
        g.add("mem_refs", &memRefs);
        g.add("transactions", &transactions);
        g.add("stall_cycles", &stallCycles);
    }
};

/** One hardware context. Idle when no stream is bound. */
class Core
{
  public:
    Core(Fabric &fabric, CoreId tile, L1Controller &l1);

    /**
     * Bind a thread to this core (static binding, as in the paper).
     * @param stream endless instruction supply; nullptr unbinds.
     * @param vm     the VM the thread belongs to.
     */
    void bindThread(InstrStream *stream, VmId vm);

    /** Advance one cycle. */
    void tick();

    /** @return true when no thread is bound. */
    bool idle() const { return stream_ == nullptr; }

    /** @return true while a miss is outstanding (or wedged). */
    bool blocked() const { return blocked_ || wedged_; }

    /**
     * Fault injection: stop retiring forever (a wedged hardware
     * context). The core reports blocked() from here on, so the
     * watchdog's per-core progress audit flags it.
     */
    void wedge() { wedged_ = true; }

    /** @return true when the core was wedged by fault injection. */
    bool wedged() const { return wedged_; }

    /** Monotonic retired-instruction count (never reset; watchdog). */
    std::uint64_t retiredTotal() const { return retiredTotal_; }

    /** Cycle the current miss began (diagnostics; valid if blocked). */
    Cycle blockStart() const { return blockStart_; }

    VmId vm() const { return vm_; }
    CoreId tile() const { return tile_; }
    InstrStream *stream() const { return stream_; }

    CoreStats &coreStats() { return stats_; }
    const CoreStats &coreStats() const { return stats_; }

    /** Registry node ("core") holding this core's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

  private:
    /** Checkpoint layer restores raw fields (bindThread would reset
     *  the in-flight slice and blocked state). */
    friend struct CkptAccess;

    void missComplete();

    Fabric &fab_;
    CoreId tile_;
    L1Controller &l1_;
    InstrStream *stream_ = nullptr;
    VmId vm_ = invalidVm;

    bool blocked_ = false;
    bool wedged_ = false;
    std::uint64_t retiredTotal_ = 0;
    bool haveSlice_ = false;
    WorkSlice slice_;
    Cycle busyUntil_ = 0;
    Cycle blockStart_ = 0;
    CoreStats stats_;
    stats::Group statsGroup_{"core"};
};

} // namespace consim

#endif // CONSIM_CPU_CORE_HH
