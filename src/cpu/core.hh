/**
 * @file
 * In-order, blocking, single-issue core model (paper Table III: 16
 * in-order cores mimicking Niagara). Non-memory instructions retire
 * at 1 IPC; memory references access the private hierarchy through
 * the L1 controller and stall the core until the fill returns.
 */

#ifndef CONSIM_CPU_CORE_HH
#define CONSIM_CPU_CORE_HH

#include <vector>

#include "coherence/fabric.hh"
#include "coherence/l1_controller.hh"
#include "common/stats.hh"
#include "cpu/instr_stream.hh"

namespace consim
{

/** Per-core statistic counters. */
struct CoreStats
{
    stats::Counter instructions;
    stats::Counter memRefs;
    stats::Counter transactions;
    stats::Counter stallCycles; ///< cycles blocked on a miss

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("instructions", &instructions);
        g.add("mem_refs", &memRefs);
        g.add("transactions", &transactions);
        g.add("stall_cycles", &stallCycles);
    }
};

/**
 * One hardware context. Idle when no stream is bound.
 *
 * Over-commit: a core may hold several software contexts (more VM
 * threads than cores, as a consolidation hypervisor would schedule).
 * enqueueContext() appends to a run queue; the core round-robins
 * through it on fixed timeslice epochs, switching only at clean
 * instruction boundaries (never mid-miss, never mid-burst), so the
 * rotation is deterministic and checkpoint-exact.
 */
class Core
{
  public:
    /** Default preemption quantum for over-committed cores. */
    static constexpr Cycle kDefaultTimesliceCycles = 10'000;

    Core(Fabric &fabric, CoreId tile, L1Controller &l1);

    /**
     * Bind a thread to this core (static binding, as in the paper).
     * @param stream endless instruction supply; nullptr unbinds.
     * @param vm     the VM the thread belongs to.
     */
    void bindThread(InstrStream *stream, VmId vm);

    /**
     * Append a software context to the run queue and bind it when it
     * is the first. With more than one context the core time-slices
     * between them (see class comment).
     */
    void enqueueContext(InstrStream *stream, VmId vm);

    /**
     * Dynamic-scheduling migration: rebind this hardware context to
     * @p stream / @p vm at the next clean instruction boundary. A
     * core that is between instructions switches on its next tick; a
     * core blocked on an outstanding miss finishes the in-flight
     * reference first (the fill retires against the departing
     * thread's VM) and switches when the fill returns. Never legal on
     * wedged or time-multiplexed cores.
     */
    void scheduleRebind(InstrStream *stream, VmId vm);

    /** @return true while a deferred rebind awaits a boundary. */
    bool rebindPending() const { return rebindPending_; }

    /** Set the preemption quantum; 0 restores the default. */
    void
    setTimeslice(Cycle interval)
    {
        timeslice_ = interval ? interval : kDefaultTimesliceCycles;
    }

    /** @return true when more than one context shares this core. */
    bool multiplexed() const { return contexts_.size() > 1; }

    /** @return number of queued software contexts. */
    int numContexts() const
    {
        return static_cast<int>(contexts_.size());
    }

    /** Advance one cycle. */
    void tick();

    /** @return true when no thread is bound. */
    bool idle() const { return stream_ == nullptr; }

    /** @return true while a miss is outstanding (or wedged). */
    bool blocked() const { return blocked_ || wedged_; }

    /**
     * Fault injection: stop retiring forever (a wedged hardware
     * context). The core reports blocked() from here on, so the
     * watchdog's per-core progress audit flags it.
     */
    void wedge() { wedged_ = true; }

    /** @return true when the core was wedged by fault injection. */
    bool wedged() const { return wedged_; }

    /** Monotonic retired-instruction count (never reset; watchdog). */
    std::uint64_t retiredTotal() const { return retiredTotal_; }

    /** Cycle the current miss began (diagnostics; valid if blocked). */
    Cycle blockStart() const { return blockStart_; }

    VmId vm() const { return vm_; }
    CoreId tile() const { return tile_; }
    InstrStream *stream() const { return stream_; }

    CoreStats &coreStats() { return stats_; }
    const CoreStats &coreStats() const { return stats_; }

    /** Registry node ("core") holding this core's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

  private:
    /** Checkpoint layer restores raw fields (bindThread would reset
     *  the in-flight slice and blocked state). */
    friend struct CkptAccess;

    void missComplete();
    void rotateContext(Cycle now);
    void installRebind();

    /** One schedulable software context (over-committed cores). */
    struct Context
    {
        InstrStream *stream = nullptr;
        VmId vm = invalidVm;
    };

    Fabric &fab_;
    CoreId tile_;
    L1Controller &l1_;
    InstrStream *stream_ = nullptr;
    VmId vm_ = invalidVm;

    bool blocked_ = false;
    bool wedged_ = false;
    bool rebindPending_ = false;
    InstrStream *rebindStream_ = nullptr;
    VmId rebindVm_ = invalidVm;
    std::uint64_t retiredTotal_ = 0;
    bool haveSlice_ = false;
    WorkSlice slice_;
    Cycle busyUntil_ = 0;
    Cycle blockStart_ = 0;

    // Over-commit run queue. Empty or single-entry on dedicated
    // cores; rotation state is checkpointed so a resume continues
    // the same schedule.
    std::vector<Context> contexts_;
    std::size_t ctxPos_ = 0;
    Cycle timeslice_ = kDefaultTimesliceCycles;
    Cycle nextSlice_ = 0; ///< next rotation boundary (absolute)

    CoreStats stats_;
    stats::Group statsGroup_{"core"};
};

} // namespace consim

#endif // CONSIM_CPU_CORE_HH
