/**
 * @file
 * Coherence protocol message set.
 *
 * The protocol has two levels, mirroring the paper's machine:
 *
 *  - Intra-group: each L2 partition is inclusive of its member cores'
 *    L1s and acts as a local directory over them (presence bits +
 *    owner). Messages: L1GetS/L1GetM/L1PutM requests, L1Inv/L1WbReq
 *    forwards, L1Data/L1InvAck/L1WbData responses.
 *
 *  - Inter-group: an SGI-Origin-style full-map directory, striped
 *    across the tiles by block address, tracks which partitions
 *    hold each block (partition-granular MESI). The home forwards
 *    dirty requests to the owner partition and (optionally) clean
 *    requests to a sharer partition, producing the cache-to-cache
 *    transfers the paper characterizes. Invalidation acks collect at
 *    the home, which then grants; this differs from Origin (acks to
 *    requester) but simplifies transient states without changing the
 *    characterization-level behaviour.
 *
 * Messages travel on three virtual networks to break protocol message
 * dependency cycles: vnet0 requests, vnet1 forwards, vnet2 responses.
 */

#ifndef CONSIM_COHERENCE_PROTOCOL_HH
#define CONSIM_COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "cache/cache_line.hh"
#include "common/types.hh"

namespace consim
{

/** On-tile destination unit of a message. */
enum class Unit : std::uint8_t
{
    L1,      ///< core-side private cache controller
    L2Bank,  ///< L2 partition bank on this tile
    Dir,     ///< global directory slice on this tile
    Mem,     ///< memory controller attached to this tile
};

/** Protocol message opcodes. */
enum class MsgType : std::uint8_t
{
    // --- intra-group, L1 <-> bank ---
    L1GetS,      ///< L1 read miss -> bank            (request, ctrl)
    L1GetM,      ///< L1 write miss/upgrade -> bank   (request, ctrl)
    L1PutM,      ///< L1 dirty eviction -> bank       (request, data)
    L1Inv,       ///< bank invalidates a member L1    (forward, ctrl)
    L1WbReq,     ///< bank extracts data from owner   (forward, ctrl)
    L1Data,      ///< bank grants line to L1          (response, data)
    L1InvAck,    ///< member L1 ack                   (response, ctrl)
    L1WbData,    ///< owner L1 writeback to bank      (response, data)

    // --- inter-group, bank <-> home directory ---
    GetS,        ///< bank read miss -> home          (request, ctrl)
    GetM,        ///< bank write miss -> home         (request, ctrl)
    PutM,        ///< bank dirty eviction -> home     (request, data)
    PutS,        ///< bank clean eviction -> home     (request, ctrl)
    FwdGetS,     ///< home -> owner/sharer bank       (forward, ctrl)
    FwdGetM,     ///< home -> owner bank              (forward, ctrl)
    Inv,         ///< home -> sharer bank             (forward, ctrl)
    Data,        ///< data to requester bank          (response, data)
    Grant,       ///< home completion gate            (response, ctrl)
    InvAck,      ///< sharer bank -> home             (response, ctrl)
    FwdAck,      ///< forwarder bank -> home          (response, ctrl)
    PutAck,      ///< home -> evicting bank           (response, ctrl)
    Done,        ///< requester bank -> home, unblock (response, ctrl)

    // --- memory controller ---
    MemRead,     ///< home -> MC                      (forward, ctrl)
    MemWrite,    ///< home -> MC, writeback absorb    (forward, data)
    // MC replies with Data directly to the requester bank.
};

/** @return printable opcode name (diagnostics). */
const char *toString(MsgType t);

/** @return virtual network a message class travels on (0/1/2). */
int vnetOf(MsgType t);

/** @return true when the message carries a cache block of data. */
bool carriesData(MsgType t);

/** @return true for intra-group (L1 <-> partition bank) messages. */
bool isIntraGroup(MsgType t);

/**
 * A protocol message. consim is a timing simulator: messages carry
 * metadata only, never data payloads. One flat struct keeps the
 * network fast and the protocol code free of downcasts.
 */
struct Msg
{
    MsgType type = MsgType::GetS;
    BlockAddr block = 0;

    // routing
    CoreId srcTile = invalidCore;
    CoreId dstTile = invalidCore;
    Unit srcUnit = Unit::L1;
    Unit dstUnit = Unit::L1;

    // transaction context
    CoreId reqCore = invalidCore;   ///< core that started the miss
    CoreId reqBankTile = invalidCore; ///< bank tile awaiting the fill
    GroupId reqGroup = invalidGroup;  ///< requesting partition
    VmId vm = invalidVm;

    // flags / small payloads
    bool isWrite = false;     ///< GetM-class transaction
    bool dirtyData = false;   ///< data was modified at the source
    bool noDataNeeded = false;   ///< Grant: requester already has data
    bool c2cTransfer = false;    ///< Data came from another partition
    bool stale = false;          ///< L1WbData: line already gone
    bool toInvalid = false;      ///< L1WbReq: downgrade target is I
    bool overlappedFetch = false; ///< MemRead: data fetched with the
                                  ///< directory state already
    L2State grantState = L2State::Invalid; ///< Grant: install state
    std::int16_t ackCount = 0;   ///< diagnostics

    // timing
    Cycle injectCycle = 0;    ///< set by the network on inject
};

/** @return one-line description (diagnostics). */
std::string describe(const Msg &m);

} // namespace consim

#endif // CONSIM_COHERENCE_PROTOCOL_HH
