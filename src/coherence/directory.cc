#include "coherence/directory.hh"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/bitops.hh"
#include "common/check.hh"
#include "common/logging.hh"
#include "noc/routing.hh"

namespace consim
{

namespace
{

CacheGeometry
dirCacheGeometry(const MachineConfig &cfg)
{
    // The CacheArray is a tag array here; one "line" per entry.
    CacheGeometry g;
    g.sizeBytes = cfg.dirCacheEntries * blockBytes;
    g.assoc = cfg.dirCacheAssoc;
    return g;
}

} // namespace

DirectorySlice::DirectorySlice(Fabric &fabric, CoreId tile,
                               DirectoryStorage &store)
    : fab_(fabric), tile_(tile), store_(store),
      dirCache_(dirCacheGeometry(fabric.config()))
{
    // Pre-size from the machine so the transaction table and wait
    // pool never grow mid-run (the zero-allocation steady-state
    // contract); a home slice can have every core's request queued.
    const auto n = std::max<std::size_t>(
        128, static_cast<std::size_t>(fabric.config().numCores()));
    active_.reserve(n);
    waiting_.reserve(n, 2 * n);
    stats_.registerIn(statsGroup_);
}

void
DirectorySlice::handle(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutS:
        ++stats_.requests;
        startTxn(msg);
        break;
      case MsgType::InvAck:
        onInvAck(msg);
        break;
      case MsgType::FwdAck:
        onFwdAck(msg);
        break;
      case MsgType::Done:
        onDone(msg);
        break;
      default:
        CONSIM_PANIC("directory slice ", tile_, " got ",
                     describe(msg));
    }
}

void
DirectorySlice::startTxn(Msg m)
{
    const BlockAddr block = m.block;
    if (active_.contains(block)) {
        ++stats_.queuedRequests;
        waiting_.pushBack(block, std::move(m));
        return;
    }
    Txn &t = active_[block];
    t.req = std::move(m);
    t.started = fab_.now();

    Cycle lat = fab_.config().dirLatency;
    if (fab_.config().dirCacheEnabled) {
        if (dirCacheAccess(block)) {
            ++stats_.dirCacheHits;
        } else {
            ++stats_.dirCacheMisses;
            lat += fab_.config().memLatency;
            t.dirFetched = true;
        }
    } else {
        // No directory cache: every lookup fetches state off-chip.
        lat += fab_.config().memLatency;
        t.dirFetched = true;
    }
    fab_.scheduleEvent(SimEvent(SimEventKind::DirProcess, tile_, block),
                       lat, [this, block] { process(block); });
}

bool
DirectorySlice::dirCacheAccess(BlockAddr block)
{
    if (auto *line = dirCache_.lookup(block)) {
        dirCache_.touch(line);
        return true;
    }
    auto *victim = dirCache_.victim(block);
    // Victim state lives in the backing store; eviction is silent.
    dirCache_.install(victim, block);
    return false;
}

void
DirectorySlice::process(BlockAddr block)
{
    Txn *tp = active_.find(block);
    CONSIM_ASSERT(tp, "process() for inactive block");
    Txn &t = *tp;
    DirEntry &e = store_.entry(block);

    switch (t.req.type) {
      case MsgType::GetS:
        processGetS(t, e);
        break;
      case MsgType::GetM:
        processGetM(t, e);
        break;
      case MsgType::PutM:
      case MsgType::PutS:
        processPut(t, e);
        break;
      default:
        CONSIM_PANIC("bad txn type ", toString(t.req.type));
    }
}

void
DirectorySlice::processGetS(Txn &t, DirEntry &e)
{
    const GroupId req = t.req.reqGroup;
    switch (e.state) {
      case L2State::Invalid:
        sendMemRead(t.req);
        e.state = L2State::Exclusive;
        e.owner = static_cast<std::int16_t>(req);
        e.sharers.assignSingle(req);
        sendGrant(t, L2State::Exclusive, false);
        break;
      case L2State::Exclusive:
      case L2State::Modified: {
        const auto owner = static_cast<GroupId>(e.owner);
        CONSIM_ASSERT(owner != req,
                      "owner group re-requesting GetS, block ",
                      t.req.block);
        sendToBank(MsgType::FwdGetS, owner, t.req);
        ++stats_.forwards;
        t.fwdAckPending = true;
        e.state = L2State::Shared;
        e.sharers.assignSingle(owner);
        e.sharers.set(req);
        e.owner = -1;
        sendGrant(t, L2State::Shared, false);
        break;
      }
      case L2State::Shared: {
        CONSIM_ASSERT(!e.sharers.test(req),
                      "sharer re-requesting GetS, block ", t.req.block);
        if (fab_.config().cleanForwarding) {
            const GroupId fwd = closestSharer(e.sharers, invalidGroup,
                                              t.req.block,
                                              t.req.reqBankTile);
            sendToBank(MsgType::FwdGetS, fwd, t.req);
            ++stats_.forwards;
            t.fwdAckPending = true;
        } else {
            sendMemRead(t.req);
        }
        e.sharers.set(req);
        sendGrant(t, L2State::Shared, false);
        break;
      }
    }
}

void
DirectorySlice::processGetM(Txn &t, DirEntry &e)
{
    const GroupId req = t.req.reqGroup;
    switch (e.state) {
      case L2State::Invalid:
        sendMemRead(t.req);
        e.state = L2State::Modified;
        e.owner = static_cast<std::int16_t>(req);
        e.sharers.assignSingle(req);
        sendGrant(t, L2State::Modified, false);
        break;
      case L2State::Exclusive:
      case L2State::Modified: {
        const auto owner = static_cast<GroupId>(e.owner);
        CONSIM_ASSERT(owner != req,
                      "owner group re-requesting GetM, block ",
                      t.req.block);
        sendToBank(MsgType::FwdGetM, owner, t.req);
        ++stats_.forwards;
        t.fwdAckPending = true;
        e.state = L2State::Modified;
        e.owner = static_cast<std::int16_t>(req);
        e.sharers.assignSingle(req);
        sendGrant(t, L2State::Modified, false);
        break;
      }
      case L2State::Shared: {
        // Work on the sharer set in place (a deep copy would churn
        // the spill vector at >64 groups); the requester's bit is
        // re-established at the end.
        const bool has_copy = e.sharers.test(req);
        e.sharers.clear(req);
        if (e.sharers.none()) {
            // Requester is the sole sharer: silent data, pure grant.
            e.state = L2State::Modified;
            e.owner = static_cast<std::int16_t>(req);
            e.sharers.assignSingle(req);
            sendGrant(t, L2State::Modified, true);
            break;
        }
        GroupId fwd = invalidGroup;
        if (!has_copy) {
            // One sharer forwards data and invalidates itself.
            fwd = closestSharer(e.sharers, invalidGroup, t.req.block,
                                t.req.reqBankTile);
            sendToBank(MsgType::FwdGetM, fwd, t.req);
            ++stats_.forwards;
            t.fwdAckPending = true;
        }
        e.sharers.forEachSet([&](int g) {
            if (g == fwd)
                return;
            sendToBank(MsgType::Inv, g, t.req);
            ++stats_.invalidations;
            ++t.acksPending;
        });
        e.state = L2State::Modified;
        e.owner = static_cast<std::int16_t>(req);
        e.sharers.assignSingle(req);
        sendGrant(t, L2State::Modified, has_copy);
        break;
      }
    }
}

void
DirectorySlice::processPut(Txn &t, DirEntry &e)
{
    const GroupId g = t.req.reqGroup;
    const bool is_put_m = t.req.type == MsgType::PutM;
    const bool is_owner =
        (e.state == L2State::Exclusive || e.state == L2State::Modified) &&
        static_cast<GroupId>(e.owner) == g;

    // Clearing in place (rather than e = DirEntry{}) keeps the
    // sharer set's spilled storage for the block's next use.
    if (is_owner) {
        if (is_put_m && t.req.dirtyData)
            sendMemWrite(t.req);
        e.state = L2State::Invalid;
        e.owner = -1;
        e.sharers.reset();
    } else if (e.state == L2State::Shared && e.sharers.test(g)) {
        // A demoted owner's PutM degenerates to PutS; any dirty data
        // was already written back when the line was forwarded.
        e.sharers.clear(g);
        if (e.sharers.none()) {
            e.state = L2State::Invalid;
            e.owner = -1;
        }
    }
    // Otherwise the Put is stale (the line moved on); just ack.

    Msg ack;
    ack.type = MsgType::PutAck;
    ack.block = t.req.block;
    ack.vm = t.req.vm;
    ack.srcTile = tile_;
    ack.srcUnit = Unit::Dir;
    ack.dstTile = t.req.srcTile;
    ack.dstUnit = Unit::L2Bank;
    fab_.send(ack);

    finishTxn(t.req.block);
}

void
DirectorySlice::onInvAck(const Msg &m)
{
    Txn *tp = active_.find(m.block);
    CONSIM_ASSERT(tp, "InvAck for inactive block ", m.block);
    Txn &t = *tp;
    CONSIM_ASSERT(t.acksPending > 0, "unexpected InvAck, block ",
                  m.block);
    --t.acksPending;
    tryFinish(m.block);
}

void
DirectorySlice::onFwdAck(const Msg &m)
{
    Txn *tp = active_.find(m.block);
    CONSIM_ASSERT(tp, "FwdAck for inactive block ", m.block);
    Txn &t = *tp;
    CONSIM_ASSERT(t.fwdAckPending, "unexpected FwdAck, block ",
                  m.block);
    t.fwdAckPending = false;
    // A dirty line forwarded on GetS performs a sharing writeback so
    // that memory is clean while the line is Shared.
    if (t.req.type == MsgType::GetS && m.dirtyData)
        sendMemWrite(t.req);
    tryFinish(m.block);
}

void
DirectorySlice::onDone(const Msg &m)
{
    Txn *tp = active_.find(m.block);
    CONSIM_ASSERT(tp, "Done for inactive block ", m.block);
    Txn &t = *tp;
    CONSIM_ASSERT(t.grantSent, "Done before grant, block ", m.block);
    CONSIM_ASSERT(!t.doneReceived, "double Done, block ", m.block);
    t.doneReceived = true;
    tryFinish(m.block);
}

void
DirectorySlice::tryFinish(BlockAddr block)
{
    // A transaction retires only when the requester has confirmed the
    // fill (Done) and every invalidation/forward ack has returned; the
    // blocking home then admits the next queued request for the block.
    const Txn *t = active_.find(block);
    CONSIM_ASSERT(t, "tryFinish of inactive txn");
    if (t->doneReceived && t->acksPending == 0 && !t->fwdAckPending)
        finishTxn(block);
}

void
DirectorySlice::finishTxn(BlockAddr block)
{
    const Txn *t = active_.find(block);
    CONSIM_ASSERT(t, "finish of inactive txn");
    CONSIM_ASSERT(t->acksPending == 0 && !t->fwdAckPending,
                  "finishing txn with outstanding acks, block ", block);
    active_.erase(block);

    if (!waiting_.has(block))
        return;
    startTxn(waiting_.popFront(block));
}

GroupId
DirectorySlice::closestSharer(const GroupSet &sharers, GroupId exclude,
                              BlockAddr block, CoreId req_bank) const
{
    GroupId best = invalidGroup;
    int best_dist = std::numeric_limits<int>::max();
    sharers.forEachSet([&](int g) {
        if (g == exclude)
            return;
        const CoreId bank = fab_.bankTileFor(g, block);
        const int d = hopDistance(bank, req_bank, fab_.config().meshX);
        if (d < best_dist) {
            best_dist = d;
            best = g;
        }
    });
    CONSIM_ASSERT(best != invalidGroup, "no sharer to pick");
    return best;
}

void
DirectorySlice::sendMemRead(const Msg &req)
{
    ++stats_.memReads;
    Msg m = req;
    m.type = MsgType::MemRead;
    m.srcTile = tile_;
    m.srcUnit = Unit::Dir;
    m.dstTile = fab_.memTileFor(req.block);
    m.dstUnit = Unit::Mem;
    // If this transaction already fetched directory state off-chip,
    // the data came up with it (state sits beside the block in DRAM);
    // the controller then only charges a transfer cost.
    const Txn *t = active_.find(req.block);
    m.overlappedFetch = t && t->dirFetched;
    fab_.send(m);
}

void
DirectorySlice::sendMemWrite(const Msg &req)
{
    ++stats_.memWrites;
    Msg m = req;
    m.type = MsgType::MemWrite;
    m.srcTile = tile_;
    m.srcUnit = Unit::Dir;
    m.dstTile = fab_.memTileFor(req.block);
    m.dstUnit = Unit::Mem;
    m.dirtyData = true;
    fab_.send(m);
}

void
DirectorySlice::sendGrant(Txn &t, L2State grant, bool no_data)
{
    CONSIM_ASSERT(!t.grantSent, "double grant");
    t.grantSent = true;
    Msg m = t.req;
    m.type = MsgType::Grant;
    m.srcTile = tile_;
    m.srcUnit = Unit::Dir;
    m.dstTile = t.req.reqBankTile;
    m.dstUnit = Unit::L2Bank;
    m.grantState = grant;
    m.noDataNeeded = no_data;
    fab_.send(m);
}

void
DirectorySlice::sendToBank(MsgType type, GroupId g, const Msg &req)
{
    Msg m = req;
    m.type = type;
    m.srcTile = tile_;
    m.srcUnit = Unit::Dir;
    m.dstTile = fab_.bankTileFor(g, req.block);
    m.dstUnit = Unit::L2Bank;
    fab_.send(m);
}

void
DirectorySlice::auditStuckTxns(Cycle now, Cycle limit) const
{
    active_.forEach([&](BlockAddr block, const Txn &t) {
        if (now - t.started > limit) {
            CONSIM_CHECK_FAIL("dir ", tile_, ": transaction on block "
                              "0x", std::hex, block, std::dec,
                              " stuck for ", now - t.started,
                              " cycles (req ", describe(t.req),
                              ", acks_pending=", t.acksPending,
                              ", grant_sent=", t.grantSent,
                              ", done=", t.doneReceived, ")");
        }
    });
}

json::Value
DirectorySlice::diagJson() const
{
    std::vector<BlockAddr> keys = active_.keys();
    std::sort(keys.begin(), keys.end());

    auto v = json::Value::object();
    v.set("tile", tile_);
    auto act = json::Value::array();
    for (const BlockAddr block : keys) {
        const Txn &t = active_.at(block);
        auto e = json::Value::object();
        e.set("block", block);
        e.set("req", describe(t.req));
        e.set("started", t.started);
        e.set("acks_pending", t.acksPending);
        e.set("fwd_ack_pending", t.fwdAckPending);
        e.set("grant_sent", t.grantSent);
        e.set("done_received", t.doneReceived);
        act.push(std::move(e));
    }
    v.set("active", std::move(act));

    keys = waiting_.keys();
    std::sort(keys.begin(), keys.end());
    auto waitv = json::Value::array();
    for (const BlockAddr block : keys) {
        auto e = json::Value::object();
        e.set("block", block);
        e.set("depth",
              static_cast<std::uint64_t>(waiting_.depth(block)));
        waitv.push(std::move(e));
    }
    v.set("waiting", std::move(waitv));
    return v;
}

void
DirectorySlice::debugDump() const
{
    active_.forEach([&](BlockAddr block, const Txn &t) {
        std::fprintf(stderr,
                     "  dir%d blk=0x%llx req=%s from=%d acks=%d "
                     "fwdAck=%d grant=%d done=%d\n",
                     tile_, (unsigned long long)block,
                     toString(t.req.type), t.req.srcTile,
                     t.acksPending, t.fwdAckPending, t.grantSent,
                     t.doneReceived);
    });
    for (const BlockAddr block : waiting_.keys()) {
        std::fprintf(stderr, "  dir%d blk=0x%llx waiting=%zu\n",
                     tile_, (unsigned long long)block,
                     waiting_.depth(block));
    }
}

} // namespace consim
