/**
 * @file
 * L1 controller: manages one core's private L0 and L1 caches (paper
 * Table III: 8KB/1-cycle L0 and 64KB/2-cycle L1) and speaks the
 * intra-group protocol with the core's L2 partition bank.
 *
 * The L0 is a small tag filter in front of the L1 (inclusion L0 c L1
 * is maintained); coherence state lives in the L1 (MSI: the partition
 * bank grants S or M). Cores are in-order and blocking, so at most
 * one demand miss is outstanding; dirty evictions are fire-and-forget
 * L1PutM messages.
 */

#ifndef CONSIM_COHERENCE_L1_CONTROLLER_HH
#define CONSIM_COHERENCE_L1_CONTROLLER_HH

#include <functional>

#include "cache/cache_array.hh"
#include "coherence/fabric.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"

namespace consim
{

/** Per-L1 statistic counters. */
struct L1Stats
{
    stats::Counter l0Hits;
    stats::Counter l1Hits;      ///< L0 miss, L1 hit
    stats::Counter misses;      ///< miss to the last private level
    stats::Counter writebacks;  ///< dirty L1 evictions
    stats::Counter invalsReceived;
    stats::Counter wbReqsServed;
    stats::Histogram missLatency{10, 100}; ///< 10-cycle buckets

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("l0_hits", &l0Hits);
        g.add("l1_hits", &l1Hits);
        g.add("misses", &misses);
        g.add("writebacks", &writebacks);
        g.add("invals_received", &invalsReceived);
        g.add("wb_reqs_served", &wbReqsServed);
        g.add("miss_latency", &missLatency);
    }
};

/** Result of a core-side cache access. */
struct AccessResult
{
    bool hit = false;
    int latency = 0; ///< valid when hit
};

/** Private-cache controller for one core. */
class L1Controller
{
  public:
    L1Controller(Fabric &fabric, CoreId tile);

    /**
     * Core-side access. On a hit, returns the access latency; on a
     * miss the controller takes ownership and invokes the miss
     * callback when the fill completes. At most one access may be
     * outstanding (in-order blocking core).
     */
    AccessResult access(BlockAddr block, bool is_write);

    /** Register the core's miss-completion callback. */
    void setMissCallback(std::function<void()> fn)
    {
        missDone_ = std::move(fn);
    }

    /** Handle a bank-to-L1 protocol message. */
    void handle(const Msg &msg);

    /** @return true when no miss is outstanding. */
    bool idle() const { return !pending_.active; }

    // --- hardening / diagnostics ---

    /** @return block of the outstanding miss (valid when !idle()). */
    BlockAddr pendingBlock() const { return pending_.block; }

    /** @return cycle the outstanding miss began (valid when !idle()). */
    Cycle pendingStart() const { return pending_.start; }

    /** @return true when the outstanding miss is a write. */
    bool pendingIsWrite() const { return pending_.isWrite; }

    /**
     * Hardening audit: throw SimError when the single outstanding
     * miss has been pending longer than @p limit cycles.
     */
    void auditStuckMiss(Cycle now, Cycle limit) const;

    L1Stats &l1Stats() { return stats_; }
    const L1Stats &l1Stats() const { return stats_; }

    /** Registry node ("l1") holding this controller's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

    /** Inclusion and state invariants (tests); panics on violation. */
    void checkInvariants() const;

    /** Walk valid L1 lines (global coherence checks, tests). */
    template <typename Fn>
    void
    forEachL1Line(Fn &&fn) const
    {
        l1_.forEachLine([&](const PrivateCacheLine &line) {
            if (line.valid)
                fn(line.tag, line.state);
        });
    }

  private:
    /** Checkpoint layer reads raw state. */
    friend struct CkptAccess;

    void fillL0(BlockAddr block);
    void sendToBank(MsgType t, BlockAddr block);

    struct Pending
    {
        bool active = false;
        BlockAddr block = 0;
        bool isWrite = false;
        Cycle start = 0;
    };

    Fabric &fab_;
    CoreId tile_;
    GroupId group_;
    CacheArray<PrivateCacheLine> l0_;
    CacheArray<PrivateCacheLine> l1_;
    Pending pending_;
    std::function<void()> missDone_;
    L1Stats stats_;
    stats::Group statsGroup_{"l1"};
};

} // namespace consim

#endif // CONSIM_COHERENCE_L1_CONTROLLER_HH
