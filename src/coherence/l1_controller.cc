#include "coherence/l1_controller.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace consim
{

namespace
{

CacheGeometry
geo(std::uint64_t bytes, int assoc)
{
    CacheGeometry g;
    g.sizeBytes = bytes;
    g.assoc = assoc;
    return g;
}

} // namespace

L1Controller::L1Controller(Fabric &fabric, CoreId tile)
    : fab_(fabric), tile_(tile), group_(fabric.groupOfTile(tile)),
      l0_(geo(fabric.config().l0Bytes, fabric.config().l0Assoc)),
      l1_(geo(fabric.config().l1Bytes, fabric.config().l1Assoc))
{
    stats_.registerIn(statsGroup_);
}

AccessResult
L1Controller::access(BlockAddr block, bool is_write)
{
    CONSIM_ASSERT(!pending_.active, "access while miss outstanding");
    const auto &cfg = fab_.config();
    PrivateCacheLine *l1line = l1_.lookup(block);

    if (!is_write) {
        if (PrivateCacheLine *l0line = l0_.lookup(block)) {
            CONSIM_ASSERT(l1line, "L0 line without L1 line");
            l0_.touch(l0line);
            ++stats_.l0Hits;
            return {true, cfg.l0Latency};
        }
        if (l1line) {
            l1_.touch(l1line);
            fillL0(block);
            ++stats_.l1Hits;
            return {true, cfg.l0Latency + cfg.l1Latency};
        }
    } else if (l1line && l1line->state == L1State::Modified) {
        const bool in_l0 = l0_.lookup(block) != nullptr;
        l1_.touch(l1line);
        if (!in_l0)
            fillL0(block);
        if (in_l0) {
            ++stats_.l0Hits;
            return {true, cfg.l0Latency};
        }
        ++stats_.l1Hits;
        return {true, cfg.l0Latency + cfg.l1Latency};
    }

    // Miss to the last private level: hand off to the partition bank.
    ++stats_.misses;
    pending_ = {true, block, is_write, fab_.now()};
    sendToBank(is_write ? MsgType::L1GetM : MsgType::L1GetS, block);
    return {false, 0};
}

void
L1Controller::handle(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::L1Data: {
        CONSIM_ASSERT(pending_.active && pending_.block == msg.block,
                      "unexpected fill: ", describe(msg));
        PrivateCacheLine *line = l1_.lookup(msg.block);
        if (line == nullptr) {
            PrivateCacheLine *victim = l1_.victim(msg.block);
            if (victim->valid) {
                if (victim->state == L1State::Modified) {
                    ++stats_.writebacks;
                    sendToBank(MsgType::L1PutM, victim->tag);
                }
                // Keep L0 c L1 inclusion.
                if (auto *l0v = l0_.lookup(victim->tag))
                    l0_.invalidate(l0v);
            }
            l1_.install(victim, msg.block);
            line = victim;
        }
        line->state =
            msg.isWrite ? L1State::Modified : L1State::Shared;
        l1_.touch(line);
        fillL0(msg.block);

        const Cycle lat = fab_.now() - pending_.start;
        stats_.missLatency.sample(lat);
        fab_.recordL1Miss(msg.vm, lat);
        pending_.active = false;
        CONSIM_ASSERT(missDone_, "no miss callback registered");
        missDone_();
        break;
      }
      case MsgType::L1Inv: {
        ++stats_.invalsReceived;
        if (PrivateCacheLine *line = l1_.lookup(msg.block)) {
            CONSIM_ASSERT(line->state != L1State::Modified,
                          "Inv for a line this L1 owns");
            l1_.invalidate(line);
            if (auto *l0line = l0_.lookup(msg.block))
                l0_.invalidate(l0line);
        }
        Msg ack;
        ack.type = MsgType::L1InvAck;
        ack.block = msg.block;
        ack.vm = msg.vm;
        ack.srcTile = tile_;
        ack.srcUnit = Unit::L1;
        ack.dstTile = msg.srcTile;
        ack.dstUnit = Unit::L2Bank;
        fab_.send(ack);
        break;
      }
      case MsgType::L1WbReq: {
        ++stats_.wbReqsServed;
        PrivateCacheLine *line = l1_.lookup(msg.block);
        Msg wb;
        wb.type = MsgType::L1WbData;
        wb.block = msg.block;
        wb.vm = msg.vm;
        wb.srcTile = tile_;
        wb.srcUnit = Unit::L1;
        wb.dstTile = msg.srcTile;
        wb.dstUnit = Unit::L2Bank;
        if (line && line->state == L1State::Modified) {
            wb.stale = false;
            if (msg.toInvalid) {
                l1_.invalidate(line);
                if (auto *l0line = l0_.lookup(msg.block))
                    l0_.invalidate(l0line);
            } else {
                line->state = L1State::Shared;
            }
        } else {
            // The line crossed with our own eviction; the L1PutM in
            // flight carries the data.
            CONSIM_ASSERT(line == nullptr,
                          "WbReq for non-owned line in state ",
                          line ? toString(line->state) : "I");
            wb.stale = true;
        }
        fab_.send(wb);
        break;
      }
      default:
        CONSIM_PANIC("L1 at tile ", tile_, " got ", describe(msg));
    }
}

void
L1Controller::fillL0(BlockAddr block)
{
    if (l0_.lookup(block))
        return;
    PrivateCacheLine *victim = l0_.victim(block);
    l0_.install(victim, block); // L0 evictions are silent (clean)
}

void
L1Controller::sendToBank(MsgType t, BlockAddr block)
{
    Msg m;
    m.type = t;
    m.block = block;
    m.srcTile = tile_;
    m.srcUnit = Unit::L1;
    m.dstTile = fab_.bankTileFor(group_, block);
    m.dstUnit = Unit::L2Bank;
    m.reqCore = tile_;
    m.reqGroup = group_;
    m.vm = fab_.vmOfBlock(block);
    fab_.send(m);
}

void
L1Controller::auditStuckMiss(Cycle now, Cycle limit) const
{
    if (pending_.active && now - pending_.start > limit) {
        CONSIM_CHECK_FAIL("L1 ", tile_, ": miss on block 0x",
                          std::hex, pending_.block, std::dec,
                          " outstanding for ", now - pending_.start,
                          " cycles (", pending_.isWrite ? "write"
                                                        : "read",
                          ")");
    }
}

void
L1Controller::checkInvariants() const
{
    l0_.forEachLine([&](const PrivateCacheLine &l0line) {
        if (!l0line.valid)
            return;
        CONSIM_ASSERT(l1_.lookup(l0line.tag) != nullptr,
                      "L0 inclusion violated for block 0x", std::hex,
                      l0line.tag);
    });
}

} // namespace consim
