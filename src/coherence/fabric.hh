/**
 * @file
 * Fabric: the slim interface components use to talk to the rest of
 * the machine. The concrete System implements it; unit tests provide
 * mock fabrics to exercise controllers in isolation.
 */

#ifndef CONSIM_COHERENCE_FABRIC_HH
#define CONSIM_COHERENCE_FABRIC_HH

#include "coherence/protocol.hh"
#include "common/config.hh"
#include "common/event_fn.hh"
#include "common/types.hh"

namespace consim
{

/**
 * Kind tag of a typed simulator event. Typed events describe the
 * handful of recurring callback shapes in the machine as plain data,
 * which is what lets a checkpoint serialize a pending event queue:
 * an Opaque closure cannot be written to disk, but (kind, tile,
 * block, msg) can.
 */
enum class SimEventKind : std::uint8_t
{
    Opaque,        ///< arbitrary closure; not checkpointable
    Deliver,       ///< deliver msg to its destination unit
    BankDispatch,  ///< L2Bank at tile dispatches block's queue head
    BankFillRetry, ///< L2Bank at tile retries a stalled fill of block
    DirProcess,    ///< DirectorySlice at tile processes block
    MemDone,       ///< memory access done; msg is the Data reply
    WedgeCore,     ///< fault injection: wedge core `tile`
    NetDeliver,    ///< ideal-network arrival (transport bypass)
};

/**
 * A typed simulator event: every scheduled callback in the machine
 * expressed as data plus an escape hatch (Opaque) holding a closure.
 * The System's executor switches on `kind` to re-dispatch into the
 * owning component; checkpoints refuse to serialize Opaque events.
 *
 * Ordering key: same-cycle events run sorted by (src, seq), where
 * `src` names the scheduling source (tile id, or a virtual source for
 * the network/system) and `seq` is that source's own monotonic
 * counter. The key is assigned at schedule time by the source, never
 * by the queue, so the canonical event order of a cycle is a pure
 * function of machine state — independent of which engine (serial or
 * tile-parallel) discovered the events, and stable across
 * checkpoint/restore.
 */
struct SimEvent
{
    SimEventKind kind = SimEventKind::Opaque;
    CoreId tile = invalidCore; ///< owning component's tile
    BlockAddr block = 0;
    std::int32_t src = -1;  ///< ordering key: scheduling source
    std::uint64_t seq = 0;  ///< ordering key: per-source sequence
    Msg msg{};
    EventFn fn; ///< Opaque only

    SimEvent() = default;
    SimEvent(SimEventKind k, CoreId t, BlockAddr b) : kind(k), tile(t), block(b) {}
    SimEvent(SimEventKind k, Msg m) : kind(k), msg(std::move(m)) {}

    /** Strict weak order of same-cycle events. */
    static bool
    keyLess(const SimEvent &a, const SimEvent &b)
    {
        return a.src != b.src ? a.src < b.src : a.seq < b.seq;
    }
};

/** Interface to the surrounding machine (clock, transport, mapping). */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** @return current simulated cycle. */
    virtual Cycle now() const = 0;

    /**
     * Send a protocol message. Same-tile messages take a fixed local
     * hop; cross-tile messages ride the interconnect.
     */
    virtual void send(Msg m) = 0;

    /** Run a callback after @p delay cycles (delay >= 1). */
    virtual void schedule(Cycle delay, EventFn fn) = 0;

    /**
     * Schedule a typed event after @p delay cycles (delay >= 1).
     * @p fallback must perform the same action as @p ev; the default
     * implementation runs it through schedule(), so mock fabrics in
     * unit tests keep working without knowing about typed events.
     * The System overrides this to enqueue `ev` itself, keeping the
     * event queue serializable.
     */
    virtual void
    scheduleEvent(SimEvent ev, Cycle delay, EventFn fallback)
    {
        (void)ev;
        schedule(delay, std::move(fallback));
    }

    /** @return the machine configuration. */
    virtual const MachineConfig &config() const = 0;

    /** @return L2 group a tile's core belongs to. */
    virtual GroupId groupOfTile(CoreId tile) const = 0;

    /** @return tile holding group @p g's bank for @p block. */
    virtual CoreId bankTileFor(GroupId g, BlockAddr block) const = 0;

    /** @return tile whose directory slice is home for @p block. */
    virtual CoreId homeTileFor(BlockAddr block) const = 0;

    /** @return tile of the memory controller serving @p block. */
    virtual CoreId memTileFor(BlockAddr block) const = 0;

    /** @return VM that owns @p block (address-partitioned). */
    virtual VmId vmOfBlock(BlockAddr block) const = 0;

    /**
     * Fault injection: extra DRAM latency in force this cycle. The
     * memory controllers add this on top of the configured access
     * latency; nonzero only while a `memburst` fault is active.
     */
    virtual Cycle memFaultExtraLatency() const { return 0; }

    // --- per-VM QoS hooks (defaults = no enforcement, so mock
    // --- fabrics and QoS-off runs behave exactly as before) ---

    /**
     * L2 way-partitioning mask for @p vm: bit i set = way i may hold
     * the VM's fills. All-ones (the default) disables partitioning;
     * masks only govern victim selection and fills, never invalidate
     * resident lines (CAT semantics). The System recomputes the
     * protected slice at dynamic-repartition epochs, so callers must
     * re-query per fill rather than cache the mask.
     */
    virtual std::uint64_t
    qosWayMask(VmId vm) const
    {
        (void)vm;
        return ~0ull;
    }

    /** A memory-controller access by @p vm was deferred to the next
     *  token window (bandwidth throttling). */
    virtual void qosRecordThrottleStall(VmId vm) { (void)vm; }

    // --- per-VM statistic hooks (driven by the controllers) ---

    /** An access reached the VM's last-level cache. */
    virtual void recordL2Access(VmId vm) = 0;

    /** An LLC miss was resolved (data came from off-partition). */
    virtual void recordL2Miss(VmId vm, bool c2c, bool c2c_dirty) = 0;

    /** A miss to the last private level (L1) completed. */
    virtual void recordL1Miss(VmId vm, Cycle latency) = 0;

    /** A workload transaction committed on some core. */
    virtual void recordTransaction(VmId vm) = 0;

    /** A core retired instructions for a VM. */
    virtual void recordInstructions(VmId vm, std::uint64_t n) = 0;
};

} // namespace consim

#endif // CONSIM_COHERENCE_FABRIC_HH
