/**
 * @file
 * L2 partition bank: one tile's slice of its sharing group's last
 * level cache.
 *
 * A group's L2 partition is address-interleaved across the group's
 * member tiles (bank = block mod group size). Each bank:
 *
 *  - serves L1 misses from the group's member cores, maintaining
 *    intra-group L1 coherence through inclusive presence/owner
 *    tracking (the bank is a local directory over member L1s);
 *  - participates in the global directory protocol for blocks it
 *    caches: issuing GetS/GetM on partition misses, answering
 *    FwdGetS/FwdGetM/Inv from homes (the source of the paper's
 *    cache-to-cache transfers), and writing back evictions with
 *    explicit PutM/PutS handshakes (no silent partition evictions,
 *    which keeps the full-map directory exact).
 *
 * Concurrency discipline: operations serialize per block. Local L1
 * requests queue behind an active operation; inbound forwards jump
 * the queue (they complete without the home and would otherwise
 * deadlock the blocking home). A block being written back lives in
 * the writeback buffer until the home's PutAck; forwards are served
 * from the buffer, and new local requests for it wait for the ack.
 */

#ifndef CONSIM_COHERENCE_L2_BANK_HH
#define CONSIM_COHERENCE_L2_BANK_HH

#include <vector>

#include "cache/cache_array.hh"
#include "coherence/fabric.hh"
#include "coherence/protocol.hh"
#include "common/block_map.hh"
#include "common/json.hh"
#include "common/stats.hh"

namespace consim
{

/** Per-bank statistic counters. */
struct L2BankStats
{
    stats::Counter hits;          ///< local requests served in-group
    stats::Counter misses;        ///< partition misses (went to home)
    stats::Counter upgrades;      ///< S->M via home, no data moved
    stats::Counter evictDirty;
    stats::Counter evictClean;
    stats::Counter backInvals;    ///< L1 copies dropped on L2 events
    stats::Counter fwdsServed;    ///< FwdGetS/FwdGetM answered
    stats::Counter invsReceived;
    stats::Counter fillRetries;   ///< fills stalled on full sets
    stats::Counter staleWrites;   ///< dropped stale L1 writebacks

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("hits", &hits);
        g.add("misses", &misses);
        g.add("upgrades", &upgrades);
        g.add("evict_dirty", &evictDirty);
        g.add("evict_clean", &evictClean);
        g.add("back_invals", &backInvals);
        g.add("fwds_served", &fwdsServed);
        g.add("invs_received", &invsReceived);
        g.add("fill_retries", &fillRetries);
        g.add("stale_writes", &staleWrites);
    }
};

/** One bank of an L2 partition plus its share of protocol logic. */
class L2Bank
{
  public:
    L2Bank(Fabric &fabric, CoreId tile);

    /** Handle any bank-bound message. */
    void handle(const Msg &msg);

    /** @return true when no operation is in flight at this bank. */
    bool
    idle() const
    {
        return active_.empty() && waiting_.empty() && wb_.empty();
    }

    /** Walk all lines (replication/occupancy snapshots). The walker
     *  receives the global block address alongside the line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        array_.forEachLine([&](const L2CacheLine &line) {
            fn(line.valid ? globalOf(line.tag) : BlockAddr{0}, line);
        });
    }

    L2BankStats &bankStats() { return stats_; }
    const L2BankStats &bankStats() const { return stats_; }

    /** Registry node ("l2bank") holding this bank's stats. */
    stats::Group &statsGroup() { return statsGroup_; }
    GroupId group() const { return group_; }

    /** Protocol invariant checks (tests); panics on violation. */
    void checkInvariants() const;

    /** Write active/waiting/writeback state to stderr (debugging). */
    void debugDump() const;

    /**
     * Hardening audit: throw SimError for any transaction or
     * writeback entry older than @p limit cycles — a leaked MSHR
     * equivalent (an operation that will never complete keeps its
     * entry forever).
     */
    void auditStuckTxns(Cycle now, Cycle limit) const;

    /** @return true when @p block has any in-flight state here. */
    bool
    hasActivity(BlockAddr block) const
    {
        return active_.contains(block) || wb_.contains(block) ||
               waiting_.has(block);
    }

    /** Active/waiting/writeback snapshot for `consim.diag.v1`. */
    json::Value diagJson() const;

  private:
    /** System dispatches typed events (BankDispatch/BankFillRetry)
     *  and the checkpoint layer reads raw state. */
    friend class System;
    friend struct CkptAccess;

    enum class Phase
    {
        Lookup,        ///< paying the L2 access latency
        WaitHome,      ///< GetS/GetM outstanding at the home
        WaitL1Data,    ///< extracting owner data for a local grant
        WaitFwdL1Data, ///< extracting owner data to answer a forward
        WaitVictimL1,  ///< extracting victim data before a fill
    };

    struct BankTxn
    {
        Phase phase = Phase::Lookup;
        Msg req;                 ///< the local request or forward
        Cycle started = 0;       ///< creation cycle (stuck audit)
        bool dataArrived = false;
        bool grantArrived = false;
        Msg dataMsg;
        Msg grantMsg;
        BlockAddr victimBlock = 0; ///< valid in WaitVictimL1
        bool expectPutM = false;   ///< stale WbData seen; PutM coming
        CoreId extractTarget = invalidCore; ///< L1 being extracted
    };

    struct WbEntry
    {
        bool dirty = false;
        VmId vm = invalidVm;
        Cycle started = 0;       ///< creation cycle (stuck audit)
    };

    // --- address helpers ---
    BlockAddr localOf(BlockAddr block) const;
    BlockAddr globalOf(BlockAddr local) const;
    int idxOfCore(CoreId core) const;

    // --- message handlers ---
    void onL1Request(const Msg &m);
    void dispatchLocal(BlockAddr block);
    void onL1PutM(const Msg &m);
    void onL1WbData(const Msg &m);
    void onFwd(const Msg &m);
    void onInv(const Msg &m);
    void onData(const Msg &m);
    void onGrant(const Msg &m);
    void onPutAck(const Msg &m);

    // --- operation steps ---
    void startOp(Msg m);
    void pumpQueue(BlockAddr block);
    void drainGlobalOps(BlockAddr block);
    void processFwdOnLine(const Msg &m);
    void serveFwdFromLine(const Msg &m, L2CacheLine *line);
    void serveFwdFromWb(const Msg &m, WbEntry &wb);
    void handleExtractionData(BlockAddr txn_block);
    void tryCompleteFill(BlockAddr block);
    void fillRetry(BlockAddr block);
    void installAndFinish(BlockAddr block);
    void grantLocal(const Msg &req, L2CacheLine *line);
    void finishLocal(BlockAddr block);

    /** Evict a victim line with no L1 owner (back-inval + Put). */
    void evictLineNow(L2CacheLine *line);

    /** @return a free or evictable slot for @p block, or nullptr. */
    L2CacheLine *pickVictim(BlockAddr block);

    // --- message constructors ---
    Msg makeMsg(MsgType t, BlockAddr block, CoreId dst_tile,
                Unit dst_unit) const;
    void sendToHome(MsgType t, const Msg &req);
    void sendDone(BlockAddr block);
    void sendL1(MsgType t, CoreId core, BlockAddr block,
                bool is_write, bool to_invalid = false);
    void sendFwdReply(const Msg &fwd, bool dirty);

    Fabric &fab_;
    CoreId tile_;
    GroupId group_;
    std::vector<CoreId> members_;
    int groupSize_;
    int myBankIdx_;

    CacheArray<L2CacheLine> array_;
    BlockMap<BankTxn> active_{128};
    WaitQueueMap<Msg> waiting_{128};
    BlockMap<WbEntry> wb_{128};
    /** victim block -> fill block for WaitVictimL1 extractions. */
    BlockMap<BlockAddr> victimExtract_{32};
    L2BankStats stats_;
    stats::Group statsGroup_{"l2bank"};
};

} // namespace consim

#endif // CONSIM_COHERENCE_L2_BANK_HH
