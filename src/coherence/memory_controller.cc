#include "coherence/memory_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace consim
{

MemoryController::MemoryController(Fabric &fabric, CoreId tile)
    : fab_(fabric), tile_(tile)
{
    statsGroup_.add("reads", &reads);
    statsGroup_.add("writes", &writes);
    statsGroup_.add("queue_delay", &queueDelay);
}

void
MemoryController::handle(const Msg &msg)
{
    const Cycle now = fab_.now();
    const Cycle start = std::max(now, nextFree_);
    nextFree_ = start + fab_.config().memIssueInterval;
    queueDelay.sample(static_cast<double>(start - now));

    if (msg.type == MsgType::MemWrite) {
        // Writebacks are absorbed; no reply needed.
        ++writes;
        return;
    }

    CONSIM_ASSERT(msg.type == MsgType::MemRead,
                  "MC got ", toString(msg.type));
    ++reads;
    ++outstanding_;

    const int access_latency = msg.overlappedFetch
                                   ? fab_.config().memOverlapLatency
                                   : fab_.config().memLatency;
    // Fault injection: an active memburst fault stretches DRAM
    // accesses issued during its window.
    const Cycle done = (start - now) +
                       static_cast<Cycle>(access_latency) +
                       fab_.memFaultExtraLatency();
    Msg reply = msg;
    reply.type = MsgType::Data;
    reply.srcTile = tile_;
    reply.srcUnit = Unit::Mem;
    reply.dstTile = msg.reqBankTile;
    reply.dstUnit = Unit::L2Bank;
    reply.c2cTransfer = false;
    reply.dirtyData = false;
    fab_.scheduleEvent(SimEvent(SimEventKind::MemDone, reply), done,
                       [this, reply] { finishAccess(reply); });
}

void
MemoryController::finishAccess(const Msg &reply)
{
    --outstanding_;
    fab_.send(reply);
}

} // namespace consim
