#include "coherence/memory_controller.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"

namespace consim
{

MemoryController::MemoryController(Fabric &fabric, CoreId tile)
    : fab_(fabric), tile_(tile)
{
    statsGroup_.add("reads", &reads);
    statsGroup_.add("writes", &writes);
    statsGroup_.add("queue_delay", &queueDelay);
}

void
MemoryController::setQos(VmId protected_vm, int num_vms,
                         std::uint64_t tokens, Cycle refill_cycles)
{
    if (tokens == 0) { // disable
        qosProtectedVm_ = invalidVm;
        qosTokens_ = 0;
        qosRefill_ = 1;
        buckets_.clear();
        return;
    }
    CONSIM_ASSERT(num_vms > 0 && refill_cycles >= 1,
                  "bad MC QoS parameters");
    qosProtectedVm_ = protected_vm;
    qosTokens_ = tokens;
    qosRefill_ = refill_cycles;
    buckets_.assign(static_cast<std::size_t>(num_vms),
                    TokenBucket{});
}

Cycle
MemoryController::throttleDelay(VmId vm, Cycle now)
{
    if (buckets_.empty() || vm == qosProtectedVm_ || vm < 0 ||
        static_cast<std::size_t>(vm) >= buckets_.size()) {
        return 0;
    }
    TokenBucket &b = buckets_[static_cast<std::size_t>(vm)];
    const std::uint64_t w = now / qosRefill_;
    if (b.window != w) {
        // Lazy refill: the first access of a new window resets the
        // bucket, so idle VMs carry no stale state.
        b.window = w;
        b.tokens = qosTokens_;
        b.issued = 0;
    }
    if (b.tokens == 0) {
        // Out of budget: pay latency until the next window opens, and
        // spend that window's first token now (so a storm of waiters
        // cannot all issue at the boundary for free).
        const Cycle delay = (w + 1) * qosRefill_ - now;
        b.window = w + 1;
        b.tokens = qosTokens_ - 1;
        b.issued = 1;
        return delay;
    }
    --b.tokens;
    ++b.issued;
    if (CONSIM_CHECK_ACTIVE(Full) && b.issued > qosTokens_) {
        CONSIM_CHECK_FAIL("MC ", tile_, ": VM ", vm, " issued ",
                          b.issued, " reads in one window (cap ",
                          qosTokens_, ") — token bucket leaked");
    }
    return 0;
}

void
MemoryController::handle(const Msg &msg)
{
    const Cycle now = fab_.now();
    const Cycle start = std::max(now, nextFree_);
    nextFree_ = start + fab_.config().memIssueInterval;
    queueDelay.sample(static_cast<double>(start - now));

    if (msg.type == MsgType::MemWrite) {
        // Writebacks are absorbed; no reply needed.
        ++writes;
        return;
    }

    CONSIM_ASSERT(msg.type == MsgType::MemRead,
                  "MC got ", toString(msg.type));
    ++reads;
    ++outstanding_;

    // QoS: an unprotected VM whose token bucket ran dry waits for the
    // next refill window. The wait is charged as extra access latency
    // rather than by advancing nextFree_, so a throttled bully never
    // head-of-line blocks the protected VM's reads on this channel.
    const Cycle throttle = throttleDelay(msg.vm, start);
    if (throttle > 0)
        fab_.qosRecordThrottleStall(msg.vm);

    const int access_latency = msg.overlappedFetch
                                   ? fab_.config().memOverlapLatency
                                   : fab_.config().memLatency;
    // Fault injection: an active memburst fault stretches DRAM
    // accesses issued during its window.
    const Cycle done = (start - now) + throttle +
                       static_cast<Cycle>(access_latency) +
                       fab_.memFaultExtraLatency();
    Msg reply = msg;
    reply.type = MsgType::Data;
    reply.srcTile = tile_;
    reply.srcUnit = Unit::Mem;
    reply.dstTile = msg.reqBankTile;
    reply.dstUnit = Unit::L2Bank;
    reply.c2cTransfer = false;
    reply.dirtyData = false;
    fab_.scheduleEvent(SimEvent(SimEventKind::MemDone, reply), done,
                       [this, reply] { finishAccess(reply); });
}

void
MemoryController::finishAccess(const Msg &reply)
{
    --outstanding_;
    fab_.send(reply);
}

} // namespace consim
