/**
 * @file
 * Global directory: SGI-Origin-style full-map directory tracking the
 * partition-level MESI state of every block, striped across the
 * tiles by block address (paper §IV-A). Each tile's DirectorySlice
 * serializes transactions per block (a blocking home) and owns a
 * directory cache; a directory-cache miss pays the off-chip latency
 * for the directory-state fetch, modelling the paper's per-core
 * directory caches that "reduce the number of off-chip references".
 */

#ifndef CONSIM_COHERENCE_DIRECTORY_HH
#define CONSIM_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_array.hh"
#include "coherence/fabric.hh"
#include "coherence/protocol.hh"
#include "common/block_map.hh"
#include "common/coreset.hh"
#include "common/json.hh"
#include "common/stats.hh"

namespace consim
{

/** Default width of each VM's block-address window (blocks =
 *  1 << bits). 16M blocks fits every VM up to ~72 threads; larger
 *  over-committed instances (the 128/256-core scale study) widen the
 *  whole run's windows via requiredVmSpanBits(). The width is per
 *  run, not per VM, so `block >> bits` stays a pure decode — and a
 *  run whose VMs all fit the default keeps byte-identical addresses
 *  to the fixed-width implementation (the home/MC hashes mix the
 *  full address, so the 16-core golden envelopes pin this). */
constexpr int vmSpanBits = 24;

/** @return the window width for a run whose largest VM touches
 *  @p max_blocks distinct blocks (never below the default). */
constexpr int
requiredVmSpanBits(std::uint64_t max_blocks)
{
    int bits = vmSpanBits;
    while ((1ull << bits) <= max_blocks)
        ++bits;
    return bits;
}

/** @return the base block address of a VM's window. */
constexpr BlockAddr
vmBaseBlock(VmId vm, int span_bits = vmSpanBits)
{
    return static_cast<BlockAddr>(vm) << span_bits;
}

/** One directory entry: partition-granular MESI + full sharer map. */
struct DirEntry
{
    L2State state = L2State::Invalid;
    std::int16_t owner = -1; ///< GroupId for E/M
    GroupSet sharers;        ///< set of sharing GroupIds
};

/**
 * Backing store for directory entries: one flat array per registered
 * VM, indexed by block offset within the VM's address window. The
 * storage is logically distributed across the tiles (each slice only
 * touches entries it is home for); a single allocation keeps it fast.
 */
class DirectoryStorage
{
  public:
    /** Adopt the run's window width (see requiredVmSpanBits); must
     *  happen before any VM is registered. */
    void
    setSpanBits(int bits)
    {
        CONSIM_ASSERT(bits >= vmSpanBits, "window narrower than "
                      "default");
        CONSIM_ASSERT(perVm_.empty(),
                      "span change after VM registration");
        spanBits_ = bits;
    }

    int spanBits() const { return spanBits_; }

    /** Declare a VM's address window before simulation starts. */
    void
    registerVm(VmId vm, std::uint64_t num_blocks)
    {
        CONSIM_ASSERT(vm >= 0, "bad vm");
        CONSIM_ASSERT(num_blocks <= (1ull << spanBits_),
                      "VM footprint exceeds its address window");
        if (static_cast<std::size_t>(vm) >= perVm_.size())
            perVm_.resize(vm + 1);
        perVm_[vm].assign(num_blocks, DirEntry{});
    }

    /** @return mutable entry for a block. */
    DirEntry &
    entry(BlockAddr block)
    {
        const auto vm = static_cast<std::size_t>(block >> spanBits_);
        const auto off = block & ((1ull << spanBits_) - 1);
        CONSIM_ASSERT(vm < perVm_.size() && off < perVm_[vm].size(),
                      "directory access outside registered windows: "
                      "block ", block);
        return perVm_[vm][off];
    }

    /** Walk all registered entries (invariant checks, stats). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t vm = 0; vm < perVm_.size(); ++vm) {
            for (std::size_t off = 0; off < perVm_[vm].size(); ++off) {
                const BlockAddr block =
                    (static_cast<BlockAddr>(vm) << spanBits_) | off;
                fn(block, perVm_[vm][off]);
            }
        }
    }

  private:
    std::vector<std::vector<DirEntry>> perVm_;
    int spanBits_ = vmSpanBits;
};

/** Per-slice statistic counters. */
struct DirSliceStats
{
    stats::Counter requests;
    stats::Counter forwards;      ///< FwdGetS/FwdGetM sent
    stats::Counter invalidations; ///< Inv sent
    stats::Counter memReads;
    stats::Counter memWrites;
    stats::Counter dirCacheHits;
    stats::Counter dirCacheMisses;
    stats::Counter queuedRequests; ///< arrived while block busy

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("requests", &requests);
        g.add("forwards", &forwards);
        g.add("invalidations", &invalidations);
        g.add("mem_reads", &memReads);
        g.add("mem_writes", &memWrites);
        g.add("dir_cache_hits", &dirCacheHits);
        g.add("dir_cache_misses", &dirCacheMisses);
        g.add("queued_requests", &queuedRequests);
    }
};

/** The home-node directory logic for one tile. */
class DirectorySlice
{
  public:
    DirectorySlice(Fabric &fabric, CoreId tile, DirectoryStorage &store);

    /** Handle any directory-bound message. */
    void handle(const Msg &msg);

    /** @return true when no transaction is in flight at this slice. */
    bool idle() const { return active_.empty(); }

    DirSliceStats &sliceStats() { return stats_; }
    const DirSliceStats &sliceStats() const { return stats_; }

    /** Registry node ("dir") holding this slice's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

    /** Write active/waiting transaction state to stderr. */
    void debugDump() const;

    /**
     * Hardening audit: throw SimError for any transaction older than
     * @p limit cycles (a blocked home that will never unblock).
     */
    void auditStuckTxns(Cycle now, Cycle limit) const;

    /** @return true when @p block has any in-flight state here. */
    bool
    hasActivity(BlockAddr block) const
    {
        return active_.contains(block) || waiting_.has(block);
    }

    /** Active/waiting transaction snapshot for `consim.diag.v1`. */
    json::Value diagJson() const;

  private:
    /** System dispatches typed events (DirProcess) and the
     *  checkpoint layer reads raw state. */
    friend class System;
    friend struct CkptAccess;

    struct DirCacheLine : CacheLineBase
    {
    };

    struct Txn
    {
        Msg req;
        Cycle started = 0; ///< creation cycle (stuck audit)
        int acksPending = 0;
        bool fwdAckPending = false;
        bool grantSent = false;
        bool doneReceived = false;
        bool dirFetched = false; ///< paid the off-chip state fetch
    };

    void startTxn(Msg m);
    void process(BlockAddr block);
    void processGetS(Txn &t, DirEntry &e);
    void processGetM(Txn &t, DirEntry &e);
    void processPut(Txn &t, DirEntry &e);
    void onInvAck(const Msg &m);
    void onFwdAck(const Msg &m);
    void onDone(const Msg &m);
    void tryFinish(BlockAddr block);
    void finishTxn(BlockAddr block);

    /** @return true on directory-cache hit; inserts on miss. */
    bool dirCacheAccess(BlockAddr block);

    /** Pick the sharer whose bank is closest to the requester. */
    GroupId closestSharer(const GroupSet &sharers, GroupId exclude,
                          BlockAddr block, CoreId req_bank) const;

    void sendMemRead(const Msg &req);
    void sendMemWrite(const Msg &req);
    void sendGrant(Txn &t, L2State grant, bool no_data);
    void sendToBank(MsgType type, GroupId g, const Msg &req);

    Fabric &fab_;
    CoreId tile_;
    DirectoryStorage &store_;
    CacheArray<DirCacheLine> dirCache_;
    BlockMap<Txn> active_{128};
    WaitQueueMap<Msg> waiting_{128};
    DirSliceStats stats_;
    stats::Group statsGroup_{"dir"};
};

} // namespace consim

#endif // CONSIM_COHERENCE_DIRECTORY_HH
