/**
 * @file
 * Memory controller: terminates MemRead/MemWrite messages from the
 * directory slices. Models the paper's flat 150-cycle off-chip
 * latency plus a simple bandwidth constraint (one access may start
 * every memIssueInterval cycles per controller), so that miss storms
 * in consolidated mixes queue at the controllers like the paper's
 * discussion of memory-controller pressure describes.
 */

#ifndef CONSIM_COHERENCE_MEMORY_CONTROLLER_HH
#define CONSIM_COHERENCE_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "coherence/fabric.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"

namespace consim
{

/** One off-chip memory channel, attached to a mesh tile. */
class MemoryController
{
  public:
    /**
     * @param fabric surrounding machine
     * @param tile   mesh tile this controller is attached to
     */
    MemoryController(Fabric &fabric, CoreId tile);

    /** Handle a MemRead or MemWrite. */
    void handle(const Msg &msg);

    /**
     * Per-VM QoS bandwidth throttling: every unprotected VM may issue
     * at most @p tokens reads per @p refill_cycles window on this
     * controller. A read arriving with an empty bucket is delayed to
     * the start of the next window (the added wait shows up as DRAM
     * latency, so the channel itself never head-of-line blocks the
     * protected VM). @p protected_vm is exempt; @p tokens == 0
     * disables throttling entirely.
     */
    void setQos(VmId protected_vm, int num_vms, std::uint64_t tokens,
                Cycle refill_cycles);

    /** Complete an access: send @p reply (a fully-formed Data
     *  message) back toward the requester. Dispatched by the typed
     *  MemDone event (or its fallback closure in mock fabrics). */
    void finishAccess(const Msg &reply);

    /** @return true when no access is outstanding. */
    bool idle() const { return outstanding_ == 0; }

    /** @return in-flight reads (diagnostics). */
    int outstandingReads() const { return outstanding_; }

    /** @return earliest cycle the channel can issue (diagnostics). */
    Cycle nextFree() const { return nextFree_; }

    /** @return the mesh tile this controller sits on. */
    CoreId tile() const { return tile_; }

    /** Statistics. */
    stats::Counter reads;
    stats::Counter writes;
    stats::Average queueDelay;  ///< cycles a request waited to issue

    /** Registry node ("mc") holding this controller's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

  private:
    /** Checkpoint layer reads raw state. */
    friend struct CkptAccess;

    /** One VM's read-bandwidth allowance on this controller. */
    struct TokenBucket
    {
        std::uint64_t window = 0; ///< last window index observed
        std::uint64_t tokens = 0; ///< reads left in that window
        std::uint64_t issued = 0; ///< reads issued in that window
    };

    /** @return extra cycles a read for @p vm must wait for a token
     *  (0 when QoS is off or the bucket still has budget). */
    Cycle throttleDelay(VmId vm, Cycle now);

    Fabric &fab_;
    CoreId tile_;
    Cycle nextFree_ = 0;   ///< earliest cycle the channel can issue
    int outstanding_ = 0;
    // QoS token-bucket state (empty vector = throttling off).
    VmId qosProtectedVm_ = invalidVm;
    std::uint64_t qosTokens_ = 0;
    Cycle qosRefill_ = 1;
    std::vector<TokenBucket> buckets_;
    stats::Group statsGroup_{"mc"};
};

} // namespace consim

#endif // CONSIM_COHERENCE_MEMORY_CONTROLLER_HH
