/**
 * @file
 * Memory controller: terminates MemRead/MemWrite messages from the
 * directory slices. Models the paper's flat 150-cycle off-chip
 * latency plus a simple bandwidth constraint (one access may start
 * every memIssueInterval cycles per controller), so that miss storms
 * in consolidated mixes queue at the controllers like the paper's
 * discussion of memory-controller pressure describes.
 */

#ifndef CONSIM_COHERENCE_MEMORY_CONTROLLER_HH
#define CONSIM_COHERENCE_MEMORY_CONTROLLER_HH

#include "coherence/fabric.hh"
#include "coherence/protocol.hh"
#include "common/stats.hh"

namespace consim
{

/** One off-chip memory channel, attached to a mesh tile. */
class MemoryController
{
  public:
    /**
     * @param fabric surrounding machine
     * @param tile   mesh tile this controller is attached to
     */
    MemoryController(Fabric &fabric, CoreId tile);

    /** Handle a MemRead or MemWrite. */
    void handle(const Msg &msg);

    /** Complete an access: send @p reply (a fully-formed Data
     *  message) back toward the requester. Dispatched by the typed
     *  MemDone event (or its fallback closure in mock fabrics). */
    void finishAccess(const Msg &reply);

    /** @return true when no access is outstanding. */
    bool idle() const { return outstanding_ == 0; }

    /** Statistics. */
    stats::Counter reads;
    stats::Counter writes;
    stats::Average queueDelay;  ///< cycles a request waited to issue

    /** Registry node ("mc") holding this controller's stats. */
    stats::Group &statsGroup() { return statsGroup_; }

  private:
    /** Checkpoint layer reads raw state. */
    friend struct CkptAccess;

    Fabric &fab_;
    CoreId tile_;
    Cycle nextFree_ = 0;   ///< earliest cycle the channel can issue
    int outstanding_ = 0;
    stats::Group statsGroup_{"mc"};
};

} // namespace consim

#endif // CONSIM_COHERENCE_MEMORY_CONTROLLER_HH
