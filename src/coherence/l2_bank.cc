#include "coherence/l2_bank.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/parse.hh"

namespace consim
{

namespace
{

CacheGeometry
bankGeometry(const MachineConfig &cfg)
{
    // Every tile holds 1/numCores of the aggregate L2 regardless of
    // sharing degree; the sharing degree decides which cores may use
    // it and how blocks interleave.
    CacheGeometry g;
    g.sizeBytes = cfg.l2TotalBytes /
                  static_cast<std::uint64_t>(cfg.numCores());
    g.assoc = cfg.l2Assoc;
    return g;
}

} // namespace

L2Bank::L2Bank(Fabric &fabric, CoreId tile)
    : fab_(fabric), tile_(tile), group_(fabric.groupOfTile(tile)),
      members_(fabric.config().coresOfGroup(group_)),
      groupSize_(static_cast<int>(members_.size())),
      array_(bankGeometry(fabric.config()))
{
    auto it = std::find(members_.begin(), members_.end(), tile_);
    CONSIM_ASSERT(it != members_.end(), "tile not in its own group");
    myBankIdx_ = static_cast<int>(it - members_.begin());
    // Pre-size the transaction tables from the machine: in the worst
    // case every core in the machine has a request parked at this
    // bank, and growing the tables mid-run would break the
    // zero-allocation steady state the alloc tests enforce.
    const auto n = std::max<std::size_t>(
        128, static_cast<std::size_t>(fabric.config().numCores()));
    active_.reserve(n);
    wb_.reserve(n);
    waiting_.reserve(n, 2 * n);
    stats_.registerIn(statsGroup_);
}

BlockAddr
L2Bank::localOf(BlockAddr block) const
{
    CONSIM_ASSERT(static_cast<int>(block % groupSize_) == myBankIdx_,
                  "block 0x", std::hex, block, std::dec,
                  " does not belong to bank at tile ", tile_);
    return block / static_cast<BlockAddr>(groupSize_);
}

BlockAddr
L2Bank::globalOf(BlockAddr local) const
{
    return local * static_cast<BlockAddr>(groupSize_) +
           static_cast<BlockAddr>(myBankIdx_);
}

int
L2Bank::idxOfCore(CoreId core) const
{
    auto it = std::find(members_.begin(), members_.end(), core);
    CONSIM_ASSERT(it != members_.end(), "core ", core,
                  " is not a member of group ", group_);
    return static_cast<int>(it - members_.begin());
}

void
L2Bank::handle(const Msg &msg)
{
    // Strict: junk in CONSIM_TRACE_BLOCK used to fall through
    // strtoll and silently trace block 0 (or nothing); envU64 makes
    // malformed or negative values fatal. Unset disables the trace.
    static const char *trace_env = std::getenv("CONSIM_TRACE_BLOCK");
    static const BlockAddr trace_block =
        trace_env
            ? static_cast<BlockAddr>(envU64("CONSIM_TRACE_BLOCK", 0))
            : 0;
    if (trace_env != nullptr && msg.block == trace_block) {
        std::fprintf(stderr,
                     "[%llu] bank%d %s act=%zu wait=%zu wb=%zu\n",
                     (unsigned long long)fab_.now(), tile_,
                     describe(msg).c_str(), active_.count(msg.block),
                     waiting_.depth(msg.block), wb_.count(msg.block));
    }
    switch (msg.type) {
      case MsgType::L1GetS:
      case MsgType::L1GetM:
        onL1Request(msg);
        break;
      case MsgType::L1PutM:
        onL1PutM(msg);
        break;
      case MsgType::L1InvAck:
        break; // fire-and-forget back-invalidation acks
      case MsgType::L1WbData:
        onL1WbData(msg);
        break;
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
        onFwd(msg);
        break;
      case MsgType::Inv:
        onInv(msg);
        break;
      case MsgType::Data:
        onData(msg);
        break;
      case MsgType::Grant:
        onGrant(msg);
        break;
      case MsgType::PutAck:
        onPutAck(msg);
        break;
      default:
        CONSIM_PANIC("L2 bank ", tile_, " got ", describe(msg));
    }
}

// ---------------------------------------------------------------------
// Local (member L1) requests
// ---------------------------------------------------------------------

void
L2Bank::onL1Request(const Msg &m)
{
    const BlockAddr block = m.block;
    fab_.recordL2Access(m.vm);
    if (active_.contains(block) || wb_.contains(block) ||
        waiting_.has(block)) {
        waiting_.pushBack(block, m);
        return;
    }
    BankTxn t;
    t.phase = Phase::Lookup;
    t.req = m;
    t.started = fab_.now();
    active_[block] = std::move(t);
    fab_.scheduleEvent(
        SimEvent(SimEventKind::BankDispatch, tile_, block),
        fab_.config().l2Latency,
        [this, block] { dispatchLocal(block); });
}

void
L2Bank::dispatchLocal(BlockAddr block)
{
    BankTxn *tp = active_.find(block);
    CONSIM_ASSERT(tp, "dispatch for inactive block");
    BankTxn &t = *tp;
    CONSIM_ASSERT(t.phase == Phase::Lookup, "bad dispatch phase");
    const Msg &m = t.req;
    L2CacheLine *line = array_.lookup(localOf(block));
    const bool is_write = m.type == MsgType::L1GetM;

    if (line == nullptr) {
        // Partition miss: go to the home directory.
        t.phase = Phase::WaitHome;
        ++stats_.misses;
        sendToHome(is_write ? MsgType::GetM : MsgType::GetS, m);
        drainGlobalOps(block);
        return;
    }

    if (is_write && line->state == L2State::Shared) {
        // Upgrade: other partitions may hold copies.
        t.phase = Phase::WaitHome;
        ++stats_.upgrades;
        sendToHome(MsgType::GetM, m);
        drainGlobalOps(block);
        return;
    }

    const int req_idx = idxOfCore(m.reqCore);
    if (line->ownerCore >= 0 && line->ownerCore != req_idx) {
        // A member L1 holds the line dirty; extract before granting.
        t.phase = Phase::WaitL1Data;
        t.extractTarget = members_[line->ownerCore];
        sendL1(MsgType::L1WbReq, members_[line->ownerCore], block,
               is_write, /*to_invalid=*/is_write);
        return;
    }
    CONSIM_ASSERT(line->ownerCore != req_idx,
                  "L1 owner re-requesting block 0x", std::hex, block);

    ++stats_.hits;
    grantLocal(m, line);
    finishLocal(block);
}

void
L2Bank::grantLocal(const Msg &req, L2CacheLine *line)
{
    const bool is_write = req.type == MsgType::L1GetM;
    const int req_idx = idxOfCore(req.reqCore);

    if (is_write) {
        CONSIM_ASSERT(line->state == L2State::Exclusive ||
                          line->state == L2State::Modified,
                      "write grant without partition ownership");
        // Invalidate every other member copy inside the partition.
        line->presence.forEachSet([&](int i) {
            if (i == req_idx)
                return;
            sendL1(MsgType::L1Inv, members_[i], req.block, false);
            ++stats_.backInvals;
        });
        line->presence.assignSingle(req_idx);
        line->ownerCore = static_cast<std::int16_t>(req_idx);
        line->state = L2State::Modified; // silent E->M upgrade
    } else {
        line->presence.set(req_idx);
    }
    array_.touch(line);

    Msg d = makeMsg(MsgType::L1Data, req.block, req.reqCore, Unit::L1);
    d.reqCore = req.reqCore;
    d.vm = req.vm;
    d.isWrite = is_write;
    fab_.send(d);
}

void
L2Bank::finishLocal(BlockAddr block)
{
    active_.erase(block);
    pumpQueue(block);
}

void
L2Bank::pumpQueue(BlockAddr block)
{
    // Start queued operations until one occupies the block (creates
    // an active transaction), the block enters writeback (the PutAck
    // resumes the pump), or the queue drains. Forwards and
    // invalidations may complete synchronously without occupying the
    // block, so a single pop is not enough.
    while (!active_.contains(block)) {
        if (wb_.contains(block))
            return;
        if (!waiting_.has(block))
            return;
        startOp(waiting_.popFront(block));
    }
}

void
L2Bank::drainGlobalOps(BlockAddr block)
{
    // A transaction that is now parked waiting on the home must not
    // hold up forwards/invalidations that queued behind it while it
    // was in its lookup window: the home is blocked on those, and our
    // request is queued behind the home's current transaction --
    // letting them wait would deadlock the pair.
    while (waiting_.has(block)) {
        const MsgType t = waiting_.front(block).type;
        if (t != MsgType::FwdGetS && t != MsgType::FwdGetM &&
            t != MsgType::Inv) {
            break;
        }
        Msg m = waiting_.popFront(block);
        if (m.type == MsgType::Inv)
            onInv(m);
        else
            processFwdOnLine(m);
    }
}

void
L2Bank::startOp(Msg m)
{
    switch (m.type) {
      case MsgType::L1GetS:
      case MsgType::L1GetM: {
        const BlockAddr block = m.block;
        CONSIM_ASSERT(!wb_.count(block),
                      "pump started an op during writeback");
        BankTxn t;
        t.phase = Phase::Lookup;
        t.req = std::move(m);
        t.started = fab_.now();
        active_[block] = std::move(t);
        fab_.scheduleEvent(
            SimEvent(SimEventKind::BankDispatch, tile_, block),
            fab_.config().l2Latency,
            [this, block] { dispatchLocal(block); });
        break;
      }
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
        processFwdOnLine(m);
        break;
      case MsgType::Inv:
        onInv(m);
        break;
      default:
        CONSIM_PANIC("bad queued op ", describe(m));
    }
}

// ---------------------------------------------------------------------
// L1 writebacks and extraction data
// ---------------------------------------------------------------------

void
L2Bank::onL1PutM(const Msg &m)
{
    const BlockAddr block = m.block;
    bool line_found = false;
    if (L2CacheLine *line = array_.lookup(localOf(block))) {
        const int idx = idxOfCore(m.srcTile);
        line->dirty = true;
        line->presence.clear(idx);
        if (line->ownerCore == idx)
            line->ownerCore = -1;
        line_found = true;
    }
    // Crossing with an extraction: the PutM carries the data an
    // outstanding L1WbReq was trying to pull (the WbReq will come
    // back marked stale). This applies whether or not the line is
    // still in the array (it is pinned there for victim extractions).
    BlockAddr txn_block = block;
    if (const BlockAddr *vt = victimExtract_.find(block))
        txn_block = *vt;
    const BankTxn *t = active_.find(txn_block);
    if (t &&
        (t->phase == Phase::WaitL1Data ||
         t->phase == Phase::WaitFwdL1Data ||
         t->phase == Phase::WaitVictimL1) &&
        t->extractTarget == m.srcTile) {
        handleExtractionData(txn_block);
        return;
    }
    if (line_found)
        return;
    if (WbEntry *wb = wb_.find(block)) {
        wb->dirty = true;
        return;
    }
    ++stats_.staleWrites;
}

void
L2Bank::onL1WbData(const Msg &m)
{
    BlockAddr txn_block = m.block;
    if (const BlockAddr *vt = victimExtract_.find(m.block))
        txn_block = *vt;
    BankTxn *tp = active_.find(txn_block);
    if (!tp) {
        // The extraction was satisfied by a crossing L1PutM already.
        CONSIM_ASSERT(m.stale, "WbData without extraction, ",
                      describe(m));
        return;
    }
    BankTxn &t = *tp;
    if ((t.phase != Phase::WaitL1Data &&
         t.phase != Phase::WaitFwdL1Data &&
         t.phase != Phase::WaitVictimL1) ||
        t.extractTarget != m.srcTile) {
        // Leftover response from an extraction that a crossing PutM
        // already completed; only a stale marker may remain.
        CONSIM_ASSERT(m.stale, "WbData in phase ",
                      static_cast<int>(t.phase));
        return;
    }
    if (m.stale) {
        // The L1 evicted concurrently; its L1PutM carries the data.
        t.expectPutM = true;
        return;
    }
    handleExtractionData(txn_block);
}

void
L2Bank::handleExtractionData(BlockAddr txn_block)
{
    BankTxn *tp = active_.find(txn_block);
    CONSIM_ASSERT(tp, "extraction without txn");
    BankTxn &t = *tp;

    switch (t.phase) {
      case Phase::WaitL1Data: {
        // Local grant was waiting on the previous owner's data.
        L2CacheLine *line = array_.lookup(localOf(txn_block));
        CONSIM_ASSERT(line, "extraction target vanished");
        const bool is_write = t.req.type == MsgType::L1GetM;
        line->dirty = true;
        if (line->ownerCore >= 0) {
            if (is_write)
                line->presence.clear(line->ownerCore);
            line->ownerCore = -1;
        }
        ++stats_.hits;
        grantLocal(t.req, line);
        finishLocal(txn_block);
        break;
      }
      case Phase::WaitFwdL1Data: {
        L2CacheLine *line = array_.lookup(localOf(txn_block));
        CONSIM_ASSERT(line, "forward target vanished");
        line->dirty = true;
        if (line->ownerCore >= 0) {
            if (t.req.type == MsgType::FwdGetM)
                line->presence.clear(line->ownerCore);
            line->ownerCore = -1;
        }
        const Msg fwd = t.req;
        active_.erase(txn_block);
        serveFwdFromLine(fwd, line);
        // serveFwdFromLine never re-enters a txn for this block; pop
        // any queued work now.
        finishLocal(txn_block);
        break;
      }
      case Phase::WaitVictimL1: {
        // The victim's data arrived; evict it and complete the fill.
        const BlockAddr victim = t.victimBlock;
        victimExtract_.erase(victim);
        L2CacheLine *vline = array_.lookup(localOf(victim));
        CONSIM_ASSERT(vline && vline->pinned, "pinned victim vanished");
        vline->dirty = true;
        vline->ownerCore = -1;
        evictLineNow(vline);
        installAndFinish(txn_block);
        break;
      }
      default:
        CONSIM_PANIC("extraction data in bad phase");
    }
}

// ---------------------------------------------------------------------
// Inbound global protocol traffic
// ---------------------------------------------------------------------

void
L2Bank::onFwd(const Msg &m)
{
    const BlockAddr block = m.block;
    ++stats_.fwdsServed;
    if (WbEntry *wb = wb_.find(block)) {
        serveFwdFromWb(m, *wb);
        return;
    }
    const BankTxn *t = active_.find(block);
    if (t && t->phase != Phase::WaitHome) {
        // A local-service operation is mid-flight; it finishes
        // without the home, so the forward waits at the front.
        waiting_.pushFront(block, m);
        return;
    }
    processFwdOnLine(m);
}

void
L2Bank::processFwdOnLine(const Msg &m)
{
    const BlockAddr block = m.block;
    L2CacheLine *line = array_.lookup(localOf(block));
    CONSIM_ASSERT(line, "forward for absent block 0x", std::hex, block,
                  std::dec, " at tile ", tile_);

    if (line->ownerCore >= 0) {
        // Pull the dirty data out of the owning member L1 first.
        CONSIM_ASSERT(!active_.count(block),
                      "fwd extraction over active txn");
        BankTxn t;
        t.phase = Phase::WaitFwdL1Data;
        t.req = m;
        t.started = fab_.now();
        t.extractTarget = members_[line->ownerCore];
        active_[block] = std::move(t);
        sendL1(MsgType::L1WbReq, members_[line->ownerCore], block,
               false, /*to_invalid=*/m.type == MsgType::FwdGetM);
        return;
    }
    serveFwdFromLine(m, line);
}

void
L2Bank::serveFwdFromLine(const Msg &m, L2CacheLine *line)
{
    const bool dirty = line->dirty;
    sendFwdReply(m, dirty);
    if (m.type == MsgType::FwdGetS) {
        // Downgrade: the home performs the sharing writeback, so our
        // retained copy is clean Shared.
        line->state = L2State::Shared;
        line->dirty = false;
    } else {
        // FwdGetM: surrender the block entirely.
        line->presence.forEachSet([&](int i) {
            sendL1(MsgType::L1Inv, members_[i], m.block, false);
            ++stats_.backInvals;
        });
        array_.invalidate(line);
    }
}

void
L2Bank::serveFwdFromWb(const Msg &m, WbEntry &wb)
{
    sendFwdReply(m, wb.dirty);
    // The pending Put is now stale; the home will treat it as such.
    wb.dirty = false;
}

void
L2Bank::sendFwdReply(const Msg &fwd, bool dirty)
{
    Msg data = makeMsg(MsgType::Data, fwd.block, fwd.reqBankTile,
                       Unit::L2Bank);
    data.reqCore = fwd.reqCore;
    data.reqBankTile = fwd.reqBankTile;
    data.reqGroup = fwd.reqGroup;
    data.vm = fwd.vm;
    data.c2cTransfer = true;
    data.dirtyData = dirty;
    fab_.send(data);

    Msg ack = makeMsg(MsgType::FwdAck, fwd.block,
                      fab_.homeTileFor(fwd.block), Unit::Dir);
    ack.vm = fwd.vm;
    ack.dirtyData = dirty;
    fab_.send(ack);
}

void
L2Bank::onInv(const Msg &m)
{
    const BlockAddr block = m.block;
    ++stats_.invsReceived;
    if (WbEntry *wb = wb_.find(block)) {
        wb->dirty = false; // data is dead; Put becomes stale
    } else {
        L2CacheLine *line = array_.lookup(localOf(block));
        CONSIM_ASSERT(line, "Inv for absent block 0x", std::hex, block,
                      std::dec, " at tile ", tile_);
        CONSIM_ASSERT(line->ownerCore < 0, "Inv for owned line");
        line->presence.forEachSet([&](int i) {
            sendL1(MsgType::L1Inv, members_[i], block, false);
            ++stats_.backInvals;
        });
        array_.invalidate(line);
    }
    Msg ack = makeMsg(MsgType::InvAck, block,
                      fab_.homeTileFor(block), Unit::Dir);
    ack.vm = m.vm;
    fab_.send(ack);
}

// ---------------------------------------------------------------------
// Fill path (home responses)
// ---------------------------------------------------------------------

void
L2Bank::onData(const Msg &m)
{
    BankTxn *tp = active_.find(m.block);
    CONSIM_ASSERT(tp && (tp->phase == Phase::WaitHome ||
                         tp->phase == Phase::WaitVictimL1),
                  "Data without fill in flight: ", describe(m));
    BankTxn &t = *tp;
    t.dataArrived = true;
    t.dataMsg = m;
    if (t.phase == Phase::WaitHome)
        tryCompleteFill(m.block);
}

void
L2Bank::onGrant(const Msg &m)
{
    BankTxn *tp = active_.find(m.block);
    CONSIM_ASSERT(tp && (tp->phase == Phase::WaitHome ||
                         tp->phase == Phase::WaitVictimL1),
                  "Grant without fill in flight: ", describe(m));
    BankTxn &t = *tp;
    t.grantArrived = true;
    t.grantMsg = m;
    if (t.phase == Phase::WaitHome)
        tryCompleteFill(m.block);
}

void
L2Bank::tryCompleteFill(BlockAddr block)
{
    BankTxn *tp = active_.find(block);
    CONSIM_ASSERT(tp, "completeFill inactive");
    BankTxn &t = *tp;
    if (t.phase != Phase::WaitHome)
        return;
    if (!t.grantArrived)
        return;
    if (!t.grantMsg.noDataNeeded && !t.dataArrived)
        return;

    if (t.grantMsg.noDataNeeded) {
        // Upgrade grant: the S line must still be present (the home
        // would have supplied data had we been invalidated).
        L2CacheLine *line = array_.lookup(localOf(block));
        CONSIM_ASSERT(line, "noData grant with absent line");
        CONSIM_ASSERT(t.grantMsg.grantState == L2State::Modified,
                      "noData grant must be an upgrade");
        line->state = L2State::Modified;
        line->dirty = true;
        grantLocal(t.req, line);
        sendDone(block);
        finishLocal(block);
        return;
    }

    L2CacheLine *slot = pickVictim(block);
    if (slot == nullptr) {
        // Every candidate in the set is mid-operation; retry shortly.
        ++stats_.fillRetries;
        fab_.scheduleEvent(
            SimEvent(SimEventKind::BankFillRetry, tile_, block), 8,
            [this, block] { fillRetry(block); });
        return;
    }
    if (slot->valid) {
        if (slot->ownerCore >= 0) {
            // The victim's data lives dirty in a member L1.
            const BlockAddr victim = globalOf(slot->tag);
            t.phase = Phase::WaitVictimL1;
            t.victimBlock = victim;
            t.extractTarget = members_[slot->ownerCore];
            slot->pinned = true;
            victimExtract_[victim] = block;
            sendL1(MsgType::L1WbReq, members_[slot->ownerCore], victim,
                   false, /*to_invalid=*/true);
            return;
        }
        evictLineNow(slot);
    }
    installAndFinish(block);
}

void
L2Bank::fillRetry(BlockAddr block)
{
    if (active_.count(block))
        tryCompleteFill(block);
}

void
L2Bank::installAndFinish(BlockAddr block)
{
    BankTxn *tp = active_.find(block);
    CONSIM_ASSERT(tp, "install without txn");
    BankTxn &t = *tp;

    // Fills honour the owning VM's QoS way mask (all-ones when
    // partitioning is off, where victim() is the identical choice).
    const std::uint64_t mask = fab_.qosWayMask(fab_.vmOfBlock(block));
    L2CacheLine *slot =
        mask == ~0ull ? array_.victim(localOf(block))
                      : array_.victimInWays(localOf(block), mask);
    CONSIM_ASSERT(slot && !slot->valid,
                  "no free slot at install time");
    if (CONSIM_CHECK_ACTIVE(Full)) {
        const int way = array_.wayOf(localOf(block), slot);
        if (!((mask >> way) & 1))
            CONSIM_CHECK_FAIL("QoS way-mask violation: fill of block ",
                              block, " (vm ", fab_.vmOfBlock(block),
                              ") landed in way ", way,
                              " outside mask ", mask);
    }
    array_.install(slot, localOf(block));
    slot->state = t.grantMsg.grantState;
    slot->dirty = t.grantMsg.grantState == L2State::Modified &&
                  t.dataMsg.dirtyData;
    slot->vm = fab_.vmOfBlock(block);

    fab_.recordL2Miss(t.req.vm, t.dataMsg.c2cTransfer,
                      t.dataMsg.c2cTransfer && t.dataMsg.dirtyData);

    grantLocal(t.req, slot);
    sendDone(block);
    finishLocal(block);
}

L2CacheLine *
L2Bank::pickVictim(BlockAddr block)
{
    // Scan the set ourselves: the generic victim() cannot see pins or
    // per-block operation state. Only ways the owning VM's QoS mask
    // allows are candidates (the mask is all-ones when off).
    const BlockAddr local = localOf(block);
    const std::uint64_t mask = fab_.qosWayMask(fab_.vmOfBlock(block));
    L2CacheLine *best = nullptr;
    int way = -1;
    array_.forEachInSet(local, [&](L2CacheLine &line) {
        ++way;
        if (!((mask >> way) & 1))
            return;
        if (line.pinned)
            return;
        if (!line.valid) {
            if (best == nullptr || best->valid)
                best = &line;
            return;
        }
        const BlockAddr gblock = globalOf(line.tag);
        if (active_.contains(gblock) || wb_.contains(gblock))
            return;
        if (waiting_.has(gblock))
            return;
        if (best == nullptr ||
            (best->valid && line.lruStamp < best->lruStamp))
            best = &line;
    });
    return best;
}

void
L2Bank::evictLineNow(L2CacheLine *line)
{
    CONSIM_ASSERT(line->valid && line->ownerCore < 0,
                  "evicting an owned line");
    const BlockAddr block = globalOf(line->tag);
    line->presence.forEachSet([&](int i) {
        sendL1(MsgType::L1Inv, members_[i], block, false);
        ++stats_.backInvals;
    });
    const bool dirty = line->dirty;
    if (dirty)
        ++stats_.evictDirty;
    else
        ++stats_.evictClean;
    wb_[block] = WbEntry{dirty, line->vm, fab_.now()};

    Msg put = makeMsg(dirty ? MsgType::PutM : MsgType::PutS, block,
                      fab_.homeTileFor(block), Unit::Dir);
    put.reqGroup = group_;
    put.vm = line->vm;
    put.dirtyData = dirty;
    fab_.send(put);

    array_.invalidate(line);
}

void
L2Bank::onPutAck(const Msg &m)
{
    const auto erased = wb_.erase(m.block);
    CONSIM_ASSERT(erased == 1, "PutAck without writeback entry");
    pumpQueue(m.block);
}

// ---------------------------------------------------------------------
// Message helpers and invariants
// ---------------------------------------------------------------------

Msg
L2Bank::makeMsg(MsgType t, BlockAddr block, CoreId dst_tile,
                Unit dst_unit) const
{
    Msg m;
    m.type = t;
    m.block = block;
    m.srcTile = tile_;
    m.srcUnit = Unit::L2Bank;
    m.dstTile = dst_tile;
    m.dstUnit = dst_unit;
    return m;
}

void
L2Bank::sendToHome(MsgType t, const Msg &req)
{
    Msg m = makeMsg(t, req.block, fab_.homeTileFor(req.block),
                    Unit::Dir);
    m.reqCore = req.reqCore;
    m.reqBankTile = tile_;
    m.reqGroup = group_;
    m.vm = req.vm;
    m.isWrite = t == MsgType::GetM;
    fab_.send(m);
}

void
L2Bank::sendL1(MsgType t, CoreId core, BlockAddr block, bool is_write,
               bool to_invalid)
{
    Msg m = makeMsg(t, block, core, Unit::L1);
    m.isWrite = is_write;
    m.toInvalid = to_invalid;
    m.vm = fab_.vmOfBlock(block);
    fab_.send(m);
}

void
L2Bank::sendDone(BlockAddr block)
{
    Msg m = makeMsg(MsgType::Done, block, fab_.homeTileFor(block),
                    Unit::Dir);
    m.vm = fab_.vmOfBlock(block);
    fab_.send(m);
}

void
L2Bank::checkInvariants() const
{
    array_.forEachLine([&](const L2CacheLine &line) {
        if (!line.valid)
            return;
        // An owner must also be present.
        if (line.ownerCore >= 0) {
            CONSIM_ASSERT(line.presence.test(line.ownerCore),
                          "owner without presence bit");
            CONSIM_ASSERT(line.state == L2State::Exclusive ||
                              line.state == L2State::Modified,
                          "L1 owner under a Shared partition line");
        }
        CONSIM_ASSERT(line.presence.count() <= groupSize_,
                      "presence bits exceed group size");
        if (line.state == L2State::Shared)
            CONSIM_ASSERT(!line.dirty || true,
                          "unreachable"); // S may be dirty only
                                          // transiently; tolerated
    });
}

void
L2Bank::auditStuckTxns(Cycle now, Cycle limit) const
{
    active_.forEach([&](BlockAddr block, const BankTxn &t) {
        if (now - t.started > limit) {
            CONSIM_CHECK_FAIL("bank ", tile_, ": transaction on block "
                              "0x", std::hex, block, std::dec,
                              " stuck for ", now - t.started,
                              " cycles (phase ",
                              static_cast<int>(t.phase), ", req ",
                              describe(t.req), ")");
        }
    });
    wb_.forEach([&](BlockAddr block, const WbEntry &wb) {
        if (now - wb.started > limit) {
            CONSIM_CHECK_FAIL("bank ", tile_, ": writeback of block "
                              "0x", std::hex, block, std::dec,
                              " awaiting PutAck for ",
                              now - wb.started, " cycles");
        }
    });
}

namespace
{

/** Sorted keys of a block-indexed map (deterministic diag output). */
template <typename Map>
std::vector<BlockAddr>
sortedBlocks(const Map &m)
{
    std::vector<BlockAddr> keys = m.keys();
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

json::Value
L2Bank::diagJson() const
{
    auto v = json::Value::object();
    v.set("tile", tile_);
    auto act = json::Value::array();
    for (const BlockAddr block : sortedBlocks(active_)) {
        const BankTxn &t = active_.at(block);
        auto e = json::Value::object();
        e.set("block", block);
        e.set("phase", static_cast<int>(t.phase));
        e.set("started", t.started);
        e.set("req", describe(t.req));
        if (t.extractTarget != invalidCore)
            e.set("extract_target", t.extractTarget);
        act.push(std::move(e));
    }
    v.set("active", std::move(act));
    auto waitv = json::Value::array();
    for (const BlockAddr block : sortedBlocks(waiting_)) {
        auto e = json::Value::object();
        e.set("block", block);
        e.set("depth",
              static_cast<std::uint64_t>(waiting_.depth(block)));
        e.set("front", describe(waiting_.front(block)));
        waitv.push(std::move(e));
    }
    v.set("waiting", std::move(waitv));
    auto wbv = json::Value::array();
    for (const BlockAddr block : sortedBlocks(wb_)) {
        const WbEntry &wb = wb_.at(block);
        auto e = json::Value::object();
        e.set("block", block);
        e.set("dirty", wb.dirty);
        e.set("started", wb.started);
        wbv.push(std::move(e));
    }
    v.set("writebacks", std::move(wbv));
    return v;
}

void
L2Bank::debugDump() const
{
    active_.forEach([&](BlockAddr block, const BankTxn &t) {
        std::fprintf(stderr,
                     "  bank%d blk=0x%llx phase=%d req=%s data=%d "
                     "grant=%d victim=0x%llx expectPutM=%d\n",
                     tile_, (unsigned long long)block,
                     static_cast<int>(t.phase), toString(t.req.type),
                     t.dataArrived, t.grantArrived,
                     (unsigned long long)t.victimBlock, t.expectPutM);
    });
    for (const BlockAddr block : waiting_.keys()) {
        std::fprintf(stderr, "  bank%d blk=0x%llx waiting=%zu "
                     "front=%s\n",
                     tile_, (unsigned long long)block,
                     waiting_.depth(block),
                     toString(waiting_.front(block).type));
    }
    wb_.forEach([&](BlockAddr block, const WbEntry &wb) {
        std::fprintf(stderr, "  bank%d blk=0x%llx wb dirty=%d\n",
                     tile_, (unsigned long long)block, wb.dirty);
    });
}

} // namespace consim
