#include "workload/generator.hh"

#include <algorithm>

#include "coherence/directory.hh" // vmBaseBlock
#include "common/logging.hh"

namespace consim
{

SyntheticStream::SyntheticStream(const WorkloadProfile &profile,
                                 VmId vm, int thread_idx,
                                 std::uint64_t seed,
                                 Footprint *footprint, int span_bits)
    : prof_(profile), vm_(vm), threadIdx_(thread_idx),
      rng_(seed ^ (0xa5a5u + static_cast<std::uint64_t>(thread_idx) *
                                 0x9e3779b97f4a7c15ull)),
      footprint_(footprint),
      base_(vmBaseBlock(vm, span_bits > 0 ? span_bits : vmSpanBits))
{
    const int bits = span_bits > 0 ? span_bits : vmSpanBits;
    sharedRoBase_ = 0;
    migratoryBase_ = prof_.sharedRoBlocks;
    privateBase_ = migratoryBase_ + prof_.migratoryBlocks +
                   static_cast<std::uint64_t>(thread_idx) *
                       prof_.privateBlocksPerThread;
    // Per-stream window fit: a thread-count override may place this
    // thread's private region beyond the profile-default footprint,
    // so check the stream's own extent, not the profile's.
    CONSIM_ASSERT(privateBase_ + prof_.privateBlocksPerThread <
                      (1ull << bits),
                  "thread ", thread_idx, " private region exceeds the "
                  "VM address window");
    // Threads of one VM share data, so they share window schedules.
    hotSharedPos_ = 0;
    hotPrivatePos_ = 0;
    segShared_ = prof_.activeSharedSegment
                     ? std::min(prof_.activeSharedSegment,
                                prof_.sharedRoBlocks)
                     : prof_.sharedRoBlocks;
    segPrivate_ = prof_.activePrivateSegment
                      ? std::min(prof_.activePrivateSegment,
                                 prof_.privateBlocksPerThread)
                      : prof_.privateBlocksPerThread;
}

BlockAddr
SyntheticStream::pickSharedRo()
{
    std::uint64_t off;
    if (prof_.hotSharedBlocks > 0 && rng_.chance(prof_.hotFraction)) {
        // Hot: either the L1-resident head of the window, or a
        // coverage access anywhere in the sliding window.
        const std::uint64_t span =
            rng_.chance(prof_.veryHotFraction)
                ? std::min(prof_.veryHotBlocks, prof_.hotSharedBlocks)
                : prof_.hotSharedBlocks;
        off = (hotSharedPos_ + rng_.below(span)) % segShared_;
    } else {
        off = rng_.below(prof_.sharedRoBlocks); // cold tail
    }
    return sharedRoBase_ + off;
}

BlockAddr
SyntheticStream::pickMigratory()
{
    // Migratory data is small and uniformly contended; the paper's
    // join/merge activity bounces these blocks between caches.
    return migratoryBase_ + rng_.below(prof_.migratoryBlocks);
}

BlockAddr
SyntheticStream::pickPrivate()
{
    // Burst phases (Bursty profile): while this VM holds the burst
    // slot, the private hot window widens past an L2 partition. The
    // schedule is a pure function of the thread's own reference count
    // (and the VM id, which rotates the slot), so it is deterministic
    // and checkpoint-exact; both phases draw the RNG identically.
    std::uint64_t hot = prof_.hotPrivateBlocks;
    if (prof_.burstPeriodRefs != 0 &&
        (static_cast<std::uint64_t>(vm_) +
         refs_ / prof_.burstPeriodRefs) %
                prof_.burstPhases ==
            0) {
        hot = std::min(prof_.burstHotPrivateBlocks,
                       prof_.privateBlocksPerThread);
    }
    std::uint64_t off;
    if (hot > 0 && rng_.chance(prof_.hotFraction)) {
        const std::uint64_t span =
            rng_.chance(prof_.veryHotFraction)
                ? std::min(prof_.veryHotBlocks, hot)
                : hot;
        off = (hotPrivatePos_ + rng_.below(span)) % segPrivate_;
    } else {
        off = rng_.below(prof_.privateBlocksPerThread);
    }
    return privateBase_ + off;
}

WorkSlice
SyntheticStream::next()
{
    WorkSlice s;
    s.computeCycles =
        static_cast<std::uint32_t>(rng_.range(prof_.computeMin,
                                              prof_.computeMax));

    std::uint64_t vm_offset;
    const double r = rng_.uniform();
    if (r < prof_.pSharedRo) {
        vm_offset = pickSharedRo();
        s.isWrite = false;
    } else if (r < prof_.pSharedRo + prof_.pMigratory) {
        vm_offset = pickMigratory();
        s.isWrite = rng_.chance(prof_.migratoryWriteFraction);
    } else {
        vm_offset = pickPrivate();
        s.isWrite = rng_.chance(prof_.privateWriteFraction);
    }
    s.block = base_ + vm_offset;

    if (footprint_)
        footprint_->touch(vm_offset);

    ++refs_;
    if (prof_.hotSlidePeriod && refs_ % prof_.hotSlidePeriod == 0) {
        // Working-set turnover: the windows creep through the active
        // segments, so steady state keeps producing fresh misses (the
        // first toucher goes to memory, followers ride c2c transfers)
        // and, one lap later, capacity-sensitive re-references.
        hotSharedPos_ = (hotSharedPos_ + prof_.slideStepShared) %
                        std::max<std::uint64_t>(segShared_, 1);
        hotPrivatePos_ = (hotPrivatePos_ + prof_.slideStepPrivate) %
                         std::max<std::uint64_t>(segPrivate_, 1);
    }

    if (++refsInTxn_ >= prof_.refsPerTransaction) {
        refsInTxn_ = 0;
        s.endsTransaction = true;
    }
    return s;
}

WorkloadInstance::WorkloadInstance(const WorkloadProfile &profile,
                                   VmId vm, std::uint64_t seed,
                                   int num_threads, int span_bits)
    : prof_(profile), vm_(vm),
      numThreads_(num_threads > 0 ? num_threads : profile.numThreads),
      spanBits_(span_bits > 0 ? span_bits : vmSpanBits),
      footprint_(prof_.sharedRoBlocks + prof_.migratoryBlocks +
                 static_cast<std::uint64_t>(
                     num_threads > 0 ? num_threads
                                     : profile.numThreads) *
                     prof_.privateBlocksPerThread)
{
    const int bits = spanBits_;
    CONSIM_ASSERT(totalBlocks() < (1ull << bits),
                  "instance footprint (", totalBlocks(), " blocks, ",
                  numThreads_, " threads) exceeds the VM address "
                  "window; widen the run's span (requiredVmSpanBits)");
    streams_.reserve(numThreads_);
    for (int t = 0; t < numThreads_; ++t) {
        streams_.push_back(std::make_unique<SyntheticStream>(
            prof_, vm_, t, seed, &footprint_, bits));
    }
}

} // namespace consim
