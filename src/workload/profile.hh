/**
 * @file
 * Workload profiles: parametric memory-behaviour models of the four
 * commercial workloads the paper consolidates (TPC-W, TPC-H, SPECjbb,
 * SPECweb).
 *
 * The real workloads (DB2 + AIX checkpoints, Zeus, Java middleware)
 * are unobtainable, so each profile is a synthetic region model whose
 * *emergent* statistics are calibrated against the paper's published
 * per-workload characterization (Table II): fraction of last-private-
 * level misses served by cache-to-cache transfer, the clean/dirty
 * split of those transfers, and the working-set size in 64B blocks.
 *
 * The model: each VM's address window holds
 *   - a read-only shared region (hot subset + cold tail), touched by
 *     all threads: source of clean c2c transfers and replication;
 *   - a migratory shared region, read/written by all threads: source
 *     of dirty c2c transfers;
 *   - per-thread private regions (hot subset + cold tail): source of
 *     capacity pressure and footprint.
 * Hot subsets slide slowly so that steady state keeps producing
 * misses (working-set turnover), mimicking transaction phase churn.
 */

#ifndef CONSIM_WORKLOAD_PROFILE_HH
#define CONSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace consim
{

/** The four consolidated workloads, plus a synthetic antagonist. */
enum class WorkloadKind
{
    TpcW,
    TpcH,
    SpecJbb,
    SpecWeb,
    /** Deterministic "bully" VM for isolation studies: an LLC-
     *  streaming, high-bandwidth antagonist that thrashes shared
     *  cache and saturates the memory controllers. Not one of the
     *  paper's workloads — excluded from all(). */
    Bully,
    /** Phase-changing variant for dynamic-scheduling studies: each VM
     *  alternates deterministically between a quiet cache-resident
     *  phase and a burst phase whose private hot window thrashes an
     *  L2 partition; VMs burst in rotation, so no static placement
     *  keeps the current burster isolated. Not one of the paper's
     *  workloads — excluded from all(). */
    Bursty,
};

/** @return the paper's name for a workload. */
std::string toString(WorkloadKind k);

/** Parametric model of one workload's memory behaviour. */
struct WorkloadProfile
{
    WorkloadKind kind = WorkloadKind::TpcW;
    std::string name;
    int numThreads = 4;

    // --- region sizes (64B blocks) ---
    std::uint64_t sharedRoBlocks = 0;
    std::uint64_t migratoryBlocks = 0;
    std::uint64_t privateBlocksPerThread = 0;

    // --- access mix (fractions of memory references) ---
    double pSharedRo = 0.0;
    double pMigratory = 0.0; // remainder goes to the private region

    // --- locality ---
    // Three-level model per region: a "very hot" L1-resident subset,
    // a sliding hot window (the L2-level active set whose turnover
    // generates steady-state misses and c2c transfers), and a cold
    // uniform tail over the whole region (memory misses + footprint).
    double hotFraction = 0.9;       ///< P(access is hot at all)
    double veryHotFraction = 0.5;   ///< of hot refs: L1-resident set
    std::uint64_t veryHotBlocks = 256;
    std::uint64_t hotSharedBlocks = 0;   ///< shared hot window W
    std::uint64_t hotPrivateBlocks = 0;  ///< private hot window Wp
    std::uint64_t slideStepShared = 0;   ///< blocks per window slide
    std::uint64_t slideStepPrivate = 0;
    std::uint64_t hotSlidePeriod = 0; ///< refs between window slides
    /** Hot windows slide modulo these "active segments": blocks re-
     *  enter the window after one lap, so larger caches that retain
     *  the segment convert those re-entries into hits (the capacity
     *  sensitivity of Fig. 2). 0 = whole region. */
    std::uint64_t activeSharedSegment = 0;
    std::uint64_t activePrivateSegment = 0;

    // --- deterministic burst phases (Bursty; 0 = steady) ---
    /** References per burst phase slot. A VM is bursting while
     *  (vmId + refs/burstPeriodRefs) % burstPhases == 0, so the
     *  burst rotates across VMs and the schedule is a pure function
     *  of each thread's own reference count (checkpoint-exact). */
    std::uint64_t burstPeriodRefs = 0;
    /** Private hot-window width while bursting (replaces
     *  hotPrivateBlocks; sized to thrash an L2 partition). */
    std::uint64_t burstHotPrivateBlocks = 0;
    /** Phase slots per rotation (>= 2: one burster, rest quiet). */
    std::uint64_t burstPhases = 0;

    // --- write behaviour ---
    double privateWriteFraction = 0.3;
    double migratoryWriteFraction = 0.5;

    // --- instruction mix & transactions ---
    std::uint32_t computeMin = 2; ///< non-mem instrs per mem ref
    std::uint32_t computeMax = 4;
    std::uint32_t refsPerTransaction = 1000;

    // --- paper Table II targets (reporting / validation) ---
    double paperC2cAll = 0.0;   ///< of last-private-level misses
    double paperC2cClean = 0.0; ///< of those transfers
    double paperC2cDirty = 0.0;
    std::uint64_t paperBlocks = 0;

    /** Total distinct blocks the model can touch. */
    std::uint64_t
    totalBlocks() const
    {
        return sharedRoBlocks + migratoryBlocks +
               static_cast<std::uint64_t>(numThreads) *
                   privateBlocksPerThread;
    }

    /** @return canonical profile for a workload. */
    static const WorkloadProfile &get(WorkloadKind k);

    /** @return all four paper profiles in paper order (the Bully
     *  antagonist is deliberately excluded). */
    static const std::vector<WorkloadProfile> &all();
};

} // namespace consim

#endif // CONSIM_WORKLOAD_PROFILE_HH
