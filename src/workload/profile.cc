#include "workload/profile.hh"

#include "common/logging.hh"

namespace consim
{

std::string
toString(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::TpcW:
        return "TPC-W";
      case WorkloadKind::TpcH:
        return "TPC-H";
      case WorkloadKind::SpecJbb:
        return "SPECjbb";
      case WorkloadKind::SpecWeb:
        return "SPECweb";
      case WorkloadKind::Bully:
        return "Bully";
      case WorkloadKind::Bursty:
        return "Bursty";
    }
    return "?";
}

namespace
{

/**
 * TPC-W: web commerce / online bookstore on DB2. Largest footprint
 * of the four (1,125K blocks = ~72 MB), modest sharing: only 15% of
 * private-level misses are c2c transfers, 84% of them clean. Its
 * size makes it the cache bully of the consolidated mixes.
 */
WorkloadProfile
makeTpcW()
{
    WorkloadProfile p;
    p.computeMin = 1;
    p.computeMax = 3;
    p.kind = WorkloadKind::TpcW;
    p.name = "TPC-W";
    p.sharedRoBlocks = 250'000;
    p.migratoryBlocks = 300;
    p.privateBlocksPerThread = 218'500; // total ~1,125K blocks
    p.pSharedRo = 0.38;
    p.pMigratory = 0.010;
    p.hotFraction = 0.935;
    p.veryHotFraction = 0.55;
    p.hotSharedBlocks = 600;
    p.slideStepShared = 150;
    p.hotPrivateBlocks = 630;
    p.slideStepPrivate = 450;
    p.hotSlidePeriod = 4'000;
    p.activeSharedSegment = 6'000;
    p.activePrivateSegment = 11'700;
    p.privateWriteFraction = 0.30;
    p.migratoryWriteFraction = 0.6;
    p.refsPerTransaction = 600; // browsing-mix web transactions
    p.paperC2cAll = 0.15;
    p.paperC2cClean = 0.84;
    p.paperC2cDirty = 0.16;
    p.paperBlocks = 1'125'000;
    return p;
}

/**
 * TPC-H: decision support (query 12) on DB2. Smallest footprint
 * (172K blocks = ~11 MB, fits on chip) but the most communication:
 * 69% of misses are c2c and a majority (57%) dirty, reflecting the
 * intra-query join/merge sharing the paper describes.
 */
WorkloadProfile
makeTpcH()
{
    WorkloadProfile p;
    p.computeMin = 1;
    p.computeMax = 3;
    p.kind = WorkloadKind::TpcH;
    p.name = "TPC-H";
    p.sharedRoBlocks = 100'000;
    p.migratoryBlocks = 2'000;
    p.privateBlocksPerThread = 17'500; // total 172K blocks
    p.pSharedRo = 0.42;
    p.pMigratory = 0.095;
    p.hotFraction = 0.965;
    p.veryHotFraction = 0.5;
    p.hotSharedBlocks = 600;
    p.slideStepShared = 330;
    p.hotPrivateBlocks = 120;
    p.slideStepPrivate = 30;
    p.hotSlidePeriod = 4'000;
    p.activeSharedSegment = 900;
    p.activePrivateSegment = 120;
    p.privateWriteFraction = 0.20;
    p.migratoryWriteFraction = 0.35;
    p.refsPerTransaction = 1'000; // long-running query pieces
    p.paperC2cAll = 0.69;
    p.paperC2cClean = 0.43;
    p.paperC2cDirty = 0.57;
    p.paperBlocks = 172'000;
    return p;
}

/**
 * SPECjbb: Java middleware order processing. Medium footprint (606K
 * blocks = ~39 MB) with heavy read-mostly sharing in the Java heap:
 * 52% of misses are c2c, 94% clean. Highly replication-sensitive.
 */
WorkloadProfile
makeSpecJbb()
{
    WorkloadProfile p;
    p.computeMin = 1;
    p.computeMax = 3;
    p.kind = WorkloadKind::SpecJbb;
    p.name = "SPECjbb";
    p.sharedRoBlocks = 350'000;
    p.migratoryBlocks = 300;
    p.privateBlocksPerThread = 64'000; // total ~606K blocks
    p.pSharedRo = 0.50;
    p.pMigratory = 0.008;
    p.hotFraction = 0.9825;
    p.veryHotFraction = 0.5;
    p.hotSharedBlocks = 620;
    p.slideStepShared = 430;
    p.hotPrivateBlocks = 310;
    p.slideStepPrivate = 150;
    p.hotSlidePeriod = 4'000;
    p.activeSharedSegment = 17'200;
    p.activePrivateSegment = 5'550;
    p.privateWriteFraction = 0.30;
    p.migratoryWriteFraction = 0.6;
    p.refsPerTransaction = 400; // warehouse order transactions
    p.paperC2cAll = 0.52;
    p.paperC2cClean = 0.94;
    p.paperC2cDirty = 0.06;
    p.paperBlocks = 606'000;
    return p;
}

/**
 * SPECweb: Zeus web serving. Large footprint (986K blocks = ~63 MB),
 * read-mostly file/metadata sharing: 37% c2c, 93% clean.
 */
WorkloadProfile
makeSpecWeb()
{
    WorkloadProfile p;
    p.computeMin = 1;
    p.computeMax = 3;
    p.kind = WorkloadKind::SpecWeb;
    p.name = "SPECweb";
    p.sharedRoBlocks = 550'000;
    p.migratoryBlocks = 300;
    p.privateBlocksPerThread = 109'000; // total ~986K blocks
    p.pSharedRo = 0.35;
    p.pMigratory = 0.006;
    p.hotFraction = 0.975;
    p.veryHotFraction = 0.5;
    p.hotSharedBlocks = 700;
    p.slideStepShared = 240;
    p.hotPrivateBlocks = 340;
    p.slideStepPrivate = 200;
    p.hotSlidePeriod = 4'000;
    p.activeSharedSegment = 9'600;
    p.activePrivateSegment = 7'000;
    p.privateWriteFraction = 0.25;
    p.migratoryWriteFraction = 0.6;
    p.refsPerTransaction = 250; // HTTP requests
    p.paperC2cAll = 0.37;
    p.paperC2cClean = 0.93;
    p.paperC2cDirty = 0.07;
    p.paperBlocks = 986'000;
    return p;
}

/**
 * Bully: a synthetic antagonist, not a paper workload. Streams
 * through a huge private region with almost no reuse (tiny hot set,
 * full-region slide segment) and minimal compute per reference, so it
 * floods the shared L2 with fills and the memory controllers with
 * reads. Used by the QoS/isolation experiments as the noisy neighbour
 * that the protected VM must be insulated from.
 */
WorkloadProfile
makeBully()
{
    WorkloadProfile p;
    p.kind = WorkloadKind::Bully;
    p.name = "Bully";
    p.sharedRoBlocks = 1'000;
    p.migratoryBlocks = 100;
    p.privateBlocksPerThread = 1'000'000; // ~64 MB per thread
    p.pSharedRo = 0.02;
    p.pMigratory = 0.0;
    p.hotFraction = 0.10;  // 90% of refs stream the cold tail
    p.veryHotFraction = 0.5;
    p.hotSharedBlocks = 64;
    p.slideStepShared = 16;
    p.hotPrivateBlocks = 256;
    p.slideStepPrivate = 256; // full-window slide: no carry-over
    p.hotSlidePeriod = 1'000;
    p.activeSharedSegment = 1'000;
    p.activePrivateSegment = 0; // slide over the whole region
    p.privateWriteFraction = 0.35;
    p.migratoryWriteFraction = 0.5;
    p.computeMin = 1; // memory-bound: barely any compute
    p.computeMax = 1;
    p.refsPerTransaction = 1'000;
    p.paperC2cAll = 0.0; // synthetic: no paper targets
    p.paperC2cClean = 0.0;
    p.paperC2cDirty = 0.0;
    p.paperBlocks = 0;
    return p;
}

/**
 * Bursty: a phase-changing consolidation guest, not a paper workload.
 * Most of the time it runs a quiet, cache-resident transaction mix;
 * every burstPeriodRefs references it takes a turn (rotating across
 * VM ids) at a sustained burst phase whose private hot window
 * overflows a small-chip L2 partition when two threads share one,
 * but fits when a thread has a partition to itself. A static
 * placement packs the burster's threads and pays the thrash for the
 * whole phase; a migration policy can spread them into idle
 * partitions — the workload exists to give the dynamic scheduling
 * policies a phase worth reacting to.
 */
WorkloadProfile
makeBursty()
{
    WorkloadProfile p;
    p.kind = WorkloadKind::Bursty;
    p.name = "Bursty";
    p.sharedRoBlocks = 20'000;
    p.migratoryBlocks = 200;
    p.privateBlocksPerThread = 120'000;
    p.pSharedRo = 0.20;
    p.pMigratory = 0.010;
    p.hotFraction = 0.95;
    p.veryHotFraction = 0.5;
    p.hotSharedBlocks = 400;
    p.slideStepShared = 100;
    p.hotPrivateBlocks = 400; // quiet phase: ~25 KB, L2-resident
    p.slideStepPrivate = 100;
    p.hotSlidePeriod = 4'000;
    p.activeSharedSegment = 4'000;
    p.activePrivateSegment = 60'000;
    p.burstPeriodRefs = 200'000;
    // Burst: ~160 KB per thread. Sized against the dyn-sched bursty
    // chip (2 MB L2, sharing 2 => 256 KB partitions): two packed
    // threads overflow a partition, one thread alone fits, and the
    // window is small enough to re-warm within a few epochs after a
    // migration — so moving a burster to an idle partition pays off
    // inside the feedback loop's verdict horizon.
    p.burstHotPrivateBlocks = 2'500;
    p.burstPhases = 3;
    p.privateWriteFraction = 0.30;
    p.migratoryWriteFraction = 0.5;
    p.computeMin = 1;
    p.computeMax = 2;
    p.refsPerTransaction = 500;
    p.paperC2cAll = 0.0; // synthetic: no paper targets
    p.paperC2cClean = 0.0;
    p.paperC2cDirty = 0.0;
    p.paperBlocks = 0;
    return p;
}

} // namespace

const WorkloadProfile &
WorkloadProfile::get(WorkloadKind k)
{
    static const WorkloadProfile tpcw = makeTpcW();
    static const WorkloadProfile tpch = makeTpcH();
    static const WorkloadProfile jbb = makeSpecJbb();
    static const WorkloadProfile web = makeSpecWeb();
    switch (k) {
      case WorkloadKind::TpcW:
        return tpcw;
      case WorkloadKind::TpcH:
        return tpch;
      case WorkloadKind::SpecJbb:
        return jbb;
      case WorkloadKind::SpecWeb:
        return web;
      case WorkloadKind::Bully: {
        static const WorkloadProfile bully = makeBully();
        return bully;
      }
      case WorkloadKind::Bursty: {
        static const WorkloadProfile bursty = makeBursty();
        return bursty;
      }
    }
    CONSIM_PANIC("bad workload kind");
}

const std::vector<WorkloadProfile> &
WorkloadProfile::all()
{
    static const std::vector<WorkloadProfile> profiles = {
        WorkloadProfile::get(WorkloadKind::TpcW),
        WorkloadProfile::get(WorkloadKind::SpecJbb),
        WorkloadProfile::get(WorkloadKind::TpcH),
        WorkloadProfile::get(WorkloadKind::SpecWeb),
    };
    return profiles;
}

} // namespace consim
