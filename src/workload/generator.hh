/**
 * @file
 * Synthetic instruction-stream generator: turns a WorkloadProfile
 * into an endless, seeded, per-thread stream of WorkSlices laid out
 * in the owning VM's address window. See profile.hh for the model.
 */

#ifndef CONSIM_WORKLOAD_GENERATOR_HH
#define CONSIM_WORKLOAD_GENERATOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/instr_stream.hh"
#include "workload/profile.hh"

namespace consim
{

/**
 * Tracks the distinct blocks a VM has touched (Table II column).
 *
 * A VM's threads may run on different tiles, so under the
 * tile-parallel event core several lanes touch one footprint
 * concurrently. The flags are byte-wide relaxed atomics (bit-packed
 * vector<bool> would corrupt neighbours under concurrent writes) and
 * the counter increments once per winning test-and-set — the final
 * count is the cardinality of the touched set, identical under any
 * interleaving and hence byte-identical to serial. Readers
 * (results, checkpoints) only run at window boundaries, after the
 * lane barrier.
 */
class Footprint
{
  public:
    explicit Footprint(std::uint64_t capacity_blocks)
        : touched_(capacity_blocks)
    {
    }

    /** Mark a VM-relative block offset as touched. */
    void
    touch(std::uint64_t offset)
    {
        if (offset >= touched_.size())
            return;
        // Plain-load fast path: after warmup nearly every reference
        // hits an already-touched block.
        if (touched_[offset].load(std::memory_order_relaxed))
            return;
        if (touched_[offset].exchange(1, std::memory_order_relaxed) ==
            0)
            count_.fetch_add(1, std::memory_order_relaxed);
    }

    /** @return distinct blocks touched so far. */
    std::uint64_t
    distinctBlocks() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    friend struct CkptAccess;

    std::vector<std::atomic<std::uint8_t>> touched_;
    std::atomic<std::uint64_t> count_{0};
};

/** One thread's endless synthetic reference stream. */
class SyntheticStream : public InstrStream
{
  public:
    /**
     * @param profile    the workload model
     * @param vm         owning VM (fixes the address window)
     * @param thread_idx 0..numThreads-1 within the VM
     * @param seed       stream seed (derives the thread's RNG)
     * @param footprint  shared per-VM footprint tracker (may be null)
     * @param span_bits  the run's VM-window width (see
     *                   requiredVmSpanBits; default fits VMs up to
     *                   ~72 threads)
     */
    SyntheticStream(const WorkloadProfile &profile, VmId vm,
                    int thread_idx, std::uint64_t seed,
                    Footprint *footprint, int span_bits = 0);

    WorkSlice next() override;

    /** @return total references generated (diagnostics). */
    std::uint64_t refsGenerated() const { return refs_; }

  private:
    /** Checkpoint layer saves/restores the mutable stream state
     *  (rng, hot-window positions, counters). */
    friend struct CkptAccess;

    BlockAddr pickSharedRo();
    BlockAddr pickMigratory();
    BlockAddr pickPrivate();

    const WorkloadProfile &prof_;
    VmId vm_;
    int threadIdx_;
    Rng rng_;
    Footprint *footprint_;
    BlockAddr base_; ///< window base: vmBaseBlock(vm, span_bits)

    // VM-relative region bases (block offsets)
    std::uint64_t sharedRoBase_;
    std::uint64_t migratoryBase_;
    std::uint64_t privateBase_;

    // sliding hot windows (positions within the active segments)
    std::uint64_t hotSharedPos_ = 0;
    std::uint64_t hotPrivatePos_ = 0;
    std::uint64_t segShared_ = 0;  ///< resolved active segment sizes
    std::uint64_t segPrivate_ = 0;

    std::uint64_t refs_ = 0;
    std::uint32_t refsInTxn_ = 0;
};

/**
 * All streams of one workload instance plus its footprint tracker.
 * The VM layer in src/core binds these to cores via the scheduler.
 */
class WorkloadInstance
{
  public:
    /**
     * @param profile     workload model
     * @param vm          VM id (address window)
     * @param seed        instance seed; thread streams derive from it
     * @param num_threads thread-count override for heterogeneous VM
     *                    mixes (0 = the profile's default). Streams
     *                    and the private-region footprint scale with
     *                    it; the shared regions are per-VM and do not.
     * @param span_bits   the run's VM-window width (0 = the default
     *                    vmSpanBits); every VM of a run must use the
     *                    same width or addresses would collide.
     */
    WorkloadInstance(const WorkloadProfile &profile, VmId vm,
                     std::uint64_t seed, int num_threads = 0,
                     int span_bits = 0);

    const WorkloadProfile &profile() const { return prof_; }
    VmId vm() const { return vm_; }
    int numThreads() const { return numThreads_; }

    /** The run's resolved VM-window width this instance encodes
     *  addresses with. */
    int spanBits() const { return spanBits_; }

    /** Distinct blocks this instance can touch: the profile's shared
     *  regions plus one private region per actual thread. */
    std::uint64_t
    totalBlocks() const
    {
        return prof_.sharedRoBlocks + prof_.migratoryBlocks +
               static_cast<std::uint64_t>(numThreads_) *
                   prof_.privateBlocksPerThread;
    }

    /** @return the stream for a thread index. */
    SyntheticStream &thread(int idx) { return *streams_.at(idx); }

    /** @return distinct blocks this instance has touched. */
    std::uint64_t distinctBlocks() const
    {
        return footprint_.distinctBlocks();
    }

  private:
    friend struct CkptAccess;

    const WorkloadProfile &prof_;
    VmId vm_;
    int numThreads_;
    int spanBits_;
    Footprint footprint_;
    std::vector<std::unique_ptr<SyntheticStream>> streams_;
};

} // namespace consim

#endif // CONSIM_WORKLOAD_GENERATOR_HH
