/**
 * @file
 * Per-VM quality-of-service (performance isolation) configuration.
 *
 * The consolidation study characterizes interference but offers only
 * the sharing degree as a knob; this layer adds enforcement at the
 * three shared resources a noisy neighbour can monopolize:
 *
 *   L2 ways — the protected VM owns an exclusive slice of every L2
 *             set (CAT-style way partitioning: masks govern fills and
 *             victim selection only; lines already resident stay
 *             valid wherever they are).
 *   NoC VCs — per-vnet virtual channels are reserved for the
 *             protected VM's packets, which also win switch
 *             allocation first (with a deterministic periodic yield
 *             cycle so unprotected traffic keeps forward progress).
 *   MC b/w  — unprotected VMs draw read tokens from a per-controller
 *             bucket refilled every window; an empty bucket defers
 *             the access to the next window boundary.
 *
 * Mode `dynamic` additionally re-sizes the protected way slice at
 * epoch boundaries from the stats registry's per-VM miss counters
 * (grow-only, from the configured floor toward assoc-1), so the
 * partition adapts to observed pressure.
 *
 * Spec grammar (CLI `--qos` / env `CONSIM_QOS` / checkpoint context):
 *   off
 *   static:vm=V,ways=W[,vcs=N][,tokens=T][,refill=R]
 *   dynamic:vm=V,ways=W[,vcs=N][,tokens=T][,refill=R][,epoch=E]
 * e.g. "static:vm=0,ways=6,vcs=1,tokens=8,refill=64"
 */

#ifndef CONSIM_CORE_QOS_HH
#define CONSIM_CORE_QOS_HH

#include <cstdint>
#include <string>

#include "common/json.hh"
#include "common/types.hh"

namespace consim
{

/** QoS enforcement mode. */
enum class QosMode
{
    Off,     ///< no enforcement (the paper's machine)
    Static,  ///< fixed way/VC/token allocations
    Dynamic, ///< static allocations + epoch way repartitioner
};

/** @return the grammar keyword for a mode. */
const char *toString(QosMode m);

/** Per-VM isolation knobs for one simulation point. */
struct QosConfig
{
    QosMode mode = QosMode::Off;

    /** The VM whose performance the mechanisms protect. */
    VmId protectedVm = 0;
    /** L2 ways per set reserved for the protected VM (the dynamic
     *  repartitioner's floor). Must leave at least one way for the
     *  other VMs, so valid values are 1..assoc-1. */
    int protectedWays = 4;
    /** Virtual channels per vnet reserved for protected packets
     *  (0 = no reservation; must leave one VC per vnet shared). */
    int reservedVcs = 1;
    /** Memory-controller read tokens an unprotected VM may spend per
     *  refill window, per controller. */
    std::uint64_t mcTokens = 8;
    /** Token-bucket refill window (cycles). */
    Cycle mcRefillCycles = 64;
    /** Dynamic mode: repartition at absolute multiples of this many
     *  cycles (ignored in static mode). */
    Cycle epochCycles = 100'000;

    bool enabled() const { return mode != QosMode::Off; }

    /**
     * Parse the spec grammar. On failure returns false and, when
     * @p err is non-null, stores a human-readable reason that names
     * the valid catalog (same style as FaultPlan::parse).
     */
    static bool parse(const std::string &text, QosConfig &out,
                      std::string *err = nullptr);

    /** @return the config in grammar form (round-trips parse). */
    std::string spec() const;

    /** @return JSON object for the run.v1 config echo. */
    json::Value toJson() const;
};

} // namespace consim

#endif // CONSIM_CORE_QOS_HH
