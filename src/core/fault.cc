#include "core/fault.hh"

#include <cctype>
#include <sstream>

#include "common/parse.hh"

namespace consim
{

namespace
{

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

constexpr const char *catalog =
    "wedge:core=C,at=CYCLE | drop:nth=N | "
    "memburst:at=CYCLE,len=CYCLES,extra=CYCLES";

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg + " (valid: " + std::string(catalog) + ")";
    return false;
}

/**
 * Parse "key=value" pairs after the kind keyword. Each kind accepts
 * exactly its own parameter set — a key from another kind's grammar
 * is an error, not a silent no-op — and every listed key is
 * mandatory.
 */
bool
parseParams(const std::vector<std::string> &kvs,
            const std::vector<std::string> &wanted, FaultEvent &e,
            std::string *err)
{
    std::vector<bool> seen(wanted.size(), false);
    const std::string kind = toString(e.kind);
    for (const std::string &kv : kvs) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            return fail(err, kind + ": expected key=value, got '" +
                                 kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        std::size_t which = wanted.size();
        for (std::size_t i = 0; i < wanted.size(); ++i) {
            if (wanted[i] == key) {
                which = i;
                break;
            }
        }
        if (which == wanted.size())
            return fail(err, kind + " does not take parameter '" +
                                 key + "'");
        if (seen[which])
            return fail(err, kind + ": duplicate parameter '" + key +
                                 "'");
        seen[which] = true;
        std::uint64_t v = 0;
        if (!parseU64(val, v))
            return fail(err, "bad number '" + val + "' for " + key);
        if (key == "core")
            e.core = static_cast<CoreId>(v);
        else if (key == "at")
            e.at = v;
        else if (key == "nth")
            e.nth = v;
        else if (key == "len")
            e.len = v;
        else if (key == "extra")
            e.extra = v;
    }
    for (std::size_t i = 0; i < wanted.size(); ++i) {
        if (!seen[i])
            return fail(err, kind + ": missing parameter '" +
                                 wanted[i] + "'");
    }
    return true;
}

} // namespace

const char *
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::WedgeCore:
        return "wedge";
      case FaultKind::DropResponse:
        return "drop";
      case FaultKind::MemBurst:
        return "memburst";
    }
    return "?";
}

std::string
FaultEvent::spec() const
{
    std::ostringstream os;
    os << toString(kind);
    switch (kind) {
      case FaultKind::WedgeCore:
        os << ":core=" << core << ",at=" << at;
        break;
      case FaultKind::DropResponse:
        os << ":nth=" << nth;
        break;
      case FaultKind::MemBurst:
        os << ":at=" << at << ",len=" << len << ",extra=" << extra;
        break;
    }
    return os.str();
}

bool
FaultPlan::parse(const std::string &text, FaultPlan &out,
                 std::string *err)
{
    FaultPlan plan;
    for (const auto &ev : split(text, ';')) {
        const auto colon = ev.find(':');
        const std::string kind = ev.substr(0, colon);
        const std::vector<std::string> params =
            colon == std::string::npos
                ? std::vector<std::string>{}
                : split(ev.substr(colon + 1), ',');
        FaultEvent e;
        if (kind == "wedge") {
            e.kind = FaultKind::WedgeCore;
            if (!parseParams(params, {"core", "at"}, e, err))
                return false;
            if (e.core < 0)
                return fail(err, "wedge: bad core");
        } else if (kind == "drop") {
            e.kind = FaultKind::DropResponse;
            if (!parseParams(params, {"nth"}, e, err))
                return false;
            if (e.nth == 0)
                return fail(err, "drop: nth must be >= 1");
        } else if (kind == "memburst") {
            e.kind = FaultKind::MemBurst;
            if (!parseParams(params, {"at", "len", "extra"}, e, err))
                return false;
            if (e.len == 0 || e.extra == 0)
                return fail(err,
                            "memburst: len and extra must be >= 1");
        } else {
            return fail(err,
                        "unknown fault kind '" + kind + "'");
        }
        plan.events.push_back(e);
    }
    out = std::move(plan);
    return true;
}

std::string
FaultPlan::spec() const
{
    std::string s;
    for (const auto &e : events) {
        if (!s.empty())
            s += ';';
        s += e.spec();
    }
    return s;
}

json::Value
FaultPlan::toJson() const
{
    auto arr = json::Value::array();
    for (const auto &e : events) {
        auto v = json::Value::object();
        v.set("kind", toString(e.kind));
        switch (e.kind) {
          case FaultKind::WedgeCore:
            v.set("core", e.core);
            v.set("at", e.at);
            break;
          case FaultKind::DropResponse:
            v.set("nth", e.nth);
            break;
          case FaultKind::MemBurst:
            v.set("at", e.at);
            v.set("len", e.len);
            v.set("extra", e.extra);
            break;
        }
        arr.push(std::move(v));
    }
    return arr;
}

} // namespace consim
