#include "core/report.hh"

#include <cstdlib>
#include <map>
#include <tuple>

#include "exec/sweep.hh"

namespace consim
{

namespace
{

using BaselineKey = std::tuple<int, int, int, std::size_t>;

BaselineKey
baselineKey(WorkloadKind kind, SchedPolicy policy,
            SharingDegree sharing, std::size_t num_seeds)
{
    return {static_cast<int>(kind), static_cast<int>(policy),
            static_cast<int>(sharing), num_seeds};
}

/** Memoized baselines; main-thread access only. */
std::map<BaselineKey, Baseline> &
baselineCache()
{
    static std::map<BaselineKey, Baseline> cache;
    return cache;
}

Baseline
baselineOf(WorkloadKind kind, const RunResult &r)
{
    Baseline b;
    b.cyclesPerTxn = r.meanCyclesPerTxn(kind);
    b.missRate = r.meanMissRate(kind);
    b.missLatency = r.meanMissLatency(kind);
    return b;
}

} // namespace

const std::vector<std::uint64_t> &
benchSeeds()
{
    static const std::vector<std::uint64_t> seeds = [] {
        // One seed by default; set CONSIM_SEEDS=N for the multi-seed
        // averaging of Alameldeen & Wood that the paper follows.
        int n = 1;
        if (const char *v = std::getenv("CONSIM_SEEDS")) {
            const int parsed = std::atoi(v);
            if (parsed > 0 && parsed <= 16)
                n = parsed;
        }
        std::vector<std::uint64_t> s;
        for (int i = 0; i < n; ++i)
            s.push_back(1 + i);
        return s;
    }();
    return seeds;
}

const Baseline &
isolationBaseline(WorkloadKind kind, SchedPolicy policy,
                  SharingDegree sharing,
                  const std::vector<std::uint64_t> &seeds)
{
    auto &cache = baselineCache();
    const auto key = baselineKey(kind, policy, sharing, seeds.size());
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const RunConfig cfg = isolationConfig(kind, policy, sharing);
    const RunResult r = runAveraged(cfg, seeds);
    return cache.emplace(key, baselineOf(kind, r)).first->second;
}

void
prewarmIsolationBaselines(const std::vector<BaselineRequest> &wants,
                          const std::vector<std::uint64_t> &seeds)
{
    auto &cache = baselineCache();
    std::vector<BaselineRequest> missing;
    std::vector<RunConfig> configs;
    for (const auto &w : wants) {
        const auto key =
            baselineKey(w.kind, w.policy, w.sharing, seeds.size());
        if (cache.count(key))
            continue;
        // Skip duplicates within one request batch.
        bool seen = false;
        for (const auto &m : missing) {
            if (m.kind == w.kind && m.policy == w.policy &&
                m.sharing == w.sharing) {
                seen = true;
                break;
            }
        }
        if (seen)
            continue;
        missing.push_back(w);
        configs.push_back(
            isolationConfig(w.kind, w.policy, w.sharing));
    }
    const auto results = runSweepAveraged(configs, seeds);
    for (std::size_t i = 0; i < missing.size(); ++i) {
        const auto &w = missing[i];
        cache.emplace(
            baselineKey(w.kind, w.policy, w.sharing, seeds.size()),
            baselineOf(w.kind, results[i]));
    }
}

void
printHeader(std::ostream &os, const std::string &title,
            const std::string &paper_ref,
            const std::string &expectation)
{
    os << "\n=== " << title << " ===\n";
    if (!paper_ref.empty())
        os << "reproduces: " << paper_ref << "\n";
    if (!expectation.empty())
        os << "paper shape: " << expectation << "\n";
    os << "\n";
}

} // namespace consim
