#include "core/report.hh"

#include <cstdlib>
#include <map>
#include <tuple>

namespace consim
{

const std::vector<std::uint64_t> &
benchSeeds()
{
    static const std::vector<std::uint64_t> seeds = [] {
        // One seed by default; set CONSIM_SEEDS=N for the multi-seed
        // averaging of Alameldeen & Wood that the paper follows.
        int n = 1;
        if (const char *v = std::getenv("CONSIM_SEEDS")) {
            const int parsed = std::atoi(v);
            if (parsed > 0 && parsed <= 16)
                n = parsed;
        }
        std::vector<std::uint64_t> s;
        for (int i = 0; i < n; ++i)
            s.push_back(1 + i);
        return s;
    }();
    return seeds;
}

const Baseline &
isolationBaseline(WorkloadKind kind, SchedPolicy policy,
                  SharingDegree sharing,
                  const std::vector<std::uint64_t> &seeds)
{
    using Key = std::tuple<int, int, int, std::size_t>;
    static std::map<Key, Baseline> cache;
    const Key key{static_cast<int>(kind), static_cast<int>(policy),
                  static_cast<int>(sharing), seeds.size()};
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const RunConfig cfg = isolationConfig(kind, policy, sharing);
    const RunResult r = runAveraged(cfg, seeds);
    Baseline b;
    b.cyclesPerTxn = r.meanCyclesPerTxn(kind);
    b.missRate = r.meanMissRate(kind);
    b.missLatency = r.meanMissLatency(kind);
    return cache.emplace(key, b).first->second;
}

void
printHeader(std::ostream &os, const std::string &title,
            const std::string &paper_ref,
            const std::string &expectation)
{
    os << "\n=== " << title << " ===\n";
    if (!paper_ref.empty())
        os << "reproduces: " << paper_ref << "\n";
    if (!expectation.empty())
        os << "paper shape: " << expectation << "\n";
    os << "\n";
}

} // namespace consim
