#include "core/report.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <tuple>

#include "common/logging.hh"
#include "common/parse.hh"
#include "exec/sweep.hh"
#include "workload/profile.hh"

namespace consim
{

namespace
{

using BaselineKey = std::tuple<int, int, int, std::size_t>;

BaselineKey
baselineKey(WorkloadKind kind, SchedPolicy policy,
            SharingDegree sharing, std::size_t num_seeds)
{
    return {static_cast<int>(kind), static_cast<int>(policy),
            static_cast<int>(sharing), num_seeds};
}

/** Memoized baselines; main-thread access only. */
std::map<BaselineKey, Baseline> &
baselineCache()
{
    static std::map<BaselineKey, Baseline> cache;
    return cache;
}

Baseline
baselineOf(WorkloadKind kind, const RunResult &r)
{
    Baseline b;
    b.cyclesPerTxn = r.meanCyclesPerTxn(kind);
    b.missRate = r.meanMissRate(kind);
    b.missLatency = r.meanMissLatency(kind);
    return b;
}

} // namespace

const std::vector<std::uint64_t> &
benchSeeds()
{
    static const std::vector<std::uint64_t> seeds = [] {
        // One seed by default; set CONSIM_SEEDS=N for the multi-seed
        // averaging of Alameldeen & Wood that the paper follows.
        // Malformed or out-of-range values are fatal (strict parse),
        // not silently one seed.
        const int n = envIntInRange("CONSIM_SEEDS", 1, 16, 1);
        std::vector<std::uint64_t> s;
        for (int i = 0; i < n; ++i)
            s.push_back(1 + i);
        return s;
    }();
    return seeds;
}

const Baseline &
isolationBaseline(WorkloadKind kind, SchedPolicy policy,
                  SharingDegree sharing,
                  const std::vector<std::uint64_t> &seeds)
{
    auto &cache = baselineCache();
    const auto key = baselineKey(kind, policy, sharing, seeds.size());
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const RunConfig cfg = isolationConfig(kind, policy, sharing);
    const RunResult r = runAveraged(cfg, seeds);
    return cache.emplace(key, baselineOf(kind, r)).first->second;
}

void
prewarmIsolationBaselines(const std::vector<BaselineRequest> &wants,
                          const std::vector<std::uint64_t> &seeds)
{
    auto &cache = baselineCache();
    std::vector<BaselineRequest> missing;
    std::vector<RunConfig> configs;
    for (const auto &w : wants) {
        const auto key =
            baselineKey(w.kind, w.policy, w.sharing, seeds.size());
        if (cache.count(key))
            continue;
        // Skip duplicates within one request batch.
        bool seen = false;
        for (const auto &m : missing) {
            if (m.kind == w.kind && m.policy == w.policy &&
                m.sharing == w.sharing) {
                seen = true;
                break;
            }
        }
        if (seen)
            continue;
        missing.push_back(w);
        configs.push_back(
            isolationConfig(w.kind, w.policy, w.sharing));
    }
    const auto results = runSweepAveraged(configs, seeds);
    for (std::size_t i = 0; i < missing.size(); ++i) {
        const auto &w = missing[i];
        cache.emplace(
            baselineKey(w.kind, w.policy, w.sharing, seeds.size()),
            baselineOf(w.kind, results[i]));
    }
}

json::Value
toJson(const MachineConfig &m)
{
    auto v = json::Value::object();
    v.set("mesh_x", m.meshX);
    v.set("mesh_y", m.meshY);
    v.set("l0_bytes", m.l0Bytes);
    v.set("l1_bytes", m.l1Bytes);
    v.set("l2_total_bytes", m.l2TotalBytes);
    v.set("l2_assoc", m.l2Assoc);
    v.set("l2_latency", m.l2Latency);
    v.set("sharing", toString(m.sharing));
    v.set("mem_latency", m.memLatency);
    // Echoed only when it departs the default, keeping the baseline
    // envelope byte-stable (the isolation experiments raise it to
    // model bandwidth-constrained consolidation nodes).
    if (m.memIssueInterval != MachineConfig{}.memIssueInterval)
        v.set("mem_issue_interval", m.memIssueInterval);
    v.set("num_mem_ctrls", m.numMemCtrls);
    v.set("dir_cache_enabled", m.dirCacheEnabled);
    v.set("clean_forwarding", m.cleanForwarding);
    v.set("ideal_noc", m.idealNoc);
    v.set("flat_intra_group", m.flatIntraGroup);
    return v;
}

json::Value
toJson(const RunConfig &cfg)
{
    auto v = json::Value::object();
    v.set("machine", toJson(cfg.machine));
    auto workloads = json::Value::array();
    for (const auto kind : cfg.workloads)
        workloads.push(toString(kind));
    v.set("workloads", std::move(workloads));
    // Heterogeneous thread counts are echoed only when configured,
    // keeping the default envelope byte-stable across versions.
    if (!cfg.vmThreads.empty()) {
        auto vm_threads = json::Value::array();
        for (const int t : cfg.vmThreads)
            vm_threads.push(t);
        v.set("vm_threads", std::move(vm_threads));
    }
    v.set("policy", toString(cfg.policy));
    v.set("seed", cfg.seed);
    v.set("warmup_cycles", cfg.warmupCycles);
    v.set("measure_cycles", cfg.measureCycles);
    v.set("migration_interval_cycles", cfg.migrationIntervalCycles);
    // Only over-committed runs configure a timeslice; echoed when
    // set, keeping the default envelope byte-stable across versions.
    if (cfg.timesliceCycles != 0)
        v.set("timeslice_cycles", cfg.timesliceCycles);
    // Hardening knobs are echoed only when set, keeping the default
    // envelope byte-stable across versions.
    if (!cfg.faults.empty())
        v.set("faults", cfg.faults.toJson());
    if (cfg.qos.enabled())
        v.set("qos", cfg.qos.toJson());
    if (cfg.dynSched.enabled())
        v.set("dyn_sched", cfg.dynSched.toJson());
    if (cfg.watchdogIntervalCycles != 0)
        v.set("watchdog_interval_cycles", cfg.watchdogIntervalCycles);
    if (cfg.cycleDeadline != 0)
        v.set("cycle_deadline", cfg.cycleDeadline);
    return v;
}

json::Value
toJson(const VmResult &r)
{
    auto v = json::Value::object();
    v.set("kind", toString(r.kind));
    v.set("transactions", r.transactions);
    v.set("instructions", r.instructions);
    v.set("l1_misses", r.l1Misses);
    v.set("l2_accesses", r.l2Accesses);
    v.set("l2_misses", r.l2Misses);
    v.set("c2c_clean", r.c2cClean);
    v.set("c2c_dirty", r.c2cDirty);
    v.set("distinct_blocks", r.distinctBlocks);
    // QoS/isolation metrics are echoed only when nonzero, keeping the
    // QoS-free envelope byte-stable across versions.
    if (r.mcThrottleStalls != 0)
        v.set("mc_throttle_stalls", r.mcThrottleStalls);
    v.set("cycles_per_transaction", r.cyclesPerTransaction);
    v.set("miss_rate", r.missRate);
    v.set("avg_miss_latency", r.avgMissLatency);
    v.set("c2c_fraction", r.c2cFraction);
    v.set("c2c_dirty_share", r.c2cDirtyShare);
    if (r.slowdownVsIsolated != 0.0)
        v.set("slowdown_vs_isolated", r.slowdownVsIsolated);
    return v;
}

json::Value
toJson(const RunResult &r)
{
    auto v = json::Value::object();
    v.set("measured_cycles", r.measuredCycles);
    // Seed-averaged results disclose how many seed runs actually
    // survived into the average; single runs keep the envelope
    // byte-stable by omitting the field.
    if (r.seedsUsed != 0)
        v.set("seeds_used", r.seedsUsed);
    // Migration count appears only when the dynamic scheduler moved a
    // thread, keeping dyn-free envelopes byte-stable across versions.
    if (r.dynMigrations != 0)
        v.set("dyn_migrations", r.dynMigrations);
    auto vms = json::Value::array();
    for (const auto &vm : r.vms)
        vms.push(toJson(vm));
    v.set("vms", std::move(vms));
    v.set("net_avg_latency", r.netAvgLatency);
    v.set("net_packets", r.netPackets);

    auto rep = json::Value::object();
    rep.set("valid_lines", r.replication.validLines);
    rep.set("replicated_lines", r.replication.replicatedLines);
    rep.set("distinct_blocks", r.replication.distinctBlocks);
    rep.set("replicated_fraction", r.replication.replicatedFraction());
    auto valid_per_vm = json::Value::array();
    for (const auto n : r.replication.validPerVm)
        valid_per_vm.push(n);
    rep.set("valid_per_vm", std::move(valid_per_vm));
    auto repl_per_vm = json::Value::array();
    for (const auto n : r.replication.replicatedPerVm)
        repl_per_vm.push(n);
    rep.set("replicated_per_vm", std::move(repl_per_vm));
    v.set("replication", std::move(rep));

    auto occ = json::Value::object();
    auto capacity = json::Value::array();
    for (const auto n : r.occupancy.capacity)
        capacity.push(n);
    occ.set("capacity", std::move(capacity));
    auto lines = json::Value::array();
    for (const auto &group : r.occupancy.lines) {
        auto row = json::Value::array();
        for (const auto n : group)
            row.push(n);
        lines.push(std::move(row));
    }
    occ.set("lines", std::move(lines));
    v.set("occupancy", std::move(occ));
    return v;
}

json::Value
runResultJson(const RunConfig &cfg, const RunResult &r)
{
    auto v = json::Value::object();
    v.set("schema", "consim.run.v1");
    v.set("config", toJson(cfg));
    v.set("result", toJson(r));
    return v;
}

void
dumpStats(std::ostream &os, const stats::Group &root)
{
    root.dump(os);
}

std::string
JsonReport::pathFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    if (const char *env = std::getenv("CONSIM_JSON"))
        return env;
    return "";
}

JsonReport::JsonReport(std::string id, std::string title,
                       std::string path)
    : path_(std::move(path)), doc_(json::Value::object())
{
    doc_.set("schema", "consim.bench.v1");
    doc_.set("id", std::move(id));
    doc_.set("title", std::move(title));
    doc_.set("points", json::Value::array());
}

void
JsonReport::set(const std::string &key, json::Value v)
{
    if (!enabled())
        return;
    doc_.set(key, std::move(v));
}

void
JsonReport::point(json::Value v)
{
    if (!enabled())
        return;
    doc_.find("points")->push(std::move(v));
}

void
JsonReport::write() const
{
    if (!enabled())
        return;
    std::ofstream out(path_);
    if (!out)
        CONSIM_FATAL("cannot open JSON output path ", path_);
    doc_.write(out, 2);
    out << "\n";
    if (!out)
        CONSIM_FATAL("failed writing JSON output to ", path_);
}

void
printHeader(std::ostream &os, const std::string &title,
            const std::string &paper_ref,
            const std::string &expectation)
{
    os << "\n=== " << title << " ===\n";
    if (!paper_ref.empty())
        os << "reproduces: " << paper_ref << "\n";
    if (!expectation.empty())
        os << "paper shape: " << expectation << "\n";
    os << "\n";
}

} // namespace consim
