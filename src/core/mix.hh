/**
 * @file
 * Workload mixes from Table IV of the paper: nine heterogeneous
 * two-workload mixes and four homogeneous mixes, each consolidating
 * four 4-thread workload instances onto the 16-core chip at exactly
 * full capacity (never over-committed).
 */

#ifndef CONSIM_CORE_MIX_HH
#define CONSIM_CORE_MIX_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace consim
{

/** A named consolidation mix: one WorkloadKind per VM instance. */
struct Mix
{
    std::string name;
    std::vector<WorkloadKind> vms;
    /** Per-VM thread counts for heterogeneous consolidation (e.g.
     *  2/4/8-thread VMs on a scaled-out chip). Empty = every VM runs
     *  its profile's default; a 0 entry = that VM's default. */
    std::vector<int> threads;

    /** @return instance count of a workload in this mix. */
    int count(WorkloadKind k) const;

    /** @return Mixes 1-9 (heterogeneous, Table IV). */
    static const std::vector<Mix> &heterogeneous();

    /** @return Mixes A-D (homogeneous, Table IV). */
    static const std::vector<Mix> &homogeneous();

    /** @return a mix by its Table IV name ("Mix 3", "Mix C"). */
    static const Mix &byName(const std::string &name);
};

} // namespace consim

#endif // CONSIM_CORE_MIX_HH
