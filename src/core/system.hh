/**
 * @file
 * System: the whole 16-core CMP. Owns the cores, private caches, L2
 * banks, directory slices, memory controllers, and the interconnect;
 * implements the Fabric interface the components talk through; binds
 * VM threads to cores per a schedule; and drives the global clock.
 */

#ifndef CONSIM_CORE_SYSTEM_HH
#define CONSIM_CORE_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/stats.hh"

#include "core/event_queue.hh"
#include "core/fault.hh"

#include "coherence/directory.hh"
#include "coherence/fabric.hh"
#include "coherence/l1_controller.hh"
#include "coherence/l2_bank.hh"
#include "coherence/memory_controller.hh"
#include "core/scheduler.hh"
#include "core/vm.hh"
#include "cpu/core.hh"
#include "noc/network.hh"

namespace consim
{

/** Chip-wide replication snapshot (paper Fig. 12). */
struct ReplicationSnapshot
{
    std::uint64_t validLines = 0;      ///< valid L2 lines chip-wide
    std::uint64_t replicatedLines = 0; ///< lines whose block has >1 copy
    std::uint64_t distinctBlocks = 0;
    /** per-VM valid/replicated line counts. */
    std::vector<std::uint64_t> validPerVm;
    std::vector<std::uint64_t> replicatedPerVm;

    double
    replicatedFraction() const
    {
        return validLines ? static_cast<double>(replicatedLines) /
                                static_cast<double>(validLines)
                          : 0.0;
    }

    double
    replicatedFractionVm(VmId vm) const
    {
        const auto v = validPerVm.at(vm);
        return v ? static_cast<double>(replicatedPerVm.at(vm)) /
                       static_cast<double>(v)
                 : 0.0;
    }
};

/** Per-partition occupancy snapshot (paper Fig. 13). */
struct OccupancySnapshot
{
    /** lines[group][vm] = valid lines of that VM in that partition. */
    std::vector<std::vector<std::uint64_t>> lines;
    std::vector<std::uint64_t> capacity; ///< total lines per partition

    /** Fraction of partition @p g's valid+free capacity held by vm. */
    double share(GroupId g, VmId vm) const
    {
        return capacity.at(g)
                   ? static_cast<double>(lines.at(g).at(vm)) /
                         static_cast<double>(capacity.at(g))
                   : 0.0;
    }
};

/** The simulated chip. */
class System : public Fabric
{
  public:
    /**
     * @param cfg        machine configuration (validated here)
     * @param vms        consolidated workload instances (not owned);
     *                   vms[i]->id() must equal i
     * @param placements static thread-to-core bindings
     */
    System(const MachineConfig &cfg,
           std::vector<VirtualMachine *> vms,
           const std::vector<ThreadPlacement> &placements);

    // --- Fabric interface ---
    Cycle now() const override { return now_; }
    void send(Msg m) override;
    void schedule(Cycle delay, EventFn fn) override;
    /** Typed events go straight into the calendar queue (the
     *  fallback closure is dropped), keeping the queue serializable. */
    void
    scheduleEvent(SimEvent ev, Cycle delay, EventFn fallback) override
    {
        (void)fallback;
        events_.schedule(now_, delay, std::move(ev));
    }
    const MachineConfig &config() const override { return cfg_; }
    GroupId groupOfTile(CoreId tile) const override
    {
        return groupOf_[tile];
    }
    CoreId bankTileFor(GroupId g, BlockAddr block) const override;
    CoreId homeTileFor(BlockAddr block) const override;
    CoreId memTileFor(BlockAddr block) const override;
    VmId vmOfBlock(BlockAddr block) const override
    {
        return static_cast<VmId>(block >> vmSpanBits);
    }
    Cycle memFaultExtraLatency() const override
    {
        return (memBurstArmed_ && now_ >= memBurstStart_ &&
                now_ < memBurstEnd_)
                   ? memBurstExtra_
                   : 0;
    }
    void recordL2Access(VmId vm) override;
    void recordL2Miss(VmId vm, bool c2c, bool c2c_dirty) override;
    void recordL1Miss(VmId vm, Cycle latency) override;
    void recordTransaction(VmId vm) override;
    void recordInstructions(VmId vm, std::uint64_t n) override;

    // --- simulation control ---

    /** Advance one cycle. */
    void tick();

    /** Run for @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Tests: run until every queue drains or @p max_cycles elapse.
     * @return true when the machine quiesced.
     */
    bool runUntilQuiescent(Cycle max_cycles);

    /** Reset all measurement state (end of warmup). */
    void resetStats();

    /**
     * Root of the hierarchical statistics registry: the whole
     * machine as one tree ("sys.tileNN.{core,l1,l2bank,dir,mc}",
     * "sys.net", "sys.vmNN"). RunResult extraction, dumpStats, and
     * JSON export all read this tree.
     */
    stats::Group &statsRoot() { return statsRoot_; }
    const stats::Group &statsRoot() const { return statsRoot_; }

    /**
     * Dynamic-scheduling extension (paper SSVII): migrate by swapping
     * the threads of two random cores (one may be idle). Mimics a
     * hypervisor reassigning virtual CPUs over time; the migrated
     * threads restart cold in their new L1s and pull their working
     * sets across partitions. Cores blocked on a miss are skipped.
     * @return true when a swap happened.
     */
    bool swapRandomThreads(Rng &rng);

    /** Dump the whole stats tree as "sys.path.stat value" lines. */
    void dumpStats(std::ostream &os) const;

    // --- component access (tests, benches, snapshots) ---
    Core &core(CoreId t) { return *cores_.at(t); }
    L1Controller &l1(CoreId t) { return *l1s_.at(t); }
    L2Bank &bank(CoreId t) { return *banks_.at(t); }
    DirectorySlice &dir(CoreId t) { return *dirs_.at(t); }
    Network &network() { return *net_; }
    DirectoryStorage &directoryStorage() { return dirStorage_; }
    int numVms() const { return static_cast<int>(vms_.size()); }
    VirtualMachine &vm(VmId v) { return *vms_.at(v); }

    /** Walk every L2 line on chip (snapshot building). */
    ReplicationSnapshot replicationSnapshot() const;
    OccupancySnapshot occupancySnapshot() const;

    /** Run protocol invariant checks over all components. */
    void checkInvariants() const;

    /**
     * Strong cross-check, valid only when quiesced: the full-map
     * directory must agree exactly with the partition caches (every
     * recorded sharer/owner holds the line, no cache holds a line
     * the directory does not know about), and every valid L1 line
     * must be covered by its partition's presence tracking
     * (inclusion). Panics on violation.
     */
    void checkGlobalCoherence() const;

    /** @return true when nothing is in flight anywhere. */
    bool quiesced() const;

    // --- hardening layer ---

    /**
     * Install a deterministic fault plan (call before running).
     * Wedge events whose cycle already passed fire immediately;
     * drop/memburst events arm their respective hooks.
     */
    void setFaultPlan(const FaultPlan &plan);

    /**
     * Enable the forward-progress watchdog: every @p interval cycles
     * of run(), verify that (a) the machine as a whole made progress
     * (events executed, packets delivered, or instructions retired)
     * unless it is quiesced, and (b) no core with a bound thread sat
     * blocked across the whole interval without retiring anything.
     * Throws SimError(Watchdog) with a `consim.diag.v1` dump on
     * violation. 0 disables (the default; runExperiment turns it on).
     */
    void setWatchdogInterval(Cycle interval);

    /**
     * Abort run() with SimError(Deadline) when the simulated clock
     * reaches @p deadline (absolute cycle) with work still to do.
     * 0 disables. Sweep workers use this as a per-point budget.
     */
    void setCycleDeadline(Cycle deadline) { deadline_ = deadline; }

    /** Age limit for the stuck-transaction audit (default 20000). */
    void setStuckTxnLimit(Cycle limit) { stuckLimit_ = limit; }

    /**
     * Window-boundary audit (run under CONSIM_CHECK=full): NoC
     * credit/flit conservation, stuck-transaction (leaked MSHR
     * equivalent) detection in every L1/bank/directory, per-component
     * protocol invariants, and a directory-vs-cache sharer-state
     * consistency audit that skips blocks with in-flight activity
     * (safe on a non-quiesced machine, unlike
     * checkGlobalCoherence()). Throws SimError on violation.
     */
    void auditWindow() const;

    /**
     * Full machine snapshot as a `consim.diag.v1` JSON document:
     * per-core blocked state, outstanding L1 misses, active bank and
     * directory transactions, event-queue depth, and the router
     * credit map.
     */
    json::Value diagJson(const std::string &reason) const;

    // --- checkpoint / resume (`consim.ckpt.v1`) ---

    /**
     * Serialize the complete deterministic machine state (cycle,
     * event queue, caches, transaction tables, NoC, RNG streams,
     * stats registry) as a `consim.ckpt.v1` document. The embedded
     * experiment context (setCheckpointContext) rides along so the
     * experiment layer can resume its warmup/measure loop. Throws
     * SimError(Invariant) if an Opaque event is pending.
     */
    json::Value saveCheckpoint() const;

    /**
     * Restore state saved by saveCheckpoint() into this freshly
     * constructed System. The System must have been built from the
     * same MachineConfig, VM set, and placements as the saved one;
     * resuming then reproduces the uninterrupted run byte for byte.
     */
    void restoreCheckpoint(const json::Value &doc);

    /**
     * Periodic snapshotting: every @p interval cycles of run(), save
     * a checkpoint into a two-deep ring; the most recent one is
     * attached to every watchdog/deadline SimError. 0 disables (the
     * default; `CONSIM_CKPT` / --ckpt-every turn it on).
     */
    void setCheckpointInterval(Cycle interval);

    /**
     * Experiment-layer context (run config echo, phase, migration
     * RNG state) embedded verbatim in every snapshot.
     */
    void setCheckpointContext(json::Value ctx)
    {
        ckptCtx_ = std::move(ctx);
    }

    /** Most recent periodic snapshot text ("" when none taken). */
    const std::string &latestCheckpoint() const
    {
        return ckptRing_[ckptLatest_];
    }

  private:
    friend struct CkptAccess;

    /** Dispatch a due typed event into its owning component. */
    void execEvent(SimEvent &ev);

    /** Take a periodic snapshot into the ring. */
    void takeSnapshot();

    /** Per-group bank lookup table with the modulo strength-reduced
     *  for power-of-two member counts (all standard sharing degrees). */
    struct GroupLut
    {
        std::vector<CoreId> tiles;
        std::uint64_t size = 0;
        std::uint64_t mask = 0; ///< size - 1 when pow2, else 0
        bool pow2 = false;
    };

    void deliver(const Msg &m);
    void watchdogCheck();
    void auditSharerState() const;

    MachineConfig cfg_;
    std::vector<VirtualMachine *> vms_;

    std::vector<GroupId> groupOf_;                 ///< per tile
    std::vector<GroupLut> membersOf_;              ///< per group
    std::vector<CoreId> mcTiles_;

    DirectoryStorage dirStorage_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<L2Bank>> banks_;
    std::vector<std::unique_ptr<DirectorySlice>> dirs_;
    std::vector<std::unique_ptr<MemoryController>> mcs_; ///< by index
    std::vector<int> mcIndexOfTile_; ///< tile -> mc index or -1

    Cycle now_ = 0;
    CalendarQueue events_;

    // --- hardening state ---
    FaultPlan faultPlan_;
    Cycle watchdogInterval_ = 0;   ///< 0 = watchdog off
    Cycle nextWatchdogCheck_ = 0;  ///< absolute cycle of next check
    Cycle deadline_ = 0;           ///< 0 = no deadline
    Cycle stuckLimit_ = 20000;     ///< stuck-transaction age limit
    /** Watchdog snapshot at the previous interval boundary. */
    struct WatchdogSnap
    {
        std::uint64_t executed = 0;
        std::uint64_t ejected = 0;
        std::uint64_t retiredSum = 0;
        std::vector<std::uint64_t> retired; ///< per core
        std::vector<char> blocked;          ///< per core
    };
    WatchdogSnap wdSnap_;
    bool dropArmed_ = false;         ///< drop-nth-response fault live
    std::uint64_t dropCountdown_ = 0; ///< responses until the drop
    bool memBurstArmed_ = false;
    Cycle memBurstStart_ = 0;
    Cycle memBurstEnd_ = 0;
    Cycle memBurstExtra_ = 0;

    // --- checkpoint state ---
    Cycle ckptInterval_ = 0;      ///< 0 = periodic snapshots off
    Cycle nextCkpt_ = 0;          ///< absolute cycle of next snapshot
    json::Value ckptCtx_;         ///< experiment context for snapshots
    std::string ckptRing_[2];     ///< latest two snapshot texts
    int ckptLatest_ = 0;

    stats::Group statsRoot_{"sys"};
    /** Per-tile registry nodes ("tileNN") under statsRoot_. */
    std::vector<std::unique_ptr<stats::Group>> tileGroups_;
};

} // namespace consim

#endif // CONSIM_CORE_SYSTEM_HH
