/**
 * @file
 * System: the whole tiled CMP. Owns the cores, private caches, L2
 * banks, directory slices, memory controllers, and the interconnect;
 * implements the Fabric interface the components talk through; binds
 * VM threads to cores per a schedule; and drives the global clock.
 */

#ifndef CONSIM_CORE_SYSTEM_HH
#define CONSIM_CORE_SYSTEM_HH

#include <array>
#include <memory>
#include <ostream>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/stats.hh"

#include "core/event_queue.hh"
#include "core/fault.hh"
#include "core/qos.hh"

#include "coherence/directory.hh"
#include "coherence/fabric.hh"
#include "coherence/l1_controller.hh"
#include "coherence/l2_bank.hh"
#include "coherence/memory_controller.hh"
#include "core/scheduler.hh"
#include "core/vm.hh"
#include "cpu/core.hh"
#include "noc/network.hh"

namespace consim
{

class LockstepTeam;

/** Chip-wide replication snapshot (paper Fig. 12). */
struct ReplicationSnapshot
{
    std::uint64_t validLines = 0;      ///< valid L2 lines chip-wide
    std::uint64_t replicatedLines = 0; ///< lines whose block has >1 copy
    std::uint64_t distinctBlocks = 0;
    /** per-VM valid/replicated line counts. */
    std::vector<std::uint64_t> validPerVm;
    std::vector<std::uint64_t> replicatedPerVm;

    double
    replicatedFraction() const
    {
        return validLines ? static_cast<double>(replicatedLines) /
                                static_cast<double>(validLines)
                          : 0.0;
    }

    double
    replicatedFractionVm(VmId vm) const
    {
        const auto v = validPerVm.at(vm);
        return v ? static_cast<double>(replicatedPerVm.at(vm)) /
                       static_cast<double>(v)
                 : 0.0;
    }
};

/** Per-partition occupancy snapshot (paper Fig. 13). */
struct OccupancySnapshot
{
    /** lines[group][vm] = valid lines of that VM in that partition. */
    std::vector<std::vector<std::uint64_t>> lines;
    std::vector<std::uint64_t> capacity; ///< total lines per partition

    /** Fraction of partition @p g's valid+free capacity held by vm. */
    double share(GroupId g, VmId vm) const
    {
        return capacity.at(g)
                   ? static_cast<double>(lines.at(g).at(vm)) /
                         static_cast<double>(capacity.at(g))
                   : 0.0;
    }
};

/** The simulated chip. */
class System : public Fabric
{
  public:
    /**
     * @param cfg        machine configuration (validated here)
     * @param vms        consolidated workload instances (not owned);
     *                   vms[i]->id() must equal i
     * @param placements static thread-to-core bindings
     */
    System(const MachineConfig &cfg,
           std::vector<VirtualMachine *> vms,
           const std::vector<ThreadPlacement> &placements);
    ~System() override;

    // --- Fabric interface ---
    /** Current cycle: the running tile lane's clock inside a
     *  parallel window, the global clock otherwise. */
    Cycle now() const override;
    void send(Msg m) override;
    void schedule(Cycle delay, EventFn fn) override;
    /** Typed events go straight into the calendar queue (the
     *  fallback closure is dropped), keeping the queue serializable.
     *  The event is keyed (src, seq) from its owning tile's
     *  sequence counter. */
    void scheduleEvent(SimEvent ev, Cycle delay,
                       EventFn fallback) override;
    const MachineConfig &config() const override { return cfg_; }
    GroupId groupOfTile(CoreId tile) const override
    {
        return groupOf_[tile];
    }
    CoreId bankTileFor(GroupId g, BlockAddr block) const override;
    CoreId homeTileFor(BlockAddr block) const override;
    CoreId memTileFor(BlockAddr block) const override;
    VmId vmOfBlock(BlockAddr block) const override
    {
        return static_cast<VmId>(block >> spanBits_);
    }
    Cycle memFaultExtraLatency() const override;
    std::uint64_t qosWayMask(VmId vm) const override;
    void qosRecordThrottleStall(VmId vm) override;
    void recordL2Access(VmId vm) override;
    void recordL2Miss(VmId vm, bool c2c, bool c2c_dirty) override;
    void recordL1Miss(VmId vm, Cycle latency) override;
    void recordTransaction(VmId vm) override;
    void recordInstructions(VmId vm, std::uint64_t n) override;

    // --- simulation control ---

    /** Advance one cycle. */
    void tick();

    /** Run for @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Worker threads for run(): 1 (the default) keeps the serial
     * per-cycle loop; >1 enables the conservative-lookahead parallel
     * engine, which partitions the chip into per-tile lanes, advances
     * them in lock-step windows of windowCycles(), and exchanges
     * cross-tile events only at window boundaries. Event keys
     * (src, seq) make the merged order a pure function of machine
     * state, so results are byte-identical to the serial engine.
     * Clamped to [1, numCores]. Runs with a live drop-response fault
     * or pending Opaque (closure) events fall back to serial.
     */
    void setRunJobs(int jobs);
    int runJobs() const { return runJobs_; }

    /** Lookahead window: the minimum cross-tile event latency. */
    Cycle windowCycles() const { return window_; }

    /**
     * Tests: run until every queue drains or @p max_cycles elapse.
     * @return true when the machine quiesced.
     */
    bool runUntilQuiescent(Cycle max_cycles);

    /** Reset all measurement state (end of warmup). */
    void resetStats();

    /**
     * Root of the hierarchical statistics registry: the whole
     * machine as one tree ("sys.tileNN.{core,l1,l2bank,dir,mc}",
     * "sys.net", "sys.vmNN"). RunResult extraction, dumpStats, and
     * JSON export all read this tree.
     */
    stats::Group &statsRoot() { return statsRoot_; }
    const stats::Group &statsRoot() const { return statsRoot_; }

    /**
     * Dynamic-scheduling extension (paper SSVII): migrate by swapping
     * the threads of two random cores (one may be idle). Mimics a
     * hypervisor reassigning virtual CPUs over time; the migrated
     * threads restart cold in their new L1s and pull their working
     * sets across partitions. Cores blocked on a miss are skipped.
     * @return true when a swap happened.
     */
    bool swapRandomThreads(Rng &rng);

    /** Dump the whole stats tree as "sys.path.stat value" lines. */
    void dumpStats(std::ostream &os) const;

    // --- component access (tests, benches, snapshots) ---
    Core &core(CoreId t) { return *cores_.at(t); }
    L1Controller &l1(CoreId t) { return *l1s_.at(t); }
    L2Bank &bank(CoreId t) { return *banks_.at(t); }
    DirectorySlice &dir(CoreId t) { return *dirs_.at(t); }
    Network &network() { return *net_; }
    DirectoryStorage &directoryStorage() { return dirStorage_; }
    int numVms() const { return static_cast<int>(vms_.size()); }
    VirtualMachine &vm(VmId v) { return *vms_.at(v); }

    /** Walk every L2 line on chip (snapshot building). */
    ReplicationSnapshot replicationSnapshot() const;
    OccupancySnapshot occupancySnapshot() const;

    /** Run protocol invariant checks over all components. */
    void checkInvariants() const;

    /**
     * Strong cross-check, valid only when quiesced: the full-map
     * directory must agree exactly with the partition caches (every
     * recorded sharer/owner holds the line, no cache holds a line
     * the directory does not know about), and every valid L1 line
     * must be covered by its partition's presence tracking
     * (inclusion). Panics on violation.
     */
    void checkGlobalCoherence() const;

    /** @return true when nothing is in flight anywhere. */
    bool quiesced() const;

    // --- hardening layer ---

    /**
     * Install a deterministic fault plan (call before running).
     * Wedge events whose cycle already passed fire immediately;
     * drop/memburst events arm their respective hooks.
     */
    void setFaultPlan(const FaultPlan &plan);

    /**
     * Enable the forward-progress watchdog: every @p interval cycles
     * of run(), verify that (a) the machine as a whole made progress
     * (events executed, packets delivered, or instructions retired)
     * unless it is quiesced, and (b) no core with a bound thread sat
     * blocked across the whole interval without retiring anything.
     * Throws SimError(Watchdog) with a `consim.diag.v1` dump on
     * violation. 0 disables (the default; runExperiment turns it on).
     */
    void setWatchdogInterval(Cycle interval);

    /**
     * Preemption quantum for over-committed cores (those holding
     * more than one software context). 0 restores the built-in
     * default (Core::kDefaultTimesliceCycles). No effect on cores
     * with a single context.
     */
    void
    setTimeslice(Cycle interval)
    {
        for (auto &c : cores_)
            c->setTimeslice(interval);
    }

    /**
     * Abort run() with SimError(Deadline) when the simulated clock
     * reaches @p deadline (absolute cycle) with work still to do.
     * 0 disables. Sweep workers use this as a per-point budget.
     */
    void setCycleDeadline(Cycle deadline) { deadline_ = deadline; }

    /** Age limit for the stuck-transaction audit (default 20000). */
    void setStuckTxnLimit(Cycle limit) { stuckLimit_ = limit; }

    // --- per-VM QoS (isolation) ---

    /**
     * Install the per-VM QoS configuration (call before running).
     * Static mode partitions the shared resources once: the protected
     * VM gets `protectedWays` exclusive L2 ways per set, `reservedVcs`
     * reserved VCs per vnet with priority switch allocation, and
     * every other VM's memory reads are token-bucket throttled at the
     * controllers. Dynamic mode starts from the same partition and
     * re-sizes the protected way allocation at every `epochCycles`
     * boundary from the observed miss/occupancy curves. Validated
     * against the machine config (ways vs associativity, VCs vs
     * vcsPerVnet, VM id range); throws SimError on mismatch.
     */
    void setQosConfig(const QosConfig &qos);
    const QosConfig &qosConfig() const { return qos_; }

    /** Current protected-VM way allocation (== protectedWays in
     *  static mode; moves at epoch boundaries in dynamic mode). */
    int qosDynWays() const { return qosDynWays_; }

    // --- dynamic scheduling (online thread migration) ---

    /**
     * Install the dynamic-scheduling policy (call before running).
     * At every `epochCycles` boundary — a service point both engines
     * land on the same absolute cycles — the policy reads the epoch's
     * per-core / per-VM / per-group counter deltas from the stats
     * registry and proposes at most one thread swap, which is applied
     * through the same rebinding the random-migration hook uses.
     * Policies are deterministic (no RNG), so serial and `--run-jobs`
     * runs migrate identically and checkpoints only carry the epoch
     * baselines.
     */
    void setDynSched(const DynSchedConfig &dyn);
    const DynSchedConfig &dynSchedConfig() const { return dynSched_; }

    /** Thread migrations performed by the dynamic scheduler. */
    std::uint64_t dynMigrations() const { return dynMigrations_; }

    /**
     * Window-boundary audit (run under CONSIM_CHECK=full): NoC
     * credit/flit conservation, stuck-transaction (leaked MSHR
     * equivalent) detection in every L1/bank/directory, per-component
     * protocol invariants, and a directory-vs-cache sharer-state
     * consistency audit that skips blocks with in-flight activity
     * (safe on a non-quiesced machine, unlike
     * checkGlobalCoherence()). Throws SimError on violation.
     */
    void auditWindow() const;

    /**
     * Full machine snapshot as a `consim.diag.v1` JSON document:
     * per-core blocked state, outstanding L1 misses, active bank and
     * directory transactions, event-queue depth, and the router
     * credit map.
     */
    json::Value diagJson(const std::string &reason) const;

    // --- checkpoint / resume (`consim.ckpt.v5`) ---

    /**
     * Serialize the complete deterministic machine state (cycle,
     * event queue with per-source ordering keys, caches, transaction
     * tables, NoC, RNG streams, stats registry) as a
     * `consim.ckpt.v5` document. The embedded
     * experiment context (setCheckpointContext) rides along so the
     * experiment layer can resume its warmup/measure loop. Throws
     * SimError(Invariant) if an Opaque event is pending.
     */
    json::Value saveCheckpoint() const;

    /**
     * Restore state saved by saveCheckpoint() into this freshly
     * constructed System. The System must have been built from the
     * same MachineConfig, VM set, and placements as the saved one;
     * resuming then reproduces the uninterrupted run byte for byte.
     */
    void restoreCheckpoint(const json::Value &doc);

    /**
     * Periodic snapshotting: every @p interval cycles of run(), save
     * a checkpoint into a two-deep ring; the most recent one is
     * attached to every watchdog/deadline SimError. 0 disables (the
     * default; `CONSIM_CKPT` / --ckpt-every turn it on).
     */
    void setCheckpointInterval(Cycle interval);

    /**
     * Experiment-layer context (run config echo, phase, migration
     * RNG state) embedded verbatim in every snapshot.
     */
    void setCheckpointContext(json::Value ctx)
    {
        ckptCtx_ = std::move(ctx);
    }

    /** Most recent periodic snapshot text ("" when none taken). */
    const std::string &latestCheckpoint() const
    {
        return ckptRing_[ckptLatest_];
    }

  private:
    friend struct CkptAccess;

    /** Dispatch a due typed event into its owning component. */
    void execEvent(SimEvent &ev);

    /** Take a periodic snapshot into the ring. */
    void takeSnapshot();

    // --- parallel engine (tile lanes) ---

    /**
     * Mesh ejection -> destination-unit handoff latency, applied in
     * both engines: a packet ejected at cycle e is handled at
     * e + netHandoff_. Modelling the NI->protocol handoff as a
     * scheduled (NET-keyed) event is what lets the parallel engine
     * replay the mesh lazily — the handoff bounds how far ahead of
     * the mesh clock the tiles may run, so it must be >= the
     * lookahead window.
     *
     * The handoff scales with mesh diameter (max(3, (X+Y)/4), set in
     * the constructor): any cross-tile message already pays at least
     * a diameter's worth of hop latency on a large mesh, so a deeper
     * NI handoff is invisible in relative timing there while it lets
     * the tile-parallel engine run proportionally wider windows
     * instead of pinning at 3 cycles. 4x4 and 8x4 meshes keep the
     * historical value of 3 (golden run hashes are unchanged).
     */
    Cycle netHandoff_ = 3;

    /**
     * One tile's private execution lane: its own clock, calendar
     * queue, sequence counter for events sourced by this tile, and
     * deferred side effects (cross-tile sends, mesh injections,
     * shared-statistics deltas) the coordinator applies at window
     * boundaries. Everything here is touched only by the lane's
     * worker inside a window, only by the coordinator outside one.
     */
    struct TileLane
    {
        CoreId tile = 0;
        Cycle now = 0;          ///< lane-local clock
        std::uint64_t seq = 0;  ///< per-source counter for src==tile
        CalendarQueue q;

        /** Cross-tile event discovered mid-window; merged into the
         *  destination lane at the next window boundary. */
        struct Out
        {
            Cycle when;
            SimEvent ev;
        };
        std::vector<Out> outbox;

        /** Mesh injections logged for the coordinator's replay. */
        std::vector<Msg> meshOut;
        std::size_t meshOutHead = 0;

        /** Deferred per-VM statistics (shared VmStats objects). */
        struct VmDelta
        {
            std::uint64_t l2Accesses = 0;
            std::uint64_t l2Misses = 0;
            std::uint64_t c2cClean = 0;
            std::uint64_t c2cDirty = 0;
            std::uint64_t l1Misses = 0;
            std::uint64_t transactions = 0;
            std::uint64_t instructions = 0;
            std::uint64_t mcThrottleStalls = 0;
            double missLatSum = 0.0;
            std::uint64_t missLatCount = 0;
        };
        std::vector<VmDelta> vmDelta;

        /** Deferred ideal-network (transport bypass) statistics. */
        std::uint64_t netInjects = 0;
        std::uint64_t netEjects = 0;
        std::uint64_t netDataN = 0;
        std::uint64_t netCtrlN = 0;
        double netLatSum = 0.0;
        double netDataSum = 0.0;
        double netCtrlSum = 0.0;
    };

    /**
     * The lane a worker thread is currently executing, or null on
     * the coordinator / serial path. Fabric calls consult it so
     * components need no notion of which engine is driving them:
     * inside a parallel window, now() is the lane clock and every
     * side effect lands in lane-local state; otherwise everything
     * goes through the global structures exactly as before.
     */
    static thread_local TileLane *tlsLane_;

    /** Derive the lookahead window from the machine config. */
    Cycle computeWindow() const;
    /** @return true when this run() may use the parallel engine. */
    bool canRunParallel() const;
    /** Build lanes_ / team_ on first parallel run(). */
    void ensureLanes();
    /** Tile whose lane executes @p ev. */
    CoreId execTileOf(const SimEvent &ev) const;
    /** Move pending global events into their lanes. */
    void scatter();
    /** Merge lanes back into global state (queue, seq, stats). */
    void gather();
    /** Replay the mesh serially up to (not including) @p target. */
    void replayMeshTo(Cycle target);
    /** Move window-boundary cross-tile events into their lanes. */
    void mergeOutboxes();
    /** Run one lane across the current window (worker threads). */
    void laneRunWindow(TileLane &lane);
    /** The parallel counterpart of run()'s chunked loop. */
    void runParallel(Cycle cycles);

    /** Per-group bank lookup table with the modulo strength-reduced
     *  for power-of-two member counts (all standard sharing degrees). */
    struct GroupLut
    {
        std::vector<CoreId> tiles;
        std::uint64_t size = 0;
        std::uint64_t mask = 0; ///< size - 1 when pow2, else 0
        bool pow2 = false;
    };

    void deliver(const Msg &m);
    void watchdogCheck();
    void auditSharerState() const;

    /** Dynamic-QoS epoch length (0 when no epochs are needed). */
    Cycle qosEpochInterval() const
    {
        return qos_.mode == QosMode::Dynamic ? qos_.epochCycles : 0;
    }
    /** Re-size the protected way allocation at an epoch boundary. */
    void qosRepartition();

    /** Dynamic-scheduling epoch length (0 when disabled). */
    Cycle dynEpochInterval() const
    {
        return dynSched_.enabled() ? dynSched_.epochCycles : 0;
    }
    /** Read the epoch-delta sample and advance the baselines. */
    DynSample dynTakeSample();
    /** Sample, decide, and apply at most one swap (epoch boundary). */
    void dynSchedEpoch();
    /** Exchange two cores' bindings via deferred rebinds. */
    void applySwap(const ThreadSwap &swap);

    MachineConfig cfg_;
    std::vector<VirtualMachine *> vms_;

    std::vector<GroupId> groupOf_;                 ///< per tile
    std::vector<GroupLut> membersOf_;              ///< per group
    std::vector<CoreId> mcTiles_;

    int spanBits_ = vmSpanBits; ///< run's VM-window width (decode)
    DirectoryStorage dirStorage_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<L1Controller>> l1s_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<L2Bank>> banks_;
    std::vector<std::unique_ptr<DirectorySlice>> dirs_;
    std::vector<std::unique_ptr<MemoryController>> mcs_; ///< by index
    std::vector<int> mcIndexOfTile_; ///< tile -> mc index or -1

    Cycle now_ = 0;
    CalendarQueue events_;

    /**
     * Per-source sequence counters backing the (src, seq) event
     * ordering keys: one per tile, then the network (netSrc_) and
     * the system itself (sysSrc_). Both engines draw from the same
     * counters in the same per-source order, which is what makes
     * their event orders — and therefore their results — identical.
     */
    std::vector<std::uint64_t> seqBySrc_;
    std::int32_t netSrc_ = 0;
    std::int32_t sysSrc_ = 0;

    // --- parallel-engine state ---
    int runJobs_ = 1;
    bool parallelActive_ = false; ///< lanes own the pending events
    bool netBypass_ = false;      ///< ideal NoC modelled as events
    Cycle window_ = 1;            ///< lookahead window width
    Cycle netNow_ = 0;            ///< mesh replay position
    Cycle netTickCycle_ = 0;      ///< cycle net_->tick() is running
    Cycle windowStart_ = 0;       ///< current window [start, start+len)
    Cycle windowLen_ = 0;
    std::vector<std::unique_ptr<TileLane>> lanes_;
    std::unique_ptr<LockstepTeam> team_;

    // --- hardening state ---
    FaultPlan faultPlan_;
    Cycle watchdogInterval_ = 0;   ///< 0 = watchdog off
    Cycle nextWatchdogCheck_ = 0;  ///< absolute cycle of next check
    Cycle deadline_ = 0;           ///< 0 = no deadline
    Cycle stuckLimit_ = 20000;     ///< stuck-transaction age limit
    /** Watchdog snapshot at the previous interval boundary. */
    struct WatchdogSnap
    {
        std::uint64_t executed = 0;
        std::uint64_t ejected = 0;
        std::uint64_t retiredSum = 0;
        std::vector<std::uint64_t> retired; ///< per core
        std::vector<char> blocked;          ///< per core
    };
    WatchdogSnap wdSnap_;
    bool dropArmed_ = false;         ///< drop-nth-response fault live
    std::uint64_t dropCountdown_ = 0; ///< responses until the drop
    bool memBurstArmed_ = false;
    Cycle memBurstStart_ = 0;
    Cycle memBurstEnd_ = 0;
    Cycle memBurstExtra_ = 0;

    // --- QoS state ---
    QosConfig qos_;
    int qosDynWays_ = 0;       ///< current protected way count
    /** Epoch-boundary miss-curve samples (dynamic repartitioner). */
    std::uint64_t qosLastMissTotal_ = 0; ///< protected-VM L2 misses
    std::uint64_t qosPrevDelta_ = 0;     ///< last epoch's miss delta

    // --- dynamic-scheduling state ---
    DynSchedConfig dynSched_;
    std::unique_ptr<MigrationPolicy> dynPolicy_;
    std::uint64_t dynMigrations_ = 0;
    /** Previous-epoch counter baselines (delta = now - baseline). */
    std::vector<std::uint64_t> dynLastRetired_;     ///< per core
    /** Per VM: {l2Accesses, l2Misses, c2cClean + c2cDirty}. */
    std::vector<std::array<std::uint64_t, 3>> dynLastVm_;
    /** Per group: {l2Hits, l2Misses} summed over member banks. */
    std::vector<std::array<std::uint64_t, 2>> dynLastGroup_;
    /**
     * Migration feedback loop: every applied swap is evaluated two
     * epochs later against the chip miss rate it was supposed to
     * improve; a swap that did not help is reverted and the policy
     * backs off exponentially (steady workloads converge to almost
     * no churn, phase changes re-engage quickly).
     */
    std::uint32_t dynHold_ = 0;    ///< epochs left to sit out
    std::uint32_t dynBackoff_ = 1; ///< next hold after a failed swap
    ThreadSwap dynEval_;           ///< applied swap awaiting verdict
    std::uint64_t dynPreMiss_ = 0; ///< pre-swap epoch chip L2 misses
    std::uint64_t dynPreAcc_ = 0;  ///< pre-swap epoch chip accesses

    // --- checkpoint state ---
    Cycle ckptInterval_ = 0;      ///< 0 = periodic snapshots off
    Cycle nextCkpt_ = 0;          ///< absolute cycle of next snapshot
    json::Value ckptCtx_;         ///< experiment context for snapshots
    std::string ckptRing_[2];     ///< latest two snapshot texts
    int ckptLatest_ = 0;

    stats::Group statsRoot_{"sys"};
    /** Per-tile registry nodes ("tileNN") under statsRoot_. */
    std::vector<std::unique_ptr<stats::Group>> tileGroups_;
};

} // namespace consim

#endif // CONSIM_CORE_SYSTEM_HH
