#include "core/qos.hh"

#include <cctype>
#include <sstream>
#include <vector>

#include "common/parse.hh"

namespace consim
{

namespace
{

/** Split @p s on @p sep, dropping empty pieces and whitespace. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

constexpr const char *grammar =
    "off | static:vm=V,ways=W[,vcs=N][,tokens=T][,refill=R] | "
    "dynamic:vm=V,ways=W[,vcs=N][,tokens=T][,refill=R][,epoch=E]";

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg + " (valid: " + grammar + ")";
    return false;
}

} // namespace

const char *
toString(QosMode m)
{
    switch (m) {
      case QosMode::Off:
        return "off";
      case QosMode::Static:
        return "static";
      case QosMode::Dynamic:
        return "dynamic";
    }
    return "?";
}

bool
QosConfig::parse(const std::string &text, QosConfig &out,
                 std::string *err)
{
    QosConfig q;
    const auto colon = text.find(':');
    std::string mode;
    for (const char c : text.substr(0, colon)) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            mode.push_back(c);
    }
    if (mode == "off") {
        if (colon != std::string::npos)
            return fail(err, "qos mode 'off' takes no parameters");
        out = q;
        return true;
    }
    if (mode == "static") {
        q.mode = QosMode::Static;
    } else if (mode == "dynamic") {
        q.mode = QosMode::Dynamic;
    } else {
        return fail(err, "unknown qos mode '" + mode +
                             "' (off|static|dynamic)");
    }
    const std::vector<std::string> kvs =
        colon == std::string::npos
            ? std::vector<std::string>{}
            : split(text.substr(colon + 1), ',');
    bool have_vm = false, have_ways = false;
    for (const std::string &kv : kvs) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            return fail(err, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        std::uint64_t v = 0;
        if (!parseU64(val, v))
            return fail(err, "bad number '" + val + "' for " + key);
        if (key == "vm") {
            q.protectedVm = static_cast<VmId>(v);
            have_vm = true;
        } else if (key == "ways") {
            q.protectedWays = static_cast<int>(v);
            have_ways = true;
        } else if (key == "vcs") {
            q.reservedVcs = static_cast<int>(v);
        } else if (key == "tokens") {
            q.mcTokens = v;
        } else if (key == "refill") {
            q.mcRefillCycles = v;
        } else if (key == "epoch") {
            if (q.mode != QosMode::Dynamic)
                return fail(err, "epoch is only valid in dynamic mode");
            q.epochCycles = v;
        } else {
            return fail(err, "unknown qos parameter '" + key + "'");
        }
    }
    if (!have_vm)
        return fail(err, std::string(toString(q.mode)) +
                             ": vm is required");
    if (!have_ways)
        return fail(err, std::string(toString(q.mode)) +
                             ": ways is required");
    if (q.protectedWays < 1)
        return fail(err, "ways must be >= 1");
    if (q.reservedVcs < 0)
        return fail(err, "vcs must be >= 0");
    if (q.mcTokens < 1)
        return fail(err, "tokens must be >= 1");
    if (q.mcRefillCycles < 1)
        return fail(err, "refill must be >= 1");
    if (q.mode == QosMode::Dynamic && q.epochCycles < 1)
        return fail(err, "epoch must be >= 1");
    out = q;
    return true;
}

std::string
QosConfig::spec() const
{
    if (mode == QosMode::Off)
        return "off";
    std::ostringstream os;
    os << toString(mode) << ":vm=" << protectedVm
       << ",ways=" << protectedWays << ",vcs=" << reservedVcs
       << ",tokens=" << mcTokens << ",refill=" << mcRefillCycles;
    if (mode == QosMode::Dynamic)
        os << ",epoch=" << epochCycles;
    return os.str();
}

json::Value
QosConfig::toJson() const
{
    auto v = json::Value::object();
    v.set("mode", toString(mode));
    if (mode == QosMode::Off)
        return v;
    v.set("protected_vm", protectedVm);
    v.set("protected_ways", protectedWays);
    v.set("reserved_vcs", reservedVcs);
    v.set("mc_tokens", mcTokens);
    v.set("mc_refill_cycles", mcRefillCycles);
    if (mode == QosMode::Dynamic)
        v.set("epoch_cycles", epochCycles);
    return v;
}

} // namespace consim
