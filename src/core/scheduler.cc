#include "core/scheduler.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace consim
{

namespace
{

/** Free-core bookkeeping per group. */
struct GroupSlots
{
    std::vector<std::vector<CoreId>> freeCores; // per group, ascending
    const MachineConfig &cfg;

    explicit GroupSlots(const MachineConfig &c)
        : freeCores(c.numGroups()), cfg(c)
    {
        refill();
    }

    /** Claim a core in @p g; invalidCore when the group is full. */
    CoreId
    claim(GroupId g)
    {
        auto &v = freeCores[g];
        if (v.empty())
            return invalidCore;
        const CoreId c = v.front();
        v.erase(v.begin());
        return c;
    }

    /**
     * Start a new over-commit layer: every slot becomes free again,
     * so further claims double up threads on already-claimed cores.
     * Called only once the whole machine is full, which keeps layers
     * balanced (no core holds thread k+2 before every core holds
     * k+1).
     */
    void
    refill()
    {
        for (GroupId g = 0; g < cfg.numGroups(); ++g)
            freeCores[g] = cfg.coresOfGroup(g);
    }

    int free(GroupId g) const
    {
        return static_cast<int>(freeCores[g].size());
    }
};

/**
 * Probe every group starting at @p g for a free core; when the
 * machine is full, open a new over-commit layer and claim again.
 * @param g in/out: updated to the group that supplied the core.
 */
CoreId
claimOrOverCommit(GroupSlots &slots, int num_groups, GroupId &g)
{
    for (int layer = 0; layer < 2; ++layer) {
        for (int probe = 0; probe < num_groups; ++probe) {
            const GroupId cand = (g + probe) % num_groups;
            const CoreId core = slots.claim(cand);
            if (core != invalidCore) {
                g = cand;
                return core;
            }
        }
        slots.refill();
    }
    CONSIM_FATAL("unreachable: refilled slots yielded no core");
}

std::vector<ThreadPlacement>
scheduleRoundRobin(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    // Each VM starts again at group 0, so every partition receives
    // one thread from each workload (Fig. 1, round robin).
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        GroupId g = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            g = (g + 1) % num_groups;
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinity(const MachineConfig &cfg,
                 const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Pack each VM's threads into as few partitions as possible,
    // filling a partition completely before moving on.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            // claimOrOverCommit leaves g at the supplying group, so
            // the VM stays in this group until it fills.
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinityRr(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    const int pair = std::min(2, coresPerGroup(cfg.sharing));
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Round robin over partitions in units of thread pairs, so at
    // least two threads of a workload co-reside (paper hybrid). With
    // private caches this degenerates to plain round robin.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        int placed_in_group = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            if (placed_in_group == pair) {
                g = (g + 1) % num_groups;
                placed_in_group = 0;
            }
            const GroupId prev = g;
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            if (g != prev)
                placed_in_group = 0;
            ++placed_in_group;
            out.push_back({vm, t, core});
        }
        g = (g + 1) % num_groups;
        placed_in_group = 0;
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleRandom(const MachineConfig &cfg,
               const std::vector<int> &threads_per_vm,
               std::uint64_t seed)
{
    std::vector<CoreId> cores(cfg.numCores());
    std::iota(cores.begin(), cores.end(), 0);
    Rng rng(seed ^ 0xc0ffee);
    rng.shuffle(cores);

    std::vector<ThreadPlacement> out;
    std::size_t next = 0;
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            // Over-commit wraps around the shuffled order, layering
            // a second thread on every core before a third, etc.
            out.push_back({vm, t, cores[next % cores.size()]});
            ++next;
        }
    }
    return out;
}

} // namespace

std::vector<ThreadPlacement>
scheduleThreads(const MachineConfig &cfg,
                const std::vector<int> &threads_per_vm,
                SchedPolicy policy, std::uint64_t seed)
{
    const int total =
        std::accumulate(threads_per_vm.begin(), threads_per_vm.end(), 0);

    std::vector<ThreadPlacement> out;
    switch (policy) {
      case SchedPolicy::RoundRobin:
        out = scheduleRoundRobin(cfg, threads_per_vm);
        break;
      case SchedPolicy::Affinity:
        out = scheduleAffinity(cfg, threads_per_vm);
        break;
      case SchedPolicy::AffinityRR:
        out = scheduleAffinityRr(cfg, threads_per_vm);
        break;
      case SchedPolicy::Random:
        out = scheduleRandom(cfg, threads_per_vm, seed);
        break;
    }

    // Sanity: over-commit fills in balanced layers — no core holds
    // more than ceil(total / numCores) threads, and none holds a
    // second thread unless every core holds a first.
    const int layers =
        (total + cfg.numCores() - 1) / std::max(1, cfg.numCores());
    std::vector<int> used(cfg.numCores(), 0);
    for (const auto &p : out) {
        ++used[p.core];
        CONSIM_ASSERT(used[p.core] <= layers, "core ", p.core,
                      " over-booked (", used[p.core], " threads, ",
                      layers, " layers)");
    }
    return out;
}

} // namespace consim
