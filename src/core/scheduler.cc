#include "core/scheduler.hh"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <sstream>

#include "common/logging.hh"
#include "common/parse.hh"
#include "common/rng.hh"

namespace consim
{

namespace
{

/** Free-core bookkeeping per group. */
struct GroupSlots
{
    std::vector<std::vector<CoreId>> freeCores; // per group, ascending
    const MachineConfig &cfg;

    explicit GroupSlots(const MachineConfig &c)
        : freeCores(c.numGroups()), cfg(c)
    {
        refill();
    }

    /** Claim a core in @p g; invalidCore when the group is full. */
    CoreId
    claim(GroupId g)
    {
        auto &v = freeCores[g];
        if (v.empty())
            return invalidCore;
        const CoreId c = v.front();
        v.erase(v.begin());
        return c;
    }

    /**
     * Start a new over-commit layer: every slot becomes free again,
     * so further claims double up threads on already-claimed cores.
     * Called only once the whole machine is full, which keeps layers
     * balanced (no core holds thread k+2 before every core holds
     * k+1).
     */
    void
    refill()
    {
        for (GroupId g = 0; g < cfg.numGroups(); ++g)
            freeCores[g] = cfg.coresOfGroup(g);
    }

    int free(GroupId g) const
    {
        return static_cast<int>(freeCores[g].size());
    }
};

/**
 * Probe every group starting at @p g for a free core; when the
 * machine is full, open a new over-commit layer and claim again.
 * @param g in/out: updated to the group that supplied the core.
 */
CoreId
claimOrOverCommit(GroupSlots &slots, int num_groups, GroupId &g)
{
    for (int layer = 0; layer < 2; ++layer) {
        for (int probe = 0; probe < num_groups; ++probe) {
            const GroupId cand = (g + probe) % num_groups;
            const CoreId core = slots.claim(cand);
            if (core != invalidCore) {
                g = cand;
                return core;
            }
        }
        slots.refill();
    }
    CONSIM_FATAL("unreachable: refilled slots yielded no core");
}

std::vector<ThreadPlacement>
scheduleRoundRobin(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    // Each VM starts again at group 0, so every partition receives
    // one thread from each workload (Fig. 1, round robin).
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        GroupId g = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            g = (g + 1) % num_groups;
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinity(const MachineConfig &cfg,
                 const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Pack each VM's threads into as few partitions as possible,
    // filling a partition completely before moving on.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            // claimOrOverCommit leaves g at the supplying group, so
            // the VM stays in this group until it fills.
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinityRr(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    const int pair = std::min(2, coresPerGroup(cfg.sharing));
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Round robin over partitions in units of thread pairs, so at
    // least two threads of a workload co-reside (paper hybrid). With
    // private caches this degenerates to plain round robin.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        int placed_in_group = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            if (placed_in_group == pair) {
                g = (g + 1) % num_groups;
                placed_in_group = 0;
            }
            const GroupId prev = g;
            const CoreId core = claimOrOverCommit(slots, num_groups, g);
            if (g != prev)
                placed_in_group = 0;
            ++placed_in_group;
            out.push_back({vm, t, core});
        }
        g = (g + 1) % num_groups;
        placed_in_group = 0;
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleRandom(const MachineConfig &cfg,
               const std::vector<int> &threads_per_vm,
               std::uint64_t seed)
{
    std::vector<CoreId> cores(cfg.numCores());
    std::iota(cores.begin(), cores.end(), 0);
    Rng rng(seed ^ 0xc0ffee);
    rng.shuffle(cores);

    std::vector<ThreadPlacement> out;
    std::size_t next = 0;
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            // Over-commit wraps around the shuffled order, layering
            // a second thread on every core before a third, etc.
            out.push_back({vm, t, cores[next % cores.size()]});
            ++next;
        }
    }
    return out;
}

} // namespace

std::vector<ThreadPlacement>
scheduleThreads(const MachineConfig &cfg,
                const std::vector<int> &threads_per_vm,
                SchedPolicy policy, std::uint64_t seed)
{
    const int total =
        std::accumulate(threads_per_vm.begin(), threads_per_vm.end(), 0);

    std::vector<ThreadPlacement> out;
    switch (policy) {
      case SchedPolicy::RoundRobin:
        out = scheduleRoundRobin(cfg, threads_per_vm);
        break;
      case SchedPolicy::Affinity:
        out = scheduleAffinity(cfg, threads_per_vm);
        break;
      case SchedPolicy::AffinityRR:
        out = scheduleAffinityRr(cfg, threads_per_vm);
        break;
      case SchedPolicy::Random:
        out = scheduleRandom(cfg, threads_per_vm, seed);
        break;
    }

    // Sanity: over-commit fills in balanced layers — no core holds
    // more than ceil(total / numCores) threads, and none holds a
    // second thread unless every core holds a first.
    const int layers =
        (total + cfg.numCores() - 1) / std::max(1, cfg.numCores());
    std::vector<int> used(cfg.numCores(), 0);
    for (const auto &p : out) {
        ++used[p.core];
        CONSIM_ASSERT(used[p.core] <= layers, "core ", p.core,
                      " over-booked (", used[p.core], " threads, ",
                      layers, " layers)");
    }
    return out;
}

// ---------------------------------------------------------------- //
// Dynamic-scheduling spec grammar.                                  //
// ---------------------------------------------------------------- //

namespace
{

constexpr const char *dynGrammar =
    "off | load-balance[,epoch=E] | affinity-repair[,epoch=E] | "
    "contention-aware[,epoch=E]";

bool
dynFail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg + " (valid: " + dynGrammar + ")";
    return false;
}

/** Split @p s on @p sep, dropping empty pieces and whitespace. */
std::vector<std::string>
dynSplit(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

} // namespace

const char *
toString(DynSchedPolicy p)
{
    switch (p) {
      case DynSchedPolicy::Off:
        return "off";
      case DynSchedPolicy::LoadBalance:
        return "load-balance";
      case DynSchedPolicy::AffinityRepair:
        return "affinity-repair";
      case DynSchedPolicy::ContentionAware:
        return "contention-aware";
    }
    return "?";
}

bool
DynSchedConfig::parse(const std::string &text, DynSchedConfig &out,
                      std::string *err)
{
    DynSchedConfig d;
    const std::vector<std::string> parts = dynSplit(text, ',');
    if (parts.empty())
        return dynFail(err, "empty dyn-sched spec");
    const std::string &policy = parts[0];
    if (policy == "off") {
        if (parts.size() > 1)
            return dynFail(err,
                           "dyn-sched policy 'off' takes no parameters");
        out = d;
        return true;
    }
    if (policy == "load-balance") {
        d.policy = DynSchedPolicy::LoadBalance;
    } else if (policy == "affinity-repair") {
        d.policy = DynSchedPolicy::AffinityRepair;
    } else if (policy == "contention-aware") {
        d.policy = DynSchedPolicy::ContentionAware;
    } else {
        return dynFail(err, "unknown dyn-sched policy '" + policy +
                                "' (off|load-balance|affinity-repair|"
                                "contention-aware)");
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &kv = parts[i];
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            return dynFail(err, "expected key=value, got '" + kv + "'");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        std::uint64_t v = 0;
        if (!parseU64(val, v))
            return dynFail(err, "bad number '" + val + "' for " + key);
        if (key == "epoch") {
            d.epochCycles = v;
        } else {
            return dynFail(err,
                           "unknown dyn-sched parameter '" + key + "'");
        }
    }
    if (d.epochCycles < 1)
        return dynFail(err, "epoch must be >= 1");
    out = d;
    return true;
}

std::string
DynSchedConfig::spec() const
{
    if (policy == DynSchedPolicy::Off)
        return "off";
    std::ostringstream os;
    os << toString(policy) << ",epoch=" << epochCycles;
    return os.str();
}

json::Value
DynSchedConfig::toJson() const
{
    auto v = json::Value::object();
    v.set("policy", toString(policy));
    if (policy == DynSchedPolicy::Off)
        return v;
    v.set("epoch_cycles", epochCycles);
    return v;
}

// ---------------------------------------------------------------- //
// The three migration policies.                                     //
// ---------------------------------------------------------------- //

namespace
{

/**
 * Shared partner scan: the best swap partner inside @p g — idle
 * eligible cores first (a migration, not an exchange), otherwise the
 * eligible core scoring lowest under @p score; ties toward the lowest
 * core id. @p exclude is skipped. invalidCore when the group offers
 * no eligible endpoint.
 */
template <typename ScoreFn>
CoreId
pickPartnerInGroup(const MachineConfig &cfg, const DynSample &s,
                   GroupId g, CoreId exclude, ScoreFn score)
{
    CoreId best = invalidCore;
    double best_score = 0.0;
    for (const CoreId c : cfg.coresOfGroup(g)) {
        if (c == exclude || !s.cores[c].eligible)
            continue;
        if (s.cores[c].idle)
            return c; // ascending scan: lowest-id idle core wins
        const double sc = score(c);
        if (best == invalidCore || sc < best_score) {
            best = c;
            best_score = sc;
        }
    }
    return best;
}

/**
 * Load balance: equalize per-group aggregate retired load. Moves the
 * busiest thread of the heaviest group toward the lightest group when
 * the spread exceeds 1/8 of the heavy group's load.
 */
class LoadBalancePolicy : public MigrationPolicy
{
  public:
    const char *name() const override { return "load-balance"; }

    ThreadSwap
    decide(const MachineConfig &cfg, const DynSample &s) const override
    {
        std::vector<std::uint64_t> load(cfg.numGroups(), 0);
        for (CoreId c = 0; c < static_cast<CoreId>(s.cores.size());
             ++c)
            load[cfg.groupOfCore(c)] += s.cores[c].retired;
        GroupId hi = 0, lo = 0;
        for (GroupId g = 1; g < cfg.numGroups(); ++g) {
            if (load[g] > load[hi])
                hi = g;
            if (load[g] < load[lo])
                lo = g;
        }
        if (hi == lo || load[hi] == 0 ||
            load[hi] - load[lo] < load[hi] / 8)
            return {};
        // Victim: the busiest migratable thread of the heavy group.
        CoreId victim = invalidCore;
        for (const CoreId c : cfg.coresOfGroup(hi)) {
            if (!s.cores[c].eligible || s.cores[c].idle)
                continue;
            if (victim == invalidCore ||
                s.cores[c].retired > s.cores[victim].retired)
                victim = c;
        }
        if (victim == invalidCore)
            return {};
        const CoreId partner = pickPartnerInGroup(
            cfg, s, lo, victim,
            [&](CoreId c) {
                return static_cast<double>(s.cores[c].retired);
            });
        // Swapping two equally-busy threads is churn, not balance.
        if (partner == invalidCore ||
            (!s.cores[partner].idle &&
             s.cores[partner].retired >= s.cores[victim].retired))
            return {};
        return {victim, partner};
    }
};

/**
 * Affinity repair: when a VM pays a high cache-to-cache fraction, its
 * sharers are split across L2 partitions — re-pack a stray thread
 * into the VM's most-populated (home) group.
 */
class AffinityRepairPolicy : public MigrationPolicy
{
  public:
    const char *name() const override { return "affinity-repair"; }

    ThreadSwap
    decide(const MachineConfig &cfg, const DynSample &s) const override
    {
        // VMs by c2c fraction, worst first; ties toward the lower id.
        std::vector<VmId> order;
        for (VmId v = 0; v < static_cast<VmId>(s.vms.size()); ++v) {
            const DynVmSample &vm = s.vms[v];
            if (vm.l2Misses >= kMinMisses &&
                vm.c2cTransfers * 5 >= vm.l2Misses) // >= 20% c2c
                order.push_back(v);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](VmId a, VmId b) {
                             return frac(s.vms[a]) > frac(s.vms[b]);
                         });
        for (const VmId vm : order) {
            // Thread census per group for this VM.
            std::vector<int> pop(cfg.numGroups(), 0);
            for (CoreId c = 0;
                 c < static_cast<CoreId>(s.cores.size()); ++c)
                if (s.cores[c].vm == vm && !s.cores[c].idle)
                    ++pop[cfg.groupOfCore(c)];
            GroupId home = 0;
            int spread = 0;
            for (GroupId g = 0; g < cfg.numGroups(); ++g) {
                if (pop[g] > 0)
                    ++spread;
                if (pop[g] > pop[home])
                    home = g;
            }
            if (spread <= 1)
                continue; // already packed
            // Stray: the lowest-id migratable thread outside home.
            CoreId stray = invalidCore;
            for (CoreId c = 0;
                 c < static_cast<CoreId>(s.cores.size()); ++c) {
                if (s.cores[c].vm == vm && !s.cores[c].idle &&
                    s.cores[c].eligible &&
                    cfg.groupOfCore(c) != home) {
                    stray = c;
                    break;
                }
            }
            if (stray == invalidCore)
                continue;
            // Partner: a non-sharer slot inside home (idle preferred,
            // else the lightest foreign thread).
            CoreId partner = invalidCore;
            double partner_score = 0.0;
            for (const CoreId c : cfg.coresOfGroup(home)) {
                if (!s.cores[c].eligible || s.cores[c].vm == vm)
                    continue;
                if (s.cores[c].idle) {
                    partner = c;
                    break;
                }
                const double sc =
                    static_cast<double>(s.cores[c].retired);
                if (partner == invalidCore || sc < partner_score) {
                    partner = c;
                    partner_score = sc;
                }
            }
            if (partner == invalidCore)
                continue;
            return {stray, partner};
        }
        return {};
    }

  private:
    static constexpr std::uint64_t kMinMisses = 64;

    static double
    frac(const DynVmSample &v)
    {
        return static_cast<double>(v.c2cTransfers) /
               static_cast<double>(v.l2Misses);
    }
};

/**
 * Contention aware: evict the thread with the worst per-VM L2
 * miss-rate delta from the most-contended partition toward the
 * least-contended one.
 */
class ContentionAwarePolicy : public MigrationPolicy
{
  public:
    const char *name() const override { return "contention-aware"; }

    ThreadSwap
    decide(const MachineConfig &cfg, const DynSample &s) const override
    {
        GroupId hi = invalidGroup, lo = invalidGroup;
        double hi_rate = 0.0, lo_rate = 0.0;
        // A quiet partition is the perfect migration target but a
        // meaningless eviction source, so only the source needs a
        // minimum-traffic gate. The gate is relative — a quarter of
        // the mean per-group traffic, floored at kMinAccesses — so
        // short epochs on small partitions still expose their
        // thrashers while a trickle next to busy groups stays gated.
        std::uint64_t total = 0;
        for (const DynGroupSample &gs : s.groups)
            total += gs.l2Hits + gs.l2Misses;
        const std::uint64_t gate = std::max<std::uint64_t>(
            kMinAccesses,
            total / (4 * static_cast<std::uint64_t>(cfg.numGroups())));
        for (GroupId g = 0; g < cfg.numGroups(); ++g) {
            const DynGroupSample &gs = s.groups[g];
            const std::uint64_t acc = gs.l2Hits + gs.l2Misses;
            const double rate =
                acc ? static_cast<double>(gs.l2Misses) /
                          static_cast<double>(acc)
                    : 0.0;
            if (acc >= gate &&
                (hi == invalidGroup || rate > hi_rate)) {
                hi = g;
                hi_rate = rate;
            }
            if (lo == invalidGroup || rate < lo_rate) {
                lo = g;
                lo_rate = rate;
            }
        }
        if (hi == invalidGroup || hi == lo ||
            hi_rate - lo_rate < kMinMargin)
            return {};
        // Victim: the thread whose VM suffers the worst miss rate.
        CoreId victim = invalidCore;
        double victim_rate = 0.0;
        for (const CoreId c : cfg.coresOfGroup(hi)) {
            if (!s.cores[c].eligible || s.cores[c].idle)
                continue;
            const double r = vmMissRate(s, c);
            if (victim == invalidCore || r > victim_rate) {
                victim = c;
                victim_rate = r;
            }
        }
        if (victim == invalidCore)
            return {};
        const CoreId partner = pickPartnerInGroup(
            cfg, s, lo, victim,
            [&](CoreId c) { return vmMissRate(s, c); });
        if (partner == invalidCore)
            return {};
        return {victim, partner};
    }

  private:
    static constexpr std::uint64_t kMinAccesses = 32;
    static constexpr double kMinMargin = 0.05;

    static double
    vmMissRate(const DynSample &s, CoreId c)
    {
        const DynVmSample &v = s.vms[s.cores[c].vm];
        return static_cast<double>(v.l2Misses) /
               static_cast<double>(std::max<std::uint64_t>(
                   1, v.l2Accesses));
    }
};

} // namespace

std::unique_ptr<MigrationPolicy>
makeMigrationPolicy(DynSchedPolicy p)
{
    switch (p) {
      case DynSchedPolicy::LoadBalance:
        return std::make_unique<LoadBalancePolicy>();
      case DynSchedPolicy::AffinityRepair:
        return std::make_unique<AffinityRepairPolicy>();
      case DynSchedPolicy::ContentionAware:
        return std::make_unique<ContentionAwarePolicy>();
      case DynSchedPolicy::Off:
        break;
    }
    CONSIM_FATAL("no migration policy for '", toString(p), "'");
}

} // namespace consim
