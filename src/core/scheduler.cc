#include "core/scheduler.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace consim
{

namespace
{

/** Free-core bookkeeping per group. */
struct GroupSlots
{
    std::vector<std::vector<CoreId>> freeCores; // per group, ascending

    explicit GroupSlots(const MachineConfig &cfg)
        : freeCores(cfg.numGroups())
    {
        for (GroupId g = 0; g < cfg.numGroups(); ++g)
            freeCores[g] = cfg.coresOfGroup(g);
    }

    /** Claim a core in @p g; invalidCore when the group is full. */
    CoreId
    claim(GroupId g)
    {
        auto &v = freeCores[g];
        if (v.empty())
            return invalidCore;
        const CoreId c = v.front();
        v.erase(v.begin());
        return c;
    }

    int free(GroupId g) const
    {
        return static_cast<int>(freeCores[g].size());
    }
};

std::vector<ThreadPlacement>
scheduleRoundRobin(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    // Each VM starts again at group 0, so every partition receives
    // one thread from each workload (Fig. 1, round robin).
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        int g = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            CoreId core = invalidCore;
            for (int probe = 0; probe < num_groups; ++probe) {
                const GroupId cand = (g + probe) % num_groups;
                core = slots.claim(cand);
                if (core != invalidCore) {
                    g = (cand + 1) % num_groups;
                    break;
                }
            }
            CONSIM_ASSERT(core != invalidCore, "machine over-committed");
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinity(const MachineConfig &cfg,
                 const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Pack each VM's threads into as few partitions as possible,
    // filling a partition completely before moving on.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            CoreId core = invalidCore;
            for (int probe = 0; probe < num_groups; ++probe) {
                const GroupId cand = (g + probe) % num_groups;
                core = slots.claim(cand);
                if (core != invalidCore) {
                    g = cand; // stay in this group until it fills
                    break;
                }
            }
            CONSIM_ASSERT(core != invalidCore, "machine over-committed");
            out.push_back({vm, t, core});
        }
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleAffinityRr(const MachineConfig &cfg,
                   const std::vector<int> &threads_per_vm)
{
    GroupSlots slots(cfg);
    const int num_groups = cfg.numGroups();
    const int pair = std::min(2, coresPerGroup(cfg.sharing));
    std::vector<ThreadPlacement> out;
    GroupId g = 0;
    // Round robin over partitions in units of thread pairs, so at
    // least two threads of a workload co-reside (paper hybrid). With
    // private caches this degenerates to plain round robin.
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        int placed_in_group = 0;
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            if (placed_in_group == pair) {
                g = (g + 1) % num_groups;
                placed_in_group = 0;
            }
            CoreId core = invalidCore;
            for (int probe = 0; probe < num_groups; ++probe) {
                const GroupId cand = (g + probe) % num_groups;
                core = slots.claim(cand);
                if (core != invalidCore) {
                    if (cand != g) {
                        g = cand;
                        placed_in_group = 0;
                    }
                    break;
                }
            }
            CONSIM_ASSERT(core != invalidCore, "machine over-committed");
            ++placed_in_group;
            out.push_back({vm, t, core});
        }
        g = (g + 1) % num_groups;
        placed_in_group = 0;
    }
    return out;
}

std::vector<ThreadPlacement>
scheduleRandom(const MachineConfig &cfg,
               const std::vector<int> &threads_per_vm,
               std::uint64_t seed)
{
    std::vector<CoreId> cores(cfg.numCores());
    std::iota(cores.begin(), cores.end(), 0);
    Rng rng(seed ^ 0xc0ffee);
    rng.shuffle(cores);

    std::vector<ThreadPlacement> out;
    std::size_t next = 0;
    for (VmId vm = 0; vm < static_cast<VmId>(threads_per_vm.size());
         ++vm) {
        for (int t = 0; t < threads_per_vm[vm]; ++t) {
            CONSIM_ASSERT(next < cores.size(), "machine over-committed");
            out.push_back({vm, t, cores[next++]});
        }
    }
    return out;
}

} // namespace

std::vector<ThreadPlacement>
scheduleThreads(const MachineConfig &cfg,
                const std::vector<int> &threads_per_vm,
                SchedPolicy policy, std::uint64_t seed)
{
    const int total =
        std::accumulate(threads_per_vm.begin(), threads_per_vm.end(), 0);
    if (total > cfg.numCores())
        CONSIM_FATAL("cannot place ", total, " threads on ",
                     cfg.numCores(), " cores");

    std::vector<ThreadPlacement> out;
    switch (policy) {
      case SchedPolicy::RoundRobin:
        out = scheduleRoundRobin(cfg, threads_per_vm);
        break;
      case SchedPolicy::Affinity:
        out = scheduleAffinity(cfg, threads_per_vm);
        break;
      case SchedPolicy::AffinityRR:
        out = scheduleAffinityRr(cfg, threads_per_vm);
        break;
      case SchedPolicy::Random:
        out = scheduleRandom(cfg, threads_per_vm, seed);
        break;
    }

    // Sanity: no core claimed twice.
    std::vector<bool> used(cfg.numCores(), false);
    for (const auto &p : out) {
        CONSIM_ASSERT(!used[p.core], "core ", p.core, " double-booked");
        used[p.core] = true;
    }
    return out;
}

} // namespace consim
