/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan is part of a RunConfig, so faults are as reproducible
 * as the simulation itself: the same plan + seed wedges the same
 * transaction at the same cycle on every host. The catalog covers the
 * three failure classes the hardening layer must catch:
 *
 *   wedge    — a core stops retiring at a given cycle and never
 *              unblocks (a hardware context wedged mid-miss). Caught
 *              by the watchdog's per-core progress audit.
 *   drop     — the Nth response-class protocol message is silently
 *              discarded (a lost flit / credit leak). Wedges the
 *              owning transaction; caught by the stuck-transaction
 *              checker or the watchdog, whichever runs first.
 *   memburst — every memory access issued in a cycle window pays a
 *              large extra latency (a controller brown-out). Long
 *              bursts starve all cores and trip the global
 *              no-progress watchdog.
 *
 * Plan grammar (CLI / env / JSON friendly), `;`-separated events:
 *   wedge:core=C,at=CYCLE
 *   drop:nth=N
 *   memburst:at=CYCLE,len=CYCLES,extra=CYCLES
 * e.g. "wedge:core=3,at=250000;drop:nth=1200"
 */

#ifndef CONSIM_CORE_FAULT_HH
#define CONSIM_CORE_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace consim
{

/** Injection point kinds; see file header for semantics. */
enum class FaultKind
{
    WedgeCore,    ///< core stops retiring at `at`
    DropResponse, ///< drop the `nth` response-class message
    MemBurst,     ///< [at, at+len): memory pays `extra` more cycles
};

/** @return the grammar keyword for a kind. */
const char *toString(FaultKind k);

/** One injected fault. Unused fields stay 0. */
struct FaultEvent
{
    FaultKind kind = FaultKind::WedgeCore;
    CoreId core = 0;          ///< wedge: victim core
    Cycle at = 0;             ///< wedge/memburst: start cycle
    std::uint64_t nth = 0;    ///< drop: 1-based response ordinal
    Cycle len = 0;            ///< memburst: window length
    Cycle extra = 0;          ///< memburst: added latency per access

    /** @return the event in plan-grammar form. */
    std::string spec() const;
};

/** An ordered set of faults to inject into one simulation point. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /**
     * Parse the plan grammar. On failure returns false and, when
     * @p err is non-null, stores a human-readable reason.
     */
    static bool parse(const std::string &text, FaultPlan &out,
                      std::string *err = nullptr);

    /** @return the whole plan in grammar form (round-trips parse). */
    std::string spec() const;

    /** @return JSON array of event objects (config echo). */
    json::Value toJson() const;
};

} // namespace consim

#endif // CONSIM_CORE_FAULT_HH
