#include "core/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/rng.hh"

#include "common/logging.hh"
#include "exec/sweep.hh"

namespace consim
{

namespace
{

Cycle
envCycles(const char *name, Cycle fallback)
{
    if (const char *v = std::getenv(name)) {
        const auto parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

} // namespace

Cycle
defaultWarmupCycles()
{
    return envCycles("CONSIM_WARMUP", 4'000'000);
}

Cycle
defaultMeasureCycles()
{
    return envCycles("CONSIM_MEASURE", 3'000'000);
}

double
RunResult::meanCyclesPerTxn(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.cyclesPerTransaction;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissRate(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.missRate;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissLatency(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.avgMissLatency;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

RunResult
runExperiment(const RunConfig &cfg)
{
    const Cycle warmup =
        cfg.warmupCycles ? cfg.warmupCycles : defaultWarmupCycles();
    const Cycle measure =
        cfg.measureCycles ? cfg.measureCycles : defaultMeasureCycles();

    // Build the VMs.
    std::vector<std::unique_ptr<VirtualMachine>> vm_storage;
    std::vector<VirtualMachine *> vms;
    std::vector<int> threads_per_vm;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        vm_storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull));
        vms.push_back(vm_storage.back().get());
        threads_per_vm.push_back(prof.numThreads);
    }

    const auto placements = scheduleThreads(cfg.machine, threads_per_vm,
                                            cfg.policy, cfg.seed);

    System sys(cfg.machine, vms, placements);
    if (cfg.migrationIntervalCycles == 0) {
        sys.run(warmup);
        sys.resetStats();
        sys.run(measure);
    } else {
        // Dynamic scheduling: periodically migrate threads, as a
        // hypervisor under reassignment pressure would.
        Rng mig_rng(cfg.seed ^ 0xd15ea5e);
        auto run_with_migrations = [&](Cycle total) {
            Cycle done = 0;
            while (done < total) {
                const Cycle chunk = std::min(
                    cfg.migrationIntervalCycles, total - done);
                sys.run(chunk);
                done += chunk;
                if (done < total)
                    sys.swapRandomThreads(mig_rng);
            }
        };
        run_with_migrations(warmup);
        sys.resetStats();
        run_with_migrations(measure);
    }

    RunResult out;
    out.measuredCycles = measure;
    for (auto *vm : vms) {
        const VmStats &s = vm->vmStats();
        VmResult r;
        r.kind = vm->profile().kind;
        r.transactions = s.transactions.value();
        r.instructions = s.instructions.value();
        r.l1Misses = s.l1Misses.value();
        r.l2Accesses = s.l2Accesses.value();
        r.l2Misses = s.l2Misses.value();
        r.c2cClean = s.c2cClean.value();
        r.c2cDirty = s.c2cDirty.value();
        r.distinctBlocks = vm->distinctBlocks();
        r.cyclesPerTransaction =
            r.transactions
                ? static_cast<double>(measure) /
                      static_cast<double>(r.transactions)
                : static_cast<double>(measure);
        r.missRate = s.missRate();
        r.avgMissLatency = s.missLatency.mean();
        r.c2cFraction = s.c2cFraction();
        r.c2cDirtyShare = s.c2cDirtyShare();
        out.vms.push_back(r);
    }
    const auto &net = sys.network().netStats();
    out.netAvgLatency = net.latency.mean();
    out.netPackets = net.packetsEjected.value();
    out.replication = sys.replicationSnapshot();
    out.occupancy = sys.occupancySnapshot();
    return out;
}

RunResult
averageRunResults(std::vector<RunResult> runs)
{
    CONSIM_ASSERT(!runs.empty(), "need at least one run");
    RunResult acc = std::move(runs.front());
    double packets = static_cast<double>(acc.netPackets);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        const RunResult &b = runs[r];
        CONSIM_ASSERT(b.vms.size() == acc.vms.size(),
                      "seed runs disagree on VM count");
        for (std::size_t i = 0; i < b.vms.size(); ++i) {
            auto &a = acc.vms[i];
            const auto &v = b.vms[i];
            a.transactions += v.transactions;
            a.instructions += v.instructions;
            a.l1Misses += v.l1Misses;
            a.l2Accesses += v.l2Accesses;
            a.l2Misses += v.l2Misses;
            a.c2cClean += v.c2cClean;
            a.c2cDirty += v.c2cDirty;
            a.cyclesPerTransaction += v.cyclesPerTransaction;
            a.missRate += v.missRate;
            a.avgMissLatency += v.avgMissLatency;
            a.c2cFraction += v.c2cFraction;
            a.c2cDirtyShare += v.c2cDirtyShare;
        }
        acc.netAvgLatency += b.netAvgLatency;
        packets += static_cast<double>(b.netPackets);
    }
    const double n = static_cast<double>(runs.size());
    for (auto &v : acc.vms) {
        v.cyclesPerTransaction /= n;
        v.missRate /= n;
        v.avgMissLatency /= n;
        v.c2cFraction /= n;
        v.c2cDirtyShare /= n;
    }
    acc.netAvgLatency /= n;
    acc.netPackets = static_cast<std::uint64_t>(packets / n + 0.5);
    // acc.replication / acc.occupancy keep the first run's snapshot
    // (see RunResult docs).
    return acc;
}

RunResult
runAveraged(RunConfig cfg, const std::vector<std::uint64_t> &seeds)
{
    return runSweepAveraged({cfg}, seeds).front();
}

RunConfig
isolationConfig(WorkloadKind kind, SchedPolicy policy,
                SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = {kind};
    cfg.policy = policy;
    return cfg;
}

RunConfig
mixConfig(const Mix &mix, SchedPolicy policy, SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = mix.vms;
    cfg.policy = policy;
    return cfg;
}

} // namespace consim
