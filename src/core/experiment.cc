#include "core/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/rng.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "exec/sweep.hh"

namespace consim
{

namespace
{

Cycle
envCycles(const char *name, Cycle fallback)
{
    if (const char *v = std::getenv(name)) {
        const auto parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

} // namespace

Cycle
defaultWarmupCycles()
{
    return envCycles("CONSIM_WARMUP", 4'000'000);
}

Cycle
defaultMeasureCycles()
{
    return envCycles("CONSIM_MEASURE", 3'000'000);
}

Cycle
defaultWatchdogIntervalCycles()
{
    // Unlike the window defaults, an explicit "0" here is meaningful:
    // it disables the watchdog.
    if (const char *v = std::getenv("CONSIM_WATCHDOG"))
        return std::strtoull(v, nullptr, 10);
    return 1'000'000;
}

double
RunResult::meanCyclesPerTxn(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.cyclesPerTransaction;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissRate(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.missRate;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissLatency(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.avgMissLatency;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

RunResult
runExperiment(const RunConfig &cfg)
{
    const Cycle warmup =
        cfg.warmupCycles ? cfg.warmupCycles : defaultWarmupCycles();
    const Cycle measure =
        cfg.measureCycles ? cfg.measureCycles : defaultMeasureCycles();

    // Build the VMs.
    std::vector<std::unique_ptr<VirtualMachine>> vm_storage;
    std::vector<VirtualMachine *> vms;
    std::vector<int> threads_per_vm;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        vm_storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull));
        vms.push_back(vm_storage.back().get());
        threads_per_vm.push_back(prof.numThreads);
    }

    const auto placements = scheduleThreads(cfg.machine, threads_per_vm,
                                            cfg.policy, cfg.seed);

    System sys(cfg.machine, vms, placements);
    sys.setWatchdogInterval(cfg.watchdogIntervalCycles
                                ? cfg.watchdogIntervalCycles
                                : defaultWatchdogIntervalCycles());
    if (cfg.cycleDeadline != 0)
        sys.setCycleDeadline(cfg.cycleDeadline);
    if (!cfg.faults.empty())
        sys.setFaultPlan(cfg.faults);
    // Cross-component audits fire at measurement-window boundaries
    // when CONSIM_CHECK=full; they are free otherwise.
    const auto audit = [&] {
        if (CONSIM_CHECK_ACTIVE(Full))
            sys.auditWindow();
    };
    if (cfg.migrationIntervalCycles == 0) {
        sys.run(warmup);
        audit();
        sys.resetStats();
        sys.run(measure);
        audit();
    } else {
        // Dynamic scheduling: periodically migrate threads, as a
        // hypervisor under reassignment pressure would.
        Rng mig_rng(cfg.seed ^ 0xd15ea5e);
        auto run_with_migrations = [&](Cycle total) {
            Cycle done = 0;
            while (done < total) {
                const Cycle chunk = std::min(
                    cfg.migrationIntervalCycles, total - done);
                sys.run(chunk);
                done += chunk;
                if (done < total)
                    sys.swapRandomThreads(mig_rng);
            }
        };
        run_with_migrations(warmup);
        audit();
        sys.resetStats();
        run_with_migrations(measure);
        audit();
    }

    // Extraction reads the hierarchical stats registry ("sys.vmNN.*",
    // "sys.net.*") rather than reaching into component structs, so
    // RunResult and every other registry consumer (dumpStats, JSON
    // export) see exactly the same numbers by construction.
    const stats::Group &root = sys.statsRoot();
    RunResult out;
    out.measuredCycles = measure;
    for (auto *vm : vms) {
        const stats::Group *g =
            root.findGroup(indexedName("vm", vm->id()));
        CONSIM_ASSERT(g, "registry: no group for vm ", vm->id());
        const auto counter = [g](const char *name) {
            const stats::Counter *c = g->findCounter(name);
            CONSIM_ASSERT(c, "registry: vm counter '", name,
                          "' missing");
            return c->value();
        };
        VmResult r;
        r.kind = vm->profile().kind;
        r.transactions = counter("transactions");
        r.instructions = counter("instructions");
        r.l1Misses = counter("l1_misses");
        r.l2Accesses = counter("l2_accesses");
        r.l2Misses = counter("l2_misses");
        r.c2cClean = counter("c2c_clean");
        r.c2cDirty = counter("c2c_dirty");
        r.distinctBlocks = vm->distinctBlocks();
        r.cyclesPerTransaction =
            r.transactions
                ? static_cast<double>(measure) /
                      static_cast<double>(r.transactions)
                : static_cast<double>(measure);
        r.missRate = r.l2Accesses
                         ? static_cast<double>(r.l2Misses) /
                               static_cast<double>(r.l2Accesses)
                         : 0.0;
        const stats::Average *lat = g->findAverage("miss_latency");
        CONSIM_ASSERT(lat, "registry: vm miss_latency missing");
        r.avgMissLatency = lat->mean();
        const std::uint64_t c2c = r.c2cClean + r.c2cDirty;
        r.c2cFraction = r.l2Misses
                            ? static_cast<double>(c2c) /
                                  static_cast<double>(r.l2Misses)
                            : 0.0;
        r.c2cDirtyShare = c2c ? static_cast<double>(r.c2cDirty) /
                                    static_cast<double>(c2c)
                              : 0.0;
        out.vms.push_back(r);
    }
    const stats::Average *net_lat = root.findAverage("net.latency");
    const stats::Counter *net_pkts =
        root.findCounter("net.packets_ejected");
    CONSIM_ASSERT(net_lat && net_pkts, "registry: net stats missing");
    out.netAvgLatency = net_lat->mean();
    out.netPackets = net_pkts->value();
    out.replication = sys.replicationSnapshot();
    out.occupancy = sys.occupancySnapshot();
    return out;
}

RunResult
averageRunResults(std::vector<RunResult> runs)
{
    CONSIM_ASSERT(!runs.empty(), "need at least one run");
    RunResult acc = std::move(runs.front());
    double packets = static_cast<double>(acc.netPackets);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        const RunResult &b = runs[r];
        CONSIM_ASSERT(b.vms.size() == acc.vms.size(),
                      "seed runs disagree on VM count");
        for (std::size_t i = 0; i < b.vms.size(); ++i) {
            auto &a = acc.vms[i];
            const auto &v = b.vms[i];
            a.transactions += v.transactions;
            a.instructions += v.instructions;
            a.l1Misses += v.l1Misses;
            a.l2Accesses += v.l2Accesses;
            a.l2Misses += v.l2Misses;
            a.c2cClean += v.c2cClean;
            a.c2cDirty += v.c2cDirty;
            a.cyclesPerTransaction += v.cyclesPerTransaction;
            a.missRate += v.missRate;
            a.avgMissLatency += v.avgMissLatency;
            a.c2cFraction += v.c2cFraction;
            a.c2cDirtyShare += v.c2cDirtyShare;
        }
        acc.netAvgLatency += b.netAvgLatency;
        packets += static_cast<double>(b.netPackets);
    }
    const double n = static_cast<double>(runs.size());
    for (auto &v : acc.vms) {
        v.cyclesPerTransaction /= n;
        v.missRate /= n;
        v.avgMissLatency /= n;
        v.c2cFraction /= n;
        v.c2cDirtyShare /= n;
    }
    acc.netAvgLatency /= n;
    acc.netPackets = static_cast<std::uint64_t>(packets / n + 0.5);
    // acc.replication / acc.occupancy keep the first run's snapshot
    // (see RunResult docs).
    return acc;
}

RunResult
runAveraged(RunConfig cfg, const std::vector<std::uint64_t> &seeds)
{
    return runSweepAveraged({cfg}, seeds).front();
}

RunConfig
isolationConfig(WorkloadKind kind, SchedPolicy policy,
                SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = {kind};
    cfg.policy = policy;
    return cfg;
}

RunConfig
mixConfig(const Mix &mix, SchedPolicy policy, SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = mix.vms;
    cfg.policy = policy;
    return cfg;
}

} // namespace consim
