#include "core/experiment.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "common/rng.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/parse.hh"
#include "core/scheduler.hh"
#include "exec/sweep.hh"

namespace consim
{

namespace
{

/**
 * Window defaults treat an explicit "0" like unset (you cannot ask for
 * a zero-cycle window); malformed values are fatal via envU64 rather
 * than silently running the built-in default.
 */
Cycle
envCycles(const char *name, Cycle fallback)
{
    const std::uint64_t v = envU64(name, 0);
    return v ? v : fallback;
}

} // namespace

Cycle
defaultWarmupCycles()
{
    return envCycles("CONSIM_WARMUP", 4'000'000);
}

Cycle
defaultMeasureCycles()
{
    return envCycles("CONSIM_MEASURE", 3'000'000);
}

Cycle
defaultWatchdogIntervalCycles()
{
    // Unlike the window defaults, an explicit "0" here is meaningful:
    // it disables the watchdog.
    return envU64("CONSIM_WATCHDOG", 1'000'000);
}

Cycle
defaultCheckpointIntervalCycles()
{
    // Periodic snapshotting is opt-in; "0" (or unset) keeps it off.
    return envU64("CONSIM_CKPT", 0);
}

int
defaultRunJobs()
{
    // Strict parse like CONSIM_JOBS: garbage is fatal, unset means
    // serial. The count is clamped to the core count by the System.
    const int jobs = envIntInRange("CONSIM_RUN_JOBS", 1, 4096, 0);
    return jobs > 0 ? jobs : 1;
}

double
RunResult::meanCyclesPerTxn(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.cyclesPerTransaction;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissRate(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.missRate;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

double
RunResult::meanMissLatency(WorkloadKind kind) const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &v : vms) {
        if (v.kind == kind) {
            sum += v.avgMissLatency;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

namespace
{

// --- checkpoint context codec -------------------------------------
//
// The `consim.run.v1` config echo (core/report.cc) is a byte-stable
// PARTIAL view and must not grow fields; a resume instead needs every
// structural knob, so the checkpoint context carries its own complete
// codec. Enums travel as their integer values (no inverse string
// parsers exist) and the fault plan as its grammar string, which
// round-trips through FaultPlan::parse.

const json::Value &
ctxGet(const json::Value &obj, const char *key)
{
    const json::Value *v = obj.find(key);
    CONSIM_ASSERT(v, "checkpoint context: missing key '", key, "'");
    return *v;
}

int
ctxInt(const json::Value &obj, const char *key)
{
    return static_cast<int>(ctxGet(obj, key).number());
}

json::Value
machineCtxJson(const MachineConfig &m)
{
    auto v = json::Value::object();
    v.set("mesh_x", m.meshX);
    v.set("mesh_y", m.meshY);
    v.set("l0_bytes", m.l0Bytes);
    v.set("l0_assoc", m.l0Assoc);
    v.set("l0_latency", m.l0Latency);
    v.set("l1_bytes", m.l1Bytes);
    v.set("l1_assoc", m.l1Assoc);
    v.set("l1_latency", m.l1Latency);
    v.set("l2_total_bytes", m.l2TotalBytes);
    v.set("l2_assoc", m.l2Assoc);
    v.set("l2_latency", m.l2Latency);
    v.set("sharing", coresPerGroup(m.sharing));
    v.set("mem_latency", m.memLatency);
    v.set("num_mem_ctrls", m.numMemCtrls);
    v.set("mem_issue_interval", m.memIssueInterval);
    v.set("mem_overlap_latency", m.memOverlapLatency);
    v.set("dir_cache_enabled", m.dirCacheEnabled);
    v.set("dir_cache_entries", m.dirCacheEntries);
    v.set("dir_cache_assoc", m.dirCacheAssoc);
    v.set("dir_latency", m.dirLatency);
    v.set("clean_forwarding", m.cleanForwarding);
    v.set("ideal_noc", m.idealNoc);
    v.set("ideal_noc_latency", m.idealNocLatency);
    v.set("flat_intra_group", m.flatIntraGroup);
    v.set("intra_group_latency", m.intraGroupLatency);
    v.set("flit_bytes", m.flitBytes);
    v.set("vcs_per_vnet", m.vcsPerVnet);
    v.set("vc_buffer_flits", m.vcBufferFlits);
    v.set("num_vnets", m.numVnets);
    return v;
}

MachineConfig
machineFromCtx(const json::Value &v)
{
    MachineConfig m;
    m.meshX = ctxInt(v, "mesh_x");
    m.meshY = ctxInt(v, "mesh_y");
    m.l0Bytes = ctxGet(v, "l0_bytes").asUint();
    m.l0Assoc = ctxInt(v, "l0_assoc");
    m.l0Latency = ctxInt(v, "l0_latency");
    m.l1Bytes = ctxGet(v, "l1_bytes").asUint();
    m.l1Assoc = ctxInt(v, "l1_assoc");
    m.l1Latency = ctxInt(v, "l1_latency");
    m.l2TotalBytes = ctxGet(v, "l2_total_bytes").asUint();
    m.l2Assoc = ctxInt(v, "l2_assoc");
    m.l2Latency = ctxInt(v, "l2_latency");
    const int sharing = ctxInt(v, "sharing");
    CONSIM_ASSERT(sharing >= 1 && sharing <= m.meshX * m.meshY,
                  "checkpoint context: bad sharing degree ", sharing);
    m.sharing = sharingDegree(sharing);
    m.memLatency = ctxInt(v, "mem_latency");
    m.numMemCtrls = ctxInt(v, "num_mem_ctrls");
    m.memIssueInterval = ctxInt(v, "mem_issue_interval");
    m.memOverlapLatency = ctxInt(v, "mem_overlap_latency");
    m.dirCacheEnabled = ctxGet(v, "dir_cache_enabled").boolean();
    m.dirCacheEntries = ctxGet(v, "dir_cache_entries").asUint();
    m.dirCacheAssoc = ctxInt(v, "dir_cache_assoc");
    m.dirLatency = ctxInt(v, "dir_latency");
    m.cleanForwarding = ctxGet(v, "clean_forwarding").boolean();
    m.idealNoc = ctxGet(v, "ideal_noc").boolean();
    m.idealNocLatency = ctxInt(v, "ideal_noc_latency");
    m.flatIntraGroup = ctxGet(v, "flat_intra_group").boolean();
    m.intraGroupLatency = ctxInt(v, "intra_group_latency");
    m.flitBytes = ctxInt(v, "flit_bytes");
    m.vcsPerVnet = ctxInt(v, "vcs_per_vnet");
    m.vcBufferFlits = ctxInt(v, "vc_buffer_flits");
    m.numVnets = ctxInt(v, "num_vnets");
    return m;
}

json::Value
configCtxJson(const RunConfig &res, const RunConfig &raw)
{
    auto v = json::Value::object();
    v.set("machine", machineCtxJson(res.machine));
    auto wl = json::Value::array();
    for (WorkloadKind k : res.workloads)
        wl.push(static_cast<int>(k));
    v.set("workloads", std::move(wl));
    auto vt = json::Value::array();
    for (int t : res.vmThreads)
        vt.push(t);
    v.set("vm_threads", std::move(vt));
    v.set("policy", static_cast<int>(res.policy));
    v.set("seed", res.seed);
    v.set("warmup_cycles", res.warmupCycles);
    v.set("measure_cycles", res.measureCycles);
    v.set("migration_interval_cycles", res.migrationIntervalCycles);
    v.set("timeslice_cycles", res.timesliceCycles);
    v.set("watchdog_interval_cycles", res.watchdogIntervalCycles);
    v.set("cycle_deadline", res.cycleDeadline);
    v.set("ckpt_every_cycles", res.ckptEveryCycles);
    v.set("faults", res.faults.spec());
    v.set("qos", res.qos.spec());
    v.set("dyn_sched", res.dynSched.spec());
    // The as-configured (pre-env-resolution) values of the four
    // resolvable knobs, so a resume can echo the original config
    // verbatim in its consim.run.v1 envelope while still running
    // under the resolved values.
    v.set("raw_warmup_cycles", raw.warmupCycles);
    v.set("raw_measure_cycles", raw.measureCycles);
    v.set("raw_watchdog_interval_cycles", raw.watchdogIntervalCycles);
    v.set("raw_ckpt_every_cycles", raw.ckptEveryCycles);
    return v;
}

RunConfig
configFromCtx(const json::Value &v)
{
    RunConfig cfg;
    cfg.machine = machineFromCtx(ctxGet(v, "machine"));
    for (const auto &w : ctxGet(v, "workloads").items()) {
        const int k = static_cast<int>(w.number());
        CONSIM_ASSERT(k >= 0 && k <= 5,
                      "checkpoint context: bad workload kind ", k);
        cfg.workloads.push_back(static_cast<WorkloadKind>(k));
    }
    for (const auto &t : ctxGet(v, "vm_threads").items())
        cfg.vmThreads.push_back(static_cast<int>(t.number()));
    const int pol = ctxInt(v, "policy");
    CONSIM_ASSERT(pol >= 0 && pol <= 3,
                  "checkpoint context: bad scheduling policy ", pol);
    cfg.policy = static_cast<SchedPolicy>(pol);
    cfg.seed = ctxGet(v, "seed").asUint();
    cfg.warmupCycles = ctxGet(v, "warmup_cycles").asUint();
    cfg.measureCycles = ctxGet(v, "measure_cycles").asUint();
    cfg.migrationIntervalCycles =
        ctxGet(v, "migration_interval_cycles").asUint();
    // Optional: absent in checkpoints from before over-commit.
    if (const json::Value *ts = v.find("timeslice_cycles"))
        cfg.timesliceCycles = ts->asUint();
    cfg.watchdogIntervalCycles =
        ctxGet(v, "watchdog_interval_cycles").asUint();
    cfg.cycleDeadline = ctxGet(v, "cycle_deadline").asUint();
    cfg.ckptEveryCycles = ctxGet(v, "ckpt_every_cycles").asUint();
    const std::string spec = ctxGet(v, "faults").str();
    if (!spec.empty()) {
        std::string err;
        const bool ok = FaultPlan::parse(spec, cfg.faults, &err);
        CONSIM_ASSERT(ok, "checkpoint context: bad fault spec '", spec,
                      "': ", err);
    }
    {
        const std::string qspec = ctxGet(v, "qos").str();
        std::string err;
        const bool ok = QosConfig::parse(qspec, cfg.qos, &err);
        CONSIM_ASSERT(ok, "checkpoint context: bad qos spec '",
                      qspec, "': ", err);
    }
    {
        const std::string dspec = ctxGet(v, "dyn_sched").str();
        std::string err;
        const bool ok =
            DynSchedConfig::parse(dspec, cfg.dynSched, &err);
        CONSIM_ASSERT(ok, "checkpoint context: bad dyn-sched spec '",
                      dspec, "': ", err);
    }
    return cfg;
}

/** The config as originally passed to runExperiment (raw knobs). */
RunConfig
configEchoFromCtx(const json::Value &v)
{
    RunConfig cfg = configFromCtx(v);
    cfg.warmupCycles = ctxGet(v, "raw_warmup_cycles").asUint();
    cfg.measureCycles = ctxGet(v, "raw_measure_cycles").asUint();
    cfg.watchdogIntervalCycles =
        ctxGet(v, "raw_watchdog_interval_cycles").asUint();
    cfg.ckptEveryCycles =
        ctxGet(v, "raw_ckpt_every_cycles").asUint();
    return cfg;
}

// --- experiment rig and phase driver ------------------------------

/** The pieces a System borrows: VM storage and thread placements. */
struct ExperimentRig
{
    std::vector<std::unique_ptr<VirtualMachine>> storage;
    std::vector<VirtualMachine *> vms;
    std::vector<ThreadPlacement> placements;
};

/** Build VMs + placements for @p cfg; deterministic in cfg alone. */
ExperimentRig
buildRig(const RunConfig &cfg)
{
    ExperimentRig rig;
    CONSIM_ASSERT(cfg.vmThreads.empty() ||
                      cfg.vmThreads.size() == cfg.workloads.size(),
                  "vmThreads must be empty or give one entry per VM (",
                  cfg.vmThreads.size(), " entries for ",
                  cfg.workloads.size(), " VMs)");
    // The run's VM-window width is the smallest that fits the
    // largest instance (requiredVmSpanBits): runs whose VMs all fit
    // the default keep byte-identical addresses to the fixed-width
    // implementation, and over-committed scale runs (say 96 threads
    // per VM at 256 cores) widen every window in lockstep.
    std::uint64_t max_blocks = 0;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        const auto nthreads = static_cast<std::uint64_t>(
            i < cfg.vmThreads.size() && cfg.vmThreads[i] > 0
                ? cfg.vmThreads[i]
                : prof.numThreads);
        max_blocks = std::max(
            max_blocks, prof.sharedRoBlocks + prof.migratoryBlocks +
                            nthreads * prof.privateBlocksPerThread);
    }
    const int span_bits = requiredVmSpanBits(max_blocks);
    std::vector<int> threads_per_vm;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        const int nthreads =
            i < cfg.vmThreads.size() ? cfg.vmThreads[i] : 0;
        rig.storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull, nthreads,
            span_bits));
        rig.vms.push_back(rig.storage.back().get());
        threads_per_vm.push_back(rig.storage.back()->numThreads());
    }
    rig.placements = scheduleThreads(cfg.machine, threads_per_vm,
                                     cfg.policy, cfg.seed);
    return rig;
}

/**
 * Resolve every env-defaulted knob so the config is self-contained:
 * the checkpoint context embeds the resolved copy, making a resume
 * independent of the environment it runs in.
 */
RunConfig
resolveConfig(const RunConfig &cfg)
{
    RunConfig res = cfg;
    res.warmupCycles =
        cfg.warmupCycles ? cfg.warmupCycles : defaultWarmupCycles();
    // 0 stays 0 when the env is unset too: the run.v1 echo emits the
    // knob only when configured, and the Core falls back to its
    // built-in default quantum.
    res.timesliceCycles = cfg.timesliceCycles
                              ? cfg.timesliceCycles
                              : envU64("CONSIM_TIMESLICE", 0);
    res.measureCycles =
        cfg.measureCycles ? cfg.measureCycles : defaultMeasureCycles();
    res.watchdogIntervalCycles = cfg.watchdogIntervalCycles
                                     ? cfg.watchdogIntervalCycles
                                     : defaultWatchdogIntervalCycles();
    res.ckptEveryCycles = cfg.ckptEveryCycles
                              ? cfg.ckptEveryCycles
                              : defaultCheckpointIntervalCycles();
    return res;
}

/** Re-arm operational knobs (resolved config; fault plan excluded). */
void
armSystem(System &sys, const RunConfig &res)
{
    sys.setWatchdogInterval(res.watchdogIntervalCycles);
    if (res.timesliceCycles != 0)
        sys.setTimeslice(res.timesliceCycles);
    if (res.cycleDeadline != 0)
        sys.setCycleDeadline(res.cycleDeadline);
    if (res.ckptEveryCycles != 0)
        sys.setCheckpointInterval(res.ckptEveryCycles);
    // runJobs is resolved here, not in resolveConfig: it is a how-fast
    // knob with no effect on results, so it must never leak into the
    // checkpoint context (a resume may legally run with a different
    // thread count than the original attempt).
    sys.setRunJobs(res.runJobs ? res.runJobs : defaultRunJobs());
}

/** Experiment context embedded verbatim in periodic snapshots. */
json::Value
phaseContext(const RunConfig &res, const RunConfig &raw,
             const char *phase, const Rng *mig)
{
    auto ctx = json::Value::object();
    ctx.set("config", configCtxJson(res, raw));
    ctx.set("phase", phase);
    if (mig) {
        auto st = json::Value::array();
        for (std::uint64_t w : mig->state())
            st.push(w);
        ctx.set("mig_rng", std::move(st));
    }
    return ctx;
}

/**
 * Drive one phase from @p done to @p total phase-relative cycles,
 * refreshing the checkpoint context before every run() chunk (the
 * migration RNG mutates only between chunks, so the context captured
 * at chunk start is exact for any snapshot inside it).
 *
 * Resume subtlety: a periodic snapshot landing exactly on an interior
 * migration boundary is taken before the swap (run() returns first,
 * then the driver swaps), so a resume starting on such a boundary
 * must redo the swap — with the pre-swap RNG state the context
 * carries.
 */
void
runOnePhase(System &sys, const RunConfig &res, const RunConfig &raw,
            const char *phase, Cycle total, Cycle done, Rng *mig)
{
    const Cycle interval = res.migrationIntervalCycles;
    if (mig && done > 0 && done < total && done % interval == 0)
        sys.swapRandomThreads(*mig);
    while (done < total) {
        sys.setCheckpointContext(phaseContext(res, raw, phase, mig));
        Cycle next = total;
        if (mig)
            next = std::min(total, (done / interval + 1) * interval);
        sys.run(next - done);
        done = next;
        if (mig && done < total)
            sys.swapRandomThreads(*mig);
    }
}

/**
 * Read the paper's metrics out of the hierarchical stats registry
 * ("sys.vmNN.*", "sys.net.*") rather than component structs, so
 * RunResult and every other registry consumer (dumpStats, JSON
 * export) see exactly the same numbers by construction.
 */
RunResult
extractResult(System &sys, const std::vector<VirtualMachine *> &vms,
              Cycle measure)
{
    const stats::Group &root = sys.statsRoot();
    RunResult out;
    out.measuredCycles = measure;
    for (auto *vm : vms) {
        const stats::Group *g =
            root.findGroup(indexedName("vm", vm->id()));
        CONSIM_ASSERT(g, "registry: no group for vm ", vm->id());
        const auto counter = [g](const char *name) {
            const stats::Counter *c = g->findCounter(name);
            CONSIM_ASSERT(c, "registry: vm counter '", name,
                          "' missing");
            return c->value();
        };
        VmResult r;
        r.kind = vm->profile().kind;
        r.transactions = counter("transactions");
        r.instructions = counter("instructions");
        r.l1Misses = counter("l1_misses");
        r.l2Accesses = counter("l2_accesses");
        r.l2Misses = counter("l2_misses");
        r.c2cClean = counter("c2c_clean");
        r.c2cDirty = counter("c2c_dirty");
        r.mcThrottleStalls = counter("mc_throttle_stalls");
        r.distinctBlocks = vm->distinctBlocks();
        r.cyclesPerTransaction =
            r.transactions
                ? static_cast<double>(measure) /
                      static_cast<double>(r.transactions)
                : static_cast<double>(measure);
        r.missRate = r.l2Accesses
                         ? static_cast<double>(r.l2Misses) /
                               static_cast<double>(r.l2Accesses)
                         : 0.0;
        const stats::Average *lat = g->findAverage("miss_latency");
        CONSIM_ASSERT(lat, "registry: vm miss_latency missing");
        r.avgMissLatency = lat->mean();
        const std::uint64_t c2c = r.c2cClean + r.c2cDirty;
        r.c2cFraction = r.l2Misses
                            ? static_cast<double>(c2c) /
                                  static_cast<double>(r.l2Misses)
                            : 0.0;
        r.c2cDirtyShare = c2c ? static_cast<double>(r.c2cDirty) /
                                    static_cast<double>(c2c)
                              : 0.0;
        out.vms.push_back(r);
    }
    const stats::Average *net_lat = root.findAverage("net.latency");
    const stats::Counter *net_pkts =
        root.findCounter("net.packets_ejected");
    CONSIM_ASSERT(net_lat && net_pkts, "registry: net stats missing");
    out.netAvgLatency = net_lat->mean();
    out.netPackets = net_pkts->value();
    out.replication = sys.replicationSnapshot();
    out.occupancy = sys.occupancySnapshot();
    out.dynMigrations = sys.dynMigrations();
    return out;
}

} // namespace

RunResult
runExperiment(const RunConfig &cfg)
{
    const RunConfig res = resolveConfig(cfg);
    ExperimentRig rig = buildRig(res);
    System sys(res.machine, rig.vms, rig.placements);
    armSystem(sys, res);
    if (res.qos.enabled())
        sys.setQosConfig(res.qos);
    if (res.dynSched.enabled())
        sys.setDynSched(res.dynSched);
    if (!res.faults.empty())
        sys.setFaultPlan(res.faults);
    Rng mig_rng(res.seed ^ 0xd15ea5e);
    Rng *mig = res.migrationIntervalCycles ? &mig_rng : nullptr;
    // Cross-component audits fire at measurement-window boundaries
    // when CONSIM_CHECK=full; they are free otherwise.
    const auto audit = [&] {
        if (CONSIM_CHECK_ACTIVE(Full))
            sys.auditWindow();
    };
    runOnePhase(sys, res, cfg, "warmup", res.warmupCycles, 0, mig);
    audit();
    sys.resetStats();
    runOnePhase(sys, res, cfg, "measure", res.measureCycles, 0, mig);
    audit();
    return extractResult(sys, rig.vms, res.measureCycles);
}

RunConfig
configFromCheckpoint(const json::Value &ckpt)
{
    const json::Value *ctx = ckpt.find("context");
    CONSIM_ASSERT(ctx && ctx->find("config"),
                  "checkpoint has no experiment context (saved outside "
                  "runExperiment?); cannot seed a resume");
    return configEchoFromCtx(ctxGet(*ctx, "config"));
}

RunResult
resumeExperiment(const json::Value &ckpt)
{
    const json::Value *schema = ckpt.find("schema");
    CONSIM_ASSERT(schema && schema->str() == "consim.ckpt.v5",
                  "resume: not a consim.ckpt.v5 document (v1 snapshots "
                  "predate per-source event keys; v2 snapshots encode "
                  "sharer/presence state as fixed 16-bit masks, which "
                  "the parametric scale model replaced with "
                  "variable-width word arrays; v3 snapshots lack the "
                  "QoS runtime state — per-VM memory-controller token "
                  "buckets and the dynamic repartitioner's way "
                  "allocation; v4 snapshots lack the migration-policy "
                  "runtime state — the dynamic scheduler's epoch "
                  "baselines and migration count — so none can be "
                  "restored; re-run the original configuration to "
                  "take a fresh snapshot)");
    const json::Value *ctxp = ckpt.find("context");
    CONSIM_ASSERT(ctxp && ctxp->find("config"),
                  "checkpoint has no experiment context (saved outside "
                  "runExperiment?); cannot seed a resume");
    const json::Value &ctx = *ctxp;
    // The embedded config is already env-resolved (resolveConfig ran
    // before the snapshot), so no environment lookups happen here.
    const RunConfig res = configFromCtx(ctxGet(ctx, "config"));
    const RunConfig raw = configEchoFromCtx(ctxGet(ctx, "config"));

    ExperimentRig rig = buildRig(res);
    System sys(res.machine, rig.vms, rig.placements);
    // The QoS config must be reinstalled before restore: the loaders
    // check the MC token-bucket layout and the dynamic repartitioner
    // state against an already-configured machine, then overwrite the
    // mutable parts (dyn_ways, miss-curve samples, buckets). Same for
    // the dyn-sched config and its epoch baselines.
    if (res.qos.enabled())
        sys.setQosConfig(res.qos);
    if (res.dynSched.enabled())
        sys.setDynSched(res.dynSched);
    sys.restoreCheckpoint(ckpt);
    // Re-arm operational knobs against the restored clock. The fault
    // plan is deliberately NOT re-armed: one-shot faults that already
    // fired are baked into the restored state, runtime flags (drop
    // countdowns, memburst windows) were restored directly, and
    // pending wedge events ride in the serialized event queue. The
    // cycle deadline is not re-armed either — the restored clock
    // typically sits at or past it, and a resume exists precisely to
    // finish the work beyond the original attempt's budget (re-arming
    // would deterministically re-trip). The watchdog stays armed, so
    // a genuinely wedged resume still fails.
    RunConfig arm = res;
    arm.cycleDeadline = 0;
    armSystem(sys, arm);

    Rng mig_rng(res.seed ^ 0xd15ea5e);
    Rng *mig = nullptr;
    if (res.migrationIntervalCycles != 0) {
        const json::Value &st = ctxGet(ctx, "mig_rng");
        CONSIM_ASSERT(st.size() == 4, "resume: bad mig_rng state");
        mig_rng.setState({st.at(0).asUint(), st.at(1).asUint(),
                          st.at(2).asUint(), st.at(3).asUint()});
        mig = &mig_rng;
    }

    const std::string phase = ctxGet(ctx, "phase").str();
    const Cycle now = sys.now();
    const auto audit = [&] {
        if (CONSIM_CHECK_ACTIVE(Full))
            sys.auditWindow();
    };
    if (phase == "warmup") {
        CONSIM_ASSERT(now <= res.warmupCycles,
                      "resume: clock ", now, " past warmup window");
        runOnePhase(sys, res, raw, "warmup", res.warmupCycles, now,
                    mig);
        audit();
        sys.resetStats();
        runOnePhase(sys, res, raw, "measure", res.measureCycles, 0,
                    mig);
    } else {
        CONSIM_ASSERT(phase == "measure", "resume: unknown phase '",
                      phase, "'");
        CONSIM_ASSERT(now >= res.warmupCycles &&
                          now - res.warmupCycles <= res.measureCycles,
                      "resume: clock ", now,
                      " outside the measurement window");
        runOnePhase(sys, res, raw, "measure", res.measureCycles,
                    now - res.warmupCycles, mig);
    }
    audit();
    return extractResult(sys, rig.vms, res.measureCycles);
}

RunResult
averageRunResults(std::vector<RunResult> runs)
{
    CONSIM_ASSERT(!runs.empty(), "need at least one run");
    RunResult acc = std::move(runs.front());
    double packets = static_cast<double>(acc.netPackets);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        const RunResult &b = runs[r];
        CONSIM_ASSERT(b.vms.size() == acc.vms.size(),
                      "seed runs disagree on VM count");
        for (std::size_t i = 0; i < b.vms.size(); ++i) {
            auto &a = acc.vms[i];
            const auto &v = b.vms[i];
            a.transactions += v.transactions;
            a.instructions += v.instructions;
            a.l1Misses += v.l1Misses;
            a.l2Accesses += v.l2Accesses;
            a.l2Misses += v.l2Misses;
            a.c2cClean += v.c2cClean;
            a.c2cDirty += v.c2cDirty;
            a.mcThrottleStalls += v.mcThrottleStalls;
            a.cyclesPerTransaction += v.cyclesPerTransaction;
            a.missRate += v.missRate;
            a.avgMissLatency += v.avgMissLatency;
            a.c2cFraction += v.c2cFraction;
            a.c2cDirtyShare += v.c2cDirtyShare;
            a.slowdownVsIsolated += v.slowdownVsIsolated;
        }
        acc.netAvgLatency += b.netAvgLatency;
        packets += static_cast<double>(b.netPackets);
        acc.dynMigrations += b.dynMigrations;
    }
    const double n = static_cast<double>(runs.size());
    for (auto &v : acc.vms) {
        v.cyclesPerTransaction /= n;
        v.missRate /= n;
        v.avgMissLatency /= n;
        v.c2cFraction /= n;
        v.c2cDirtyShare /= n;
        v.slowdownVsIsolated /= n;
    }
    acc.netAvgLatency /= n;
    acc.netPackets = static_cast<std::uint64_t>(packets / n + 0.5);
    acc.seedsUsed = static_cast<int>(runs.size());
    // acc.replication / acc.occupancy keep the first run's snapshot
    // (see RunResult docs).
    return acc;
}

RunResult
runAveraged(RunConfig cfg, const std::vector<std::uint64_t> &seeds)
{
    return runSweepAveraged({cfg}, seeds).front();
}

RunConfig
isolationConfig(WorkloadKind kind, SchedPolicy policy,
                SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = {kind};
    cfg.policy = policy;
    return cfg;
}

RunConfig
mixConfig(const Mix &mix, SchedPolicy policy, SharingDegree sharing)
{
    RunConfig cfg;
    cfg.machine.sharing = sharing;
    cfg.workloads = mix.vms;
    cfg.vmThreads = mix.threads;
    cfg.policy = policy;
    return cfg;
}

} // namespace consim
