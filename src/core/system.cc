#include "core/system.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "noc/mesh.hh"

namespace consim
{

thread_local System::TileLane *System::tlsLane_ = nullptr;

System::System(const MachineConfig &cfg,
               std::vector<VirtualMachine *> vms,
               const std::vector<ThreadPlacement> &placements)
    : cfg_(cfg), vms_(std::move(vms))
{
    cfg_.validate();
    const int n = cfg_.numCores();

    // Adopt the run's VM-window width from the VMs (they encode
    // block addresses with it, so the decode side must match; a
    // mixed-width run would alias windows).
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        CONSIM_ASSERT(vms_[i] != nullptr &&
                          vms_[i]->id() == static_cast<VmId>(i),
                      "VM ids must be dense and ordered");
        if (i == 0)
            spanBits_ = vms_[i]->spanBits();
        CONSIM_ASSERT(vms_[i]->spanBits() == spanBits_,
                      "VMs disagree on the window width");
    }
    dirStorage_.setSpanBits(spanBits_);
    for (std::size_t i = 0; i < vms_.size(); ++i)
        dirStorage_.registerVm(vms_[i]->id(), vms_[i]->totalBlocks());

    groupOf_.resize(n);
    for (CoreId t = 0; t < n; ++t)
        groupOf_[t] = cfg_.groupOfCore(t);
    membersOf_.resize(cfg_.numGroups());
    for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
        auto &lut = membersOf_[g];
        lut.tiles = cfg_.coresOfGroup(g);
        lut.size = lut.tiles.size();
        lut.pow2 = isPow2(lut.size);
        lut.mask = lut.pow2 ? lut.size - 1 : 0;
    }

    // Memory controllers at the mesh corners (then wrap for more).
    const std::vector<CoreId> corner_order = {
        0, n - 1, cfg_.meshX - 1, n - cfg_.meshX};
    mcIndexOfTile_.assign(n, -1);
    for (int i = 0; i < cfg_.numMemCtrls; ++i) {
        const CoreId tile =
            corner_order[i % corner_order.size()] ;
        CONSIM_ASSERT(mcIndexOfTile_[tile] < 0,
                      "two memory controllers on tile ", tile);
        mcTiles_.push_back(tile);
        mcIndexOfTile_[tile] = i;
    }

    // Event-ordering key domains: one per tile plus the network and
    // the system itself.
    netSrc_ = n;
    sysSrc_ = n + 1;
    seqBySrc_.assign(static_cast<std::size_t>(n) + 2, 0);

    if (cfg_.idealNoc)
        net_ = std::make_unique<IdealNetwork>(cfg_.idealNocLatency);
    else
        net_ = std::make_unique<Mesh>(cfg_);
    // The ideal network's constant latency is modelled as scheduled
    // NetDeliver events (transport bypass) so same-cycle arrivals
    // follow the canonical (src, seq) order instead of global
    // injection order; inflight_ stays empty and tick() is skipped.
    netBypass_ = cfg_.idealNoc;
    netHandoff_ = std::max<Cycle>(
        3, static_cast<Cycle>(cfg_.meshX + cfg_.meshY) / 4);
    window_ = computeWindow();
    // Pre-size the calendar ring from the machine size: a few events
    // per core per cycle covers the observed steady-state peak, so
    // the measure window never grows a bucket (the zero-allocation
    // contract tests/test_alloc_steady_state.cc enforces).
    events_.reserveBuckets(static_cast<std::size_t>(4 * n));
    // Mesh ejections reach their destination unit a fixed handoff
    // after ejection, as a NET-keyed event: the same NI->protocol
    // latency in both engines, and the slack that lets the parallel
    // coordinator replay the mesh one window behind the tiles.
    net_->setDeliver([this](const Msg &m) {
        SimEvent ev(SimEventKind::Deliver, m);
        ev.src = netSrc_;
        ev.seq = seqBySrc_[static_cast<std::size_t>(netSrc_)]++;
        const Cycle due = netTickCycle_ + netHandoff_;
        if (parallelActive_)
            lanes_[ev.msg.dstTile]->q.insertAbs(netTickCycle_, due,
                                                std::move(ev));
        else
            events_.insertAbs(now_, due, std::move(ev));
    });

    for (CoreId t = 0; t < n; ++t) {
        l1s_.push_back(std::make_unique<L1Controller>(*this, t));
        cores_.push_back(std::make_unique<Core>(*this, t, *l1s_[t]));
        banks_.push_back(std::make_unique<L2Bank>(*this, t));
        dirs_.push_back(
            std::make_unique<DirectorySlice>(*this, t, dirStorage_));
    }
    for (int i = 0; i < cfg_.numMemCtrls; ++i)
        mcs_.push_back(
            std::make_unique<MemoryController>(*this, mcTiles_[i]));

    for (const auto &p : placements) {
        CONSIM_ASSERT(p.vm >= 0 &&
                          p.vm < static_cast<VmId>(vms_.size()),
                      "placement for unknown VM ", p.vm);
        VirtualMachine &vm = *vms_[p.vm];
        // enqueue, not bind: an over-committed schedule places
        // several threads on one core, which then time-slices
        // between them (Core::enqueueContext).
        cores_.at(p.core)->enqueueContext(
            &vm.instance().thread(p.thread), p.vm);
    }

    // Link every component's registry node into one tree rooted at
    // "sys": full stat names read sys.tile03.l1.misses, sys.net.*,
    // sys.vm00.*. VM groups are re-parented (a VM may be adopted by
    // a fresh System in tests), so adoption order defines the tree.
    for (CoreId t = 0; t < n; ++t) {
        tileGroups_.push_back(std::make_unique<stats::Group>(
            indexedName("tile", t), &statsRoot_));
        stats::Group &tg = *tileGroups_.back();
        tg.addChild(&cores_[t]->statsGroup());
        tg.addChild(&l1s_[t]->statsGroup());
        tg.addChild(&banks_[t]->statsGroup());
        tg.addChild(&dirs_[t]->statsGroup());
    }
    for (std::size_t i = 0; i < mcs_.size(); ++i)
        tileGroups_[mcTiles_[i]]->addChild(&mcs_[i]->statsGroup());
    statsRoot_.addChild(&net_->statsGroup());
    for (auto *vm : vms_)
        statsRoot_.addChild(&vm->statsGroup());
}

System::~System() = default;

// ---------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------

Cycle
System::now() const
{
    const TileLane *lane = tlsLane_;
    return lane ? lane->now : now_;
}

Cycle
System::memFaultExtraLatency() const
{
    const TileLane *lane = tlsLane_;
    const Cycle c = lane ? lane->now : now_;
    return (memBurstArmed_ && c >= memBurstStart_ && c < memBurstEnd_)
               ? memBurstExtra_
               : 0;
}

void
System::setQosConfig(const QosConfig &qos)
{
    if (qos.enabled()) {
        CONSIM_ASSERT(qos.protectedVm >= 0 &&
                          qos.protectedVm <
                              static_cast<VmId>(vms_.size()),
                      "QoS protects VM ", qos.protectedVm,
                      " but the mix has ", vms_.size(), " VMs");
        CONSIM_ASSERT(qos.protectedWays >= 1 &&
                          qos.protectedWays < cfg_.l2Assoc,
                      "QoS ways must leave the other VMs at least "
                      "one way (ways=", qos.protectedWays,
                      " assoc=", cfg_.l2Assoc, ")");
        CONSIM_ASSERT(cfg_.l2Assoc <= 64,
                      "QoS way masks support at most 64 ways");
        CONSIM_ASSERT(qos.reservedVcs >= 0 &&
                          qos.reservedVcs < cfg_.vcsPerVnet,
                      "QoS must leave at least one shared VC per "
                      "vnet (vcs=", qos.reservedVcs,
                      " vcsPerVnet=", cfg_.vcsPerVnet, ")");
    }
    qos_ = qos;
    qosDynWays_ = qos.enabled() ? qos.protectedWays : 0;
    qosLastMissTotal_ = 0;
    qosPrevDelta_ = 0;
    net_->setQos(qos.enabled() ? qos.protectedVm : invalidVm,
                 qos.enabled() ? qos.reservedVcs : 0);
    for (auto &mc : mcs_) {
        mc->setQos(qos.protectedVm, static_cast<int>(vms_.size()),
                   qos.enabled() ? qos.mcTokens : 0,
                   qos.mcRefillCycles);
    }
}

std::uint64_t
System::qosWayMask(VmId vm) const
{
    if (!qos_.enabled())
        return ~0ull;
    // CAT-style exclusive partition: the protected VM fills only the
    // low qosDynWays_ ways of every set; everyone else fills only the
    // remaining high ways. Existing lines stay valid wherever they
    // are — the mask governs fills and victim choice, not lookups.
    const std::uint64_t all =
        cfg_.l2Assoc >= 64 ? ~0ull
                           : ((1ull << cfg_.l2Assoc) - 1);
    const std::uint64_t prot = (1ull << qosDynWays_) - 1;
    return vm == qos_.protectedVm ? prot : (all & ~prot);
}

void
System::qosRecordThrottleStall(VmId vm)
{
    if (vm < 0 || vm >= static_cast<VmId>(vms_.size()))
        return;
    if (TileLane *lane = tlsLane_)
        ++lane->vmDelta[vm].mcThrottleStalls;
    else
        ++vms_[vm]->vmStats().mcThrottleStalls;
}

void
System::qosRepartition()
{
    if (qos_.mode != QosMode::Dynamic)
        return;
    // Miss-curve sample: how many LLC misses did the protected VM
    // take this epoch, and did the last way granted help?
    const std::uint64_t total =
        vms_[qos_.protectedVm]->vmStats().l2Misses.value();
    const std::uint64_t delta = total - qosLastMissTotal_;

    // Occupancy gate: granting another way is pointless (and unfair)
    // while the protected VM is not close to filling its current
    // allocation somewhere on chip.
    const OccupancySnapshot occ = occupancySnapshot();
    double share = 0.0;
    for (GroupId g = 0; g < cfg_.numGroups(); ++g)
        share = std::max(share, occ.share(g, qos_.protectedVm));
    const double allocFrac = static_cast<double>(qosDynWays_) /
                             static_cast<double>(cfg_.l2Assoc);

    if (delta == 0 && qosDynWays_ > qos_.protectedWays) {
        // The VM stopped missing: hand a way back (never below the
        // configured floor).
        --qosDynWays_;
    } else if (qosDynWays_ < cfg_.l2Assoc - 1 && delta > 0 &&
               delta >= qosPrevDelta_ && share >= 0.8 * allocFrac) {
        // Still missing at least as hard as last epoch and actually
        // using the space it has: grow the partition.
        ++qosDynWays_;
    }
    qosPrevDelta_ = delta;
    qosLastMissTotal_ = total;
}

void
System::setDynSched(const DynSchedConfig &dyn)
{
    if (dyn.enabled()) {
        CONSIM_ASSERT(cfg_.numGroups() >= 1,
                      "dyn-sched needs at least one sharing group");
    }
    dynSched_ = dyn;
    dynPolicy_ =
        dyn.enabled() ? makeMigrationPolicy(dyn.policy) : nullptr;
    dynMigrations_ = 0;
    dynLastRetired_.assign(cfg_.numCores(), 0);
    dynLastVm_.assign(vms_.size(), {0, 0, 0});
    dynLastGroup_.assign(cfg_.numGroups(), {0, 0});
    dynHold_ = 0;
    dynBackoff_ = 1;
    dynEval_ = {};
    dynPreMiss_ = 0;
    dynPreAcc_ = 0;
}

DynSample
System::dynTakeSample()
{
    DynSample s;
    s.cores.resize(cfg_.numCores());
    for (CoreId c = 0; c < cfg_.numCores(); ++c) {
        const Core &core = *cores_[c];
        DynCoreSample &cs = s.cores[c];
        cs.vm = core.vm();
        cs.idle = core.idle();
        // Migration legality: over-committed cores rotate a run
        // queue the swap would fight with, and wedged cores never
        // reach the instruction boundary a deferred rebind lands on.
        // Cores blocked on a miss ARE eligible — in a memory-bound
        // workload a busy core is mid-miss at almost every epoch
        // boundary, so requiring !blocked() here would starve every
        // policy; scheduleRebind() parks the migration until the
        // fill returns instead.
        cs.eligible = !core.multiplexed() && !core.wedged();
        const std::uint64_t now =
            core.coreStats().instructions.value();
        cs.retired = now - dynLastRetired_[c];
        dynLastRetired_[c] = now;
    }
    s.vms.resize(vms_.size());
    for (VmId v = 0; v < static_cast<VmId>(vms_.size()); ++v) {
        const VmStats &vs = vms_[v]->vmStats();
        const std::uint64_t acc = vs.l2Accesses.value();
        const std::uint64_t miss = vs.l2Misses.value();
        const std::uint64_t c2c =
            vs.c2cClean.value() + vs.c2cDirty.value();
        DynVmSample &out = s.vms[v];
        out.l2Accesses = acc - dynLastVm_[v][0];
        out.l2Misses = miss - dynLastVm_[v][1];
        out.c2cTransfers = c2c - dynLastVm_[v][2];
        dynLastVm_[v] = {acc, miss, c2c};
    }
    s.groups.resize(cfg_.numGroups());
    std::vector<std::array<std::uint64_t, 2>> totals(
        cfg_.numGroups(), std::array<std::uint64_t, 2>{0, 0});
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const L2BankStats &bs = banks_[t]->bankStats();
        totals[groupOf_[t]][0] += bs.hits.value();
        totals[groupOf_[t]][1] += bs.misses.value();
    }
    for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
        s.groups[g].l2Hits = totals[g][0] - dynLastGroup_[g][0];
        s.groups[g].l2Misses = totals[g][1] - dynLastGroup_[g][1];
        dynLastGroup_[g] = totals[g];
    }
    return s;
}

void
System::dynSchedEpoch()
{
    if (!dynPolicy_)
        return;
    // A prior swap whose endpoints were mid-miss may still be
    // parked; deciding on top of it would double-bind a stream.
    // Miss latencies are orders of magnitude below any epoch, so
    // this skip fires only when an epoch boundary races a fill.
    for (const auto &core : cores_)
        if (core->rebindPending())
            return;
    // Baselines advance every epoch even while holding, so a
    // decision after a backoff window sees one epoch's delta, not a
    // stale accumulation.
    const DynSample s = dynTakeSample();
    std::uint64_t epochMiss = 0, epochAcc = 0;
    for (const DynVmSample &v : s.vms) {
        epochMiss += v.l2Misses;
        epochAcc += v.l2Accesses;
    }
    if (dynHold_ > 0) {
        --dynHold_;
        return;
    }
    if (dynEval_.decided()) {
        // Verdict on the last swap: the chip miss rate must have
        // dropped by at least one point (integer cross-product
        // comparison; no float rounding in the resume path). A swap
        // that did not pay is reverted and the policy backs off
        // exponentially, so steady workloads converge to near-zero
        // churn while a later phase change re-engages within epochs.
        const bool helped =
            epochAcc > 0 && dynPreAcc_ > 0 &&
            100 * epochMiss * dynPreAcc_ + epochAcc * dynPreAcc_ <=
                100 * dynPreMiss_ * epochAcc;
        if (helped) {
            dynBackoff_ = 1;
        } else {
            // Revert unless an endpoint was wedged by fault
            // injection in the meantime (it can never reach the
            // rebind boundary).
            if (!cores_.at(dynEval_.a)->wedged() &&
                !cores_.at(dynEval_.b)->wedged())
                applySwap(dynEval_);
            dynHold_ = dynBackoff_;
            dynBackoff_ = std::min<std::uint32_t>(dynBackoff_ * 2, 64);
            dynEval_ = {};
            return;
        }
        dynEval_ = {};
    }
    const ThreadSwap swap = dynPolicy_->decide(cfg_, s);
    if (!swap.decided())
        return;
    Core &ca = *cores_.at(swap.a);
    Core &cb = *cores_.at(swap.b);
    CONSIM_ASSERT(!ca.multiplexed() && !cb.multiplexed() &&
                      !ca.wedged() && !cb.wedged() &&
                      !(ca.idle() && cb.idle()),
                  "policy '", dynPolicy_->name(),
                  "' proposed an illegal swap (", swap.a, " <-> ",
                  swap.b, ")");
    applySwap(swap);
    dynEval_ = swap;
    dynPreMiss_ = epochMiss;
    dynPreAcc_ = epochAcc;
    dynHold_ = 1; // one warm-up epoch before the verdict
}

void
System::applySwap(const ThreadSwap &swap)
{
    // Exchange the bindings; each endpoint installs at its own next
    // clean instruction boundary (immediately when free, at the fill
    // return when blocked).
    Core &ca = *cores_.at(swap.a);
    Core &cb = *cores_.at(swap.b);
    InstrStream *sa = ca.stream();
    const VmId va = ca.vm();
    InstrStream *sb = cb.stream();
    const VmId vb = cb.vm();
    ca.scheduleRebind(sb, vb);
    cb.scheduleRebind(sa, va);
    ++dynMigrations_;
}

void
System::send(Msg m)
{
    TileLane *const lane = tlsLane_;
    const Cycle at = lane ? lane->now : now_;
    CONSIM_ASSERT(!lane || m.srcTile == lane->tile,
                  "send from a foreign tile's lane");
    m.injectCycle = at;
    const auto src = static_cast<std::int32_t>(m.srcTile);
    if (m.srcTile == m.dstTile) {
        // Local hop: fixed one-cycle on-tile transfer.
        SimEvent ev(SimEventKind::Deliver, std::move(m));
        ev.src = src;
        ev.seq = lane ? lane->seq++
                      : seqBySrc_[static_cast<std::size_t>(src)]++;
        if (lane)
            lane->q.scheduleKeyed(at, 1, std::move(ev));
        else
            events_.scheduleKeyed(at, 1, std::move(ev));
        return;
    }
    if (cfg_.flatIntraGroup && isIntraGroup(m.type)) {
        // On-partition path: the paper models a constant L2 access
        // latency regardless of sharing degree, so traffic between a
        // core and its partition's banks bypasses the mesh.
        const Cycle d = cfg_.intraGroupLatency;
        SimEvent ev(SimEventKind::Deliver, std::move(m));
        ev.src = src;
        ev.seq = lane ? lane->seq++
                      : seqBySrc_[static_cast<std::size_t>(src)]++;
        if (lane)
            lane->outbox.push_back({at + d, std::move(ev)});
        else
            events_.scheduleKeyed(at, d, std::move(ev));
        return;
    }
    if (netBypass_) {
        // Ideal network, modelled as a scheduled arrival (see ctor).
        const Cycle d = cfg_.idealNocLatency;
        SimEvent ev(SimEventKind::NetDeliver, std::move(m));
        ev.src = src;
        ev.seq = lane ? lane->seq++
                      : seqBySrc_[static_cast<std::size_t>(src)]++;
        if (lane) {
            ++lane->netInjects;
            lane->outbox.push_back({at + d, std::move(ev)});
        } else {
            net_->countInject();
            events_.scheduleKeyed(at, d, std::move(ev));
        }
        return;
    }
    if (lane) {
        // Mesh injections are logged; the coordinator replays them
        // into the (serial) mesh in canonical cycle order.
        lane->meshOut.push_back(std::move(m));
        return;
    }
    net_->inject(std::move(m));
}

void
System::schedule(Cycle delay, EventFn fn)
{
    CONSIM_ASSERT(tlsLane_ == nullptr,
                  "closure events are serial-only");
    SimEvent ev;
    ev.fn = std::move(fn);
    ev.src = sysSrc_;
    ev.seq = seqBySrc_[static_cast<std::size_t>(sysSrc_)]++;
    events_.scheduleKeyed(now_, delay, std::move(ev));
}

void
System::scheduleEvent(SimEvent ev, Cycle delay, EventFn fallback)
{
    (void)fallback;
    TileLane *const lane = tlsLane_;
    const CoreId owner = execTileOf(ev);
    CONSIM_ASSERT(owner >= 0 && owner < cfg_.numCores(),
                  "typed event without an owning tile");
    CONSIM_ASSERT(!lane || owner == lane->tile,
                  "typed event scheduled across tiles");
    ev.src = static_cast<std::int32_t>(owner);
    if (lane) {
        ev.seq = lane->seq++;
        lane->q.scheduleKeyed(lane->now, delay, std::move(ev));
    } else {
        ev.seq = seqBySrc_[static_cast<std::size_t>(owner)]++;
        events_.scheduleKeyed(now_, delay, std::move(ev));
    }
}

CoreId
System::bankTileFor(GroupId g, BlockAddr block) const
{
    const auto &lut = membersOf_[g];
    return lut.pow2 ? lut.tiles[block & lut.mask]
                    : lut.tiles[block % lut.size];
}

CoreId
System::homeTileFor(BlockAddr block) const
{
    return static_cast<CoreId>(mixBits(block) %
                               static_cast<std::uint64_t>(
                                   cfg_.numCores()));
}

CoreId
System::memTileFor(BlockAddr block) const
{
    const auto h = mixBits(block * 0x9e3779b97f4a7c15ull + 1);
    return mcTiles_[h % mcTiles_.size()];
}

// The per-VM statistic hooks write shared VmStats objects, so inside
// a parallel window they accumulate into the lane's delta block
// instead; gather() merges the deltas. Counters merge by sum, and
// the latency Average merges by (sum, count) — every sample is an
// integer-valued double, so the merged sums are exact and the result
// is byte-identical to serial one-at-a-time sampling.

void
System::recordL2Access(VmId vm)
{
    if (vm < 0)
        return;
    if (TileLane *lane = tlsLane_)
        ++lane->vmDelta[vm].l2Accesses;
    else
        ++vms_[vm]->vmStats().l2Accesses;
}

void
System::recordL2Miss(VmId vm, bool c2c, bool c2c_dirty)
{
    if (vm < 0)
        return;
    if (TileLane *lane = tlsLane_) {
        auto &d = lane->vmDelta[vm];
        ++d.l2Misses;
        if (c2c) {
            if (c2c_dirty)
                ++d.c2cDirty;
            else
                ++d.c2cClean;
        }
        return;
    }
    auto &s = vms_[vm]->vmStats();
    ++s.l2Misses;
    if (c2c) {
        if (c2c_dirty)
            ++s.c2cDirty;
        else
            ++s.c2cClean;
    }
}

void
System::recordL1Miss(VmId vm, Cycle latency)
{
    if (vm < 0)
        return;
    if (TileLane *lane = tlsLane_) {
        auto &d = lane->vmDelta[vm];
        ++d.l1Misses;
        d.missLatSum += static_cast<double>(latency);
        ++d.missLatCount;
        return;
    }
    auto &s = vms_[vm]->vmStats();
    ++s.l1Misses;
    s.missLatency.sample(static_cast<double>(latency));
}

void
System::recordTransaction(VmId vm)
{
    if (vm < 0)
        return;
    if (TileLane *lane = tlsLane_)
        ++lane->vmDelta[vm].transactions;
    else
        ++vms_[vm]->vmStats().transactions;
}

void
System::recordInstructions(VmId vm, std::uint64_t n)
{
    if (vm < 0)
        return;
    if (TileLane *lane = tlsLane_)
        lane->vmDelta[vm].instructions += n;
    else
        vms_[vm]->vmStats().instructions += n;
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

void
System::deliver(const Msg &m)
{
    // Fault injection: the nth response-class message vanishes in
    // transit (models a lost fill; the waiting transaction never
    // completes, which the watchdog / stuck-transaction audit must
    // then catch).
    if (dropArmed_ && vnetOf(m.type) == 2 && --dropCountdown_ == 0) {
        dropArmed_ = false;
        return;
    }
    switch (m.dstUnit) {
      case Unit::L1:
        l1s_.at(m.dstTile)->handle(m);
        break;
      case Unit::L2Bank:
        banks_.at(m.dstTile)->handle(m);
        break;
      case Unit::Dir:
        dirs_.at(m.dstTile)->handle(m);
        break;
      case Unit::Mem: {
        const int idx = mcIndexOfTile_.at(m.dstTile);
        CONSIM_ASSERT(idx >= 0, "no memory controller at tile ",
                      m.dstTile);
        mcs_.at(idx)->handle(m);
        break;
      }
    }
}

void
System::execEvent(SimEvent &ev)
{
    switch (ev.kind) {
      case SimEventKind::Deliver:
        deliver(ev.msg);
        break;
      case SimEventKind::BankDispatch:
        banks_.at(ev.tile)->dispatchLocal(ev.block);
        break;
      case SimEventKind::BankFillRetry:
        banks_.at(ev.tile)->fillRetry(ev.block);
        break;
      case SimEventKind::DirProcess:
        dirs_.at(ev.tile)->process(ev.block);
        break;
      case SimEventKind::MemDone: {
        const int idx = mcIndexOfTile_.at(ev.msg.srcTile);
        CONSIM_ASSERT(idx >= 0, "MemDone from a tile without an MC");
        mcs_.at(idx)->finishAccess(ev.msg);
        break;
      }
      case SimEventKind::WedgeCore:
        cores_.at(ev.tile)->wedge();
        break;
      case SimEventKind::NetDeliver: {
        // Transport-bypass arrival: account the ejection the ideal
        // network would have recorded, then deliver.
        const int len = carriesData(ev.msg.type) ? 5 : 1;
        if (TileLane *lane = tlsLane_) {
            const double lat = static_cast<double>(
                lane->now - ev.msg.injectCycle);
            ++lane->netEjects;
            lane->netLatSum += lat;
            if (len > 1) {
                ++lane->netDataN;
                lane->netDataSum += lat;
            } else {
                ++lane->netCtrlN;
                lane->netCtrlSum += lat;
            }
        } else {
            net_->countEject(ev.msg, now_, len);
        }
        deliver(ev.msg);
        break;
      }
      case SimEventKind::Opaque:
        ev.fn();
        break;
    }
}

void
System::tick()
{
    events_.runDue(now_, [this](SimEvent &ev) { execEvent(ev); });
    for (auto &c : cores_)
        c->tick();
    if (!netBypass_) {
        netTickCycle_ = now_;
        net_->tick(now_);
    }
    ++now_;
}

void
System::run(Cycle cycles)
{
    if (runJobs_ > 1 && canRunParallel()) {
        runParallel(cycles);
        return;
    }
    const Cycle end = now_ + cycles;
    const Cycle qosEpoch = qosEpochInterval();
    const Cycle dynEpoch = dynEpochInterval();
    if (watchdogInterval_ == 0 && deadline_ == 0 &&
        ckptInterval_ == 0 && qosEpoch == 0 && dynEpoch == 0) {
        // Fast path: the per-cycle loop carries no hardening checks.
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        Cycle chunkEnd = end;
        // Epochs are absolute multiples of the interval, so a resumed
        // run lands on the same boundaries as the original.
        const Cycle epochAt =
            qosEpoch ? (now_ / qosEpoch + 1) * qosEpoch : 0;
        if (qosEpoch != 0)
            chunkEnd = std::min(chunkEnd, epochAt);
        const Cycle dynAt =
            dynEpoch ? (now_ / dynEpoch + 1) * dynEpoch : 0;
        if (dynEpoch != 0)
            chunkEnd = std::min(chunkEnd, dynAt);
        if (watchdogInterval_ != 0)
            chunkEnd = std::min(chunkEnd, nextWatchdogCheck_);
        if (deadline_ != 0)
            chunkEnd = std::min(chunkEnd, deadline_);
        if (ckptInterval_ != 0)
            chunkEnd = std::min(chunkEnd, nextCkpt_);
        while (now_ < chunkEnd)
            tick();
        // Repartition before the snapshot so a checkpoint taken at a
        // shared boundary captures the post-epoch allocation.
        if (qosEpoch != 0 && now_ >= epochAt)
            qosRepartition();
        // Remap before the snapshot for the same reason: a resumed
        // run must not redo a migration the snapshot already holds.
        if (dynEpoch != 0 && now_ >= dynAt)
            dynSchedEpoch();
        // Snapshot before the deadline check: a run tripping at its
        // deadline then carries a checkpoint taken at that very
        // cycle, so a resume loses no work.
        if (ckptInterval_ != 0 && now_ >= nextCkpt_) {
            takeSnapshot();
            nextCkpt_ = now_ + ckptInterval_;
        }
        if (deadline_ != 0 && now_ >= deadline_ && now_ < end) {
            SimError err(
                SimErrorKind::Deadline,
                logging::format("cycle deadline ", deadline_,
                                " reached with ", end - now_,
                                " cycles of work remaining"),
                diagJson("cycle deadline exceeded").dump(2));
            err.setCkpt(latestCheckpoint());
            throw err;
        }
        if (watchdogInterval_ != 0 && now_ >= nextWatchdogCheck_) {
            watchdogCheck();
            nextWatchdogCheck_ = now_ + watchdogInterval_;
        }
    }
}

// ---------------------------------------------------------------------
// Parallel engine (conservative lookahead over tile lanes)
// ---------------------------------------------------------------------
//
// The chip is partitioned into one lane per tile (core + L1 + L2
// bank + directory slice + resident MC). Lanes advance in lock-step
// windows no wider than the minimum cross-tile event latency, so
// nothing a lane does inside a window can affect another lane within
// the same window; cross-tile effects are buffered (outboxes, mesh
// injection logs) and applied at window boundaries by the
// coordinator. Because every event carries a (src, seq) key assigned
// by its source — and each source's actions happen in the same
// relative order under both engines — the merged event order, and
// therefore the simulation result, is byte-identical to serial.

Cycle
System::computeWindow() const
{
    // Mesh configs are bounded by the ejection->unit handoff: the
    // coordinator replays mesh cycle c only after every lane passed
    // c, which is sound only while deliveries land >= one window
    // after ejection. Ideal-NoC configs are bounded by the constant
    // network latency instead.
    Cycle w = cfg_.idealNoc ? static_cast<Cycle>(cfg_.idealNocLatency)
                            : netHandoff_;
    // The flat intra-group path is the fastest cross-tile channel on
    // multi-core partitions.
    bool spans_tiles = false;
    for (const auto &lut : membersOf_)
        spans_tiles |= lut.size > 1;
    if (cfg_.flatIntraGroup && spans_tiles)
        w = std::min(w, static_cast<Cycle>(cfg_.intraGroupLatency));
    CONSIM_ASSERT(w >= 1, "degenerate lookahead window");
    return w;
}

void
System::setRunJobs(int jobs)
{
    runJobs_ = std::max(1, std::min(jobs, cfg_.numCores()));
}

CoreId
System::execTileOf(const SimEvent &ev) const
{
    switch (ev.kind) {
      case SimEventKind::Deliver:
      case SimEventKind::NetDeliver:
        return ev.msg.dstTile;
      case SimEventKind::MemDone:
        return ev.msg.srcTile; // the MC's own tile
      default:
        return ev.tile;
    }
}

bool
System::canRunParallel() const
{
    if (cfg_.numCores() < 2)
        return false;
    // The drop-response fault counts responses in global delivery
    // order — inherently serial.
    if (dropArmed_)
        return false;
    // Opaque closures cannot be scattered (no owning tile).
    bool opaque = false;
    events_.forEachPending(now_, [&](Cycle, const SimEvent &ev) {
        opaque |= ev.kind == SimEventKind::Opaque;
    });
    return !opaque;
}

void
System::ensureLanes()
{
    if (!lanes_.empty())
        return;
    const int n = cfg_.numCores();
    lanes_.reserve(n);
    for (CoreId t = 0; t < n; ++t) {
        lanes_.push_back(std::make_unique<TileLane>());
        lanes_.back()->tile = t;
        // Lane queues hold one tile's events only — a small
        // per-bucket reserve keeps windows allocation-free without
        // ballooning memory across hundreds of lanes.
        lanes_.back()->q.reserveBuckets(8);
    }
    const int jobs = runJobs_;
    team_ = std::make_unique<LockstepTeam>(
        jobs, [this, n, jobs](int slot) {
            // Static contiguous partition of tiles over slots; a
            // slot runs each of its lanes through the whole window.
            const int lo = n * slot / jobs;
            const int hi = n * (slot + 1) / jobs;
            for (int t = lo; t < hi; ++t)
                laneRunWindow(*lanes_[t]);
        });
}

void
System::laneRunWindow(TileLane &lane)
{
    tlsLane_ = &lane;
    Core &core = *cores_[lane.tile];
    const Cycle end = windowStart_ + windowLen_;
    for (Cycle c = windowStart_; c < end; ++c) {
        lane.now = c;
        lane.q.runDue(c, [this](SimEvent &ev) { execEvent(ev); });
        core.tick();
    }
    tlsLane_ = nullptr;
}

void
System::scatter()
{
    for (auto &lp : lanes_) {
        TileLane &l = *lp;
        CONSIM_ASSERT(l.q.empty() && l.outbox.empty() &&
                          l.meshOut.empty(),
                      "stale lane state at scatter");
        l.now = now_;
        l.seq = seqBySrc_[static_cast<std::size_t>(l.tile)];
        l.q.setExecuted(0);
        l.meshOutHead = 0;
        l.vmDelta.assign(vms_.size(), TileLane::VmDelta{});
        l.netInjects = l.netEjects = l.netDataN = l.netCtrlN = 0;
        l.netLatSum = l.netDataSum = l.netCtrlSum = 0.0;
    }
    events_.drainPending(now_, [&](Cycle when, SimEvent &&ev) {
        CONSIM_ASSERT(ev.kind != SimEventKind::Opaque,
                      "Opaque event leaked into a parallel run");
        lanes_[execTileOf(ev)]->q.insertAbs(now_, when,
                                            std::move(ev));
    });
    netNow_ = now_;
    parallelActive_ = true;
}

void
System::replayMeshTo(Cycle target)
{
    while (netNow_ < target) {
        const Cycle c = netNow_;
        for (auto &lp : lanes_) {
            TileLane &l = *lp;
            while (l.meshOutHead < l.meshOut.size() &&
                   l.meshOut[l.meshOutHead].injectCycle == c)
                net_->inject(std::move(l.meshOut[l.meshOutHead++]));
        }
        netTickCycle_ = c;
        net_->tick(c);
        ++netNow_;
    }
}

void
System::mergeOutboxes()
{
    for (auto &lp : lanes_) {
        for (auto &o : lp->outbox)
            lanes_[execTileOf(o.ev)]->q.insertAbs(now_, o.when,
                                                  std::move(o.ev));
        lp->outbox.clear();
    }
}

void
System::gather()
{
    if (!netBypass_)
        replayMeshTo(now_); // catch the mesh up to the tiles
    std::uint64_t executed = 0;
    std::uint64_t injects = 0, ejects = 0, data_n = 0, ctrl_n = 0;
    double lat_sum = 0.0, data_sum = 0.0, ctrl_sum = 0.0;
    for (auto &lp : lanes_) {
        TileLane &l = *lp;
        CONSIM_ASSERT(l.outbox.empty() &&
                          l.meshOutHead == l.meshOut.size(),
                      "unapplied lane effects at gather");
        l.meshOut.clear();
        l.meshOutHead = 0;
        seqBySrc_[static_cast<std::size_t>(l.tile)] = l.seq;
        executed += l.q.executed();
        l.q.drainPending(now_, [&](Cycle when, SimEvent &&ev) {
            events_.insertAbs(now_, when, std::move(ev));
        });
        for (std::size_t v = 0; v < vms_.size(); ++v) {
            const auto &d = l.vmDelta[v];
            auto &s = vms_[v]->vmStats();
            s.l2Accesses += d.l2Accesses;
            s.l2Misses += d.l2Misses;
            s.c2cClean += d.c2cClean;
            s.c2cDirty += d.c2cDirty;
            s.l1Misses += d.l1Misses;
            s.transactions += d.transactions;
            s.instructions += d.instructions;
            s.mcThrottleStalls += d.mcThrottleStalls;
            if (d.missLatCount) {
                s.missLatency.restore(
                    s.missLatency.sum() + d.missLatSum,
                    s.missLatency.count() + d.missLatCount);
            }
        }
        injects += l.netInjects;
        ejects += l.netEjects;
        data_n += l.netDataN;
        ctrl_n += l.netCtrlN;
        lat_sum += l.netLatSum;
        data_sum += l.netDataSum;
        ctrl_sum += l.netCtrlSum;
    }
    events_.setExecuted(events_.executed() + executed);
    if (injects != 0 || ejects != 0)
        net_->mergeBypassed(injects, ejects, lat_sum, data_n,
                            data_sum, ctrl_n, ctrl_sum);
    parallelActive_ = false;
}

void
System::runParallel(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    ensureLanes();
    while (now_ < end) {
        // Service points (snapshots, deadline, watchdog, QoS epochs)
        // need the coherent global state, so windows are clamped to
        // land on them exactly — the same cycles the serial chunk
        // loop services, which keeps snapshots byte-identical.
        Cycle service = end;
        const Cycle qosEpoch = qosEpochInterval();
        const Cycle epochAt =
            qosEpoch ? (now_ / qosEpoch + 1) * qosEpoch : 0;
        if (qosEpoch != 0)
            service = std::min(service, epochAt);
        const Cycle dynEpoch = dynEpochInterval();
        const Cycle dynAt =
            dynEpoch ? (now_ / dynEpoch + 1) * dynEpoch : 0;
        if (dynEpoch != 0)
            service = std::min(service, dynAt);
        if (watchdogInterval_ != 0)
            service = std::min(service, nextWatchdogCheck_);
        if (deadline_ != 0)
            service = std::min(service, deadline_);
        if (ckptInterval_ != 0)
            service = std::min(service, nextCkpt_);
        scatter();
        while (now_ < service) {
            const Cycle w =
                std::min<Cycle>(window_, service - now_);
            if (!netBypass_) {
                const Cycle ahead = now_ + w;
                replayMeshTo(ahead > netHandoff_
                                 ? ahead - netHandoff_
                                 : 0);
            }
            windowStart_ = now_;
            windowLen_ = w;
            team_->run();
            now_ += w;
            mergeOutboxes();
        }
        gather();
        if (qosEpoch != 0 && now_ >= epochAt)
            qosRepartition();
        // Post-gather the global state equals the serial engine's, so
        // the deterministic policy reaches the identical verdict.
        if (dynEpoch != 0 && now_ >= dynAt)
            dynSchedEpoch();
        if (ckptInterval_ != 0 && now_ >= nextCkpt_) {
            takeSnapshot();
            nextCkpt_ = now_ + ckptInterval_;
        }
        if (deadline_ != 0 && now_ >= deadline_ && now_ < end) {
            SimError err(
                SimErrorKind::Deadline,
                logging::format("cycle deadline ", deadline_,
                                " reached with ", end - now_,
                                " cycles of work remaining"),
                diagJson("cycle deadline exceeded").dump(2));
            err.setCkpt(latestCheckpoint());
            throw err;
        }
        if (watchdogInterval_ != 0 && now_ >= nextWatchdogCheck_) {
            watchdogCheck();
            nextWatchdogCheck_ = now_ + watchdogInterval_;
        }
    }
}

void
System::setCheckpointInterval(Cycle interval)
{
    ckptInterval_ = interval;
    if (interval != 0)
        nextCkpt_ = now_ + interval;
}

void
System::takeSnapshot()
{
    ckptLatest_ ^= 1;
    ckptRing_[ckptLatest_] = saveCheckpoint().dump(1);
}

bool
System::runUntilQuiescent(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        tick();
        if (quiesced())
            return true;
    }
    return quiesced();
}

bool
System::quiesced() const
{
    if (!events_.empty() || !net_->idle())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->idle())
            return false;
    }
    for (const auto &b : banks_) {
        if (!b->idle())
            return false;
    }
    for (const auto &d : dirs_) {
        if (!d->idle())
            return false;
    }
    for (const auto &mc : mcs_) {
        if (!mc->idle())
            return false;
    }
    return true;
}

void
System::resetStats()
{
    statsRoot_.resetAll();
    // Re-baseline the dynamic repartitioner's miss-curve samples:
    // the counters it diffs just went back to zero.
    qosLastMissTotal_ = 0;
    qosPrevDelta_ = 0;
    // Same for the migration policies' epoch baselines.
    std::fill(dynLastRetired_.begin(), dynLastRetired_.end(), 0);
    std::fill(dynLastVm_.begin(), dynLastVm_.end(),
              std::array<std::uint64_t, 3>{0, 0, 0});
    std::fill(dynLastGroup_.begin(), dynLastGroup_.end(),
              std::array<std::uint64_t, 2>{0, 0});
}

bool
System::swapRandomThreads(Rng &rng)
{
    const int n = cfg_.numCores();
    for (int attempt = 0; attempt < 32; ++attempt) {
        const auto a = static_cast<CoreId>(rng.below(n));
        const auto b = static_cast<CoreId>(rng.below(n));
        if (a == b)
            continue;
        Core &ca = *cores_[a];
        Core &cb = *cores_[b];
        if (ca.blocked() || cb.blocked())
            continue;
        if (ca.idle() && cb.idle())
            continue;
        // Over-committed cores rotate through a run queue; swapping
        // the live binding out from under it would be undone at the
        // next timeslice boundary. Skip them.
        if (ca.multiplexed() || cb.multiplexed())
            continue;
        InstrStream *sa = ca.stream();
        const VmId va = ca.vm();
        InstrStream *sb = cb.stream();
        const VmId vb = cb.vm();
        ca.bindThread(sb, vb);
        cb.bindThread(sa, va);
        return true;
    }
    return false;
}

void
System::dumpStats(std::ostream &os) const
{
    statsRoot_.dump(os);
}

// ---------------------------------------------------------------------
// Snapshots & invariants
// ---------------------------------------------------------------------

ReplicationSnapshot
System::replicationSnapshot() const
{
    ReplicationSnapshot snap;
    snap.validPerVm.assign(vms_.size(), 0);
    snap.replicatedPerVm.assign(vms_.size(), 0);

    // Count partition-level copies per block. Each group's partition
    // holds at most one copy of a block, so counting valid lines per
    // block across banks counts partitions.
    std::unordered_map<BlockAddr, std::uint32_t> copies;
    for (const auto &b : banks_) {
        b->forEachLine([&](BlockAddr block, const L2CacheLine &line) {
            if (!line.valid)
                return;
            ++copies[block];
        });
    }
    snap.distinctBlocks = copies.size();
    for (const auto &b : banks_) {
        b->forEachLine([&](BlockAddr block, const L2CacheLine &line) {
            if (!line.valid)
                return;
            ++snap.validLines;
            const VmId vm = vmOfBlock(block);
            if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                ++snap.validPerVm[vm];
            if (copies[block] > 1) {
                ++snap.replicatedLines;
                if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                    ++snap.replicatedPerVm[vm];
            }
        });
    }
    return snap;
}

OccupancySnapshot
System::occupancySnapshot() const
{
    OccupancySnapshot snap;
    const int num_groups = cfg_.numGroups();
    snap.lines.assign(num_groups,
                      std::vector<std::uint64_t>(vms_.size(), 0));
    snap.capacity.assign(num_groups, 0);

    const std::uint64_t lines_per_bank =
        cfg_.l2TotalBytes /
        static_cast<std::uint64_t>(cfg_.numCores()) / blockBytes;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        snap.capacity[g] += lines_per_bank;
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (!line.valid)
                    return;
                const VmId vm = vmOfBlock(block);
                if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                    ++snap.lines[g][vm];
            });
    }
    return snap;
}

void
System::checkInvariants() const
{
    for (const auto &l1 : l1s_)
        l1->checkInvariants();
    for (const auto &b : banks_)
        b->checkInvariants();
}

void
System::checkGlobalCoherence() const
{
    CONSIM_ASSERT(quiesced(),
                  "global coherence check on a non-quiesced machine");

    // Gather the ground truth: which partitions hold which blocks,
    // and in what state.
    struct Copy
    {
        GroupSet groups;   // partitions with a valid line
        GroupSet dirtyish; // partitions with E/M or dirty
    };
    std::unordered_map<BlockAddr, Copy> copies;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (!line.valid)
                    return;
                auto &c = copies[block];
                CONSIM_ASSERT(!c.groups.test(g),
                              "two copies of block in one partition");
                c.groups.set(g);
                if (line.state == L2State::Exclusive ||
                    line.state == L2State::Modified || line.dirty) {
                    c.dirtyish.set(g);
                }
            });
    }

    // Directory agreement in both directions.
    dirStorage_.forEach([&](BlockAddr block, const DirEntry &e) {
        auto it = copies.find(block);
        static const GroupSet no_copies;
        const GroupSet &held =
            it == copies.end() ? no_copies : it->second.groups;
        switch (e.state) {
          case L2State::Invalid:
            CONSIM_ASSERT(held.none(),
                          "cached block directory thinks invalid: 0x",
                          std::hex, block);
            break;
          case L2State::Shared:
            CONSIM_ASSERT(e.sharers.any(), "S entry with no sharers");
            CONSIM_ASSERT(held == e.sharers,
                          "sharer mismatch for block 0x", std::hex,
                          block);
            break;
          case L2State::Exclusive:
          case L2State::Modified:
            CONSIM_ASSERT(e.owner >= 0, "owned entry without owner");
            CONSIM_ASSERT(held.isExactly(e.owner),
                          "owner mismatch for block 0x", std::hex,
                          block);
            break;
        }
        // Only owned lines may be dirty or exclusive in a cache.
        if (it != copies.end() && e.state == L2State::Shared) {
            CONSIM_ASSERT(it->second.dirtyish.none(),
                          "dirty/exclusive cache line under a Shared "
                          "directory entry, block 0x",
                          std::hex, block);
        }
    });

    // L1 inclusion: every valid L1 line is covered by its group's
    // partition line and presence bits.
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        l1s_[t]->forEachL1Line([&](BlockAddr block, L1State state) {
            const CoreId bank_tile = bankTileFor(g, block);
            bool covered = false;
            banks_[bank_tile]->forEachLine(
                [&](BlockAddr b, const L2CacheLine &line) {
                    if (!line.valid || b != block)
                        return;
                    covered = true;
                    if (state == L1State::Modified) {
                        CONSIM_ASSERT(
                            line.ownerCore >= 0,
                            "L1 owner unknown to its bank, block 0x",
                            std::hex, block);
                    }
                });
            CONSIM_ASSERT(covered,
                          "L1 line not backed by its partition "
                          "(inclusion violated), block 0x",
                          std::hex, block, std::dec, " core ", t);
        });
    }
}

// ---------------------------------------------------------------------
// Hardening layer
// ---------------------------------------------------------------------

void
System::setFaultPlan(const FaultPlan &plan)
{
    faultPlan_ = plan;
    for (const auto &e : faultPlan_.events) {
        switch (e.kind) {
          case FaultKind::WedgeCore: {
            CONSIM_ASSERT(e.core >= 0 && e.core < cfg_.numCores(),
                          "wedge fault for nonexistent core ", e.core);
            const CoreId c = e.core;
            if (e.at <= now_) {
                cores_[c]->wedge();
            } else {
                SimEvent ev(SimEventKind::WedgeCore, c, 0);
                ev.src = sysSrc_;
                ev.seq =
                    seqBySrc_[static_cast<std::size_t>(sysSrc_)]++;
                events_.scheduleKeyed(now_, e.at - now_,
                                      std::move(ev));
            }
            break;
          }
          case FaultKind::DropResponse:
            dropArmed_ = true;
            dropCountdown_ = e.nth;
            break;
          case FaultKind::MemBurst:
            memBurstArmed_ = true;
            memBurstStart_ = e.at;
            memBurstEnd_ = e.at + e.len;
            memBurstExtra_ = e.extra;
            break;
        }
    }
}

void
System::setWatchdogInterval(Cycle interval)
{
    watchdogInterval_ = interval;
    if (interval == 0)
        return;
    nextWatchdogCheck_ = now_ + interval;
    // Take the baseline snapshot the first check will diff against.
    wdSnap_.executed = events_.executed();
    wdSnap_.ejected = net_->ejectedTotal();
    wdSnap_.retired.resize(cores_.size());
    wdSnap_.blocked.resize(cores_.size());
    wdSnap_.retiredSum = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        wdSnap_.retired[i] = cores_[i]->retiredTotal();
        wdSnap_.retiredSum += wdSnap_.retired[i];
        wdSnap_.blocked[i] = cores_[i]->blocked() ? 1 : 0;
    }
}

void
System::watchdogCheck()
{
    std::uint64_t retiredSum = 0;
    for (const auto &c : cores_)
        retiredSum += c->retiredTotal();

    // Condition A: the machine as a whole did nothing over the whole
    // interval — no events executed, no packets delivered, no
    // instructions retired — yet work is still in flight.
    const bool globalProgress =
        events_.executed() != wdSnap_.executed ||
        net_->ejectedTotal() != wdSnap_.ejected ||
        retiredSum != wdSnap_.retiredSum;
    if (!globalProgress && !quiesced()) {
        SimError err(
            SimErrorKind::Watchdog,
            logging::format("no forward progress over ",
                            watchdogInterval_, " cycles (cycle ",
                            now_, ")"),
            diagJson("watchdog: no global progress").dump(2));
        err.setCkpt(latestCheckpoint());
        throw err;
    }

    // Condition B: a core with a bound thread sat blocked at both
    // interval boundaries and retired nothing in between. No
    // legitimate miss takes a full watchdog interval.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core &c = *cores_[i];
        if (!c.idle() && c.blocked() && wdSnap_.blocked[i] &&
            c.retiredTotal() == wdSnap_.retired[i]) {
            SimError err(
                SimErrorKind::Watchdog,
                logging::format("core ", i, " made no progress over ",
                                watchdogInterval_, " cycles (cycle ",
                                now_, c.wedged() ? ", wedged" : "",
                                ")"),
                diagJson(logging::format("watchdog: core ", i,
                                         " stalled"))
                    .dump(2));
            err.setCkpt(latestCheckpoint());
            throw err;
        }
    }

    wdSnap_.executed = events_.executed();
    wdSnap_.ejected = net_->ejectedTotal();
    wdSnap_.retiredSum = retiredSum;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        wdSnap_.retired[i] = cores_[i]->retiredTotal();
        wdSnap_.blocked[i] = cores_[i]->blocked() ? 1 : 0;
    }
}

void
System::auditWindow() const
{
    try {
        // Per-component protocol invariants (CONSIM_ASSERT throws
        // under basic+ levels, so violations surface as SimError
        // here).
        checkInvariants();

        // NoC credit/flit conservation and packet census.
        net_->checkConservation();

        // Stuck transactions: a leaked entry never completes, so its
        // age grows without bound. Anything older than the limit is
        // dead.
        for (const auto &l1 : l1s_)
            l1->auditStuckMiss(now_, stuckLimit_);
        for (const auto &b : banks_)
            b->auditStuckTxns(now_, stuckLimit_);
        for (const auto &d : dirs_)
            d->auditStuckTxns(now_, stuckLimit_);

        auditSharerState();
    } catch (const SimError &e) {
        // Checkers throw from deep inside components with no machine
        // context; attach the full diag dump here, where we have it.
        if (!e.diag().empty())
            throw;
        throw SimError(e.kind(), e.what(),
                       diagJson("window audit failed").dump(2));
    }
}

void
System::auditSharerState() const
{
    // Directory-vs-cache consistency on a live machine: blocks with
    // any in-flight transaction are skipped (their dir entry and
    // cache copies legitimately disagree mid-protocol); the rest must
    // agree exactly. checkGlobalCoherence() remains the stronger
    // quiesced-only variant.
    std::unordered_map<BlockAddr, GroupSet> held;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (line.valid)
                    held[block].set(g);
            });
    }

    const auto quiet = [&](BlockAddr block) {
        if (dirs_[homeTileFor(block)]->hasActivity(block))
            return false;
        for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
            if (banks_[bankTileFor(g, block)]->hasActivity(block))
                return false;
        }
        return true;
    };

    dirStorage_.forEach([&](BlockAddr block, const DirEntry &e) {
        const auto it = held.find(block);
        static const GroupSet no_copies;
        const GroupSet &copies =
            it == held.end() ? no_copies : it->second;
        if (e.state == L2State::Invalid && copies.none())
            return; // fast path: the overwhelming majority
        if (!quiet(block))
            return;
        switch (e.state) {
          case L2State::Invalid:
            CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                              block, std::dec, " cached in ",
                              copies.count(), " partition(s) but "
                              "directory says Invalid");
            break;
          case L2State::Shared:
            if (copies != e.sharers) {
                CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                                  block, std::dec,
                                  " sharer mismatch (dir=",
                                  e.sharers.count(), " groups, held=",
                                  copies.count(), " groups)");
            }
            break;
          case L2State::Exclusive:
          case L2State::Modified:
            if (e.owner < 0 || !copies.isExactly(e.owner)) {
                CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                                  block, std::dec,
                                  " owner mismatch (dir owner=",
                                  static_cast<int>(e.owner),
                                  " held=", copies.count(),
                                  " groups)");
            }
            break;
        }
    });
}

json::Value
System::diagJson(const std::string &reason) const
{
    auto v = json::Value::object();
    v.set("schema", "consim.diag.v1");
    v.set("reason", reason);
    v.set("cycle", now_);
    v.set("quiesced", quiesced());

    auto eq = json::Value::object();
    eq.set("pending", static_cast<std::uint64_t>(events_.size()));
    eq.set("executed_total", events_.executed());
    v.set("event_queue", std::move(eq));

    auto cores = json::Value::array();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core &c = *cores_[i];
        const L1Controller &l1 = *l1s_[i];
        auto e = json::Value::object();
        e.set("tile", static_cast<int>(i));
        e.set("bound", !c.idle());
        e.set("vm", c.vm());
        e.set("blocked", c.blocked());
        e.set("wedged", c.wedged());
        e.set("retired_total", c.retiredTotal());
        if (c.blocked())
            e.set("block_start", c.blockStart());
        if (!l1.idle()) {
            auto p = json::Value::object();
            p.set("block", l1.pendingBlock());
            p.set("start", l1.pendingStart());
            p.set("write", l1.pendingIsWrite());
            e.set("l1_pending", std::move(p));
        }
        cores.push(std::move(e));
    }
    v.set("cores", std::move(cores));

    auto banks = json::Value::array();
    for (const auto &b : banks_) {
        if (!b->idle())
            banks.push(b->diagJson());
    }
    v.set("l2_banks", std::move(banks));

    auto dirs = json::Value::array();
    for (const auto &d : dirs_) {
        if (!d->idle())
            dirs.push(d->diagJson());
    }
    v.set("directories", std::move(dirs));

    v.set("net", net_->diagJson());

    // Per-VM L2 occupancy (valid lines chip-wide): which VM holds
    // the shared cache when a run hangs or trips its deadline.
    {
        std::vector<std::uint64_t> linesPerVm(vms_.size(), 0);
        for (const auto &b : banks_) {
            b->forEachLine(
                [&](BlockAddr block, const L2CacheLine &line) {
                    if (!line.valid)
                        return;
                    const VmId vm = vmOfBlock(block);
                    if (vm >= 0 &&
                        vm < static_cast<VmId>(vms_.size()))
                        ++linesPerVm[vm];
                });
        }
        auto occ = json::Value::array();
        for (std::size_t vm = 0; vm < linesPerVm.size(); ++vm) {
            auto e = json::Value::object();
            e.set("vm", static_cast<int>(vm));
            e.set("l2_lines", linesPerVm[vm]);
            occ.push(std::move(e));
        }
        v.set("vm_l2_occupancy", std::move(occ));
    }

    // Memory-controller queue depth: outstanding reads plus how far
    // ahead of the clock each channel is booked.
    {
        auto mcs = json::Value::array();
        for (const auto &mc : mcs_) {
            auto e = json::Value::object();
            e.set("tile", mc->tile());
            e.set("outstanding", mc->outstandingReads());
            e.set("next_free_delta",
                  mc->nextFree() > now_ ? mc->nextFree() - now_
                                        : 0);
            mcs.push(std::move(e));
        }
        v.set("mem_controllers", std::move(mcs));
    }

    if (qos_.enabled()) {
        auto q = json::Value::object();
        q.set("mode", toString(qos_.mode));
        q.set("protected_vm", qos_.protectedVm);
        q.set("dyn_ways", qosDynWays_);
        v.set("qos", std::move(q));
    }

    if (!faultPlan_.empty())
        v.set("faults", faultPlan_.toJson());
    return v;
}

} // namespace consim
