#include "core/system.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "noc/mesh.hh"

namespace consim
{

System::System(const MachineConfig &cfg,
               std::vector<VirtualMachine *> vms,
               const std::vector<ThreadPlacement> &placements)
    : cfg_(cfg), vms_(std::move(vms))
{
    cfg_.validate();
    const int n = cfg_.numCores();

    for (std::size_t i = 0; i < vms_.size(); ++i) {
        CONSIM_ASSERT(vms_[i] != nullptr &&
                          vms_[i]->id() == static_cast<VmId>(i),
                      "VM ids must be dense and ordered");
        dirStorage_.registerVm(vms_[i]->id(),
                               vms_[i]->profile().totalBlocks());
    }

    groupOf_.resize(n);
    for (CoreId t = 0; t < n; ++t)
        groupOf_[t] = cfg_.groupOfCore(t);
    membersOf_.resize(cfg_.numGroups());
    for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
        auto &lut = membersOf_[g];
        lut.tiles = cfg_.coresOfGroup(g);
        lut.size = lut.tiles.size();
        lut.pow2 = isPow2(lut.size);
        lut.mask = lut.pow2 ? lut.size - 1 : 0;
    }

    // Memory controllers at the mesh corners (then wrap for more).
    const std::vector<CoreId> corner_order = {
        0, n - 1, cfg_.meshX - 1, n - cfg_.meshX};
    mcIndexOfTile_.assign(n, -1);
    for (int i = 0; i < cfg_.numMemCtrls; ++i) {
        const CoreId tile =
            corner_order[i % corner_order.size()] ;
        CONSIM_ASSERT(mcIndexOfTile_[tile] < 0,
                      "two memory controllers on tile ", tile);
        mcTiles_.push_back(tile);
        mcIndexOfTile_[tile] = i;
    }

    if (cfg_.idealNoc)
        net_ = std::make_unique<IdealNetwork>(cfg_.idealNocLatency);
    else
        net_ = std::make_unique<Mesh>(cfg_);
    net_->setDeliver([this](const Msg &m) { deliver(m); });

    for (CoreId t = 0; t < n; ++t) {
        l1s_.push_back(std::make_unique<L1Controller>(*this, t));
        cores_.push_back(std::make_unique<Core>(*this, t, *l1s_[t]));
        banks_.push_back(std::make_unique<L2Bank>(*this, t));
        dirs_.push_back(
            std::make_unique<DirectorySlice>(*this, t, dirStorage_));
    }
    for (int i = 0; i < cfg_.numMemCtrls; ++i)
        mcs_.push_back(
            std::make_unique<MemoryController>(*this, mcTiles_[i]));

    for (const auto &p : placements) {
        CONSIM_ASSERT(p.vm >= 0 &&
                          p.vm < static_cast<VmId>(vms_.size()),
                      "placement for unknown VM ", p.vm);
        VirtualMachine &vm = *vms_[p.vm];
        cores_.at(p.core)->bindThread(&vm.instance().thread(p.thread),
                                      p.vm);
    }

    // Link every component's registry node into one tree rooted at
    // "sys": full stat names read sys.tile03.l1.misses, sys.net.*,
    // sys.vm00.*. VM groups are re-parented (a VM may be adopted by
    // a fresh System in tests), so adoption order defines the tree.
    for (CoreId t = 0; t < n; ++t) {
        tileGroups_.push_back(std::make_unique<stats::Group>(
            indexedName("tile", t), &statsRoot_));
        stats::Group &tg = *tileGroups_.back();
        tg.addChild(&cores_[t]->statsGroup());
        tg.addChild(&l1s_[t]->statsGroup());
        tg.addChild(&banks_[t]->statsGroup());
        tg.addChild(&dirs_[t]->statsGroup());
    }
    for (std::size_t i = 0; i < mcs_.size(); ++i)
        tileGroups_[mcTiles_[i]]->addChild(&mcs_[i]->statsGroup());
    statsRoot_.addChild(&net_->statsGroup());
    for (auto *vm : vms_)
        statsRoot_.addChild(&vm->statsGroup());
}

// ---------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------

void
System::send(Msg m)
{
    m.injectCycle = now_;
    if (m.srcTile == m.dstTile) {
        // Local hop: fixed one-cycle on-tile transfer.
        events_.schedule(now_, 1,
                         SimEvent(SimEventKind::Deliver, m));
        return;
    }
    if (cfg_.flatIntraGroup && isIntraGroup(m.type)) {
        // On-partition path: the paper models a constant L2 access
        // latency regardless of sharing degree, so traffic between a
        // core and its partition's banks bypasses the mesh.
        events_.schedule(now_, cfg_.intraGroupLatency,
                         SimEvent(SimEventKind::Deliver, m));
        return;
    }
    net_->inject(std::move(m));
}

void
System::schedule(Cycle delay, EventFn fn)
{
    events_.schedule(now_, delay, std::move(fn));
}

CoreId
System::bankTileFor(GroupId g, BlockAddr block) const
{
    const auto &lut = membersOf_[g];
    return lut.pow2 ? lut.tiles[block & lut.mask]
                    : lut.tiles[block % lut.size];
}

CoreId
System::homeTileFor(BlockAddr block) const
{
    return static_cast<CoreId>(mixBits(block) %
                               static_cast<std::uint64_t>(
                                   cfg_.numCores()));
}

CoreId
System::memTileFor(BlockAddr block) const
{
    const auto h = mixBits(block * 0x9e3779b97f4a7c15ull + 1);
    return mcTiles_[h % mcTiles_.size()];
}

void
System::recordL2Access(VmId vm)
{
    if (vm >= 0)
        ++vms_[vm]->vmStats().l2Accesses;
}

void
System::recordL2Miss(VmId vm, bool c2c, bool c2c_dirty)
{
    if (vm < 0)
        return;
    auto &s = vms_[vm]->vmStats();
    ++s.l2Misses;
    if (c2c) {
        if (c2c_dirty)
            ++s.c2cDirty;
        else
            ++s.c2cClean;
    }
}

void
System::recordL1Miss(VmId vm, Cycle latency)
{
    if (vm < 0)
        return;
    auto &s = vms_[vm]->vmStats();
    ++s.l1Misses;
    s.missLatency.sample(static_cast<double>(latency));
}

void
System::recordTransaction(VmId vm)
{
    if (vm >= 0)
        ++vms_[vm]->vmStats().transactions;
}

void
System::recordInstructions(VmId vm, std::uint64_t n)
{
    if (vm >= 0)
        vms_[vm]->vmStats().instructions += n;
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

void
System::deliver(const Msg &m)
{
    // Fault injection: the nth response-class message vanishes in
    // transit (models a lost fill; the waiting transaction never
    // completes, which the watchdog / stuck-transaction audit must
    // then catch).
    if (dropArmed_ && vnetOf(m.type) == 2 && --dropCountdown_ == 0) {
        dropArmed_ = false;
        return;
    }
    switch (m.dstUnit) {
      case Unit::L1:
        l1s_.at(m.dstTile)->handle(m);
        break;
      case Unit::L2Bank:
        banks_.at(m.dstTile)->handle(m);
        break;
      case Unit::Dir:
        dirs_.at(m.dstTile)->handle(m);
        break;
      case Unit::Mem: {
        const int idx = mcIndexOfTile_.at(m.dstTile);
        CONSIM_ASSERT(idx >= 0, "no memory controller at tile ",
                      m.dstTile);
        mcs_.at(idx)->handle(m);
        break;
      }
    }
}

void
System::execEvent(SimEvent &ev)
{
    switch (ev.kind) {
      case SimEventKind::Deliver:
        deliver(ev.msg);
        break;
      case SimEventKind::BankDispatch:
        banks_.at(ev.tile)->dispatchLocal(ev.block);
        break;
      case SimEventKind::BankFillRetry:
        banks_.at(ev.tile)->fillRetry(ev.block);
        break;
      case SimEventKind::DirProcess:
        dirs_.at(ev.tile)->process(ev.block);
        break;
      case SimEventKind::MemDone: {
        const int idx = mcIndexOfTile_.at(ev.msg.srcTile);
        CONSIM_ASSERT(idx >= 0, "MemDone from a tile without an MC");
        mcs_.at(idx)->finishAccess(ev.msg);
        break;
      }
      case SimEventKind::WedgeCore:
        cores_.at(ev.tile)->wedge();
        break;
      case SimEventKind::Opaque:
        ev.fn();
        break;
    }
}

void
System::tick()
{
    events_.runDue(now_, [this](SimEvent &ev) { execEvent(ev); });
    for (auto &c : cores_)
        c->tick();
    net_->tick(now_);
    ++now_;
}

void
System::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (watchdogInterval_ == 0 && deadline_ == 0 &&
        ckptInterval_ == 0) {
        // Fast path: the per-cycle loop carries no hardening checks.
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        Cycle chunkEnd = end;
        if (watchdogInterval_ != 0)
            chunkEnd = std::min(chunkEnd, nextWatchdogCheck_);
        if (deadline_ != 0)
            chunkEnd = std::min(chunkEnd, deadline_);
        if (ckptInterval_ != 0)
            chunkEnd = std::min(chunkEnd, nextCkpt_);
        while (now_ < chunkEnd)
            tick();
        // Snapshot before the deadline check: a run tripping at its
        // deadline then carries a checkpoint taken at that very
        // cycle, so a resume loses no work.
        if (ckptInterval_ != 0 && now_ >= nextCkpt_) {
            takeSnapshot();
            nextCkpt_ = now_ + ckptInterval_;
        }
        if (deadline_ != 0 && now_ >= deadline_ && now_ < end) {
            SimError err(
                SimErrorKind::Deadline,
                logging::format("cycle deadline ", deadline_,
                                " reached with ", end - now_,
                                " cycles of work remaining"),
                diagJson("cycle deadline exceeded").dump(2));
            err.setCkpt(latestCheckpoint());
            throw err;
        }
        if (watchdogInterval_ != 0 && now_ >= nextWatchdogCheck_) {
            watchdogCheck();
            nextWatchdogCheck_ = now_ + watchdogInterval_;
        }
    }
}

void
System::setCheckpointInterval(Cycle interval)
{
    ckptInterval_ = interval;
    if (interval != 0)
        nextCkpt_ = now_ + interval;
}

void
System::takeSnapshot()
{
    ckptLatest_ ^= 1;
    ckptRing_[ckptLatest_] = saveCheckpoint().dump(1);
}

bool
System::runUntilQuiescent(Cycle max_cycles)
{
    const Cycle end = now_ + max_cycles;
    while (now_ < end) {
        tick();
        if (quiesced())
            return true;
    }
    return quiesced();
}

bool
System::quiesced() const
{
    if (!events_.empty() || !net_->idle())
        return false;
    for (const auto &l1 : l1s_) {
        if (!l1->idle())
            return false;
    }
    for (const auto &b : banks_) {
        if (!b->idle())
            return false;
    }
    for (const auto &d : dirs_) {
        if (!d->idle())
            return false;
    }
    for (const auto &mc : mcs_) {
        if (!mc->idle())
            return false;
    }
    return true;
}

void
System::resetStats()
{
    statsRoot_.resetAll();
}

bool
System::swapRandomThreads(Rng &rng)
{
    const int n = cfg_.numCores();
    for (int attempt = 0; attempt < 32; ++attempt) {
        const auto a = static_cast<CoreId>(rng.below(n));
        const auto b = static_cast<CoreId>(rng.below(n));
        if (a == b)
            continue;
        Core &ca = *cores_[a];
        Core &cb = *cores_[b];
        if (ca.blocked() || cb.blocked())
            continue;
        if (ca.idle() && cb.idle())
            continue;
        InstrStream *sa = ca.stream();
        const VmId va = ca.vm();
        InstrStream *sb = cb.stream();
        const VmId vb = cb.vm();
        ca.bindThread(sb, vb);
        cb.bindThread(sa, va);
        return true;
    }
    return false;
}

void
System::dumpStats(std::ostream &os) const
{
    statsRoot_.dump(os);
}

// ---------------------------------------------------------------------
// Snapshots & invariants
// ---------------------------------------------------------------------

ReplicationSnapshot
System::replicationSnapshot() const
{
    ReplicationSnapshot snap;
    snap.validPerVm.assign(vms_.size(), 0);
    snap.replicatedPerVm.assign(vms_.size(), 0);

    // Count partition-level copies per block. Each group's partition
    // holds at most one copy of a block, so counting valid lines per
    // block across banks counts partitions.
    std::unordered_map<BlockAddr, std::uint32_t> copies;
    for (const auto &b : banks_) {
        b->forEachLine([&](BlockAddr block, const L2CacheLine &line) {
            if (!line.valid)
                return;
            ++copies[block];
        });
    }
    snap.distinctBlocks = copies.size();
    for (const auto &b : banks_) {
        b->forEachLine([&](BlockAddr block, const L2CacheLine &line) {
            if (!line.valid)
                return;
            ++snap.validLines;
            const VmId vm = vmOfBlock(block);
            if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                ++snap.validPerVm[vm];
            if (copies[block] > 1) {
                ++snap.replicatedLines;
                if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                    ++snap.replicatedPerVm[vm];
            }
        });
    }
    return snap;
}

OccupancySnapshot
System::occupancySnapshot() const
{
    OccupancySnapshot snap;
    const int num_groups = cfg_.numGroups();
    snap.lines.assign(num_groups,
                      std::vector<std::uint64_t>(vms_.size(), 0));
    snap.capacity.assign(num_groups, 0);

    const std::uint64_t lines_per_bank =
        cfg_.l2TotalBytes /
        static_cast<std::uint64_t>(cfg_.numCores()) / blockBytes;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        snap.capacity[g] += lines_per_bank;
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (!line.valid)
                    return;
                const VmId vm = vmOfBlock(block);
                if (vm >= 0 && vm < static_cast<VmId>(vms_.size()))
                    ++snap.lines[g][vm];
            });
    }
    return snap;
}

void
System::checkInvariants() const
{
    for (const auto &l1 : l1s_)
        l1->checkInvariants();
    for (const auto &b : banks_)
        b->checkInvariants();
}

void
System::checkGlobalCoherence() const
{
    CONSIM_ASSERT(quiesced(),
                  "global coherence check on a non-quiesced machine");

    // Gather the ground truth: which partitions hold which blocks,
    // and in what state.
    struct Copy
    {
        std::uint16_t groups = 0;    // partitions with a valid line
        std::uint16_t dirtyish = 0;  // partitions with E/M or dirty
    };
    std::unordered_map<BlockAddr, Copy> copies;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (!line.valid)
                    return;
                auto &c = copies[block];
                CONSIM_ASSERT(!(c.groups & (1u << g)),
                              "two copies of block in one partition");
                c.groups |= static_cast<std::uint16_t>(1u << g);
                if (line.state == L2State::Exclusive ||
                    line.state == L2State::Modified || line.dirty) {
                    c.dirtyish |=
                        static_cast<std::uint16_t>(1u << g);
                }
            });
    }

    // Directory agreement in both directions.
    dirStorage_.forEach([&](BlockAddr block, const DirEntry &e) {
        auto it = copies.find(block);
        const std::uint16_t held =
            it == copies.end() ? 0 : it->second.groups;
        switch (e.state) {
          case L2State::Invalid:
            CONSIM_ASSERT(held == 0,
                          "cached block directory thinks invalid: 0x",
                          std::hex, block);
            break;
          case L2State::Shared:
            CONSIM_ASSERT(e.sharers != 0, "S entry with no sharers");
            CONSIM_ASSERT(held == e.sharers,
                          "sharer mismatch for block 0x", std::hex,
                          block, " dir=", e.sharers, " held=", held);
            break;
          case L2State::Exclusive:
          case L2State::Modified:
            CONSIM_ASSERT(e.owner >= 0, "owned entry without owner");
            CONSIM_ASSERT(held ==
                              static_cast<std::uint16_t>(1u << e.owner),
                          "owner mismatch for block 0x", std::hex,
                          block);
            break;
        }
        // Only owned lines may be dirty or exclusive in a cache.
        if (it != copies.end() && e.state == L2State::Shared) {
            CONSIM_ASSERT(it->second.dirtyish == 0,
                          "dirty/exclusive cache line under a Shared "
                          "directory entry, block 0x",
                          std::hex, block);
        }
    });

    // L1 inclusion: every valid L1 line is covered by its group's
    // partition line and presence bits.
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        l1s_[t]->forEachL1Line([&](BlockAddr block, L1State state) {
            const CoreId bank_tile = bankTileFor(g, block);
            bool covered = false;
            banks_[bank_tile]->forEachLine(
                [&](BlockAddr b, const L2CacheLine &line) {
                    if (!line.valid || b != block)
                        return;
                    covered = true;
                    if (state == L1State::Modified) {
                        CONSIM_ASSERT(
                            line.ownerCore >= 0,
                            "L1 owner unknown to its bank, block 0x",
                            std::hex, block);
                    }
                });
            CONSIM_ASSERT(covered,
                          "L1 line not backed by its partition "
                          "(inclusion violated), block 0x",
                          std::hex, block, std::dec, " core ", t);
        });
    }
}

// ---------------------------------------------------------------------
// Hardening layer
// ---------------------------------------------------------------------

void
System::setFaultPlan(const FaultPlan &plan)
{
    faultPlan_ = plan;
    for (const auto &e : faultPlan_.events) {
        switch (e.kind) {
          case FaultKind::WedgeCore: {
            CONSIM_ASSERT(e.core >= 0 && e.core < cfg_.numCores(),
                          "wedge fault for nonexistent core ", e.core);
            const CoreId c = e.core;
            if (e.at <= now_)
                cores_[c]->wedge();
            else
                events_.schedule(now_, e.at - now_,
                                 SimEvent(SimEventKind::WedgeCore, c,
                                          0));
            break;
          }
          case FaultKind::DropResponse:
            dropArmed_ = true;
            dropCountdown_ = e.nth;
            break;
          case FaultKind::MemBurst:
            memBurstArmed_ = true;
            memBurstStart_ = e.at;
            memBurstEnd_ = e.at + e.len;
            memBurstExtra_ = e.extra;
            break;
        }
    }
}

void
System::setWatchdogInterval(Cycle interval)
{
    watchdogInterval_ = interval;
    if (interval == 0)
        return;
    nextWatchdogCheck_ = now_ + interval;
    // Take the baseline snapshot the first check will diff against.
    wdSnap_.executed = events_.executed();
    wdSnap_.ejected = net_->ejectedTotal();
    wdSnap_.retired.resize(cores_.size());
    wdSnap_.blocked.resize(cores_.size());
    wdSnap_.retiredSum = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        wdSnap_.retired[i] = cores_[i]->retiredTotal();
        wdSnap_.retiredSum += wdSnap_.retired[i];
        wdSnap_.blocked[i] = cores_[i]->blocked() ? 1 : 0;
    }
}

void
System::watchdogCheck()
{
    std::uint64_t retiredSum = 0;
    for (const auto &c : cores_)
        retiredSum += c->retiredTotal();

    // Condition A: the machine as a whole did nothing over the whole
    // interval — no events executed, no packets delivered, no
    // instructions retired — yet work is still in flight.
    const bool globalProgress =
        events_.executed() != wdSnap_.executed ||
        net_->ejectedTotal() != wdSnap_.ejected ||
        retiredSum != wdSnap_.retiredSum;
    if (!globalProgress && !quiesced()) {
        SimError err(
            SimErrorKind::Watchdog,
            logging::format("no forward progress over ",
                            watchdogInterval_, " cycles (cycle ",
                            now_, ")"),
            diagJson("watchdog: no global progress").dump(2));
        err.setCkpt(latestCheckpoint());
        throw err;
    }

    // Condition B: a core with a bound thread sat blocked at both
    // interval boundaries and retired nothing in between. No
    // legitimate miss takes a full watchdog interval.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core &c = *cores_[i];
        if (!c.idle() && c.blocked() && wdSnap_.blocked[i] &&
            c.retiredTotal() == wdSnap_.retired[i]) {
            SimError err(
                SimErrorKind::Watchdog,
                logging::format("core ", i, " made no progress over ",
                                watchdogInterval_, " cycles (cycle ",
                                now_, c.wedged() ? ", wedged" : "",
                                ")"),
                diagJson(logging::format("watchdog: core ", i,
                                         " stalled"))
                    .dump(2));
            err.setCkpt(latestCheckpoint());
            throw err;
        }
    }

    wdSnap_.executed = events_.executed();
    wdSnap_.ejected = net_->ejectedTotal();
    wdSnap_.retiredSum = retiredSum;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        wdSnap_.retired[i] = cores_[i]->retiredTotal();
        wdSnap_.blocked[i] = cores_[i]->blocked() ? 1 : 0;
    }
}

void
System::auditWindow() const
{
    try {
        // Per-component protocol invariants (CONSIM_ASSERT throws
        // under basic+ levels, so violations surface as SimError
        // here).
        checkInvariants();

        // NoC credit/flit conservation and packet census.
        net_->checkConservation();

        // Stuck transactions: a leaked entry never completes, so its
        // age grows without bound. Anything older than the limit is
        // dead.
        for (const auto &l1 : l1s_)
            l1->auditStuckMiss(now_, stuckLimit_);
        for (const auto &b : banks_)
            b->auditStuckTxns(now_, stuckLimit_);
        for (const auto &d : dirs_)
            d->auditStuckTxns(now_, stuckLimit_);

        auditSharerState();
    } catch (const SimError &e) {
        // Checkers throw from deep inside components with no machine
        // context; attach the full diag dump here, where we have it.
        if (!e.diag().empty())
            throw;
        throw SimError(e.kind(), e.what(),
                       diagJson("window audit failed").dump(2));
    }
}

void
System::auditSharerState() const
{
    // Directory-vs-cache consistency on a live machine: blocks with
    // any in-flight transaction are skipped (their dir entry and
    // cache copies legitimately disagree mid-protocol); the rest must
    // agree exactly. checkGlobalCoherence() remains the stronger
    // quiesced-only variant.
    std::unordered_map<BlockAddr, std::uint16_t> held;
    for (CoreId t = 0; t < cfg_.numCores(); ++t) {
        const GroupId g = groupOf_[t];
        banks_[t]->forEachLine(
            [&](BlockAddr block, const L2CacheLine &line) {
                if (line.valid)
                    held[block] |=
                        static_cast<std::uint16_t>(1u << g);
            });
    }

    const auto quiet = [&](BlockAddr block) {
        if (dirs_[homeTileFor(block)]->hasActivity(block))
            return false;
        for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
            if (banks_[bankTileFor(g, block)]->hasActivity(block))
                return false;
        }
        return true;
    };

    dirStorage_.forEach([&](BlockAddr block, const DirEntry &e) {
        const auto it = held.find(block);
        const std::uint16_t copies =
            it == held.end() ? 0 : it->second;
        if (e.state == L2State::Invalid && copies == 0)
            return; // fast path: the overwhelming majority
        if (!quiet(block))
            return;
        switch (e.state) {
          case L2State::Invalid:
            CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                              block, std::dec, " cached (mask ",
                              copies, ") but directory says Invalid");
            break;
          case L2State::Shared:
            if (copies != e.sharers) {
                CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                                  block, std::dec,
                                  " sharer mismatch (dir=", e.sharers,
                                  " held=", copies, ")");
            }
            break;
          case L2State::Exclusive:
          case L2State::Modified:
            if (e.owner < 0 ||
                copies != static_cast<std::uint16_t>(1u << e.owner)) {
                CONSIM_CHECK_FAIL("sharer audit: block 0x", std::hex,
                                  block, std::dec,
                                  " owner mismatch (dir owner=",
                                  static_cast<int>(e.owner),
                                  " held=", copies, ")");
            }
            break;
        }
    });
}

json::Value
System::diagJson(const std::string &reason) const
{
    auto v = json::Value::object();
    v.set("schema", "consim.diag.v1");
    v.set("reason", reason);
    v.set("cycle", now_);
    v.set("quiesced", quiesced());

    auto eq = json::Value::object();
    eq.set("pending", static_cast<std::uint64_t>(events_.size()));
    eq.set("executed_total", events_.executed());
    v.set("event_queue", std::move(eq));

    auto cores = json::Value::array();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core &c = *cores_[i];
        const L1Controller &l1 = *l1s_[i];
        auto e = json::Value::object();
        e.set("tile", static_cast<int>(i));
        e.set("bound", !c.idle());
        e.set("vm", c.vm());
        e.set("blocked", c.blocked());
        e.set("wedged", c.wedged());
        e.set("retired_total", c.retiredTotal());
        if (c.blocked())
            e.set("block_start", c.blockStart());
        if (!l1.idle()) {
            auto p = json::Value::object();
            p.set("block", l1.pendingBlock());
            p.set("start", l1.pendingStart());
            p.set("write", l1.pendingIsWrite());
            e.set("l1_pending", std::move(p));
        }
        cores.push(std::move(e));
    }
    v.set("cores", std::move(cores));

    auto banks = json::Value::array();
    for (const auto &b : banks_) {
        if (!b->idle())
            banks.push(b->diagJson());
    }
    v.set("l2_banks", std::move(banks));

    auto dirs = json::Value::array();
    for (const auto &d : dirs_) {
        if (!d->idle())
            dirs.push(d->diagJson());
    }
    v.set("directories", std::move(dirs));

    v.set("net", net_->diagJson());

    if (!faultPlan_.empty())
        v.set("faults", faultPlan_.toJson());
    return v;
}

} // namespace consim
