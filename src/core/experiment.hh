/**
 * @file
 * Experiment driver: builds a System for a workload mix + schedule +
 * cache configuration, runs warmup and a measurement window, and
 * extracts the paper's metrics. Multi-seed averaging implements the
 * statistical-simulation discipline of Alameldeen & Wood that the
 * paper follows (§V).
 */

#ifndef CONSIM_CORE_EXPERIMENT_HH
#define CONSIM_CORE_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "core/fault.hh"
#include "core/mix.hh"
#include "core/qos.hh"
#include "core/system.hh"
#include "workload/profile.hh"

namespace consim
{

/** Everything that defines one simulation point. */
struct RunConfig
{
    MachineConfig machine;
    std::vector<WorkloadKind> workloads; ///< one entry per VM
    /** Per-VM thread-count overrides for heterogeneous mixes. Empty =
     *  profile defaults for every VM; otherwise one entry per VM,
     *  where 0 keeps that VM's profile default. Echoed in the run.v1
     *  config only when non-empty (envelope byte-stability). */
    std::vector<int> vmThreads;
    SchedPolicy policy = SchedPolicy::Affinity;
    std::uint64_t seed = 1;
    Cycle warmupCycles = 0;  ///< 0 = library default
    Cycle measureCycles = 0; ///< 0 = library default
    /** Dynamic-scheduling extension (paper SSVII): swap the threads
     *  of two random cores every this many cycles (0 = static
     *  binding, the paper's methodology). */
    Cycle migrationIntervalCycles = 0;
    /** Preemption quantum for over-committed cores (schedules with
     *  more VM threads than cores). 0 = resolve from CONSIM_TIMESLICE
     *  env, falling back to Core::kDefaultTimesliceCycles. Ignored
     *  when no core holds more than one thread. */
    Cycle timesliceCycles = 0;
    /** Deterministic fault injection (hardening tests; empty = none). */
    FaultPlan faults;
    /** Per-VM QoS / isolation config (mode off = no QoS, the
     *  default). Echoed in the run.v1 config only when enabled
     *  (envelope byte-stability). */
    QosConfig qos;
    /** Dynamic hypervisor scheduling: an online migration policy
     *  re-evaluated every epoch (policy off = static binding, the
     *  paper's methodology). Echoed in the run.v1 config only when
     *  enabled (envelope byte-stability). */
    DynSchedConfig dynSched;
    /** Forward-progress watchdog check interval. 0 = resolve from
     *  CONSIM_WATCHDOG env, falling back to 1,000,000 cycles;
     *  CONSIM_WATCHDOG=0 disables. */
    Cycle watchdogIntervalCycles = 0;
    /** Per-point simulated-cycle budget: run() raises
     *  SimError(Deadline) past this absolute cycle. 0 = none. */
    Cycle cycleDeadline = 0;
    /** Periodic checkpoint interval: keep a small ring of
     *  `consim.ckpt.v5` snapshots every this many cycles and attach
     *  the most recent one to watchdog/deadline SimErrors. 0 = resolve
     *  from CONSIM_CKPT env, which defaults to off. */
    Cycle ckptEveryCycles = 0;
    /** Worker threads for the tile-parallel event core (results are
     *  byte-identical to serial for any value). 0 = resolve from
     *  CONSIM_RUN_JOBS env, falling back to 1 (serial). Deliberately
     *  NOT part of the run.v1 config echo or the checkpoint context:
     *  it changes how a result is computed, never the result. */
    int runJobs = 0;
};

/** Default warmup window (overridable via env CONSIM_WARMUP). */
Cycle defaultWarmupCycles();

/** Default measurement window (overridable via env CONSIM_MEASURE). */
Cycle defaultMeasureCycles();

/** Default watchdog interval (CONSIM_WATCHDOG env; 0 disables). */
Cycle defaultWatchdogIntervalCycles();

/** Default checkpoint interval (CONSIM_CKPT env; 0 = off, the default). */
Cycle defaultCheckpointIntervalCycles();

/** Default run-jobs count (CONSIM_RUN_JOBS env; falls back to 1). */
int defaultRunJobs();

/** Metrics for one VM instance in one run. */
struct VmResult
{
    WorkloadKind kind = WorkloadKind::TpcW;
    std::uint64_t transactions = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t c2cClean = 0;
    std::uint64_t c2cDirty = 0;
    std::uint64_t distinctBlocks = 0;
    /** Memory reads delayed by QoS token-bucket throttling (0 when
     *  QoS is off; reported in run.v1 only when nonzero). */
    std::uint64_t mcThrottleStalls = 0;

    double cyclesPerTransaction = 0.0;
    double missRate = 0.0;       ///< VM-level LLC miss rate
    double avgMissLatency = 0.0; ///< L1-miss latency (cycles)
    double c2cFraction = 0.0;    ///< of LLC misses
    double c2cDirtyShare = 0.0;  ///< of c2c transfers
    /** cyclesPerTransaction relative to the same workload running
     *  alone on the machine (filled by callers that measure an
     *  isolated baseline, e.g. bench/fig15_isolation; 0 = not
     *  computed; reported in run.v1 only when nonzero). */
    double slowdownVsIsolated = 0.0;
};

/**
 * Metrics for one full run.
 *
 * Multi-seed aggregation semantics (runAveraged / runSweepAveraged /
 * averageRunResults):
 *  - Raw per-VM event counters (transactions, instructions, l1Misses,
 *    l2Accesses, l2Misses, c2cClean, c2cDirty) are SUMMED across
 *    seeds — they stay exact totals over all measured windows.
 *  - Derived per-VM rates/latencies (cyclesPerTransaction, missRate,
 *    avgMissLatency, c2cFraction, c2cDirtyShare) are AVERAGED
 *    (arithmetic mean over seeds).
 *  - netAvgLatency and netPackets are AVERAGED (netPackets rounds to
 *    the nearest integer).
 *  - replication / occupancy snapshots are end-of-run state walks and
 *    are NOT averaged: they are taken verbatim from the first seed's
 *    run (averaging line-count histograms across divergent cache
 *    states has no physical meaning).
 */
struct RunResult
{
    std::vector<VmResult> vms;
    Cycle measuredCycles = 0;
    double netAvgLatency = 0.0;
    std::uint64_t netPackets = 0;
    ReplicationSnapshot replication;
    OccupancySnapshot occupancy;
    /** Thread migrations the dynamic scheduler performed (summed
     *  across seeds; reported in run.v1 only when nonzero). */
    std::uint64_t dynMigrations = 0;
    /** Seed runs folded into this result by averageRunResults (0 = a
     *  single un-averaged run; reported as `seeds_used` in JSON when
     *  nonzero). */
    int seedsUsed = 0;

    /** Mean metric over all instances of @p kind in this run. */
    double meanCyclesPerTxn(WorkloadKind kind) const;
    double meanMissRate(WorkloadKind kind) const;
    double meanMissLatency(WorkloadKind kind) const;
};

/** Run one simulation point. */
RunResult runExperiment(const RunConfig &cfg);

/**
 * Recover the full RunConfig embedded in a `consim.ckpt.v5` document's
 * experiment context, with the env-resolvable knobs (warmup, measure,
 * watchdog, checkpoint interval) restored to their as-configured
 * values — i.e. exactly the config originally passed to runExperiment,
 * suitable for a byte-identical `consim.run.v1` echo. Fatal-asserts
 * when @p ckpt was saved outside the experiment driver (no context).
 */
RunConfig configFromCheckpoint(const json::Value &ckpt);

/**
 * Finish an interrupted run from a `consim.ckpt.v5` document produced
 * by runExperiment's periodic snapshotting: rebuild the System from
 * the embedded config, restore the machine state, and complete the
 * remaining warmup/measurement phases. Yields a RunResult — and hence
 * a `consim.run.v1` report — byte-identical to the uninterrupted run.
 *
 * The fault plan is intentionally NOT re-armed: one-shot faults that
 * already fired are baked into the restored state, and pending wedge
 * events ride in the serialized event queue. The watchdog and the
 * snapshot interval are re-armed from the config; the cycle deadline
 * is not (its budget was consumed by the original attempt, and the
 * restored clock typically sits at or past it — a resume exists to
 * finish the remaining work).
 */
RunResult resumeExperiment(const json::Value &ckpt);

/**
 * Reduce per-seed runs of one config into a single RunResult (see
 * RunResult for the per-field sum/average/first-seed semantics).
 * @p runs must all come from the same config and be non-empty.
 */
RunResult averageRunResults(std::vector<RunResult> runs);

/**
 * Run one point under several seeds and reduce with
 * averageRunResults. Seeds run in parallel on the sweep engine
 * (CONSIM_JOBS threads); results are identical to running them
 * serially.
 */
RunResult runAveraged(RunConfig cfg,
                      const std::vector<std::uint64_t> &seeds);

/**
 * Paper baseline: one workload in isolation on the 16-core chip with
 * the full 16 MB fully-shared LLC (its four threads spread per the
 * default placement).
 */
RunConfig isolationConfig(WorkloadKind kind,
                          SchedPolicy policy = SchedPolicy::Affinity,
                          SharingDegree sharing = SharingDegree::Shared16);

/** A consolidated mix on the standard machine. */
RunConfig mixConfig(const Mix &mix, SchedPolicy policy,
                    SharingDegree sharing = SharingDegree::Shared4);

} // namespace consim

#endif // CONSIM_CORE_EXPERIMENT_HH
