/**
 * @file
 * Virtual machine abstraction: one consolidated workload instance
 * with a private address window, its own thread count (the profile's
 * default, typically four, or a per-VM heterogeneous override), and
 * its own metrics.
 * The paper's methodology (§IV-A) isolates workloads through VMs with
 * disjoint physical memory; consim realizes that with per-VM block
 * address windows, so no data is ever shared across workloads.
 */

#ifndef CONSIM_CORE_VM_HH
#define CONSIM_CORE_VM_HH

#include <cstdint>

#include "core/metrics.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace consim
{

/** A consolidated workload instance. */
class VirtualMachine
{
  public:
    /**
     * @param profile     workload behaviour model
     * @param vm          VM id (selects the address window)
     * @param seed        instance seed
     * @param num_threads thread-count override for heterogeneous
     *                    mixes (0 = the profile's default)
     * @param span_bits   the run's VM-window width (0 = default;
     *                    see requiredVmSpanBits — all VMs of a run
     *                    must agree)
     */
    VirtualMachine(const WorkloadProfile &profile, VmId vm,
                   std::uint64_t seed, int num_threads = 0,
                   int span_bits = 0)
        : instance_(profile, vm, seed, num_threads, span_bits),
          id_(vm), statsGroup_(indexedName("vm", vm))
    {
        stats_.registerIn(statsGroup_);
    }

    /** The VM-window width this VM's streams encode with. */
    int spanBits() const { return instance_.spanBits(); }

    VmId id() const { return id_; }
    const WorkloadProfile &profile() const { return instance_.profile(); }
    WorkloadInstance &instance() { return instance_; }
    int numThreads() const { return instance_.numThreads(); }

    /** Distinct blocks this VM can touch (thread-count aware). */
    std::uint64_t totalBlocks() const { return instance_.totalBlocks(); }

    VmStats &vmStats() { return stats_; }
    const VmStats &vmStats() const { return stats_; }

    /** Registry node ("vmNN") holding this VM's stats; reparented
     *  under "sys" when a System adopts the VM. */
    stats::Group &statsGroup() { return statsGroup_; }

    /** Distinct blocks touched so far (Table II column). */
    std::uint64_t distinctBlocks() const
    {
        return instance_.distinctBlocks();
    }

  private:
    WorkloadInstance instance_;
    VmId id_;
    VmStats stats_;
    stats::Group statsGroup_;
};

} // namespace consim

#endif // CONSIM_CORE_VM_HH
