/**
 * @file
 * Per-VM metrics, matching §V of the paper: single-workload
 * performance (cycles per transaction), VM-level last-level-cache
 * miss rate, and miss latency at the last private level, plus the
 * cache-to-cache transfer breakdown used for Table II.
 */

#ifndef CONSIM_CORE_METRICS_HH
#define CONSIM_CORE_METRICS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace consim
{

/** Statistics attributed to one virtual machine. */
struct VmStats
{
    stats::Counter instructions;
    stats::Counter transactions;
    stats::Counter l1Misses;    ///< misses to the last private level
    stats::Counter l2Accesses;  ///< requests reaching the VM's LLC
    stats::Counter l2Misses;    ///< LLC misses seen by the VM
    stats::Counter c2cClean;    ///< misses served by a clean transfer
    stats::Counter c2cDirty;    ///< misses served by a dirty transfer
    stats::Counter mcThrottleStalls; ///< reads delayed by QoS tokens
    stats::Average missLatency; ///< L1-miss latency (cycles)

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("instructions", &instructions);
        g.add("transactions", &transactions);
        g.add("l1_misses", &l1Misses);
        g.add("l2_accesses", &l2Accesses);
        g.add("l2_misses", &l2Misses);
        g.add("c2c_clean", &c2cClean);
        g.add("c2c_dirty", &c2cDirty);
        g.add("mc_throttle_stalls", &mcThrottleStalls);
        g.add("miss_latency", &missLatency);
    }

    /** VM-level LLC miss rate (misses per LLC access). */
    double
    missRate() const
    {
        const auto acc = l2Accesses.value();
        return acc ? static_cast<double>(l2Misses.value()) /
                         static_cast<double>(acc)
                   : 0.0;
    }

    /** Fraction of LLC misses served by any c2c transfer. */
    double
    c2cFraction() const
    {
        const auto m = l2Misses.value();
        return m ? static_cast<double>(c2cClean.value() +
                                       c2cDirty.value()) /
                       static_cast<double>(m)
                 : 0.0;
    }

    /** Of the c2c transfers, the fraction that carried dirty data. */
    double
    c2cDirtyShare() const
    {
        const auto t = c2cClean.value() + c2cDirty.value();
        return t ? static_cast<double>(c2cDirty.value()) /
                       static_cast<double>(t)
                 : 0.0;
    }

    void
    reset()
    {
        instructions.reset();
        transactions.reset();
        l1Misses.reset();
        l2Accesses.reset();
        l2Misses.reset();
        c2cClean.reset();
        c2cDirty.reset();
        mcThrottleStalls.reset();
        missLatency.reset();
    }
};

} // namespace consim

#endif // CONSIM_CORE_METRICS_HH
