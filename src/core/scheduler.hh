/**
 * @file
 * Hypervisor scheduling policies (paper §III-D): static assignment of
 * workload threads to physical cores, which — because cores share
 * L2 partitions — also assigns threads to shared-N-way caches.
 *
 *  - round-robin: each workload's threads spread across partitions
 *    (load balancing, maximum aggregate capacity, most replication);
 *  - affinity: each workload's threads packed into as few partitions
 *    as possible (maximum sharing, minimum replication);
 *  - aff-rr: round robin of thread *pairs*, so at least two threads
 *    of a workload share each partition;
 *  - random: seeded random placement, modelling the steady state of
 *    an over-committed virtual machine system.
 *
 * On top of the static placement sits the *dynamic* scheduling layer:
 * a MigrationPolicy samples the stats registry at epoch boundaries
 * and proposes at most one thread swap per epoch, which System::run
 * applies at the epoch service point (a migration boundary, the same
 * machinery checkpoints serialize). Every policy is a deterministic
 * pure function of the epoch-delta sample — no RNG — so serial and
 * `--run-jobs` runs decide identically and a checkpoint only needs
 * the epoch baselines to resume byte-identically.
 */

#ifndef CONSIM_CORE_SCHEDULER_HH
#define CONSIM_CORE_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/types.hh"

namespace consim
{

/** One thread-to-core binding. */
struct ThreadPlacement
{
    VmId vm = invalidVm;
    int thread = 0;
    CoreId core = invalidCore;
};

/**
 * Compute static thread placements for a set of VMs.
 *
 * @param cfg             machine (defines groups via sharing degree)
 * @param threads_per_vm  thread count of each VM, by VmId order
 * @param policy          scheduling policy
 * @param seed            used by SchedPolicy::Random only
 * @return one placement per thread. When the total thread count
 *         exceeds the core count the machine is over-committed in
 *         balanced layers: every core receives a first thread before
 *         any receives a second, and cores time-multiplex their
 *         queued contexts (Core::enqueueContext).
 */
std::vector<ThreadPlacement>
scheduleThreads(const MachineConfig &cfg,
                const std::vector<int> &threads_per_vm,
                SchedPolicy policy, std::uint64_t seed);

// ---------------------------------------------------------------- //
// Dynamic (runtime) scheduling.                                     //
// ---------------------------------------------------------------- //

/** Online thread-migration policy. */
enum class DynSchedPolicy
{
    Off,             ///< static placement only (the paper's machine)
    LoadBalance,     ///< equalize per-group aggregate retired load
    AffinityRepair,  ///< re-pack a c2c-heavy VM toward shared groups
    ContentionAware, ///< evict the worst thread from the most-
                     ///< contended L2 group toward the least-contended
};

/** @return the grammar keyword for a policy. */
const char *toString(DynSchedPolicy p);

/**
 * Dynamic-scheduling knobs for one simulation point.
 *
 * Spec grammar (CLI `--dyn-sched` / env `CONSIM_DYN_SCHED` /
 * checkpoint context):
 *   off
 *   load-balance[,epoch=E]
 *   affinity-repair[,epoch=E]
 *   contention-aware[,epoch=E]
 * e.g. "contention-aware,epoch=20000"
 */
struct DynSchedConfig
{
    DynSchedPolicy policy = DynSchedPolicy::Off;
    /** Re-evaluate at absolute multiples of this many cycles. */
    Cycle epochCycles = 100'000;

    bool enabled() const { return policy != DynSchedPolicy::Off; }

    /**
     * Parse the spec grammar. On failure returns false and, when
     * @p err is non-null, stores a human-readable reason that names
     * the valid catalog (same style as QosConfig::parse).
     */
    static bool parse(const std::string &text, DynSchedConfig &out,
                      std::string *err = nullptr);

    /** @return the config in grammar form (round-trips parse). */
    std::string spec() const;

    /** @return JSON object for the run.v1 config echo. */
    json::Value toJson() const;
};

/** One core's epoch-delta view, as sampled at the service point. */
struct DynCoreSample
{
    VmId vm = invalidVm;        ///< bound VM (invalidVm when idle)
    bool eligible = false;      ///< legal swap endpoint (not wedged,
                                ///< not time-multiplexed; mid-miss
                                ///< cores rebind at the fill return)
    bool idle = false;          ///< no stream bound
    std::uint64_t retired = 0;  ///< instructions retired this epoch
};

/** One VM's epoch-delta counters. */
struct DynVmSample
{
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t c2cTransfers = 0; ///< clean + dirty cache-to-cache
};

/** One sharing group's (L2 partition's) epoch-delta counters. */
struct DynGroupSample
{
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
};

/** The full epoch sample a policy decides from. */
struct DynSample
{
    std::vector<DynCoreSample> cores;   ///< by CoreId
    std::vector<DynVmSample> vms;       ///< by VmId
    std::vector<DynGroupSample> groups; ///< by GroupId
};

/** A proposed swap of the threads bound to two cores. */
struct ThreadSwap
{
    CoreId a = invalidCore;
    CoreId b = invalidCore;

    bool decided() const { return a != invalidCore; }
};

/**
 * Interface of the three dynamic policies. decide() must be a pure
 * function of its arguments (deterministic, ties broken toward the
 * lowest id) so that the serial and tile-parallel engines — and a
 * resumed checkpoint — reach identical verdicts from identical
 * samples.
 */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** @return the grammar keyword of the concrete policy. */
    virtual const char *name() const = 0;

    /**
     * Propose at most one swap for this epoch. Only cores with
     * `eligible` set may appear in the result; ThreadSwap{} (not
     * decided) means "placement is fine, do nothing".
     */
    virtual ThreadSwap decide(const MachineConfig &cfg,
                              const DynSample &s) const = 0;
};

/** @return the policy object for @p p (never null; p != Off). */
std::unique_ptr<MigrationPolicy> makeMigrationPolicy(DynSchedPolicy p);

} // namespace consim

#endif // CONSIM_CORE_SCHEDULER_HH
