/**
 * @file
 * Hypervisor scheduling policies (paper §III-D): static assignment of
 * workload threads to physical cores, which — because cores share
 * L2 partitions — also assigns threads to shared-N-way caches.
 *
 *  - round-robin: each workload's threads spread across partitions
 *    (load balancing, maximum aggregate capacity, most replication);
 *  - affinity: each workload's threads packed into as few partitions
 *    as possible (maximum sharing, minimum replication);
 *  - aff-rr: round robin of thread *pairs*, so at least two threads
 *    of a workload share each partition;
 *  - random: seeded random placement, modelling the steady state of
 *    an over-committed virtual machine system.
 */

#ifndef CONSIM_CORE_SCHEDULER_HH
#define CONSIM_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace consim
{

/** One thread-to-core binding. */
struct ThreadPlacement
{
    VmId vm = invalidVm;
    int thread = 0;
    CoreId core = invalidCore;
};

/**
 * Compute static thread placements for a set of VMs.
 *
 * @param cfg             machine (defines groups via sharing degree)
 * @param threads_per_vm  thread count of each VM, by VmId order
 * @param policy          scheduling policy
 * @param seed            used by SchedPolicy::Random only
 * @return one placement per thread. When the total thread count
 *         exceeds the core count the machine is over-committed in
 *         balanced layers: every core receives a first thread before
 *         any receives a second, and cores time-multiplex their
 *         queued contexts (Core::enqueueContext).
 */
std::vector<ThreadPlacement>
scheduleThreads(const MachineConfig &cfg,
                const std::vector<int> &threads_per_vm,
                SchedPolicy policy, std::uint64_t seed);

} // namespace consim

#endif // CONSIM_CORE_SCHEDULER_HH
