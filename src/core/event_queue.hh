/**
 * @file
 * CalendarQueue: the simulator's event core.
 *
 * Nearly every scheduled delay in the machine is a small constant
 * (1-cycle local hop, 3-cycle intra-group message, 6-cycle L2 access,
 * 2-cycle directory hit, 150-cycle DRAM access), so a generic binary
 * heap pays log(n) comparisons and cache misses for events that could
 * be bucketed directly by due cycle. The CalendarQueue keeps a ring
 * of per-cycle buckets covering the next `ringCycles` cycles; an
 * event with delay < ringCycles drops into bucket
 * `(now + delay) % ringCycles` in O(1). Rare longer delays (a backed
 * up memory controller, an oversized config) fall back to a binary
 * min-heap and are merged in seq order when their cycle arrives, so
 * ordering semantics are identical to the old priority queue: events
 * run in (when, seq) order, seq giving FIFO among same-cycle events.
 *
 * Events are typed SimEvents (see fabric.hh): plain data the
 * checkpoint layer can serialize, with an Opaque closure escape hatch
 * for tests and one-off callbacks. runDue() hands each due event to
 * an executor callback (the System's dispatch switch); the
 * executor-less overload runs Opaque closures directly.
 *
 * The ring invariant requires runDue(now) to be called for every
 * cycle in ascending order (the System ticks every cycle, so this is
 * free); schedule() must never be handed a zero delay.
 */

#ifndef CONSIM_CORE_EVENT_QUEUE_HH
#define CONSIM_CORE_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coherence/fabric.hh"
#include "common/event_fn.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Bucket-ring event queue specialized for short constant delays. */
class CalendarQueue
{
  public:
    /** Ring span in cycles; must be a power of two and exceed the
     *  largest common delay (memLatency + margin). */
    static constexpr Cycle ringCycles = 256;

    /** Schedule typed event @p ev to run @p delay cycles after @p now. */
    void
    schedule(Cycle now, Cycle delay, SimEvent ev)
    {
        CONSIM_ASSERT(delay >= 1, "zero-delay events are forbidden");
        insertWithSeq(now, now + delay, seq_++, std::move(ev));
    }

    /** Schedule a bare closure (wrapped as an Opaque event). */
    void
    schedule(Cycle now, Cycle delay, EventFn fn)
    {
        SimEvent ev;
        ev.fn = std::move(fn);
        schedule(now, delay, std::move(ev));
    }

    /**
     * Run every event due at cycle @p now, in seq (FIFO) order,
     * handing each to @p exec. Must be called once per cycle, cycles
     * ascending; events for a cycle that was skipped would otherwise
     * fire `ringCycles` late.
     */
    template <typename Exec>
    void
    runDue(Cycle now, Exec &&exec)
    {
        auto &bucket = ring_[now & mask_];
        std::size_t i = 0;
        // Merge the bucket (already seq-ascending: pushes are
        // chronological and seq is global) with due overflow events.
        while (true) {
            const bool heapDue =
                !overflow_.empty() && overflow_.front().when <= now;
            if (heapDue) {
                CONSIM_ASSERT(overflow_.front().when == now,
                              "event missed its cycle");
            }
            if (i < bucket.size() &&
                (!heapDue ||
                 bucket[i].seq < overflow_.front().seq)) {
                SimEvent ev = std::move(bucket[i].ev);
                ++i;
                --size_;
                ++executed_;
                exec(ev);
            } else if (heapDue) {
                std::pop_heap(overflow_.begin(), overflow_.end(),
                              HeapEvent::later);
                SimEvent ev = std::move(overflow_.back().ev);
                overflow_.pop_back();
                --size_;
                ++executed_;
                exec(ev);
            } else {
                break;
            }
        }
        bucket.clear();
    }

    /** Executor-less runDue: runs Opaque closures (tests). */
    void
    runDue(Cycle now)
    {
        runDue(now, [](SimEvent &ev) {
            CONSIM_ASSERT(ev.kind == SimEventKind::Opaque && ev.fn,
                          "typed event needs an executor");
            ev.fn();
        });
    }

    /** @return number of pending events. */
    std::size_t size() const { return size_; }

    /** @return true when no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Monotonic count of events executed (never reset; the
     *  forward-progress watchdog diffs it across its interval). */
    std::uint64_t executed() const { return executed_; }

    // --- checkpoint support ---

    /**
     * Walk every pending event as (when, seq, event). @p now must be
     * the cycle runDue() would be called for next; the due cycle of
     * ring events is recovered from it (bucket index b holds the
     * unique cycle w in [now, now + ringCycles) with w % ring == b).
     */
    template <typename Fn>
    void
    forEachPending(Cycle now, Fn &&fn) const
    {
        for (Cycle b = 0; b < ringCycles; ++b) {
            const Cycle when = now + ((b - now) & mask_);
            for (const auto &e : ring_[b])
                fn(when, e.seq, e.ev);
        }
        for (const auto &e : overflow_)
            fn(e.when, e.seq, e.ev);
    }

    /**
     * Re-insert a saved event. Events of one due cycle must be
     * restored in ascending seq order (runDue's merge relies on it);
     * restoring the whole set sorted by (when, seq) satisfies that.
     */
    void
    restoreEvent(Cycle now, Cycle when, std::uint64_t seq, SimEvent ev)
    {
        CONSIM_ASSERT(when >= now, "restoring an overdue event");
        insertWithSeq(now, when, seq, std::move(ev));
    }

    /** Event sequence counter (checkpointed for FIFO reproducibility). */
    std::uint64_t seqCounter() const { return seq_; }
    void setSeqCounter(std::uint64_t s) { seq_ = s; }
    void setExecuted(std::uint64_t e) { executed_ = e; }

  private:
    static constexpr Cycle mask_ = ringCycles - 1;
    static_assert((ringCycles & mask_) == 0,
                  "ringCycles must be a power of two");

    /** Ring entry: `when` is implied by the bucket index. */
    struct RingEvent
    {
        std::uint64_t seq;
        SimEvent ev;
    };

    struct HeapEvent
    {
        Cycle when;
        std::uint64_t seq;
        SimEvent ev;

        /** Min-heap comparator ("a due after b"). */
        static bool
        later(const HeapEvent &a, const HeapEvent &b)
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    void
    insertWithSeq(Cycle now, Cycle when, std::uint64_t seq,
                  SimEvent ev)
    {
        if (when - now < ringCycles) {
            ring_[when & mask_].push_back(
                RingEvent{seq, std::move(ev)});
        } else {
            overflow_.push_back(HeapEvent{when, seq, std::move(ev)});
            std::push_heap(overflow_.begin(), overflow_.end(),
                           HeapEvent::later);
        }
        ++size_;
    }

    std::vector<RingEvent> ring_[ringCycles];
    std::vector<HeapEvent> overflow_; ///< min-heap via std heap ops
    std::uint64_t seq_ = 0;
    std::size_t size_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace consim

#endif // CONSIM_CORE_EVENT_QUEUE_HH
