/**
 * @file
 * CalendarQueue: the simulator's event core.
 *
 * Nearly every scheduled delay in the machine is a small constant
 * (1-cycle local hop, 3-cycle intra-group message, 6-cycle L2 access,
 * 2-cycle directory hit, 150-cycle DRAM access), so a generic binary
 * heap pays log(n) comparisons and cache misses for events that could
 * be bucketed directly by due cycle. The CalendarQueue keeps a ring
 * of per-cycle buckets covering the next `ringCycles` cycles; an
 * event with delay < ringCycles drops into bucket
 * `(now + delay) % ringCycles` in O(1). Rare longer delays (a backed
 * up memory controller, an oversized config) fall back to a binary
 * min-heap and are merged back when their cycle arrives.
 *
 * Ordering: events run in (when, src, seq) order — `src`/`seq` are
 * the per-source key carried inside each SimEvent (see fabric.hh).
 * runDue() gathers a cycle's due events into its bucket, sorts them
 * once by key, and dispatches the whole batch in one tight loop, so
 * ordering is a function of the keys alone (not of insertion order)
 * and the dispatch loop amortizes the per-event bookkeeping. Sources
 * with a single global key domain (the standalone `schedule`
 * overloads used by tests) get FIFO semantics among same-cycle
 * events, exactly like the old (when, schedule-order) queue.
 *
 * Events are typed SimEvents (see fabric.hh): plain data the
 * checkpoint layer can serialize, with an Opaque closure escape hatch
 * for tests and one-off callbacks. runDue() hands each due event to
 * an executor callback (the System's dispatch switch); the
 * executor-less overload runs Opaque closures directly.
 *
 * The ring invariant requires runDue(now) to be called for every
 * cycle in ascending order (the System ticks every cycle, so this is
 * free); schedule() must never be handed a zero delay.
 */

#ifndef CONSIM_CORE_EVENT_QUEUE_HH
#define CONSIM_CORE_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "coherence/fabric.hh"
#include "common/event_fn.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Bucket-ring event queue specialized for short constant delays. */
class CalendarQueue
{
  public:
    /** Ring span in cycles; must be a power of two and exceed the
     *  largest common delay (memLatency + margin). */
    static constexpr Cycle ringCycles = 256;

    /**
     * Schedule typed event @p ev (whose src/seq key the caller has
     * already assigned) to run @p delay cycles after @p now.
     */
    void
    scheduleKeyed(Cycle now, Cycle delay, SimEvent ev)
    {
        CONSIM_ASSERT(delay >= 1, "zero-delay events are forbidden");
        insert(now, now + delay, std::move(ev));
    }

    /**
     * Schedule typed event @p ev, keying it from this queue's own
     * auto counter (src stays -1). Standalone use only — a System
     * assigns per-source keys itself and calls scheduleKeyed().
     */
    void
    schedule(Cycle now, Cycle delay, SimEvent ev)
    {
        ev.seq = autoSeq_++;
        scheduleKeyed(now, delay, std::move(ev));
    }

    /** Schedule a bare closure (wrapped as an Opaque event). */
    void
    schedule(Cycle now, Cycle delay, EventFn fn)
    {
        SimEvent ev;
        ev.fn = std::move(fn);
        schedule(now, delay, std::move(ev));
    }

    /**
     * Run every event due at cycle @p now in (src, seq) order,
     * handing each to @p exec. Must be called once per cycle, cycles
     * ascending; events for a cycle that was skipped would otherwise
     * fire `ringCycles` late. Executors may schedule further events
     * (delay >= 1 puts them past this bucket) but must not insert
     * events due at @p now via insertAbs().
     */
    template <typename Exec>
    void
    runDue(Cycle now, Exec &&exec)
    {
        auto &bucket = ring_[now & mask_];
        // Pull due overflow events into the bucket, then one sort
        // puts the whole cycle into canonical key order.
        while (!overflow_.empty() && overflow_.front().when <= now) {
            CONSIM_ASSERT(overflow_.front().when == now,
                          "event missed its cycle");
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          HeapEvent::later);
            bucket.push_back(std::move(overflow_.back().ev));
            overflow_.pop_back();
        }
        if (bucket.size() > 1)
            std::sort(bucket.begin(), bucket.end(), SimEvent::keyLess);
        // Batched dispatch: size_/executed_ are updated once and the
        // loop body is just the (inlined) executor call.
        size_ -= bucket.size();
        executed_ += bucket.size();
        for (auto &e : bucket)
            exec(e);
        bucket.clear();
    }

    /** Executor-less runDue: runs Opaque closures (tests). */
    void
    runDue(Cycle now)
    {
        runDue(now, [](SimEvent &ev) {
            CONSIM_ASSERT(ev.kind == SimEventKind::Opaque && ev.fn,
                          "typed event needs an executor");
            ev.fn();
        });
    }

    /** @return number of pending events. */
    std::size_t size() const { return size_; }

    /** @return true when no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Monotonic count of events executed (never reset; the
     *  forward-progress watchdog diffs it across its interval). */
    std::uint64_t executed() const { return executed_; }

    // --- checkpoint / scatter-gather support ---

    /**
     * Walk every pending event as (when, event). @p now must be the
     * cycle runDue() would be called for next; the due cycle of ring
     * events is recovered from it (bucket index b holds the unique
     * cycle w in [now, now + ringCycles) with w % ring == b).
     */
    template <typename Fn>
    void
    forEachPending(Cycle now, Fn &&fn) const
    {
        for (Cycle b = 0; b < ringCycles; ++b) {
            const Cycle when = now + ((b - now) & mask_);
            for (const auto &e : ring_[b])
                fn(when, e);
        }
        for (const auto &e : overflow_)
            fn(e.when, e.ev);
    }

    /**
     * Move every pending event out as (when, event&&), leaving the
     * queue empty (executed() is preserved). Same @p now contract as
     * forEachPending().
     */
    template <typename Fn>
    void
    drainPending(Cycle now, Fn &&fn)
    {
        for (Cycle b = 0; b < ringCycles; ++b) {
            const Cycle when = now + ((b - now) & mask_);
            for (auto &e : ring_[b])
                fn(when, std::move(e));
            ring_[b].clear();
        }
        for (auto &e : overflow_)
            fn(e.when, std::move(e.ev));
        overflow_.clear();
        size_ = 0;
    }

    /**
     * Insert an event due at an absolute cycle (>= @p now), its key
     * already assigned: checkpoint restore and the parallel engine's
     * scatter/merge. Any insertion order works — runDue() sorts.
     */
    void
    insertAbs(Cycle now, Cycle when, SimEvent ev)
    {
        CONSIM_ASSERT(when >= now, "restoring an overdue event");
        insert(now, when, std::move(ev));
    }

    void setExecuted(std::uint64_t e) { executed_ = e; }

    /**
     * Pre-size every ring bucket to @p per_bucket events (and give
     * the overflow heap a little slack). Buckets grow on demand
     * anyway; reserving from the machine config just moves the
     * growth out of the measurement window so warmed-up steady state
     * stays allocation-free.
     */
    void
    reserveBuckets(std::size_t per_bucket)
    {
        for (auto &b : ring_)
            b.reserve(per_bucket);
        overflow_.reserve(64);
    }

  private:
    static constexpr Cycle mask_ = ringCycles - 1;
    static_assert((ringCycles & mask_) == 0,
                  "ringCycles must be a power of two");

    struct HeapEvent
    {
        Cycle when;
        SimEvent ev;

        /** Min-heap comparator ("a due after b"). */
        static bool
        later(const HeapEvent &a, const HeapEvent &b)
        {
            if (a.when != b.when)
                return a.when > b.when;
            return SimEvent::keyLess(b.ev, a.ev);
        }
    };

    void
    insert(Cycle now, Cycle when, SimEvent ev)
    {
        if (when - now < ringCycles) {
            ring_[when & mask_].push_back(std::move(ev));
        } else {
            overflow_.push_back(HeapEvent{when, std::move(ev)});
            std::push_heap(overflow_.begin(), overflow_.end(),
                           HeapEvent::later);
        }
        ++size_;
    }

    std::vector<SimEvent> ring_[ringCycles];
    std::vector<HeapEvent> overflow_; ///< min-heap via std heap ops
    std::uint64_t autoSeq_ = 0; ///< key domain for standalone use
    std::size_t size_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace consim

#endif // CONSIM_CORE_EVENT_QUEUE_HH
