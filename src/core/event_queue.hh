/**
 * @file
 * CalendarQueue: the simulator's event core.
 *
 * Nearly every scheduled delay in the machine is a small constant
 * (1-cycle local hop, 3-cycle intra-group message, 6-cycle L2 access,
 * 2-cycle directory hit, 150-cycle DRAM access), so a generic binary
 * heap pays log(n) comparisons and cache misses for events that could
 * be bucketed directly by due cycle. The CalendarQueue keeps a ring
 * of per-cycle buckets covering the next `ringCycles` cycles; an
 * event with delay < ringCycles drops into bucket
 * `(now + delay) % ringCycles` in O(1). Rare longer delays (a backed
 * up memory controller, an oversized config) fall back to a binary
 * min-heap and are merged in seq order when their cycle arrives, so
 * ordering semantics are identical to the old priority queue: events
 * run in (when, seq) order, seq giving FIFO among same-cycle events.
 *
 * The ring invariant requires runDue(now) to be called for every
 * cycle in ascending order (the System ticks every cycle, so this is
 * free); schedule() must never be handed a zero delay.
 */

#ifndef CONSIM_CORE_EVENT_QUEUE_HH
#define CONSIM_CORE_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/event_fn.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Bucket-ring event queue specialized for short constant delays. */
class CalendarQueue
{
  public:
    /** Ring span in cycles; must be a power of two and exceed the
     *  largest common delay (memLatency + margin). */
    static constexpr Cycle ringCycles = 256;

    /** Schedule @p fn to run @p delay cycles after @p now. */
    void
    schedule(Cycle now, Cycle delay, EventFn fn)
    {
        CONSIM_ASSERT(delay >= 1, "zero-delay events are forbidden");
        const Cycle when = now + delay;
        if (delay < ringCycles) {
            ring_[when & mask_].push_back(
                RingEvent{seq_++, std::move(fn)});
        } else {
            overflow_.push(HeapEvent{when, seq_++, std::move(fn)});
        }
        ++size_;
    }

    /**
     * Run every event due at cycle @p now, in seq (FIFO) order.
     * Must be called once per cycle, cycles ascending; events for a
     * cycle that was skipped would otherwise fire `ringCycles` late.
     */
    void
    runDue(Cycle now)
    {
        auto &bucket = ring_[now & mask_];
        std::size_t i = 0;
        // Merge the bucket (already seq-ascending: pushes are
        // chronological and seq is global) with due overflow events.
        while (true) {
            const bool heapDue =
                !overflow_.empty() && overflow_.top().when <= now;
            if (heapDue) {
                CONSIM_ASSERT(overflow_.top().when == now,
                              "event missed its cycle");
            }
            if (i < bucket.size() &&
                (!heapDue ||
                 bucket[i].seq < overflow_.top().seq)) {
                EventFn fn = std::move(bucket[i].fn);
                ++i;
                --size_;
                ++executed_;
                fn();
            } else if (heapDue) {
                EventFn fn = std::move(
                    const_cast<HeapEvent &>(overflow_.top()).fn);
                overflow_.pop();
                --size_;
                ++executed_;
                fn();
            } else {
                break;
            }
        }
        bucket.clear();
    }

    /** @return number of pending events. */
    std::size_t size() const { return size_; }

    /** @return true when no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Monotonic count of events executed (never reset; the
     *  forward-progress watchdog diffs it across its interval). */
    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr Cycle mask_ = ringCycles - 1;
    static_assert((ringCycles & mask_) == 0,
                  "ringCycles must be a power of two");

    /** Ring entry: `when` is implied by the bucket index. */
    struct RingEvent
    {
        std::uint64_t seq;
        EventFn fn;
    };

    struct HeapEvent
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
        bool operator>(const HeapEvent &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::vector<RingEvent> ring_[ringCycles];
    std::priority_queue<HeapEvent, std::vector<HeapEvent>,
                        std::greater<HeapEvent>>
        overflow_;
    std::uint64_t seq_ = 0;
    std::size_t size_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace consim

#endif // CONSIM_CORE_EVENT_QUEUE_HH
