/**
 * @file
 * Reporting helpers for the benchmark harness: cached isolation
 * baselines (every figure normalizes to a workload's isolated run),
 * uniform normalized-table printing, and the shared JSON result
 * format (schema-versioned, config echo + registry-derived metrics)
 * that every bench and consim_run emit behind --json / CONSIM_JSON.
 */

#ifndef CONSIM_CORE_REPORT_HH
#define CONSIM_CORE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/experiment.hh"

namespace consim
{

/** Isolation reference numbers for one workload/policy/sharing. */
struct Baseline
{
    double cyclesPerTxn = 0.0;
    double missRate = 0.0;
    double missLatency = 0.0;
};

/**
 * Compute (and memoize per process) a workload's isolation baseline
 * under a given policy and sharing degree, averaged over @p seeds.
 */
const Baseline &isolationBaseline(
    WorkloadKind kind, SchedPolicy policy, SharingDegree sharing,
    const std::vector<std::uint64_t> &seeds);

/** One isolation baseline a bench will need. */
struct BaselineRequest
{
    WorkloadKind kind;
    SchedPolicy policy;
    SharingDegree sharing;
};

/**
 * Compute all not-yet-cached baselines in @p wants with one parallel
 * sweep and populate the isolationBaseline memo, so later
 * isolationBaseline calls are cache hits. Call from the main thread
 * only (the memo is not locked).
 */
void prewarmIsolationBaselines(
    const std::vector<BaselineRequest> &wants,
    const std::vector<std::uint64_t> &seeds);

/** @return the standard seed set used by the bench harness. */
const std::vector<std::uint64_t> &benchSeeds();

/** Print a titled section header for bench output. */
void printHeader(std::ostream &os, const std::string &title,
                 const std::string &paper_ref,
                 const std::string &expectation);

// --- structured (JSON) results ------------------------------------
//
// One shared format for every front end. Schemas:
//   consim.run.v1   {schema, config, result}        (one point)
//   consim.sweep.v1 {schema, points: [run.v1...]}   (a sweep)
//   consim.bench.v1 {schema, id, title, points}     (a figure bench)
// All numbers are written with shortest-round-trip formatting, so
// bit-identical results produce byte-identical documents.

/** Config echo: the machine knobs that define a simulation point. */
json::Value toJson(const MachineConfig &m);

/** Full point definition: machine + workloads + policy + windows. */
json::Value toJson(const RunConfig &cfg);

/** Per-VM metrics (registry-derived; see VmResult). */
json::Value toJson(const VmResult &v);

/** Whole-run metrics, including replication/occupancy snapshots. */
json::Value toJson(const RunResult &r);

/** Schema-versioned envelope for one run: config echo + result. */
json::Value runResultJson(const RunConfig &cfg, const RunResult &r);

/** Dump a stats subtree as "full.dotted.name value" text lines. */
void dumpStats(std::ostream &os, const stats::Group &root);

/**
 * Accumulates a bench's data points and writes one consim.bench.v1
 * document on destruction-free explicit write(). Disabled (all calls
 * no-ops) when the resolved path is empty, so benches can call it
 * unconditionally.
 */
class JsonReport
{
  public:
    /**
     * Resolve the output path: `--json <path>` from argv wins,
     * otherwise the CONSIM_JSON environment variable, otherwise ""
     * (disabled).
     */
    static std::string pathFromArgs(int argc, char **argv);

    /** @param id machine-readable bench id, e.g. "fig2" */
    JsonReport(std::string id, std::string title, std::string path);

    bool enabled() const { return !path_.empty(); }

    /** Set an extra top-level field on the document. */
    void set(const std::string &key, json::Value v);

    /** Append one data point (typically runResultJson + labels). */
    void point(json::Value v);

    /** Write the document to the path; fatal on I/O failure. */
    void write() const;

  private:
    std::string path_;
    json::Value doc_;
};

} // namespace consim

#endif // CONSIM_CORE_REPORT_HH
