/**
 * @file
 * Reporting helpers for the benchmark harness: cached isolation
 * baselines (every figure normalizes to a workload's isolated run)
 * and uniform normalized-table printing.
 */

#ifndef CONSIM_CORE_REPORT_HH
#define CONSIM_CORE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace consim
{

/** Isolation reference numbers for one workload/policy/sharing. */
struct Baseline
{
    double cyclesPerTxn = 0.0;
    double missRate = 0.0;
    double missLatency = 0.0;
};

/**
 * Compute (and memoize per process) a workload's isolation baseline
 * under a given policy and sharing degree, averaged over @p seeds.
 */
const Baseline &isolationBaseline(
    WorkloadKind kind, SchedPolicy policy, SharingDegree sharing,
    const std::vector<std::uint64_t> &seeds);

/** One isolation baseline a bench will need. */
struct BaselineRequest
{
    WorkloadKind kind;
    SchedPolicy policy;
    SharingDegree sharing;
};

/**
 * Compute all not-yet-cached baselines in @p wants with one parallel
 * sweep and populate the isolationBaseline memo, so later
 * isolationBaseline calls are cache hits. Call from the main thread
 * only (the memo is not locked).
 */
void prewarmIsolationBaselines(
    const std::vector<BaselineRequest> &wants,
    const std::vector<std::uint64_t> &seeds);

/** @return the standard seed set used by the bench harness. */
const std::vector<std::uint64_t> &benchSeeds();

/** Print a titled section header for bench output. */
void printHeader(std::ostream &os, const std::string &title,
                 const std::string &paper_ref,
                 const std::string &expectation);

} // namespace consim

#endif // CONSIM_CORE_REPORT_HH
