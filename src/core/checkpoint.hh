/**
 * @file
 * Checkpoint/resume (`consim.ckpt.v5`): serialization of the complete
 * deterministic machine state.
 *
 * A checkpoint captures everything the next cycle's behaviour depends
 * on — the clock, the event queue (typed events only; see fabric.hh),
 * every cache array slot-index-exact (victim() choices depend on slot
 * order and LRU stamps), the bank/directory transaction tables, the
 * NoC's VC queues, credits and in-flight transmissions, the
 * memory-controller channels, workload RNG streams and hot-window
 * positions, fault-injection runtime state, thread-to-core bindings,
 * and the raw statistics registry. Restoring it into a freshly
 * constructed System built from the same configuration reproduces the
 * uninterrupted run byte for byte, including the final
 * `consim.run.v1` JSON.
 *
 * Document layout:
 *
 *   {
 *     "schema":  "consim.ckpt.v5",
 *     "context": { ... },   // experiment-layer context, verbatim
 *                           // (run config echo, phase, migration RNG)
 *     "machine": { cycle, events, cores, l1s, banks, dirs, mcs,
 *                  dir_entries, net, faults, stats },
 *     "vms":     [ { streams, footprint }, ... ]
 *   }
 *
 * The machine section stores no configuration: structural parameters
 * (cache geometry, mesh shape, placements) are re-derived by
 * constructing the System from the same config, and restore asserts
 * shape agreement where it is cheap to do so. The experiment layer
 * embeds the full run configuration in "context" so a resume can
 * rebuild that System without out-of-band information.
 *
 * Entry points are System::saveCheckpoint / System::restoreCheckpoint
 * (core/system.hh); this header only exposes the protocol-message
 * codec, which tests reuse.
 */

#ifndef CONSIM_CORE_CHECKPOINT_HH
#define CONSIM_CORE_CHECKPOINT_HH

#include "coherence/protocol.hh"
#include "common/json.hh"

namespace consim
{

/** Serialize a protocol message as a fixed-position JSON array. */
json::Value msgToJson(const Msg &m);

/** Inverse of msgToJson. */
Msg msgFromJson(const json::Value &v);

} // namespace consim

#endif // CONSIM_CORE_CHECKPOINT_HH
