/**
 * @file
 * `consim.ckpt.v5` serializer: System::saveCheckpoint /
 * System::restoreCheckpoint plus the protocol-message codec. See
 * checkpoint.hh for the document layout and the byte-identity
 * contract. (v2 replaced the single event sequence counter with the
 * per-source counters and per-event (src, seq) keys the parallel
 * engine's deterministic merge is built on.)
 *
 * All component access goes through CkptAccess, the single friend
 * every stateful class declares. Conventions:
 *
 *  - unsigned 64-bit quantities (cycles, tags, LRU stamps, RNG words,
 *    seq numbers) are written as Uint and read back with asUint(),
 *    which is exact; possibly-negative small integers (core ids,
 *    owners) are written as Int and read through number();
 *  - unordered_map contents are written sorted by block key so the
 *    same machine state always produces the same text;
 *  - cache arrays are restored slot-index-exact: victim() picks the
 *    first invalid slot in set order (else the lowest lruStamp), so
 *    which slot holds which line is architecturally visible.
 */

#include "core/checkpoint.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cache/cache_array.hh"
#include "coherence/directory.hh"
#include "coherence/l1_controller.hh"
#include "coherence/l2_bank.hh"
#include "coherence/memory_controller.hh"
#include "common/check.hh"
#include "core/system.hh"
#include "core/vm.hh"
#include "noc/mesh.hh"
#include "noc/network.hh"
#include "workload/generator.hh"

namespace consim
{

namespace
{

using json::Value;

/** @return required member of a checkpoint object. */
const Value &
get(const Value &obj, std::string_view key)
{
    const Value *p = obj.find(key);
    CONSIM_ASSERT(p != nullptr, "checkpoint: missing field \"",
                  std::string(key), "\"");
    return *p;
}

/** @return a (possibly negative) integral field. */
std::int64_t
asInt(const Value &v)
{
    return static_cast<std::int64_t>(v.number());
}

/** @return a block map's keys in ascending order. */
template <typename V>
std::vector<BlockAddr>
sortedKeys(const BlockMap<V> &m)
{
    std::vector<BlockAddr> keys = m.keys();
    std::sort(keys.begin(), keys.end());
    return keys;
}

Value
cyclesJson(Cycle c)
{
    return Value(static_cast<std::uint64_t>(c));
}

/** Sharer/presence sets serialize as trimmed little-endian word
 *  arrays, so the document layout is independent of machine width. */
Value
coreSetJson(const CoreSet &s)
{
    Value v = Value::array();
    for (const std::uint64_t w : s.words())
        v.push(w);
    return v;
}

CoreSet
coreSetFromJson(const Value &v)
{
    std::vector<std::uint64_t> words;
    words.reserve(v.size());
    for (const Value &w : v.items())
        words.push_back(w.asUint());
    return CoreSet::fromWords(words);
}

} // namespace

json::Value
msgToJson(const Msg &m)
{
    Value v = Value::array();
    v.push(static_cast<int>(m.type));
    v.push(static_cast<std::uint64_t>(m.block));
    v.push(m.srcTile);
    v.push(m.dstTile);
    v.push(static_cast<int>(m.srcUnit));
    v.push(static_cast<int>(m.dstUnit));
    v.push(m.reqCore);
    v.push(m.reqBankTile);
    v.push(m.reqGroup);
    v.push(m.vm);
    v.push(m.isWrite);
    v.push(m.dirtyData);
    v.push(m.noDataNeeded);
    v.push(m.c2cTransfer);
    v.push(m.stale);
    v.push(m.toInvalid);
    v.push(m.overlappedFetch);
    v.push(static_cast<int>(m.grantState));
    v.push(static_cast<int>(m.ackCount));
    v.push(static_cast<std::uint64_t>(m.injectCycle));
    return v;
}

Msg
msgFromJson(const json::Value &v)
{
    CONSIM_ASSERT(v.size() == 20, "checkpoint: bad message record");
    Msg m;
    m.type = static_cast<MsgType>(asInt(v.at(0)));
    m.block = v.at(1).asUint();
    m.srcTile = static_cast<CoreId>(asInt(v.at(2)));
    m.dstTile = static_cast<CoreId>(asInt(v.at(3)));
    m.srcUnit = static_cast<Unit>(asInt(v.at(4)));
    m.dstUnit = static_cast<Unit>(asInt(v.at(5)));
    m.reqCore = static_cast<CoreId>(asInt(v.at(6)));
    m.reqBankTile = static_cast<CoreId>(asInt(v.at(7)));
    m.reqGroup = static_cast<GroupId>(asInt(v.at(8)));
    m.vm = static_cast<VmId>(asInt(v.at(9)));
    m.isWrite = v.at(10).boolean();
    m.dirtyData = v.at(11).boolean();
    m.noDataNeeded = v.at(12).boolean();
    m.c2cTransfer = v.at(13).boolean();
    m.stale = v.at(14).boolean();
    m.toInvalid = v.at(15).boolean();
    m.overlappedFetch = v.at(16).boolean();
    m.grantState = static_cast<L2State>(asInt(v.at(17)));
    m.ackCount = static_cast<std::int16_t>(asInt(v.at(18)));
    m.injectCycle = v.at(19).asUint();
    return m;
}

/**
 * The one class every stateful component befriends. Static helpers
 * only; each saveX returns the JSON for one component, each loadX
 * restores it into a freshly constructed counterpart.
 */
struct CkptAccess
{
    // --- cache arrays (slot-index-exact) ---

    template <typename LineT, typename SaveExtra>
    static Value
    saveArray(const CacheArray<LineT> &a, SaveExtra &&extra)
    {
        Value lines = Value::array();
        for (std::size_t i = 0; i < a.lines_.size(); ++i) {
            const LineT &l = a.lines_[i];
            if (!l.valid)
                continue;
            Value rec = Value::array();
            rec.push(static_cast<std::uint64_t>(i));
            rec.push(static_cast<std::uint64_t>(l.tag));
            rec.push(l.lruStamp);
            extra(l, rec);
            lines.push(std::move(rec));
        }
        Value v = Value::object();
        v.set("num_lines", static_cast<std::uint64_t>(a.lines_.size()));
        v.set("stamp", a.stamp_);
        v.set("lines", std::move(lines));
        return v;
    }

    template <typename LineT, typename LoadExtra>
    static void
    loadArray(CacheArray<LineT> &a, const Value &v, LoadExtra &&extra)
    {
        CONSIM_ASSERT(get(v, "num_lines").asUint() == a.lines_.size(),
                      "checkpoint: cache geometry mismatch");
        a.stamp_ = get(v, "stamp").asUint();
        std::fill(a.lines_.begin(), a.lines_.end(), LineT{});
        for (const Value &rec : get(v, "lines").items()) {
            const std::size_t i = rec.at(0).asUint();
            CONSIM_ASSERT(i < a.lines_.size(),
                          "checkpoint: line slot out of range");
            LineT &l = a.lines_[i];
            l.tag = rec.at(1).asUint();
            l.valid = true;
            l.lruStamp = rec.at(2).asUint();
            extra(l, rec);
        }
        // lines_ was written directly; re-derive the SoA mirrors that
        // lookup()/victim() actually scan.
        a.rebuildIndex();
    }

    static Value
    savePrivArray(const CacheArray<PrivateCacheLine> &a)
    {
        return saveArray(a, [](const PrivateCacheLine &l, Value &rec) {
            rec.push(static_cast<int>(l.state));
        });
    }

    static void
    loadPrivArray(CacheArray<PrivateCacheLine> &a, const Value &v)
    {
        loadArray(a, v, [](PrivateCacheLine &l, const Value &rec) {
            l.state = static_cast<L1State>(asInt(rec.at(3)));
        });
    }

    // --- event queue ---

    static Value
    saveEvents(const System &s)
    {
        struct Rec
        {
            Cycle when;
            const SimEvent *ev;
        };
        std::vector<Rec> recs;
        s.events_.forEachPending(
            s.now_, [&](Cycle when, const SimEvent &ev) {
                if (ev.kind == SimEventKind::Opaque)
                    throw SimError(
                        SimErrorKind::Invariant,
                        "cannot checkpoint: opaque event pending "
                        "(scheduled via the closure escape hatch)");
                recs.push_back(Rec{when, &ev});
            });
        // Canonical (when, src, seq) order: the same machine state
        // always serializes to the same text.
        std::sort(recs.begin(), recs.end(),
                  [](const Rec &a, const Rec &b) {
                      return a.when != b.when
                                 ? a.when < b.when
                                 : SimEvent::keyLess(*a.ev, *b.ev);
                  });
        Value pending = Value::array();
        for (const Rec &r : recs) {
            Value rec = Value::array();
            rec.push(cyclesJson(r.when));
            rec.push(r.ev->src);
            rec.push(r.ev->seq);
            rec.push(static_cast<int>(r.ev->kind));
            rec.push(r.ev->tile);
            rec.push(static_cast<std::uint64_t>(r.ev->block));
            if (r.ev->kind == SimEventKind::Deliver ||
                r.ev->kind == SimEventKind::MemDone ||
                r.ev->kind == SimEventKind::NetDeliver)
                rec.push(msgToJson(r.ev->msg));
            pending.push(std::move(rec));
        }
        Value seqs = Value::array();
        for (std::uint64_t c : s.seqBySrc_)
            seqs.push(c);
        Value v = Value::object();
        v.set("seq_by_src", std::move(seqs));
        v.set("executed", s.events_.executed());
        v.set("pending", std::move(pending));
        return v;
    }

    static void
    loadEvents(System &s, const Value &v)
    {
        const Value &seqs = get(v, "seq_by_src");
        CONSIM_ASSERT(seqs.size() == s.seqBySrc_.size(),
                      "checkpoint: sequence-counter count mismatch");
        for (std::size_t i = 0; i < s.seqBySrc_.size(); ++i)
            s.seqBySrc_[i] = seqs.at(i).asUint();
        s.events_.setExecuted(get(v, "executed").asUint());
        for (const Value &rec : get(v, "pending").items()) {
            SimEvent ev;
            ev.src = static_cast<std::int32_t>(asInt(rec.at(1)));
            ev.seq = rec.at(2).asUint();
            ev.kind = static_cast<SimEventKind>(asInt(rec.at(3)));
            ev.tile = static_cast<CoreId>(asInt(rec.at(4)));
            ev.block = rec.at(5).asUint();
            if (rec.size() > 6)
                ev.msg = msgFromJson(rec.at(6));
            s.events_.insertAbs(s.now_, rec.at(0).asUint(),
                                std::move(ev));
        }
    }

    // --- cores ---

    /** Recover a thread index from a stream pointer; the binding is
     *  restored by index into the same VM set. */
    static int
    threadIndexOf(const System &s, VmId vm, const InstrStream *stream,
                  CoreId tile)
    {
        WorkloadInstance &inst = s.vms_.at(vm)->instance();
        for (int i = 0; i < inst.numThreads(); ++i)
            if (&inst.thread(i) == stream)
                return i;
        CONSIM_CHECK_FAIL("checkpoint: unbindable stream on core ",
                          tile);
        return -1;
    }

    static Value
    saveCore(const System &s, const Core &c)
    {
        Value v = Value::object();
        if (c.stream_ != nullptr) {
            v.set("vm", c.vm_);
            v.set("thread",
                  threadIndexOf(s, c.vm_, c.stream_, c.tile_));
        } else {
            v.set("vm", -1);
            v.set("thread", -1);
        }
        v.set("blocked", c.blocked_);
        v.set("wedged", c.wedged_);
        v.set("retired", c.retiredTotal_);
        v.set("have_slice", c.haveSlice_);
        Value sl = Value::array();
        sl.push(static_cast<unsigned>(c.slice_.computeCycles));
        sl.push(static_cast<std::uint64_t>(c.slice_.block));
        sl.push(c.slice_.isWrite);
        sl.push(c.slice_.endsTransaction);
        sl.push(c.slice_.noMemRef);
        v.set("slice", std::move(sl));
        v.set("busy_until", cyclesJson(c.busyUntil_));
        v.set("block_start", cyclesJson(c.blockStart_));
        // Parked dynamic-scheduling migration (absent unless a swap
        // was decided while this core was mid-miss): the deferred
        // target binding, serialized like the live one.
        if (c.rebindPending_) {
            if (c.rebindStream_ != nullptr) {
                v.set("rebind_vm", c.rebindVm_);
                v.set("rebind_thread",
                      threadIndexOf(s, c.rebindVm_, c.rebindStream_,
                                    c.tile_));
            } else {
                v.set("rebind_vm", -1);
                v.set("rebind_thread", -1);
            }
        }
        // Over-commit rotation state; the run-queue contents are
        // rebuilt from the placements by the System constructor, so
        // only the position and next boundary need saving.
        if (c.contexts_.size() > 1) {
            v.set("ctx_pos",
                  static_cast<std::uint64_t>(c.ctxPos_));
            v.set("next_slice", cyclesJson(c.nextSlice_));
        }
        return v;
    }

    static void
    loadCore(System &s, Core &c, const Value &v)
    {
        // Direct field writes: bindThread() would reset the in-flight
        // slice and blocked state we are about to restore.
        const auto vm = static_cast<VmId>(asInt(get(v, "vm")));
        if (vm >= 0) {
            const int thread =
                static_cast<int>(asInt(get(v, "thread")));
            c.stream_ = &s.vms_.at(vm)->instance().thread(thread);
            c.vm_ = vm;
        } else {
            c.stream_ = nullptr;
            c.vm_ = invalidVm;
        }
        c.blocked_ = get(v, "blocked").boolean();
        c.wedged_ = get(v, "wedged").boolean();
        c.retiredTotal_ = get(v, "retired").asUint();
        c.haveSlice_ = get(v, "have_slice").boolean();
        const Value &sl = get(v, "slice");
        c.slice_.computeCycles =
            static_cast<std::uint32_t>(sl.at(0).asUint());
        c.slice_.block = sl.at(1).asUint();
        c.slice_.isWrite = sl.at(2).boolean();
        c.slice_.endsTransaction = sl.at(3).boolean();
        c.slice_.noMemRef = sl.at(4).boolean();
        c.busyUntil_ = get(v, "busy_until").asUint();
        c.blockStart_ = get(v, "block_start").asUint();
        if (const Value *rv = v.find("rebind_vm")) {
            c.rebindPending_ = true;
            const auto rvm = static_cast<VmId>(asInt(*rv));
            if (rvm >= 0) {
                const int th = static_cast<int>(
                    asInt(get(v, "rebind_thread")));
                c.rebindStream_ =
                    &s.vms_.at(rvm)->instance().thread(th);
                c.rebindVm_ = rvm;
            } else {
                c.rebindStream_ = nullptr;
                c.rebindVm_ = invalidVm;
            }
        }
        // Optional (absent on single-context cores and in snapshots
        // from before over-commit existed).
        if (const Value *cp = v.find("ctx_pos")) {
            CONSIM_ASSERT(c.contexts_.size() > 1,
                          "checkpoint: rotation state for core ",
                          c.tile_, " which is not over-committed");
            const auto pos = static_cast<std::size_t>(cp->asUint());
            CONSIM_ASSERT(pos < c.contexts_.size(),
                          "checkpoint: ctx_pos ", pos, " out of range");
            c.ctxPos_ = pos;
            c.nextSlice_ = get(v, "next_slice").asUint();
        }
    }

    // --- L1 controllers ---

    static Value
    saveL1(const L1Controller &l)
    {
        Value p = Value::array();
        p.push(l.pending_.active);
        p.push(static_cast<std::uint64_t>(l.pending_.block));
        p.push(l.pending_.isWrite);
        p.push(cyclesJson(l.pending_.start));
        Value v = Value::object();
        v.set("l0", savePrivArray(l.l0_));
        v.set("l1", savePrivArray(l.l1_));
        v.set("pending", std::move(p));
        return v;
    }

    static void
    loadL1(L1Controller &l, const Value &v)
    {
        loadPrivArray(l.l0_, get(v, "l0"));
        loadPrivArray(l.l1_, get(v, "l1"));
        const Value &p = get(v, "pending");
        l.pending_.active = p.at(0).boolean();
        l.pending_.block = p.at(1).asUint();
        l.pending_.isWrite = p.at(2).boolean();
        l.pending_.start = p.at(3).asUint();
    }

    // --- L2 banks ---

    static Value
    saveL2Array(const CacheArray<L2CacheLine> &a)
    {
        return saveArray(a, [](const L2CacheLine &l, Value &rec) {
            rec.push(static_cast<int>(l.state));
            rec.push(l.dirty);
            rec.push(l.pinned);
            rec.push(coreSetJson(l.presence));
            rec.push(static_cast<int>(l.ownerCore));
            rec.push(l.vm);
        });
    }

    static void
    loadL2Array(CacheArray<L2CacheLine> &a, const Value &v)
    {
        loadArray(a, v, [](L2CacheLine &l, const Value &rec) {
            l.state = static_cast<L2State>(asInt(rec.at(3)));
            l.dirty = rec.at(4).boolean();
            l.pinned = rec.at(5).boolean();
            l.presence = coreSetFromJson(rec.at(6));
            l.ownerCore = static_cast<std::int16_t>(asInt(rec.at(7)));
            l.vm = static_cast<VmId>(asInt(rec.at(8)));
        });
    }

    static Value
    saveBankTxn(const L2Bank::BankTxn &t)
    {
        Value v = Value::object();
        v.set("phase", static_cast<int>(t.phase));
        v.set("req", msgToJson(t.req));
        v.set("started", cyclesJson(t.started));
        v.set("data_arrived", t.dataArrived);
        v.set("grant_arrived", t.grantArrived);
        v.set("data_msg", msgToJson(t.dataMsg));
        v.set("grant_msg", msgToJson(t.grantMsg));
        v.set("victim", static_cast<std::uint64_t>(t.victimBlock));
        v.set("expect_putm", t.expectPutM);
        v.set("extract", t.extractTarget);
        return v;
    }

    static L2Bank::BankTxn
    loadBankTxn(const Value &v)
    {
        L2Bank::BankTxn t;
        t.phase = static_cast<L2Bank::Phase>(asInt(get(v, "phase")));
        t.req = msgFromJson(get(v, "req"));
        t.started = get(v, "started").asUint();
        t.dataArrived = get(v, "data_arrived").boolean();
        t.grantArrived = get(v, "grant_arrived").boolean();
        t.dataMsg = msgFromJson(get(v, "data_msg"));
        t.grantMsg = msgFromJson(get(v, "grant_msg"));
        t.victimBlock = get(v, "victim").asUint();
        t.expectPutM = get(v, "expect_putm").boolean();
        t.extractTarget =
            static_cast<CoreId>(asInt(get(v, "extract")));
        return t;
    }

    /** Serialize the per-block waiting queues (sorted by block).
     *  Empty queues cannot exist (popFront drops emptied keys). */
    static Value
    saveMsgQueues(const WaitQueueMap<Msg> &m)
    {
        Value v = Value::array();
        std::vector<BlockAddr> keys = m.keys();
        std::sort(keys.begin(), keys.end());
        for (BlockAddr k : keys) {
            Value q = Value::array();
            m.forEachMsg(
                k, [&](const Msg &msg) { q.push(msgToJson(msg)); });
            Value e = Value::array();
            e.push(static_cast<std::uint64_t>(k));
            e.push(std::move(q));
            v.push(std::move(e));
        }
        return v;
    }

    static void
    loadMsgQueues(WaitQueueMap<Msg> &m, const Value &v)
    {
        m.clear();
        for (const Value &e : v.items()) {
            const BlockAddr k = e.at(0).asUint();
            for (const Value &msg : e.at(1).items())
                m.pushBack(k, msgFromJson(msg));
        }
    }

    static Value
    saveBank(const L2Bank &b)
    {
        Value active = Value::array();
        for (BlockAddr k : sortedKeys(b.active_)) {
            Value e = Value::array();
            e.push(static_cast<std::uint64_t>(k));
            e.push(saveBankTxn(b.active_.at(k)));
            active.push(std::move(e));
        }
        Value wb = Value::array();
        for (BlockAddr k : sortedKeys(b.wb_)) {
            const L2Bank::WbEntry &w = b.wb_.at(k);
            Value e = Value::array();
            e.push(static_cast<std::uint64_t>(k));
            e.push(w.dirty);
            e.push(w.vm);
            e.push(cyclesJson(w.started));
            wb.push(std::move(e));
        }
        Value extract = Value::array();
        for (BlockAddr k : sortedKeys(b.victimExtract_)) {
            Value e = Value::array();
            e.push(static_cast<std::uint64_t>(k));
            e.push(static_cast<std::uint64_t>(b.victimExtract_.at(k)));
            extract.push(std::move(e));
        }
        Value v = Value::object();
        v.set("array", saveL2Array(b.array_));
        v.set("active", std::move(active));
        v.set("waiting", saveMsgQueues(b.waiting_));
        v.set("wb", std::move(wb));
        v.set("victim_extract", std::move(extract));
        return v;
    }

    static void
    loadBank(L2Bank &b, const Value &v)
    {
        loadL2Array(b.array_, get(v, "array"));
        b.active_.clear();
        for (const Value &e : get(v, "active").items())
            b.active_[e.at(0).asUint()] = loadBankTxn(e.at(1));
        loadMsgQueues(b.waiting_, get(v, "waiting"));
        b.wb_.clear();
        for (const Value &e : get(v, "wb").items()) {
            L2Bank::WbEntry w;
            w.dirty = e.at(1).boolean();
            w.vm = static_cast<VmId>(asInt(e.at(2)));
            w.started = e.at(3).asUint();
            b.wb_[e.at(0).asUint()] = w;
        }
        b.victimExtract_.clear();
        for (const Value &e : get(v, "victim_extract").items())
            b.victimExtract_[e.at(0).asUint()] = e.at(1).asUint();
    }

    // --- directory slices ---

    static Value
    saveDir(const DirectorySlice &d)
    {
        Value active = Value::array();
        for (BlockAddr k : sortedKeys(d.active_)) {
            const DirectorySlice::Txn &t = d.active_.at(k);
            Value e = Value::array();
            e.push(static_cast<std::uint64_t>(k));
            e.push(msgToJson(t.req));
            e.push(cyclesJson(t.started));
            e.push(t.acksPending);
            e.push(t.fwdAckPending);
            e.push(t.grantSent);
            e.push(t.doneReceived);
            e.push(t.dirFetched);
            active.push(std::move(e));
        }
        Value v = Value::object();
        // The directory cache is timing state: a hit or miss on it
        // decides whether a transaction pays the off-chip fetch.
        v.set("cache", saveArray(d.dirCache_,
                                 [](const auto &, Value &) {}));
        v.set("active", std::move(active));
        v.set("waiting", saveMsgQueues(d.waiting_));
        return v;
    }

    static void
    loadDir(DirectorySlice &d, const Value &v)
    {
        loadArray(d.dirCache_, get(v, "cache"),
                  [](auto &, const Value &) {});
        d.active_.clear();
        for (const Value &e : get(v, "active").items()) {
            DirectorySlice::Txn t;
            t.req = msgFromJson(e.at(1));
            t.started = e.at(2).asUint();
            t.acksPending = static_cast<int>(asInt(e.at(3)));
            t.fwdAckPending = e.at(4).boolean();
            t.grantSent = e.at(5).boolean();
            t.doneReceived = e.at(6).boolean();
            t.dirFetched = e.at(7).boolean();
            d.active_[e.at(0).asUint()] = std::move(t);
        }
        loadMsgQueues(d.waiting_, get(v, "waiting"));
    }

    // --- directory storage (sparse: non-default entries only) ---

    static Value
    saveDirEntries(const DirectoryStorage &st)
    {
        Value v = Value::array();
        // forEach walks (vm, offset) ascending: deterministic order.
        st.forEach([&](BlockAddr block, const DirEntry &e) {
            if (e.state == L2State::Invalid && e.sharers.none() &&
                e.owner == -1)
                return;
            Value rec = Value::array();
            rec.push(static_cast<std::uint64_t>(block));
            rec.push(static_cast<int>(e.state));
            rec.push(coreSetJson(e.sharers));
            rec.push(static_cast<int>(e.owner));
            v.push(std::move(rec));
        });
        return v;
    }

    static void
    loadDirEntries(DirectoryStorage &st, const Value &v)
    {
        // The target System is freshly constructed, so every entry
        // not listed here is already default.
        for (const Value &rec : v.items()) {
            DirEntry e;
            e.state = static_cast<L2State>(asInt(rec.at(1)));
            e.sharers = coreSetFromJson(rec.at(2));
            e.owner = static_cast<std::int16_t>(asInt(rec.at(3)));
            st.entry(rec.at(0).asUint()) = e;
        }
    }

    // --- memory controllers ---

    static Value
    saveMc(const MemoryController &mc)
    {
        Value v = Value::object();
        v.set("next_free", cyclesJson(mc.nextFree_));
        v.set("outstanding", mc.outstanding_);
        // QoS token buckets (v4): per-VM [window, tokens, issued].
        // The configuration itself (caps, refill) is reinstalled by
        // the experiment layer before restore; only the mutable
        // bucket state rides in the snapshot.
        if (!mc.buckets_.empty()) {
            Value bs = Value::array();
            for (const auto &b : mc.buckets_) {
                Value e = Value::array();
                e.push(b.window);
                e.push(b.tokens);
                e.push(b.issued);
                bs.push(std::move(e));
            }
            v.set("buckets", std::move(bs));
        }
        return v;
    }

    static void
    loadMc(MemoryController &mc, const Value &v)
    {
        mc.nextFree_ = get(v, "next_free").asUint();
        mc.outstanding_ =
            static_cast<int>(asInt(get(v, "outstanding")));
        if (const Value *bs = v.find("buckets")) {
            CONSIM_ASSERT(bs->size() == mc.buckets_.size(),
                          "checkpoint: MC token-bucket count "
                          "mismatch (snapshot ", bs->size(),
                          ", machine ", mc.buckets_.size(),
                          " — was the QoS config reinstalled before "
                          "restore?)");
            for (std::size_t i = 0; i < mc.buckets_.size(); ++i) {
                const Value &e = bs->at(i);
                auto &b = mc.buckets_[i];
                b.window = e.at(0).asUint();
                b.tokens = e.at(1).asUint();
                b.issued = e.at(2).asUint();
            }
        }
    }

    // --- interconnect ---

    static Value
    savePacket(const RouterPacket &p)
    {
        Value v = Value::array();
        v.push(msgToJson(p.msg));
        v.push(p.lenFlits);
        v.push(cyclesJson(p.readyCycle));
        v.push(p.outPort);
        return v;
    }

    static RouterPacket
    loadPacket(const Value &v)
    {
        RouterPacket p;
        p.msg = msgFromJson(v.at(0));
        p.lenFlits = static_cast<int>(asInt(v.at(1)));
        p.readyCycle = v.at(2).asUint();
        p.outPort = static_cast<int>(asInt(v.at(3)));
        return p;
    }

    static Value
    saveRouter(const Router &r)
    {
        Value ins = Value::array();
        for (const Router::InputVc &ivc : r.inputs_) {
            Value q = Value::array();
            for (const RouterPacket &p : ivc.q)
                q.push(savePacket(p));
            Value e = Value::object();
            e.set("free", ivc.freeFlits);
            e.set("q", std::move(q));
            ins.push(std::move(e));
        }
        Value outs = Value::array();
        for (int p = 0; p < NumPorts; ++p) {
            const Router::OutPort &o = r.outputs_[p];
            Value e = Value::object();
            e.set("busy", o.busy);
            if (o.busy) {
                e.set("remaining", o.remaining);
                e.set("dst_vc", o.dstVc);
                e.set("pkt", savePacket(o.pkt));
            }
            outs.push(std::move(e));
        }
        Value v = Value::object();
        v.set("inputs", std::move(ins));
        v.set("outputs", std::move(outs));
        v.set("rr", r.rrInput_);
        v.set("buffered", r.buffered_);
        v.set("busy_outputs", r.busyOutputs_);
        return v;
    }

    static void
    loadRouter(Router &r, const Value &v)
    {
        const Value &ins = get(v, "inputs");
        CONSIM_ASSERT(ins.size() == r.inputs_.size(),
                      "checkpoint: router VC layout mismatch");
        for (std::size_t i = 0; i < r.inputs_.size(); ++i) {
            Router::InputVc &ivc = r.inputs_[i];
            const Value &e = ins.at(i);
            ivc.freeFlits = static_cast<int>(asInt(get(e, "free")));
            ivc.q.clear();
            for (const Value &p : get(e, "q").items())
                ivc.q.push_back(loadPacket(p));
        }
        const Value &outs = get(v, "outputs");
        CONSIM_ASSERT(outs.size() == NumPorts,
                      "checkpoint: router port count mismatch");
        for (int p = 0; p < NumPorts; ++p) {
            Router::OutPort &o = r.outputs_[p];
            const Value &e = outs.at(p);
            o.busy = get(e, "busy").boolean();
            if (o.busy) {
                o.remaining =
                    static_cast<int>(asInt(get(e, "remaining")));
                o.dstVc = static_cast<int>(asInt(get(e, "dst_vc")));
                o.pkt = loadPacket(get(e, "pkt"));
            } else {
                o.remaining = 0;
                o.dstVc = 0;
                o.pkt = RouterPacket{};
            }
        }
        r.rrInput_ = static_cast<int>(asInt(get(v, "rr")));
        r.buffered_ = static_cast<int>(asInt(get(v, "buffered")));
        r.busyOutputs_ =
            static_cast<int>(asInt(get(v, "busy_outputs")));
        r.rebuildOccupancy();
    }

    static Value
    saveNet(const System &s)
    {
        const Network &n = *s.net_;
        Value v = Value::object();
        v.set("injected", n.injectedTotal_);
        v.set("ejected", n.ejectedTotal_);
        if (const auto *mesh = dynamic_cast<const Mesh *>(&n)) {
            v.set("kind", "mesh");
            Value routers = Value::array();
            for (const auto &r : mesh->routers_)
                routers.push(saveRouter(*r));
            v.set("routers", std::move(routers));
            Value nis = Value::array();
            for (const auto &ni : mesh->nis_) {
                Value vnets = Value::array();
                for (const auto &q : ni->queues_) {
                    Value msgs = Value::array();
                    for (const Msg &m : q)
                        msgs.push(msgToJson(m));
                    vnets.push(std::move(msgs));
                }
                nis.push(std::move(vnets));
            }
            v.set("nis", std::move(nis));
        } else {
            const auto *ideal =
                dynamic_cast<const IdealNetwork *>(&n);
            CONSIM_ASSERT(ideal != nullptr,
                          "checkpoint: unknown network type");
            v.set("kind", "ideal");
            Value inflight = Value::array();
            for (const auto &[when, msg] : ideal->inflight_) {
                Value e = Value::array();
                e.push(cyclesJson(when));
                e.push(msgToJson(msg));
                inflight.push(std::move(e));
            }
            v.set("inflight", std::move(inflight));
        }
        return v;
    }

    static void
    loadNet(System &s, const Value &v)
    {
        Network &n = *s.net_;
        n.injectedTotal_ = get(v, "injected").asUint();
        n.ejectedTotal_ = get(v, "ejected").asUint();
        const std::string &kind = get(v, "kind").str();
        if (auto *mesh = dynamic_cast<Mesh *>(&n)) {
            CONSIM_ASSERT(kind == "mesh",
                          "checkpoint: network kind mismatch");
            const Value &routers = get(v, "routers");
            CONSIM_ASSERT(routers.size() == mesh->routers_.size(),
                          "checkpoint: router count mismatch");
            for (std::size_t i = 0; i < mesh->routers_.size(); ++i)
                loadRouter(*mesh->routers_[i], routers.at(i));
            const Value &nis = get(v, "nis");
            CONSIM_ASSERT(nis.size() == mesh->nis_.size(),
                          "checkpoint: NI count mismatch");
            for (std::size_t i = 0; i < mesh->nis_.size(); ++i) {
                NetworkInterface &ni = *mesh->nis_[i];
                const Value &vnets = nis.at(i);
                CONSIM_ASSERT(vnets.size() == ni.queues_.size(),
                              "checkpoint: NI vnet count mismatch");
                for (std::size_t q = 0; q < ni.queues_.size(); ++q) {
                    ni.queues_[q].clear();
                    for (const Value &m : vnets.at(q).items())
                        ni.queues_[q].push_back(msgFromJson(m));
                }
                ni.recountQueued();
            }
        } else {
            auto *ideal = dynamic_cast<IdealNetwork *>(&n);
            CONSIM_ASSERT(ideal != nullptr && kind == "ideal",
                          "checkpoint: network kind mismatch");
            ideal->inflight_.clear();
            for (const Value &e : get(v, "inflight").items())
                ideal->inflight_.push_back(
                    {e.at(0).asUint(), msgFromJson(e.at(1))});
        }
    }

    // --- fault-injection runtime state ---

    static Value
    saveFaults(const System &s)
    {
        // Only live runtime state: pending WedgeCore events ride in
        // the serialized event queue, so the restored System must NOT
        // re-run setFaultPlan (it would double-fire them).
        Value v = Value::object();
        v.set("drop_armed", s.dropArmed_);
        v.set("drop_countdown", s.dropCountdown_);
        v.set("memburst_armed", s.memBurstArmed_);
        v.set("memburst_start", cyclesJson(s.memBurstStart_));
        v.set("memburst_end", cyclesJson(s.memBurstEnd_));
        v.set("memburst_extra", cyclesJson(s.memBurstExtra_));
        return v;
    }

    static void
    loadFaults(System &s, const Value &v)
    {
        s.dropArmed_ = get(v, "drop_armed").boolean();
        s.dropCountdown_ = get(v, "drop_countdown").asUint();
        s.memBurstArmed_ = get(v, "memburst_armed").boolean();
        s.memBurstStart_ = get(v, "memburst_start").asUint();
        s.memBurstEnd_ = get(v, "memburst_end").asUint();
        s.memBurstExtra_ = get(v, "memburst_extra").asUint();
    }

    // --- workload streams / footprints ---

    static Value
    saveVms(const System &s)
    {
        Value v = Value::array();
        for (VirtualMachine *vm : s.vms_) {
            WorkloadInstance &inst = vm->instance();
            Value streams = Value::array();
            for (int i = 0; i < inst.numThreads(); ++i) {
                SyntheticStream &st = inst.thread(i);
                Value rng = Value::array();
                for (std::uint64_t w : st.rng_.state())
                    rng.push(w);
                Value sv = Value::object();
                sv.set("rng", std::move(rng));
                sv.set("hot_shared", st.hotSharedPos_);
                sv.set("hot_private", st.hotPrivatePos_);
                sv.set("refs", st.refs_);
                sv.set("refs_in_txn",
                       static_cast<unsigned>(st.refsInTxn_));
                streams.push(std::move(sv));
            }
            const Footprint &fp = inst.footprint_;
            Value touched = Value::array();
            for (std::size_t i = 0; i < fp.touched_.size(); ++i) {
                if (fp.touched_[i].load(std::memory_order_relaxed))
                    touched.push(static_cast<std::uint64_t>(i));
            }
            Value fpv = Value::object();
            fpv.set("count",
                    fp.count_.load(std::memory_order_relaxed));
            fpv.set("touched", std::move(touched));
            Value e = Value::object();
            e.set("streams", std::move(streams));
            e.set("footprint", std::move(fpv));
            v.push(std::move(e));
        }
        return v;
    }

    static void
    loadVms(System &s, const Value &v)
    {
        CONSIM_ASSERT(v.size() == s.vms_.size(),
                      "checkpoint: VM count mismatch");
        for (std::size_t i = 0; i < s.vms_.size(); ++i) {
            WorkloadInstance &inst = s.vms_[i]->instance();
            const Value &e = v.at(i);
            const Value &streams = get(e, "streams");
            CONSIM_ASSERT(
                static_cast<int>(streams.size()) ==
                    inst.numThreads(),
                "checkpoint: thread count mismatch in vm ", i);
            for (int t = 0; t < inst.numThreads(); ++t) {
                SyntheticStream &st = inst.thread(t);
                const Value &sv = streams.at(t);
                const Value &rng = get(sv, "rng");
                CONSIM_ASSERT(rng.size() == 4,
                              "checkpoint: bad rng state");
                st.rng_.setState({rng.at(0).asUint(),
                                  rng.at(1).asUint(),
                                  rng.at(2).asUint(),
                                  rng.at(3).asUint()});
                st.hotSharedPos_ = get(sv, "hot_shared").asUint();
                st.hotPrivatePos_ = get(sv, "hot_private").asUint();
                st.refs_ = get(sv, "refs").asUint();
                st.refsInTxn_ = static_cast<std::uint32_t>(
                    get(sv, "refs_in_txn").asUint());
            }
            Footprint &fp = inst.footprint_;
            const Value &fpv = get(e, "footprint");
            for (auto &flag : fp.touched_)
                flag.store(0, std::memory_order_relaxed);
            for (const Value &idx : get(fpv, "touched").items()) {
                const std::uint64_t off = idx.asUint();
                CONSIM_ASSERT(off < fp.touched_.size(),
                              "checkpoint: footprint index out of "
                              "range");
                fp.touched_[off].store(1, std::memory_order_relaxed);
            }
            fp.count_.store(get(fpv, "count").asUint(),
                            std::memory_order_relaxed);
        }
    }

    // --- whole machine ---

    static Value
    saveMachine(const System &s)
    {
        Value m = Value::object();
        // Mesh geometry is in the document (not just the context) so
        // a restore can sanity-check the rebuilt machine's shape
        // against the snapshot before walking any per-tile arrays.
        Value mesh = Value::array();
        mesh.push(s.cfg_.meshX);
        mesh.push(s.cfg_.meshY);
        m.set("mesh", std::move(mesh));
        m.set("cycle", cyclesJson(s.now_));
        m.set("events", saveEvents(s));
        Value cores = Value::array();
        for (const auto &c : s.cores_)
            cores.push(saveCore(s, *c));
        m.set("cores", std::move(cores));
        Value l1s = Value::array();
        for (const auto &l : s.l1s_)
            l1s.push(saveL1(*l));
        m.set("l1s", std::move(l1s));
        Value banks = Value::array();
        for (const auto &b : s.banks_)
            banks.push(saveBank(*b));
        m.set("banks", std::move(banks));
        Value dirs = Value::array();
        for (const auto &d : s.dirs_)
            dirs.push(saveDir(*d));
        m.set("dirs", std::move(dirs));
        Value mcs = Value::array();
        for (const auto &mc : s.mcs_)
            mcs.push(saveMc(*mc));
        m.set("mcs", std::move(mcs));
        m.set("dir_entries", saveDirEntries(s.dirStorage_));
        m.set("net", saveNet(s));
        m.set("faults", saveFaults(s));
        // QoS runtime state (v4): the dynamic repartitioner's way
        // allocation and miss-curve samples. Emitted only when QoS is
        // active so QoS-free snapshots keep their exact prior shape.
        if (s.qos_.enabled()) {
            Value q = Value::object();
            q.set("dyn_ways", s.qosDynWays_);
            q.set("last_miss_total", s.qosLastMissTotal_);
            q.set("prev_delta", s.qosPrevDelta_);
            m.set("qos", std::move(q));
        }
        // Dynamic-scheduling runtime state (v5): the migration
        // count and the epoch-baseline counters the policies delta
        // against. The policies themselves are pure functions, so
        // this is the entire state. Emitted only when armed so
        // dyn-free snapshots keep their exact prior shape.
        if (s.dynSched_.enabled()) {
            Value d = Value::object();
            d.set("migrations", s.dynMigrations_);
            Value retired = Value::array();
            for (const std::uint64_t r : s.dynLastRetired_)
                retired.push(r);
            d.set("last_retired", std::move(retired));
            Value vms = Value::array();
            for (const auto &v : s.dynLastVm_) {
                Value row = Value::array();
                for (const std::uint64_t x : v)
                    row.push(x);
                vms.push(std::move(row));
            }
            d.set("last_vm", std::move(vms));
            Value groups = Value::array();
            for (const auto &g : s.dynLastGroup_) {
                Value row = Value::array();
                for (const std::uint64_t x : g)
                    row.push(x);
                groups.push(std::move(row));
            }
            d.set("last_group", std::move(groups));
            // Feedback-loop state: backoff window and (when a swap
            // awaits its verdict) the swap plus the pre-swap epoch
            // miss/access totals it is judged against.
            d.set("hold", s.dynHold_);
            d.set("backoff", s.dynBackoff_);
            if (s.dynEval_.decided()) {
                Value ev = Value::array();
                ev.push(s.dynEval_.a);
                ev.push(s.dynEval_.b);
                ev.push(s.dynPreMiss_);
                ev.push(s.dynPreAcc_);
                d.set("eval", std::move(ev));
            }
            m.set("dyn_sched", std::move(d));
        }
        m.set("stats", s.statsRoot_.saveState());
        return m;
    }

    static void
    loadMachine(System &s, const Value &m)
    {
        // Restore targets a freshly constructed System: directory
        // entries, cache arrays and queues all start default there,
        // and the sparse loaders rely on it.
        CONSIM_ASSERT(s.now_ == 0 && s.events_.empty(),
                      "restoreCheckpoint needs a fresh System");
        const Value &mesh = get(m, "mesh");
        CONSIM_ASSERT(static_cast<int>(asInt(mesh.at(0))) ==
                              s.cfg_.meshX &&
                          static_cast<int>(asInt(mesh.at(1))) ==
                              s.cfg_.meshY,
                      "checkpoint: mesh geometry mismatch (snapshot ",
                      asInt(mesh.at(0)), "x", asInt(mesh.at(1)),
                      ", machine ", s.cfg_.meshX, "x", s.cfg_.meshY,
                      ")");
        // The clock must be set before events: insertAbs checks
        // every due cycle against now.
        s.now_ = get(m, "cycle").asUint();
        loadEvents(s, get(m, "events"));
        const Value &cores = get(m, "cores");
        CONSIM_ASSERT(cores.size() == s.cores_.size(),
                      "checkpoint: core count mismatch");
        for (std::size_t i = 0; i < s.cores_.size(); ++i)
            loadCore(s, *s.cores_[i], cores.at(i));
        const Value &l1s = get(m, "l1s");
        CONSIM_ASSERT(l1s.size() == s.l1s_.size(),
                      "checkpoint: L1 count mismatch");
        for (std::size_t i = 0; i < s.l1s_.size(); ++i)
            loadL1(*s.l1s_[i], l1s.at(i));
        const Value &banks = get(m, "banks");
        CONSIM_ASSERT(banks.size() == s.banks_.size(),
                      "checkpoint: bank count mismatch");
        for (std::size_t i = 0; i < s.banks_.size(); ++i)
            loadBank(*s.banks_[i], banks.at(i));
        const Value &dirs = get(m, "dirs");
        CONSIM_ASSERT(dirs.size() == s.dirs_.size(),
                      "checkpoint: directory count mismatch");
        for (std::size_t i = 0; i < s.dirs_.size(); ++i)
            loadDir(*s.dirs_[i], dirs.at(i));
        const Value &mcs = get(m, "mcs");
        CONSIM_ASSERT(mcs.size() == s.mcs_.size(),
                      "checkpoint: MC count mismatch");
        for (std::size_t i = 0; i < s.mcs_.size(); ++i)
            loadMc(*s.mcs_[i], mcs.at(i));
        loadDirEntries(s.dirStorage_, get(m, "dir_entries"));
        loadNet(s, get(m, "net"));
        loadFaults(s, get(m, "faults"));
        if (const Value *q = m.find("qos")) {
            CONSIM_ASSERT(s.qos_.enabled(),
                          "checkpoint carries QoS runtime state but "
                          "the rebuilt machine has QoS off — "
                          "reinstall the QoS config before restore");
            s.qosDynWays_ =
                static_cast<int>(asInt(get(*q, "dyn_ways")));
            s.qosLastMissTotal_ =
                get(*q, "last_miss_total").asUint();
            s.qosPrevDelta_ = get(*q, "prev_delta").asUint();
        }
        if (const Value *d = m.find("dyn_sched")) {
            CONSIM_ASSERT(s.dynSched_.enabled(),
                          "checkpoint carries dynamic-scheduling "
                          "runtime state but the rebuilt machine has "
                          "it off — reinstall the dyn-sched config "
                          "before restore");
            s.dynMigrations_ = get(*d, "migrations").asUint();
            const Value &retired = get(*d, "last_retired");
            CONSIM_ASSERT(retired.size() == s.dynLastRetired_.size(),
                          "checkpoint: dyn-sched core-baseline count "
                          "mismatch");
            for (std::size_t i = 0; i < retired.size(); ++i)
                s.dynLastRetired_[i] = retired.at(i).asUint();
            const Value &vms = get(*d, "last_vm");
            CONSIM_ASSERT(vms.size() == s.dynLastVm_.size(),
                          "checkpoint: dyn-sched VM-baseline count "
                          "mismatch");
            for (std::size_t i = 0; i < vms.size(); ++i)
                for (std::size_t k = 0; k < 3; ++k)
                    s.dynLastVm_[i][k] = vms.at(i).at(k).asUint();
            const Value &groups = get(*d, "last_group");
            CONSIM_ASSERT(groups.size() == s.dynLastGroup_.size(),
                          "checkpoint: dyn-sched group-baseline count "
                          "mismatch");
            for (std::size_t i = 0; i < groups.size(); ++i)
                for (std::size_t k = 0; k < 2; ++k)
                    s.dynLastGroup_[i][k] =
                        groups.at(i).at(k).asUint();
            s.dynHold_ =
                static_cast<std::uint32_t>(get(*d, "hold").asUint());
            s.dynBackoff_ = static_cast<std::uint32_t>(
                get(*d, "backoff").asUint());
            if (const Value *ev = d->find("eval")) {
                s.dynEval_.a =
                    static_cast<CoreId>(asInt(ev->at(0)));
                s.dynEval_.b =
                    static_cast<CoreId>(asInt(ev->at(1)));
                s.dynPreMiss_ = ev->at(2).asUint();
                s.dynPreAcc_ = ev->at(3).asUint();
            }
        }
        s.statsRoot_.restoreState(get(m, "stats"));
    }
};

json::Value
System::saveCheckpoint() const
{
    json::Value doc = json::Value::object();
    doc.set("schema", "consim.ckpt.v5");
    doc.set("context", ckptCtx_);
    doc.set("machine", CkptAccess::saveMachine(*this));
    doc.set("vms", CkptAccess::saveVms(*this));
    return doc;
}

void
System::restoreCheckpoint(const json::Value &doc)
{
    const json::Value *schema = doc.find("schema");
    CONSIM_ASSERT(schema != nullptr &&
                      schema->str() == "consim.ckpt.v5",
                  "not a consim.ckpt.v5 document (v1 checkpoints "
                  "predate per-source event keys; v2 checkpoints "
                  "encode sharer/presence state as fixed 16-bit "
                  "masks, which the parametric scale model replaced "
                  "with variable-width word arrays; v3 snapshots "
                  "lack the QoS runtime state — per-VM memory-"
                  "controller token buckets and the dynamic "
                  "repartitioner's way allocation; v4 snapshots "
                  "lack the migration-policy runtime state — the "
                  "dynamic scheduler's epoch baselines and migration "
                  "count — so none can be restored; re-run the "
                  "original configuration to take a fresh snapshot)");
    CkptAccess::loadMachine(*this, get(doc, "machine"));
    CkptAccess::loadVms(*this, get(doc, "vms"));
    // Operational knobs (watchdog, deadline, periodic snapshotting)
    // are deliberately not part of the document: callers re-arm them
    // after restore, and setWatchdogInterval re-baselines its
    // progress snapshot against the restored clock.
}

} // namespace consim
