#include "core/mix.hh"

#include <algorithm>

#include "common/logging.hh"

namespace consim
{

int
Mix::count(WorkloadKind k) const
{
    return static_cast<int>(std::count(vms.begin(), vms.end(), k));
}

namespace
{

Mix
make(std::string name, std::vector<WorkloadKind> vms)
{
    return Mix{std::move(name), std::move(vms)};
}

std::vector<Mix>
buildHeterogeneous()
{
    using K = WorkloadKind;
    return {
        make("Mix 1", {K::TpcW, K::TpcW, K::TpcW, K::TpcH}),
        make("Mix 2", {K::TpcW, K::TpcW, K::TpcH, K::TpcH}),
        make("Mix 3", {K::TpcW, K::TpcH, K::TpcH, K::TpcH}),
        make("Mix 4", {K::SpecJbb, K::SpecJbb, K::SpecJbb, K::TpcH}),
        make("Mix 5", {K::SpecJbb, K::SpecJbb, K::TpcH, K::TpcH}),
        make("Mix 6", {K::SpecJbb, K::TpcH, K::TpcH, K::TpcH}),
        make("Mix 7", {K::SpecJbb, K::SpecJbb, K::SpecJbb, K::TpcW}),
        make("Mix 8", {K::SpecJbb, K::SpecJbb, K::TpcW, K::TpcW}),
        make("Mix 9", {K::SpecJbb, K::TpcW, K::TpcW, K::TpcW}),
    };
}

std::vector<Mix>
buildHomogeneous()
{
    using K = WorkloadKind;
    return {
        make("Mix A", {K::TpcW, K::TpcW, K::TpcW, K::TpcW}),
        make("Mix B", {K::TpcH, K::TpcH, K::TpcH, K::TpcH}),
        make("Mix C", {K::SpecJbb, K::SpecJbb, K::SpecJbb, K::SpecJbb}),
        make("Mix D", {K::SpecWeb, K::SpecWeb, K::SpecWeb, K::SpecWeb}),
    };
}

} // namespace

const std::vector<Mix> &
Mix::heterogeneous()
{
    static const std::vector<Mix> mixes = buildHeterogeneous();
    return mixes;
}

const std::vector<Mix> &
Mix::homogeneous()
{
    static const std::vector<Mix> mixes = buildHomogeneous();
    return mixes;
}

const Mix &
Mix::byName(const std::string &name)
{
    for (const auto &m : heterogeneous()) {
        if (m.name == name)
            return m;
    }
    for (const auto &m : homogeneous()) {
        if (m.name == name)
            return m;
    }
    CONSIM_FATAL("unknown mix '", name, "'");
}

} // namespace consim
