/**
 * @file
 * Miss Status Holding Registers: track outstanding misses per block so
 * that concurrent requests for the same block coalesce instead of
 * issuing duplicate protocol transactions.
 */

#ifndef CONSIM_CACHE_MSHR_HH
#define CONSIM_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/**
 * One outstanding miss. EntryT carries client-defined per-requester
 * context (e.g. which member core asked, read vs write).
 */
template <typename EntryT>
struct Mshr
{
    BlockAddr block = 0;
    bool wantsWrite = false;       ///< any coalesced requester writes
    int pendingAcks = 0;           ///< invalidation acks still due
    bool dataArrived = false;
    Cycle issued = 0;              ///< cycle the miss left this level
    std::vector<EntryT> targets;   ///< coalesced requesters
};

/**
 * Fixed-capacity MSHR file keyed by block address. At most one MSHR
 * exists per block; additional requests coalesce onto it.
 */
template <typename EntryT>
class MshrFile
{
  public:
    explicit MshrFile(std::size_t capacity) : capacity_(capacity) {}

    /** @return MSHR for a block, or nullptr if none outstanding. */
    Mshr<EntryT> *
    find(BlockAddr block)
    {
        auto it = map_.find(block);
        return it == map_.end() ? nullptr : &it->second;
    }

    /** @return true when no new MSHR can be allocated. */
    bool full() const { return map_.size() >= capacity_; }

    /** Number of outstanding misses. */
    std::size_t size() const { return map_.size(); }

    /**
     * Allocate an MSHR for a block; the file must not be full and the
     * block must not already have one.
     */
    Mshr<EntryT> &
    allocate(BlockAddr block, Cycle now)
    {
        CONSIM_ASSERT(!full(), "MSHR file overflow");
        CONSIM_ASSERT(find(block) == nullptr,
                      "duplicate MSHR for block ", block);
        auto &m = map_[block];
        m.block = block;
        m.issued = now;
        return m;
    }

    /** Release a completed MSHR. */
    void
    release(BlockAddr block)
    {
        auto erased = map_.erase(block);
        CONSIM_ASSERT(erased == 1, "releasing absent MSHR ", block);
    }

    /** Iterate outstanding misses (diagnostics / invariant checks). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[blk, m] : map_)
            fn(m);
    }

  private:
    std::size_t capacity_;
    std::unordered_map<BlockAddr, Mshr<EntryT>> map_;
};

} // namespace consim

#endif // CONSIM_CACHE_MSHR_HH
