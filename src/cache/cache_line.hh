/**
 * @file
 * Cache line base type and coherence state enums shared by the private
 * (L0/L1) and last-level (L2) caches.
 */

#ifndef CONSIM_CACHE_CACHE_LINE_HH
#define CONSIM_CACHE_CACHE_LINE_HH

#include <cstdint>
#include <string>

#include "common/coreset.hh"
#include "common/types.hh"

namespace consim
{

/**
 * Coherence state of a line in a private L0/L1 cache. Within an L2
 * sharing group the partition acts as a local directory over member
 * L1s, so a simple MSI suffices at this level.
 */
enum class L1State : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** @return short name ("I"/"S"/"M"). */
inline const char *
toString(L1State s)
{
    switch (s) {
      case L1State::Invalid:
        return "I";
      case L1State::Shared:
        return "S";
      case L1State::Modified:
        return "M";
    }
    return "?";
}

/**
 * Partition-level MESI state of a line in an L2 partition, as tracked
 * by the global (SGI-Origin-style) directory. Exclusive allows silent
 * upgrade to Modified inside the partition.
 */
enum class L2State : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** @return short name ("I"/"S"/"E"/"M"). */
inline const char *
toString(L2State s)
{
    switch (s) {
      case L2State::Invalid:
        return "I";
      case L2State::Shared:
        return "S";
      case L2State::Exclusive:
        return "E";
      case L2State::Modified:
        return "M";
    }
    return "?";
}

/** Common bookkeeping for any cache line; caches derive from this. */
struct CacheLineBase
{
    BlockAddr tag = 0;          ///< block address stored in this slot
    bool valid = false;
    std::uint64_t lruStamp = 0; ///< last-touch stamp for LRU
};

/** A line in a private L0 or L1 cache. */
struct PrivateCacheLine : CacheLineBase
{
    L1State state = L1State::Invalid;
};

/** A line in an L2 partition bank. */
struct L2CacheLine : CacheLineBase
{
    L2State state = L2State::Invalid;
    bool dirty = false;          ///< modified relative to memory
    bool pinned = false;         ///< mid-eviction; not a victim candidate
    std::int16_t ownerCore = -1; ///< local index of L1 owner, -1 none
    CoreSet presence;            ///< member-core L1 presence (local idx)
    VmId vm = invalidVm;         ///< owning virtual machine (for stats)
};

} // namespace consim

#endif // CONSIM_CACHE_CACHE_LINE_HH
