/**
 * @file
 * Generic set-associative cache array with LRU replacement.
 *
 * The array stores metadata only: consim is a timing simulator, so
 * lines never carry data payloads. Clients instantiate the template
 * with a line type derived from CacheLineBase (see cache_line.hh) and
 * drive the replacement decisions explicitly:
 *
 *   line = array.lookup(block);         // nullptr on miss
 *   victim = array.victim(block);       // slot a fill would take
 *   ... evict victim's contents if valid ...
 *   array.install(victim, block);       // claim the slot
 *
 * Hot-path layout: lookup() and victim() are the two most-executed
 * loops in the simulator, and they only need (valid, tag) resp.
 * (valid, lruStamp) — a handful of bytes out of every LineT they pull
 * into cache when scanning the AoS lines_ vector. The array therefore
 * keeps two dense mirrors: key_ (tag + 1 for valid lines, 0 for
 * invalid — one compare tests both) and lru_ (lruStamp). The set scan
 * touches 8 bytes per way instead of a whole LineT, and the mirrors of
 * one set share a cache line for the common associativities. lines_
 * stays authoritative; every mutator keeps the mirrors in sync, and
 * the escape hatches that hand out mutable LineT references
 * (forEachLine, forEachInSet, the checkpoint restore path) re-derive
 * them afterwards via rebuildIndex()/rebuildSet().
 */

#ifndef CONSIM_CACHE_CACHE_ARRAY_HH
#define CONSIM_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_line.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Size/shape of a cache array; validates and derives set counts. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    int assoc = 1;

    /** Lines held by the array. */
    std::uint64_t numLines() const { return sizeBytes / blockBytes; }

    /** Sets in the array. */
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** Panics on inconsistent geometry (simulator wiring bug). */
    void check() const;
};

/**
 * Set-associative array over lines of type LineT (derived from
 * CacheLineBase). Indexing uses the low-order bits of the block
 * address above any bank-interleave bits, which the owner strips by
 * passing a pre-shifted index address when banked (see L2Bank).
 */
template <typename LineT>
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom)
        : geom_(geom), lines_(geom.numLines()),
          key_(geom.numLines(), 0), lru_(geom.numLines(), 0)
    {
        geom_.check();
    }

    /** @return set index for a block (callers may want it for stats). */
    std::uint64_t
    setIndex(BlockAddr block) const
    {
        return block % geom_.numSets();
    }

    /**
     * Look up a block.
     * @return pointer to the valid matching line, or nullptr on miss.
     * Does not update LRU; call touch() on an actual access.
     */
    LineT *
    lookup(BlockAddr block)
    {
        auto [begin, end] = setRange(block);
        const std::uint64_t key = block + 1;
        for (auto i = begin; i != end; ++i) {
            if (key_[i] == key)
                return &lines_[i];
        }
        return nullptr;
    }

    /** Const lookup for inspection (no LRU effect). */
    const LineT *
    lookup(BlockAddr block) const
    {
        return const_cast<CacheArray *>(this)->lookup(block);
    }

    /**
     * @return the slot a fill of @p block would claim: an invalid slot
     * in the set if one exists, else the LRU line. Never nullptr.
     */
    LineT *
    victim(BlockAddr block)
    {
        auto [begin, end] = setRange(block);
        std::uint64_t lru = begin;
        for (auto i = begin; i != end; ++i) {
            if (key_[i] == 0)
                return &lines_[i];
            if (lru_[i] < lru_[lru])
                lru = i;
        }
        return &lines_[lru];
    }

    /**
     * Way-restricted victim(): the slot a fill of @p block would
     * claim when only the ways whose bit is set in @p way_mask may be
     * used (QoS way partitioning). With every way allowed this makes
     * the same choice as victim(); the mask must cover at least one
     * way.
     */
    LineT *
    victimInWays(BlockAddr block, std::uint64_t way_mask)
    {
        auto [begin, end] = setRange(block);
        std::uint64_t lru = end;
        int way = 0;
        for (auto i = begin; i != end; ++i, ++way) {
            if (!((way_mask >> way) & 1))
                continue;
            if (key_[i] == 0)
                return &lines_[i];
            if (lru == end || lru_[i] < lru_[lru])
                lru = i;
        }
        CONSIM_ASSERT(lru != end,
                      "victimInWays: empty way mask for set of block ",
                      block);
        return &lines_[lru];
    }

    /** @return the way index (0..assoc-1) a line of @p block's set
     *  occupies (QoS way-mask audits). */
    int
    wayOf(BlockAddr block, const LineT *line) const
    {
        return static_cast<int>(indexOf(line) -
                                setRange(block).first);
    }

    /**
     * Claim a (previously vacated) slot for a block. The caller must
     * have handled eviction of the old contents. Resets the line to a
     * default-constructed LineT with tag/valid/LRU set.
     */
    void
    install(LineT *slot, BlockAddr block)
    {
        CONSIM_ASSERT(slot != nullptr, "install into null slot");
        *slot = LineT{};
        slot->tag = block;
        slot->valid = true;
        slot->lruStamp = ++stamp_;
        const std::uint64_t i = indexOf(slot);
        key_[i] = block + 1;
        lru_[i] = slot->lruStamp;
    }

    /** Record an access for replacement purposes. */
    void
    touch(LineT *line)
    {
        line->lruStamp = ++stamp_;
        lru_[indexOf(line)] = line->lruStamp;
    }

    /** Invalidate a line (slot becomes reusable). */
    void
    invalidate(LineT *line)
    {
        *line = LineT{};
        const std::uint64_t i = indexOf(line);
        key_[i] = 0;
        lru_[i] = 0;
    }

    /** @return number of valid lines (walks the array; for stats). */
    std::uint64_t
    countValid() const
    {
        std::uint64_t n = 0;
        for (const std::uint64_t k : key_)
            n += k ? 1 : 0;
        return n;
    }

    /** Iterate all lines (valid or not) for snapshots/invariants. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &l : lines_)
            fn(l);
    }

    /** Iterate the lines of the set that holds @p block (mutable). */
    template <typename Fn>
    void
    forEachInSet(BlockAddr block, Fn &&fn)
    {
        auto [begin, end] = setRange(block);
        for (auto i = begin; i != end; ++i)
            fn(lines_[i]);
        // The callback saw mutable lines; refresh this set's mirrors.
        for (auto i = begin; i != end; ++i)
            syncSlot(i);
    }

    /** Mutable iteration (e.g. bulk invalidation in tests). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &l : lines_)
            fn(l);
        rebuildIndex();
    }

    const CacheGeometry &geometry() const { return geom_; }

    /** Re-derive the lookup/LRU mirrors from lines_ after external
     *  mutation (checkpoint restore writes lines_ directly). */
    void
    rebuildIndex()
    {
        for (std::uint64_t i = 0; i < lines_.size(); ++i)
            syncSlot(i);
    }

  private:
    /** Checkpoint layer restores slots index-exact (victim() choice
     *  depends on slot order and lruStamp values); it must call
     *  rebuildIndex() once the lines are in place. */
    friend struct CkptAccess;

    /** [begin, end) line indices of the set holding @p block. */
    std::pair<std::uint64_t, std::uint64_t>
    setRange(BlockAddr block) const
    {
        const std::uint64_t set = block % geom_.numSets();
        const std::uint64_t begin = set * geom_.assoc;
        return {begin, begin + geom_.assoc};
    }

    std::uint64_t
    indexOf(const LineT *line) const
    {
        return static_cast<std::uint64_t>(line - lines_.data());
    }

    void
    syncSlot(std::uint64_t i)
    {
        key_[i] = lines_[i].valid ? lines_[i].tag + 1 : 0;
        lru_[i] = lines_[i].valid ? lines_[i].lruStamp : 0;
    }

    CacheGeometry geom_;
    std::vector<LineT> lines_;
    /** tag + 1 of valid lines, 0 otherwise (lookup/victim scan). */
    std::vector<std::uint64_t> key_;
    /** lruStamp mirror (victim scan). */
    std::vector<std::uint64_t> lru_;
    std::uint64_t stamp_ = 0;
};

} // namespace consim

#endif // CONSIM_CACHE_CACHE_ARRAY_HH
