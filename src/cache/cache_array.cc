#include "cache/cache_array.hh"

namespace consim
{

void
CacheGeometry::check() const
{
    CONSIM_ASSERT(sizeBytes > 0 && sizeBytes % blockBytes == 0,
                  "cache size ", sizeBytes, " not a multiple of ",
                  blockBytes);
    CONSIM_ASSERT(assoc > 0, "bad associativity ", assoc);
    CONSIM_ASSERT(numLines() % assoc == 0,
                  "lines ", numLines(), " not divisible by assoc ",
                  assoc);
    CONSIM_ASSERT(numSets() > 0, "zero sets");
}

} // namespace consim
