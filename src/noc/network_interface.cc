#include "noc/network_interface.hh"

#include "common/logging.hh"

namespace consim
{

NetworkInterface::NetworkInterface(CoreId tile, const NocParams &params,
                                   Router *router)
    : tile_(tile), params_(params), router_(router),
      queues_(params.numVnets)
{
    CONSIM_ASSERT(router_ != nullptr, "NI without router at ", tile_);
}

void
NetworkInterface::enqueue(Msg m)
{
    const int vnet = vnetOf(m.type);
    queues_[vnet].push_back(std::move(m));
    ++queuedTotal_;
}

void
NetworkInterface::tickSlow(Cycle now)
{
    for (int vnet = 0; vnet < params_.numVnets; ++vnet) {
        auto &q = queues_[vnet];
        if (q.empty())
            continue;
        const int len = params_.flitsOf(q.front().type);
        int vc = 0;
        if (!router_->canAccept(PortLocal, vnet, len, q.front().vm,
                                &vc))
            continue;
        router_->reserve(PortLocal, vc, len);
        RouterPacket pkt;
        pkt.msg = std::move(q.front());
        q.pop_front();
        --queuedTotal_;
        pkt.lenFlits = len;
        router_->arrive(PortLocal, vc, std::move(pkt), now);
    }
}

void
NetworkInterface::recountQueued()
{
    queuedTotal_ = 0;
    for (const auto &q : queues_)
        queuedTotal_ += static_cast<int>(q.size());
}

} // namespace consim
