/**
 * @file
 * The 2-D packet-switched mesh: a grid of Routers plus per-tile
 * NetworkInterfaces, implementing the Network interface used by the
 * System. Geometry and VC parameters come from MachineConfig.
 */

#ifndef CONSIM_NOC_MESH_HH
#define CONSIM_NOC_MESH_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "noc/network.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"

namespace consim
{

/** Flit-level 2-D mesh interconnect. */
class Mesh : public Network
{
  public:
    explicit Mesh(const MachineConfig &cfg);

    void inject(Msg m) override;
    void tick(Cycle now) override;
    bool idle() const override;

    /**
     * Hardening audit: per-VC flit/credit conservation across every
     * router (folding in-transit reservations into the equation) and
     * global packet conservation (injected - ejected must equal
     * buffered + NI-queued + in-transit). Throws SimError on
     * violation.
     */
    void checkConservation() const override;

    /** Non-idle router credit maps + NI queue depths (diag dump). */
    json::Value diagJson() const override;

    /** Propagate QoS VC reservation/priority to every router. */
    void setQos(VmId protected_vm, int reserved_vcs) override;

    /** @return router at a tile (tests/diagnostics). */
    Router &router(CoreId tile) { return *routers_.at(tile); }

    /** @return the derived NoC parameters. */
    const NocParams &params() const { return params_; }

    /** @return total packets buffered in-network (diagnostics). */
    int inFlight() const;

  private:
    friend struct CkptAccess;

    NocParams params_;
    Cycle lastTick_ = 0;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
};

} // namespace consim

#endif // CONSIM_NOC_MESH_HH
