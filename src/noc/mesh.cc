#include "noc/mesh.hh"

#include <algorithm>

#include "common/logging.hh"

namespace consim
{

Mesh::Mesh(const MachineConfig &cfg)
{
    params_.meshX = cfg.meshX;
    params_.meshY = cfg.meshY;
    params_.numVnets = cfg.numVnets;
    params_.vcsPerVnet = cfg.vcsPerVnet;
    // One header flit plus the 64B block payload.
    params_.dataFlits =
        (blockBytes + cfg.flitBytes - 1) / cfg.flitBytes + 1;
    params_.ctrlFlits = 1;
    params_.vcBufferFlits =
        std::max(cfg.vcBufferFlits, params_.dataFlits);
    params_.pipelineDelay = 2; // 3-stage pipe: RC, VA/SA, ST

    const int n = cfg.numCores();
    routers_.reserve(n);
    nis_.reserve(n);
    for (CoreId t = 0; t < n; ++t)
        routers_.push_back(std::make_unique<Router>(t, params_,
                                                    &stats_));
    for (CoreId t = 0; t < n; ++t) {
        const int x = t % cfg.meshX, y = t / cfg.meshX;
        Router &r = *routers_[t];
        if (y > 0)
            r.setNeighbor(PortNorth, routers_[t - cfg.meshX].get());
        if (y < cfg.meshY - 1)
            r.setNeighbor(PortSouth, routers_[t + cfg.meshX].get());
        if (x < cfg.meshX - 1)
            r.setNeighbor(PortEast, routers_[t + 1].get());
        if (x > 0)
            r.setNeighbor(PortWest, routers_[t - 1].get());
        r.setEjector([this](const Msg &m, int len) {
            recordEject(m, lastTick_, len);
            deliver_(m);
        });
        nis_.push_back(
            std::make_unique<NetworkInterface>(t, params_, &r));
    }
}

void
Mesh::inject(Msg m)
{
    CONSIM_ASSERT(m.srcTile != m.dstTile,
                  "mesh injection for a same-tile message");
    ++stats_.packetsInjected;
    nis_.at(m.srcTile)->enqueue(std::move(m));
}

void
Mesh::tick(Cycle now)
{
    lastTick_ = now;
    // Phase 1: finish transmissions (arrivals land, ejections fire).
    for (auto &r : routers_)
        r->tickOutputs(now);
    // Phase 2: sources inject into local input VCs.
    for (auto &ni : nis_)
        ni->tick(now);
    // Phase 3: switch allocation everywhere.
    for (auto &r : routers_)
        r->tickAllocate(now);
}

bool
Mesh::idle() const
{
    for (const auto &r : routers_) {
        if (!r->idle())
            return false;
    }
    for (const auto &ni : nis_) {
        if (!ni->idle())
            return false;
    }
    return true;
}

int
Mesh::inFlight() const
{
    int n = 0;
    for (const auto &r : routers_)
        n += r->bufferedPackets();
    for (const auto &ni : nis_)
        n += ni->queued();
    return n;
}

} // namespace consim
