#include "noc/mesh.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"

namespace consim
{

Mesh::Mesh(const MachineConfig &cfg)
{
    params_.meshX = cfg.meshX;
    params_.meshY = cfg.meshY;
    params_.numVnets = cfg.numVnets;
    params_.vcsPerVnet = cfg.vcsPerVnet;
    // One header flit plus the 64B block payload.
    params_.dataFlits =
        (blockBytes + cfg.flitBytes - 1) / cfg.flitBytes + 1;
    params_.ctrlFlits = 1;
    params_.vcBufferFlits =
        std::max(cfg.vcBufferFlits, params_.dataFlits);
    params_.pipelineDelay = 2; // 3-stage pipe: RC, VA/SA, ST

    const int n = cfg.numCores();
    routers_.reserve(n);
    nis_.reserve(n);
    for (CoreId t = 0; t < n; ++t)
        routers_.push_back(std::make_unique<Router>(t, params_,
                                                    &stats_));
    for (CoreId t = 0; t < n; ++t) {
        const int x = t % cfg.meshX, y = t / cfg.meshX;
        Router &r = *routers_[t];
        if (y > 0)
            r.setNeighbor(PortNorth, routers_[t - cfg.meshX].get());
        if (y < cfg.meshY - 1)
            r.setNeighbor(PortSouth, routers_[t + cfg.meshX].get());
        if (x < cfg.meshX - 1)
            r.setNeighbor(PortEast, routers_[t + 1].get());
        if (x > 0)
            r.setNeighbor(PortWest, routers_[t - 1].get());
        r.setEjector([this](const Msg &m, int len) {
            recordEject(m, lastTick_, len);
            deliver_(m);
        });
        nis_.push_back(
            std::make_unique<NetworkInterface>(t, params_, &r));
    }
}

void
Mesh::inject(Msg m)
{
    CONSIM_ASSERT(m.srcTile != m.dstTile,
                  "mesh injection for a same-tile message");
    ++stats_.packetsInjected;
    ++injectedTotal_;
    nis_.at(m.srcTile)->enqueue(std::move(m));
}

void
Mesh::tick(Cycle now)
{
    lastTick_ = now;
    // Phase 1: finish transmissions (arrivals land, ejections fire).
    for (auto &r : routers_)
        r->tickOutputs(now);
    // Phase 2: sources inject into local input VCs.
    for (auto &ni : nis_)
        ni->tick(now);
    // Phase 3: switch allocation everywhere.
    for (auto &r : routers_)
        r->tickAllocate(now);
}

void
Mesh::setQos(VmId protected_vm, int reserved_vcs)
{
    for (auto &r : routers_)
        r->setQos(protected_vm, reserved_vcs);
}

bool
Mesh::idle() const
{
    for (const auto &r : routers_) {
        if (!r->idle())
            return false;
    }
    for (const auto &ni : nis_) {
        if (!ni->idle())
            return false;
    }
    return true;
}

int
Mesh::inFlight() const
{
    int n = 0;
    for (const auto &r : routers_)
        n += r->bufferedPackets();
    for (const auto &ni : nis_)
        n += ni->queued();
    return n;
}

void
Mesh::checkConservation() const
{
    // Pass 1: collect credits held by packets in transit, keyed by
    // their destination (tile, port, vc).
    const int totalVcs = params_.totalVcs();
    std::vector<int> reserved(routers_.size() * NumPorts * totalVcs,
                              0);
    const auto slot = [&](CoreId tile, int port, int vc) -> int & {
        return reserved[(static_cast<std::size_t>(tile) * NumPorts +
                         port) * totalVcs + vc];
    };
    for (const auto &r : routers_) {
        r->forEachTransit(
            [&](CoreId dst, int port, int vc, int flits) {
                slot(dst, port, vc) += flits;
            });
    }

    // Pass 2: per-router credit equations plus the packet census.
    int buffered = 0, transit = 0, queued = 0;
    for (const auto &r : routers_) {
        const CoreId t = r->tile();
        r->checkInvariants(
            [&](int port, int vc) { return slot(t, port, vc); });
        buffered += r->bufferedPackets();
        transit += r->transitPackets();
    }
    for (const auto &ni : nis_)
        queued += ni->queued();

    const std::uint64_t inNetwork =
        static_cast<std::uint64_t>(buffered + transit + queued);
    if (injectedTotal_ - ejectedTotal_ != inNetwork) {
        CONSIM_CHECK_FAIL(
            "mesh packet conservation broken: injected=",
            injectedTotal_, " ejected=", ejectedTotal_,
            " buffered=", buffered, " in_transit=", transit,
            " ni_queued=", queued);
    }
}

json::Value
Mesh::diagJson() const
{
    auto v = json::Value::object();
    v.set("injected_total", injectedTotal_);
    v.set("ejected_total", ejectedTotal_);
    v.set("in_flight", inFlight());
    auto routers = json::Value::array();
    for (const auto &r : routers_) {
        if (!r->idle())
            routers.push(r->creditJson());
    }
    v.set("routers", std::move(routers));
    auto nis = json::Value::array();
    for (std::size_t t = 0; t < nis_.size(); ++t) {
        if (nis_[t]->queued() == 0)
            continue;
        auto e = json::Value::object();
        e.set("tile", static_cast<int>(t));
        e.set("queued", nis_[t]->queued());
        nis.push(std::move(e));
    }
    v.set("ni_queues", std::move(nis));
    return v;
}

} // namespace consim
