/**
 * @file
 * Network interface: per-tile injection point into the mesh. Holds
 * per-vnet injection queues (so a congested request path never blocks
 * responses at the source) and moves packets into the local router's
 * input VCs as space permits.
 */

#ifndef CONSIM_NOC_NETWORK_INTERFACE_HH
#define CONSIM_NOC_NETWORK_INTERFACE_HH

#include <vector>

#include "coherence/protocol.hh"
#include "common/ring.hh"
#include "noc/router.hh"

namespace consim
{

/** Injection-side NI; ejection is handled by the router's ejector. */
class NetworkInterface
{
  public:
    NetworkInterface(CoreId tile, const NocParams &params, Router *router);

    /** Queue a message for injection (unbounded source queue). */
    void enqueue(Msg m);

    /** Try to inject up to one packet per vnet into the router. The
     *  empty early-out lives here so the mesh loop inlines it. */
    void
    tick(Cycle now)
    {
        if (queuedTotal_ != 0)
            tickSlow(now);
    }

    /** @return true when no messages await injection. */
    bool idle() const { return queuedTotal_ == 0; }

    /** @return messages waiting across all vnets (diagnostics). */
    int queued() const { return queuedTotal_; }

  private:
    friend struct CkptAccess;

    void tickSlow(Cycle now);

    /** Recount queuedTotal_ (checkpoint restore refills queues). */
    void recountQueued();

    CoreId tile_;
    NocParams params_;
    Router *router_;
    std::vector<RingBuf<Msg>> queues_; ///< one per vnet
    int queuedTotal_ = 0;              ///< across all vnets
};

} // namespace consim

#endif // CONSIM_NOC_NETWORK_INTERFACE_HH
