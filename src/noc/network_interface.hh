/**
 * @file
 * Network interface: per-tile injection point into the mesh. Holds
 * per-vnet injection queues (so a congested request path never blocks
 * responses at the source) and moves packets into the local router's
 * input VCs as space permits.
 */

#ifndef CONSIM_NOC_NETWORK_INTERFACE_HH
#define CONSIM_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <vector>

#include "coherence/protocol.hh"
#include "noc/router.hh"

namespace consim
{

/** Injection-side NI; ejection is handled by the router's ejector. */
class NetworkInterface
{
  public:
    NetworkInterface(CoreId tile, const NocParams &params, Router *router);

    /** Queue a message for injection (unbounded source queue). */
    void enqueue(Msg m);

    /** Try to inject up to one packet per vnet into the router. */
    void tick(Cycle now);

    /** @return true when no messages await injection. */
    bool idle() const;

    /** @return messages waiting across all vnets (diagnostics). */
    int queued() const;

  private:
    friend struct CkptAccess;

    CoreId tile_;
    NocParams params_;
    Router *router_;
    std::vector<std::deque<Msg>> queues_; ///< one per vnet
};

} // namespace consim

#endif // CONSIM_NOC_NETWORK_INTERFACE_HH
