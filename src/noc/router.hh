/**
 * @file
 * A mesh router with virtual-channel flow control and a 3-stage
 * pipeline, following the paper's Table III interconnect: 2-D
 * packet-switched mesh, dimension-order routing, speculative VA/SA.
 *
 * Modelling notes:
 *  - Packets move with virtual cut-through granularity: a packet is
 *    fully buffered in an input VC, then competes for the switch.
 *    Buffers are sized in flits; a VC is reserved for a whole packet.
 *  - The 3-stage pipeline (RC, speculative VA+SA, ST) is modelled as
 *    two cycles of pipeline delay after full arrival, then one cycle
 *    per flit of switch/link transmission.
 *  - Credits are modelled with direct visibility into the downstream
 *    buffer (the simulator is single-threaded); credit turnaround is
 *    folded into the pipeline delay.
 *  - Virtual networks (request/forward/response) are sets of VCs; a
 *    packet may only use VCs of its own vnet, which breaks protocol
 *    deadlock cycles. XY routing keeps each vnet cycle-free.
 */

#ifndef CONSIM_NOC_ROUTER_HH
#define CONSIM_NOC_ROUTER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "coherence/protocol.hh"
#include "common/json.hh"
#include "common/ring.hh"
#include "noc/network.hh"
#include "noc/routing.hh"

namespace consim
{

/** NoC structural parameters (derived from MachineConfig). */
struct NocParams
{
    int meshX = 4;
    int meshY = 4;
    int numVnets = 3;
    int vcsPerVnet = 2;
    int vcBufferFlits = 8;   ///< must hold a full data packet
    int pipelineDelay = 2;   ///< cycles from full arrival to SA
    int dataFlits = 5;       ///< 64B block + header @ 16B flits
    int ctrlFlits = 1;

    int totalVcs() const { return numVnets * vcsPerVnet; }
    int flitsOf(MsgType t) const
    {
        return carriesData(t) ? dataFlits : ctrlFlits;
    }
};

/** A packet inside the router network. */
struct RouterPacket
{
    Msg msg;
    int lenFlits = 1;
    Cycle readyCycle = 0; ///< eligible for switch allocation
    int outPort = PortLocal;
};

/**
 * One mesh router. The Mesh wires routers to their neighbors and
 * registers an ejector for the local port.
 */
class Router
{
  public:
    using EjectFn = std::function<void(const Msg &, int len_flits)>;

    Router(CoreId tile, const NocParams &params, NetworkStats *stats);

    /** Wire port @p port to neighbor @p r (nullptr at mesh edges). */
    void setNeighbor(int port, Router *r);

    /** Register the local-port delivery callback. */
    void setEjector(EjectFn fn) { eject_ = std::move(fn); }

    /**
     * Enable per-VM QoS: the top @p reserved_vcs VCs of every vnet
     * only accept packets of @p protected_vm, which also win switch
     * allocation first (with a deterministic yield cycle every fourth
     * cycle so unprotected traffic keeps forward progress). Zero
     * restores the default shared behaviour exactly.
     */
    void setQos(VmId protected_vm, int reserved_vcs);

    /**
     * Ask whether input @p in_port can accept a packet of @p len
     * flits on virtual network @p vnet, sent on behalf of VM @p vm
     * (reserved VCs only admit the protected VM's packets).
     * @param vc_out receives the chosen VC index on success.
     * @return true when an admissible VC with sufficient space exists.
     */
    bool canAccept(int in_port, int vnet, int len, VmId vm,
                   int *vc_out) const;

    /** Reserve @p len flits of space in the chosen VC. */
    void reserve(int in_port, int vc, int len);

    /**
     * Deliver a packet into an input VC whose space was reserved.
     * Computes the route (RC stage) and the SA-ready cycle.
     */
    void arrive(int in_port, int vc, RouterPacket pkt, Cycle now);

    /** Phase 1: advance output transmissions; land arrivals. The
     *  idle early-out lives here so the mesh loop inlines it. */
    void
    tickOutputs(Cycle now)
    {
        if (busyOutputs_ != 0)
            tickOutputsSlow(now);
    }

    /** Phase 2: switch allocation (speculative VA+SA). */
    void
    tickAllocate(Cycle now)
    {
        if (buffered_ != 0)
            tickAllocateSlow(now);
    }

    /** @return true when no buffered packets or active transfers. */
    bool idle() const;

    CoreId tile() const { return tile_; }

    /** @return buffered packets (diagnostics). */
    int bufferedPackets() const;

    /** @return packets mid-transmission on this router's outputs. */
    int transitPackets() const { return busyOutputs_; }

    /**
     * Report every neighbor-bound in-transit packet's downstream
     * credit reservation: the flits it holds in (dstTile, dstPort,
     * dstVc). The mesh-level conservation audit folds these into the
     * per-VC credit equation.
     */
    void forEachTransit(
        const std::function<void(CoreId dst_tile, int dst_port,
                                 int dst_vc, int flits)> &fn) const;

    /**
     * Hardening audit: verify credit and packet accounting. For each
     * input VC, freeFlits + queued flits + inbound in-transit flits
     * must equal vcBufferFlits; buffered_/busyOutputs_ must match a
     * recount. Throws SimError on violation.
     * @param inbound_reserved flits reserved in (port, vc) by packets
     *        in transit from upstream; when null the per-VC equation
     *        degrades to an upper-bound check.
     */
    void checkInvariants(
        const std::function<int(int port, int vc)> &inbound_reserved)
        const;

    /** Credit/occupancy snapshot for the `consim.diag.v1` dump. */
    json::Value creditJson() const;

  private:
    /** Checkpoint layer saves/restores VC queues and output ports. */
    friend struct CkptAccess;

    struct InputVc
    {
        RingBuf<RouterPacket> q;
        int freeFlits = 0;
    };

    struct OutPort
    {
        bool busy = false;
        int remaining = 0;
        int dstVc = 0;
        RouterPacket pkt;
    };

    int vcIndex(int vnet, int vc_in_vnet) const
    {
        return vnet * params_.vcsPerVnet + vc_in_vnet;
    }

    InputVc &in(int port, int vc) { return inputs_[port * params_.totalVcs() + vc]; }
    const InputVc &in(int port, int vc) const
    {
        return inputs_[port * params_.totalVcs() + vc];
    }

    void tickOutputsSlow(Cycle now);
    void tickAllocateSlow(Cycle now);

    /** One switch-allocation sweep; @p protected_only restricts
     *  grants to the QoS-protected VM's packets (priority pass). */
    void allocatePass(Cycle now, bool inPortUsed[NumPorts],
                      bool protected_only);

    /** Recompute the input-VC occupancy bitmask from the queues
     *  (checkpoint restore rebuilds queues behind our back). */
    void rebuildOccupancy();

    CoreId tile_;
    NocParams params_;
    NetworkStats *stats_;
    std::vector<InputVc> inputs_;       ///< [port][vc]
    OutPort outputs_[NumPorts];
    Router *neighbor_[NumPorts] = {};
    EjectFn eject_;
    int rrInput_ = 0;                   ///< SA fairness pointer
    int buffered_ = 0;                  ///< packets across input VCs
    int busyOutputs_ = 0;               ///< outputs mid-transmission
    std::uint64_t occ_ = 0;             ///< input VCs with packets
    VmId qosProtectedVm_ = invalidVm;   ///< QoS: protected VM (config)
    int qosReservedVcs_ = 0;            ///< QoS: reserved VCs per vnet
};

} // namespace consim

#endif // CONSIM_NOC_ROUTER_HH
