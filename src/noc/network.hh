/**
 * @file
 * Abstract interconnect interface plus an idealized fixed-latency
 * implementation used as an ablation baseline. The real interconnect
 * is the flit-level Mesh (mesh.hh).
 */

#ifndef CONSIM_NOC_NETWORK_HH
#define CONSIM_NOC_NETWORK_HH

#include <functional>
#include <utility>

#include "coherence/protocol.hh"
#include "common/json.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace consim
{

/** Aggregate interconnect statistics. */
struct NetworkStats
{
    stats::Counter packetsInjected;
    stats::Counter packetsEjected;
    stats::Counter flitHops;        ///< flits x links traversed
    stats::Counter linkBusyCycles;  ///< cycles any link transmitted
    stats::Average latency;         ///< inject -> eject, all packets
    stats::Average latencyData;     ///< data packets only
    stats::Average latencyCtrl;     ///< control packets only

    void
    reset()
    {
        packetsInjected.reset();
        packetsEjected.reset();
        flitHops.reset();
        linkBusyCycles.reset();
        latency.reset();
        latencyData.reset();
        latencyCtrl.reset();
    }

    /** Register every member into @p g (hierarchical registry). */
    void
    registerIn(stats::Group &g)
    {
        g.add("packets_injected", &packetsInjected);
        g.add("packets_ejected", &packetsEjected);
        g.add("flit_hops", &flitHops);
        g.add("link_busy_cycles", &linkBusyCycles);
        g.add("latency", &latency);
        g.add("latency_data", &latencyData);
        g.add("latency_ctrl", &latencyCtrl);
    }
};

/** Interconnect interface: inject messages, tick, deliver callback. */
class Network
{
  public:
    using DeliverFn = std::function<void(const Msg &)>;

    virtual ~Network() = default;

    /** Register the delivery callback (owned by System). */
    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /** Inject a cross-tile message at its source tile. */
    virtual void inject(Msg m) = 0;

    /** Advance one cycle. */
    virtual void tick(Cycle now) = 0;

    /** @return true when no packets are in flight (quiesced). */
    virtual bool idle() const = 0;

    /**
     * Hardening-layer audit: verify flit/credit conservation and
     * packet accounting. Throws SimError on violation; the base
     * implementation (ideal network) has nothing to conserve.
     */
    virtual void checkConservation() const {}

    /** Per-router/VC state for the `consim.diag.v1` dump. */
    virtual json::Value diagJson() const
    {
        return json::Value::object();
    }

    /**
     * Per-VM QoS: reserve @p reserved_vcs VCs per vnet for
     * @p protected_vm and arbitrate its packets first. The ideal
     * network has unlimited bandwidth, so there is nothing to
     * enforce and the base implementation ignores it.
     */
    virtual void
    setQos(VmId protected_vm, int reserved_vcs)
    {
        (void)protected_vm;
        (void)reserved_vcs;
    }

    /** Monotonic inject/eject packet counts (never reset; the
     *  watchdog and conservation audits diff these, so they must
     *  survive resetStats). */
    std::uint64_t injectedTotal() const { return injectedTotal_; }
    std::uint64_t ejectedTotal() const { return ejectedTotal_; }

    NetworkStats &netStats() { return stats_; }
    const NetworkStats &netStats() const { return stats_; }

    // --- transport bypass (System's event-core delivery) ---
    //
    // When the ideal network's constant latency is modelled as a
    // scheduled event instead of an inflight_ entry (see
    // System::send), the System still owns this object's statistics:
    // these hooks account an inject/eject performed on the network's
    // behalf so every counter reads exactly as if tick() had
    // delivered the message itself.

    /** Account one bypassed injection. */
    void
    countInject()
    {
        ++stats_.packetsInjected;
        ++injectedTotal_;
    }

    /** Account one bypassed ejection (same math as recordEject). */
    void
    countEject(const Msg &m, Cycle now, int len_flits)
    {
        recordEject(m, now, len_flits);
    }

    /**
     * Batch-merge bypassed-delivery statistics accumulated elsewhere
     * (the parallel engine's per-tile lanes). All latency samples are
     * integer-valued doubles, so summing them per lane and merging
     * the sums is exact — byte-identical to sampling one at a time.
     */
    void
    mergeBypassed(std::uint64_t injects, std::uint64_t ejects,
                  double lat_sum, std::uint64_t data_n,
                  double data_sum, std::uint64_t ctrl_n,
                  double ctrl_sum)
    {
        stats_.packetsInjected += injects;
        injectedTotal_ += injects;
        stats_.packetsEjected += ejects;
        ejectedTotal_ += ejects;
        stats_.latency.restore(stats_.latency.sum() + lat_sum,
                               stats_.latency.count() + ejects);
        stats_.latencyData.restore(
            stats_.latencyData.sum() + data_sum,
            stats_.latencyData.count() + data_n);
        stats_.latencyCtrl.restore(
            stats_.latencyCtrl.sum() + ctrl_sum,
            stats_.latencyCtrl.count() + ctrl_n);
    }

    /** Registry node ("net") holding the interconnect stats. */
    stats::Group &statsGroup() { return statsGroup_; }

  protected:
    friend struct CkptAccess;

    Network() { stats_.registerIn(statsGroup_); }

    void
    recordEject(const Msg &m, Cycle now, int len_flits)
    {
        ++stats_.packetsEjected;
        ++ejectedTotal_;
        const double lat = static_cast<double>(now - m.injectCycle);
        stats_.latency.sample(lat);
        if (len_flits > 1)
            stats_.latencyData.sample(lat);
        else
            stats_.latencyCtrl.sample(lat);
    }

    DeliverFn deliver_;
    NetworkStats stats_;
    std::uint64_t injectedTotal_ = 0;
    std::uint64_t ejectedTotal_ = 0;
    stats::Group statsGroup_{"net"};
};

/**
 * Ablation network: every message is delivered after a fixed latency,
 * with unlimited bandwidth. Comparing against the Mesh isolates the
 * congestion component of the scheduling-policy results.
 */
class IdealNetwork : public Network
{
  public:
    explicit IdealNetwork(int latency) : latency_(latency) {}

    void
    inject(Msg m) override
    {
        ++stats_.packetsInjected;
        ++injectedTotal_;
        inflight_.push_back({m.injectCycle + latency_, std::move(m)});
    }

    void
    tick(Cycle now) override
    {
        while (!inflight_.empty() && inflight_.front().first <= now) {
            Msg m = std::move(inflight_.front().second);
            inflight_.pop_front();
            recordEject(m, now, carriesData(m.type) ? 5 : 1);
            deliver_(m);
        }
    }

    bool idle() const override { return inflight_.empty(); }

  private:
    friend struct CkptAccess;

    int latency_;
    // FIFO works because latency is constant. RingBuf keeps the
    // warmed-up queue allocation-free (see common/ring.hh).
    RingBuf<std::pair<Cycle, Msg>> inflight_;
};

} // namespace consim

#endif // CONSIM_NOC_NETWORK_HH
