/**
 * @file
 * Dimension-order (XY) routing on the 2-D mesh. X is resolved first,
 * then Y; deterministic and deadlock-free within each virtual network.
 */

#ifndef CONSIM_NOC_ROUTING_HH
#define CONSIM_NOC_ROUTING_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace consim
{

/** Router port indices. Local connects to the tile's NI. */
enum Port : int
{
    PortLocal = 0,
    PortNorth = 1, ///< towards y-1
    PortSouth = 2, ///< towards y+1
    PortEast = 3,  ///< towards x+1
    PortWest = 4,  ///< towards x-1
    NumPorts = 5,
};

/** @return the port on the neighbor that faces back at us. */
constexpr int
oppositePort(int port)
{
    switch (port) {
      case PortNorth: return PortSouth;
      case PortSouth: return PortNorth;
      case PortEast: return PortWest;
      case PortWest: return PortEast;
      default: return PortLocal;
    }
}

/**
 * Compute the output port for a packet at tile @p here going to tile
 * @p dest on an meshX x meshY mesh, using XY dimension-order routing.
 */
inline int
xyRoute(CoreId here, CoreId dest, int mesh_x)
{
    const int hx = here % mesh_x, hy = here / mesh_x;
    const int dx = dest % mesh_x, dy = dest / mesh_x;
    if (dx > hx)
        return PortEast;
    if (dx < hx)
        return PortWest;
    if (dy > hy)
        return PortSouth;
    if (dy < hy)
        return PortNorth;
    return PortLocal;
}

/** @return Manhattan hop distance between two tiles. */
inline int
hopDistance(CoreId a, CoreId b, int mesh_x)
{
    const int ax = a % mesh_x, ay = a / mesh_x;
    const int bx = b % mesh_x, by = b / mesh_x;
    const int dx = ax > bx ? ax - bx : bx - ax;
    const int dy = ay > by ? ay - by : by - ay;
    return dx + dy;
}

} // namespace consim

#endif // CONSIM_NOC_ROUTING_HH
