#include "noc/router.hh"

#include "common/check.hh"
#include "common/logging.hh"

namespace consim
{

Router::Router(CoreId tile, const NocParams &params, NetworkStats *stats)
    : tile_(tile), params_(params), stats_(stats),
      inputs_(NumPorts * params.totalVcs())
{
    CONSIM_ASSERT(params_.vcBufferFlits >= params_.dataFlits,
                  "VC buffer must hold a full data packet");
    CONSIM_ASSERT(NumPorts * params_.totalVcs() <= 64,
                  "switch allocator tracks input-VC occupancy in one "
                  "64-bit word; ", NumPorts * params_.totalVcs(),
                  " input VCs exceed it");
    for (auto &vc : inputs_) {
        vc.freeFlits = params_.vcBufferFlits;
        // A VC holds at most vcBufferFlits packets (1 flit minimum),
        // so a warmed ring never grows mid-run.
        vc.q.reserve(static_cast<std::size_t>(params_.vcBufferFlits));
    }
}

void
Router::setNeighbor(int port, Router *r)
{
    CONSIM_ASSERT(port > PortLocal && port < NumPorts, "bad port ", port);
    neighbor_[port] = r;
}

void
Router::setQos(VmId protected_vm, int reserved_vcs)
{
    CONSIM_ASSERT(reserved_vcs >= 0 &&
                      reserved_vcs < params_.vcsPerVnet,
                  "QoS must leave at least one shared VC per vnet "
                  "(reserved ", reserved_vcs, " of ",
                  params_.vcsPerVnet, ")");
    qosProtectedVm_ = protected_vm;
    qosReservedVcs_ = reserved_vcs;
}

bool
Router::canAccept(int in_port, int vnet, int len, VmId vm,
                  int *vc_out) const
{
    // Unprotected traffic is confined to the low (shared) VCs of its
    // vnet; protected traffic prefers its reserved high VCs and falls
    // back to the shared ones. With no reservation this is exactly
    // the original first-fit scan.
    const int shared = params_.vcsPerVnet - qosReservedVcs_;
    const bool prot =
        qosReservedVcs_ > 0 && vm == qosProtectedVm_;
    if (prot) {
        for (int i = shared; i < params_.vcsPerVnet; ++i) {
            const int vc = vcIndex(vnet, i);
            if (in(in_port, vc).freeFlits >= len) {
                if (vc_out)
                    *vc_out = vc;
                return true;
            }
        }
    }
    for (int i = 0; i < shared; ++i) {
        const int vc = vcIndex(vnet, i);
        if (in(in_port, vc).freeFlits >= len) {
            if (vc_out)
                *vc_out = vc;
            return true;
        }
    }
    return false;
}

void
Router::reserve(int in_port, int vc, int len)
{
    auto &ivc = in(in_port, vc);
    CONSIM_ASSERT(ivc.freeFlits >= len, "reserve without space");
    ivc.freeFlits -= len;
}

void
Router::arrive(int in_port, int vc, RouterPacket pkt, Cycle now)
{
    // RC stage: compute the output port once, on arrival.
    pkt.outPort = xyRoute(tile_, pkt.msg.dstTile, params_.meshX);
    pkt.readyCycle = now + params_.pipelineDelay;
    in(in_port, vc).q.push_back(std::move(pkt));
    occ_ |= std::uint64_t(1)
            << (in_port * params_.totalVcs() + vc);
    ++buffered_;
}

void
Router::tickOutputsSlow(Cycle now)
{
    for (int port = 0; port < NumPorts; ++port) {
        auto &out = outputs_[port];
        if (!out.busy)
            continue;
        ++stats_->linkBusyCycles;
        if (--out.remaining > 0)
            continue;
        out.busy = false;
        --busyOutputs_;
        if (port == PortLocal) {
            CONSIM_ASSERT(eject_, "no ejector on router ", tile_);
            eject_(out.pkt.msg, out.pkt.lenFlits);
        } else {
            Router *next = neighbor_[port];
            CONSIM_ASSERT(next, "transmit into mesh edge at ", tile_);
            next->arrive(oppositePort(port), out.dstVc,
                         std::move(out.pkt), now);
        }
    }
}

void
Router::tickAllocateSlow(Cycle now)
{
    bool inPortUsed[NumPorts] = {};
    // With QoS active the protected VM's packets get first claim on
    // the switch, except on a deterministic yield cycle (every
    // fourth) that degrades to plain round-robin so unprotected
    // traffic cannot starve behind a saturating protected stream.
    if (qosReservedVcs_ > 0 && (now & 3) != 3)
        allocatePass(now, inPortUsed, /*protected_only=*/true);
    allocatePass(now, inPortUsed, /*protected_only=*/false);
}

void
Router::allocatePass(Cycle now, bool inPortUsed[NumPorts],
                     bool protected_only)
{
    const int total = NumPorts * params_.totalVcs();
    // Round-robin over input VCs for fairness; one grant per input
    // port and one per output port per cycle (shared across passes).
    //
    // This is the reference arbitration loop, kept verbatim in
    // spirit: visit idx = (rrInput_ + k) % total for k = 0..total-1,
    // where rrInput_ advances to idx+1 on every grant (so the visit
    // sequence re-anchors mid-sweep). Iterations that land on an
    // empty VC have no side effects, so the occupancy bitmask lets
    // us jump straight to the next non-empty VC in that exact
    // sequence instead of touching all NumPorts*totalVcs queues —
    // the arbitration order (and therefore every simulation result)
    // is unchanged.
    int k = 0;
    while (k < total && occ_ != 0) {
        const int start = (rrInput_ + k) % total;
        int idx;
        if (const std::uint64_t ge = occ_ >> start; ge != 0) {
            const int d = lowestSetBit(ge);
            k += d;
            idx = start + d;
        } else {
            // Wrap: the next occupied VC sits below `start`.
            const int w = lowestSetBit(occ_);
            k += (total - start) + w;
            idx = w;
        }
        if (k >= total)
            break;
        const int port = idx / params_.totalVcs();
        const int vc = idx % params_.totalVcs();
        auto &ivc = in(port, vc);
        ++k;
        if (inPortUsed[port])
            continue;
        RouterPacket &pkt = ivc.q.front();
        if (protected_only && pkt.msg.vm != qosProtectedVm_)
            continue;
        if (pkt.readyCycle > now)
            continue;
        auto &out = outputs_[pkt.outPort];
        if (out.busy)
            continue;

        int downVc = 0;
        if (pkt.outPort != PortLocal) {
            Router *next = neighbor_[pkt.outPort];
            CONSIM_ASSERT(next, "route into mesh edge at ", tile_,
                          " port ", pkt.outPort, " dst ",
                          pkt.msg.dstTile);
            const int vnet = vnetOf(pkt.msg.type);
            if (!next->canAccept(oppositePort(pkt.outPort), vnet,
                                 pkt.lenFlits, pkt.msg.vm, &downVc)) {
                continue; // back-pressure: retry next cycle
            }
            next->reserve(oppositePort(pkt.outPort), downVc,
                          pkt.lenFlits);
            stats_->flitHops += pkt.lenFlits;
        }

        // Grant: occupy the output for the packet's serialization
        // latency, free this VC's buffer space, advance fairness.
        out.busy = true;
        ++busyOutputs_;
        out.remaining = pkt.lenFlits;
        out.dstVc = downVc;
        out.pkt = std::move(pkt);
        ivc.q.pop_front();
        if (ivc.q.empty())
            occ_ &= ~(std::uint64_t(1) << idx);
        --buffered_;
        ivc.freeFlits += out.pkt.lenFlits;
        inPortUsed[port] = true;
        rrInput_ = idx + 1 == total ? 0 : idx + 1;
    }
}

void
Router::rebuildOccupancy()
{
    occ_ = 0;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        if (!inputs_[i].q.empty())
            occ_ |= std::uint64_t(1) << i;
    }
}

bool
Router::idle() const
{
    return buffered_ == 0 && busyOutputs_ == 0;
}

int
Router::bufferedPackets() const
{
    int n = 0;
    for (const auto &ivc : inputs_)
        n += static_cast<int>(ivc.q.size());
    return n;
}

void
Router::forEachTransit(
    const std::function<void(CoreId, int, int, int)> &fn) const
{
    for (int port = 0; port < NumPorts; ++port) {
        const auto &out = outputs_[port];
        if (!out.busy || port == PortLocal)
            continue;
        // Non-null: asserted when the grant was issued.
        const Router *next = neighbor_[port];
        fn(next->tile_, oppositePort(port), out.dstVc,
           out.pkt.lenFlits);
    }
}

void
Router::checkInvariants(
    const std::function<int(int, int)> &inbound_reserved) const
{
    int buffered = 0;
    for (int port = 0; port < NumPorts; ++port) {
        for (int vc = 0; vc < params_.totalVcs(); ++vc) {
            const auto &ivc = in(port, vc);
            int queuedFlits = 0;
            for (const auto &pkt : ivc.q) {
                if (pkt.lenFlits < 1 ||
                    pkt.lenFlits > params_.vcBufferFlits) {
                    CONSIM_CHECK_FAIL("router ", tile_,
                                      ": packet with bad length ",
                                      pkt.lenFlits, " flits");
                }
                queuedFlits += pkt.lenFlits;
            }
            buffered += static_cast<int>(ivc.q.size());
            if (ivc.freeFlits < 0 ||
                ivc.freeFlits > params_.vcBufferFlits) {
                CONSIM_CHECK_FAIL("router ", tile_, " port ", port,
                                  " vc ", vc, ": credit count ",
                                  ivc.freeFlits, " out of range");
            }
            const int held = ivc.freeFlits + queuedFlits;
            if (inbound_reserved) {
                const int transit = inbound_reserved(port, vc);
                if (held + transit != params_.vcBufferFlits) {
                    CONSIM_CHECK_FAIL(
                        "router ", tile_, " port ", port, " vc ", vc,
                        ": flit credits not conserved (free=",
                        ivc.freeFlits, " queued=", queuedFlits,
                        " in_transit=", transit, " buffer=",
                        params_.vcBufferFlits, ")");
                }
            } else if (held > params_.vcBufferFlits) {
                CONSIM_CHECK_FAIL(
                    "router ", tile_, " port ", port, " vc ", vc,
                    ": credits exceed buffer (free=", ivc.freeFlits,
                    " queued=", queuedFlits, " buffer=",
                    params_.vcBufferFlits, ")");
            }
        }
    }
    if (buffered != buffered_) {
        CONSIM_CHECK_FAIL("router ", tile_,
                          ": buffered packet count drifted (cached=",
                          buffered_, " recount=", buffered, ")");
    }
    int busy = 0;
    for (const auto &out : outputs_) {
        if (out.busy) {
            ++busy;
            if (out.remaining < 1) {
                CONSIM_CHECK_FAIL("router ", tile_,
                                  ": busy output with ",
                                  out.remaining, " flits remaining");
            }
        }
    }
    if (busy != busyOutputs_) {
        CONSIM_CHECK_FAIL("router ", tile_,
                          ": busy output count drifted (cached=",
                          busyOutputs_, " recount=", busy, ")");
    }
}

json::Value
Router::creditJson() const
{
    auto v = json::Value::object();
    v.set("tile", tile_);
    v.set("buffered", buffered_);
    v.set("busy_outputs", busyOutputs_);
    auto vcs = json::Value::array();
    for (int port = 0; port < NumPorts; ++port) {
        for (int vc = 0; vc < params_.totalVcs(); ++vc) {
            const auto &ivc = in(port, vc);
            // Only VCs holding packets or missing credits are
            // interesting in a hang dump.
            if (ivc.q.empty() &&
                ivc.freeFlits == params_.vcBufferFlits) {
                continue;
            }
            auto e = json::Value::object();
            e.set("port", port);
            e.set("vc", vc);
            e.set("free_flits", ivc.freeFlits);
            e.set("queued", static_cast<int>(ivc.q.size()));
            if (!ivc.q.empty())
                e.set("head", describe(ivc.q.front().msg));
            vcs.push(std::move(e));
        }
    }
    v.set("vcs", std::move(vcs));
    return v;
}

} // namespace consim
