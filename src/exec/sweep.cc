#include "exec/sweep.hh"

#include <chrono>
#include <thread>

#include "common/check.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "exec/thread_pool.hh"

namespace consim
{

int
sweepJobs(const SweepOptions &opts)
{
    return opts.jobs > 0 ? opts.jobs : ThreadPool::defaultThreads();
}

namespace
{

/**
 * Run one point with crash isolation. The retry ladder:
 *
 *   attempt 0   — the configured seed, full run;
 *   attempt 1   — if the failure carried a pre-trip checkpoint
 *                 (periodic snapshotting on), resume it: same seed,
 *                 and only the cycles after the snapshot re-run;
 *   attempt 2+  — full re-runs with a per-attempt seed offset (a
 *                 failure tied to one seed's event interleaving must
 *                 not recur verbatim).
 *
 * Each retry backs off exponentially. The seed that finally succeeded
 * is recorded as effectiveSeed: a mutated seed means the point's
 * statistics answer a different question than configured, so that
 * recovery also warns loudly. If every attempt fails, the last error
 * is recorded.
 */
SweepRun
runPoint(const RunConfig &cfg, const SweepOptions &opts)
{
    SweepRun out;
    out.effectiveSeed = cfg.seed;
    RunConfig base = cfg;
    if (opts.pointDeadlineCycles != 0 && base.cycleDeadline == 0)
        base.cycleDeadline = opts.pointDeadlineCycles;
    std::string ckpt_text; // last snapshot attached to a SimError
    const auto run_attempt = [&](bool resume, const json::Value *doc,
                                 const RunConfig &c) -> bool {
        try {
            out.result = resume ? resumeExperiment(*doc)
                                : runExperiment(c);
            return true;
        } catch (const SimError &e) {
            out.errorKind = toString(e.kind());
            out.errorMessage = e.what();
            out.diag = e.diag();
            if (!e.ckpt().empty())
                ckpt_text = e.ckpt();
            out.ckpt = ckpt_text;
        } catch (const std::exception &e) {
            out.errorKind = "exception";
            out.errorMessage = e.what();
            out.diag.clear();
        }
        return false;
    };
    for (int attempt = 0;; ++attempt) {
        json::Value doc;
        const bool can_resume = attempt == 1 && !ckpt_text.empty() &&
                                json::parse(ckpt_text, doc) &&
                                doc.find("context") != nullptr;
        RunConfig c = base;
        c.seed = base.seed + static_cast<std::uint64_t>(attempt) *
                                 0x9e3779b97f4a7c15ull;
        if (run_attempt(can_resume, &doc, c)) {
            out.ok = true;
            out.retries = attempt;
            out.resumed = can_resume;
            out.effectiveSeed = can_resume ? base.seed : c.seed;
            out.errorKind.clear();
            out.errorMessage.clear();
            out.diag.clear();
            out.ckpt.clear();
            if (out.effectiveSeed != cfg.seed) {
                CONSIM_WARN("sweep point recovered under mutated seed ",
                            out.effectiveSeed, " (configured seed ",
                            cfg.seed,
                            "); its statistics reflect the mutated "
                            "seed, see effective_seed in the output");
            }
            return out;
        }
        out.retries = attempt;
        if (attempt >= opts.maxRetries)
            return out;
        // Backoff before retrying: cheap insurance against failures
        // caused by transient host pressure (the deterministic ones
        // will simply fail again and land in the error record).
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1L << attempt));
    }
}

} // namespace

std::vector<SweepRun>
runSweepEx(const std::vector<RunConfig> &configs,
           const SweepOptions &opts)
{
    std::vector<SweepRun> runs(configs.size());
    if (configs.empty())
        return runs;

    const int jobs = sweepJobs(opts);
    if (jobs == 1 || configs.size() == 1) {
        // No pool: keep single-threaded sweeps trivially debuggable.
        for (std::size_t i = 0; i < configs.size(); ++i)
            runs[i] = runPoint(configs[i], opts);
        return runs;
    }

    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        pool.submit([&runs, &configs, &opts, i] {
            runs[i] = runPoint(configs[i], opts);
        });
    }
    pool.wait();
    return runs;
}

std::vector<RunResult>
runSweep(const std::vector<RunConfig> &configs,
         const SweepOptions &opts)
{
    std::vector<SweepRun> runs = runSweepEx(configs, opts);
    std::vector<RunResult> results(configs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].ok) {
            results[i] = std::move(runs[i].result);
        } else {
            CONSIM_WARN("sweep point ", i, " failed after ",
                        runs[i].retries, " retries (",
                        runs[i].errorKind, ": ",
                        runs[i].errorMessage,
                        "); salvaging the rest of the batch");
        }
    }
    return results;
}

std::vector<RunResult>
runSweepAveraged(const std::vector<RunConfig> &configs,
                 const std::vector<std::uint64_t> &seeds,
                 const SweepOptions &opts)
{
    CONSIM_ASSERT(!seeds.empty(), "need at least one seed");

    std::vector<RunConfig> flat;
    flat.reserve(configs.size() * seeds.size());
    for (const auto &cfg : configs) {
        for (const auto seed : seeds) {
            flat.push_back(cfg);
            flat.back().seed = seed;
        }
    }

    std::vector<SweepRun> runs = runSweepEx(flat, opts);

    std::vector<RunResult> out;
    out.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::vector<RunResult> group;
        group.reserve(seeds.size());
        for (std::size_t s = 0; s < seeds.size(); ++s) {
            SweepRun &run = runs[i * seeds.size() + s];
            if (run.ok) {
                group.push_back(std::move(run.result));
            } else {
                CONSIM_WARN("config ", i, " seed ", seeds[s],
                            " failed (", run.errorKind, ": ",
                            run.errorMessage,
                            "); averaging the surviving seeds");
            }
        }
        if (group.empty()) {
            CONSIM_WARN("config ", i, " failed under every seed; "
                        "emitting an empty result");
            out.emplace_back();
        } else {
            out.push_back(averageRunResults(std::move(group)));
        }
    }
    return out;
}

namespace
{

json::Value
errorJson(const SweepRun &run)
{
    auto e = json::Value::object();
    e.set("kind", run.errorKind);
    e.set("message", run.errorMessage);
    if (!run.diag.empty()) {
        json::Value diag;
        if (json::parse(run.diag, diag))
            e.set("diag", std::move(diag));
        else
            e.set("diag_text", run.diag);
    }
    return e;
}

} // namespace

json::Value
sweepResultsJson(const std::vector<RunConfig> &configs,
                 const std::vector<SweepRun> &runs)
{
    CONSIM_ASSERT(configs.size() == runs.size(),
                  "sweep JSON: configs/runs size mismatch");
    auto doc = json::Value::object();
    doc.set("schema", "consim.sweep.v2");
    auto points = json::Value::array();
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const SweepRun &run = runs[i];
        auto p = json::Value::object();
        p.set("ok", run.ok);
        p.set("retries", run.retries);
        if (run.ok) {
            // Seed honesty: the config echo below repeats the seed as
            // *asked*; effective_seed is the seed the surviving
            // attempt actually ran under.
            p.set("effective_seed", run.effectiveSeed);
            if (run.resumed)
                p.set("resumed", true);
            // Inline the consim.run.v1 envelope fields after the
            // outcome header.
            const auto envelope = runResultJson(configs[i], run.result);
            for (const auto &[key, val] : envelope.members())
                p.set(key, val);
        } else {
            p.set("config", toJson(configs[i]));
            p.set("error", errorJson(run));
        }
        points.push(std::move(p));
    }
    doc.set("points", std::move(points));
    return doc;
}

json::Value
sweepResultsJson(const std::vector<RunConfig> &configs,
                 const std::vector<RunResult> &results)
{
    CONSIM_ASSERT(configs.size() == results.size(),
                  "sweep JSON: configs/results size mismatch");
    std::vector<SweepRun> runs(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        runs[i].ok = true;
        runs[i].result = results[i];
        runs[i].effectiveSeed = configs[i].seed;
    }
    return sweepResultsJson(configs, runs);
}

} // namespace consim
