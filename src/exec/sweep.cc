#include "exec/sweep.hh"

#include "common/logging.hh"
#include "core/report.hh"
#include "exec/thread_pool.hh"

namespace consim
{

int
sweepJobs(const SweepOptions &opts)
{
    return opts.jobs > 0 ? opts.jobs : ThreadPool::defaultThreads();
}

std::vector<RunResult>
runSweep(const std::vector<RunConfig> &configs,
         const SweepOptions &opts)
{
    std::vector<RunResult> results(configs.size());
    if (configs.empty())
        return results;

    const int jobs = sweepJobs(opts);
    if (jobs == 1 || configs.size() == 1) {
        // No pool: keep single-threaded sweeps trivially debuggable.
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = runExperiment(configs[i]);
        return results;
    }

    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        pool.submit(
            [&results, &configs, i] {
                results[i] = runExperiment(configs[i]);
            });
    }
    pool.wait();
    return results;
}

std::vector<RunResult>
runSweepAveraged(const std::vector<RunConfig> &configs,
                 const std::vector<std::uint64_t> &seeds,
                 const SweepOptions &opts)
{
    CONSIM_ASSERT(!seeds.empty(), "need at least one seed");

    std::vector<RunConfig> flat;
    flat.reserve(configs.size() * seeds.size());
    for (const auto &cfg : configs) {
        for (const auto seed : seeds) {
            flat.push_back(cfg);
            flat.back().seed = seed;
        }
    }

    std::vector<RunResult> runs = runSweep(flat, opts);

    std::vector<RunResult> out;
    out.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        std::vector<RunResult> group(
            std::make_move_iterator(runs.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        i * seeds.size())),
            std::make_move_iterator(runs.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        (i + 1) * seeds.size())));
        out.push_back(averageRunResults(std::move(group)));
    }
    return out;
}

json::Value
sweepResultsJson(const std::vector<RunConfig> &configs,
                 const std::vector<RunResult> &results)
{
    CONSIM_ASSERT(configs.size() == results.size(),
                  "sweep JSON: configs/results size mismatch");
    auto doc = json::Value::object();
    doc.set("schema", "consim.sweep.v1");
    auto points = json::Value::array();
    for (std::size_t i = 0; i < configs.size(); ++i)
        points.push(runResultJson(configs[i], results[i]));
    doc.set("points", std::move(points));
    return doc;
}

} // namespace consim
