#include "exec/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "common/parse.hh"

namespace consim
{

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !jobs_.empty();
            });
            if (jobs_.empty())
                return; // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

LockstepTeam::LockstepTeam(int slots, SlotFn fn)
    : slots_(std::max(1, slots)), fn_(std::move(fn))
{
    workers_.reserve(static_cast<std::size_t>(slots_ - 1));
    for (int s = 1; s < slots_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

LockstepTeam::~LockstepTeam()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();
}

void
LockstepTeam::run()
{
    // All workers from the previous epoch have already checked in
    // (run() waited for them), so resetting the counter is safe.
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    fn_(0);
    int spins = 0;
    while (done_.load(std::memory_order_acquire) != slots_ - 1)
        backoff(spins);
}

void
LockstepTeam::workerLoop(int slot)
{
    std::uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen)
            backoff(spins);
        if (stop_.load(std::memory_order_acquire))
            return;
        ++seen;
        fn_(slot);
        done_.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
LockstepTeam::backoff(int &spins)
{
    if (spins < 128) {
        ++spins;
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
        return;
    }
    std::this_thread::yield();
}

int
ThreadPool::defaultThreads()
{
    // Strict parse: CONSIM_JOBS=garbage is fatal rather than silently
    // falling back to hardware_concurrency.
    const int jobs =
        envIntInRange("CONSIM_JOBS", 1, 4096, 0 /* unset */);
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace consim
