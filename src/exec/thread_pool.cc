#include "exec/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "common/parse.hh"

namespace consim
{

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !jobs_.empty();
            });
            if (jobs_.empty())
                return; // stopping and drained
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

int
ThreadPool::defaultThreads()
{
    // Strict parse: CONSIM_JOBS=garbage is fatal rather than silently
    // falling back to hardware_concurrency.
    const int jobs =
        envIntInRange("CONSIM_JOBS", 1, 4096, 0 /* unset */);
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace consim
