/**
 * @file
 * Host-side execution primitives: ThreadPool, a fixed-size
 * work-queue pool for the sweep engine (independent simulations on
 * independent OS threads), and LockstepTeam, the barrier-style
 * worker team the tile-parallel event core advances its lanes with.
 */

#ifndef CONSIM_EXEC_THREAD_POOL_HH
#define CONSIM_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace consim
{

/** Fixed-size worker pool draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (>= 1; clamped). */
    explicit ThreadPool(int threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** @return number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * @return worker count from the CONSIM_JOBS environment variable,
     * falling back to std::thread::hardware_concurrency().
     */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; ///< queued + executing
    bool stopping_ = false;
};

/**
 * Persistent worker team executing one fixed callback on every slot
 * per run() call, with a full barrier before run() returns. Built
 * for very frequent, very short phases (a lookahead window is a few
 * simulated cycles), so workers rendezvous on atomics with a bounded
 * spin before yielding — a condition variable per window would cost
 * more than the window itself, while pure spinning would starve
 * oversubscribed hosts (including single-CPU CI runners).
 *
 * The caller participates as slot 0, so a team of N slots spawns
 * N - 1 threads. run() publishes whatever the caller wrote before it
 * (release on the epoch bump / acquire in the workers) and the
 * barrier hands the workers' writes back (acquire on the done
 * counter), so coordinator/worker handoffs need no further fences.
 */
class LockstepTeam
{
  public:
    using SlotFn = std::function<void(int)>;

    /** @param slots total slots including the caller's slot 0. */
    LockstepTeam(int slots, SlotFn fn);

    /** Wakes and joins the workers (no run() may be in flight). */
    ~LockstepTeam();

    LockstepTeam(const LockstepTeam &) = delete;
    LockstepTeam &operator=(const LockstepTeam &) = delete;

    int slots() const { return slots_; }

    /** Run fn(slot) on every slot; returns once all have finished. */
    void run();

  private:
    void workerLoop(int slot);

    /** Spin briefly, then yield (hosts may have fewer CPUs than
     *  slots; a parked sibling must get cycles to finish). */
    static void backoff(int &spins);

    int slots_;
    SlotFn fn_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> done_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;
};

} // namespace consim

#endif // CONSIM_EXEC_THREAD_POOL_HH
