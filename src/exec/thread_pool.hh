/**
 * @file
 * ThreadPool: a fixed-size work-queue thread pool for the sweep
 * engine. Host-side parallelism only — the simulator itself stays
 * strictly single-threaded per System instance; the pool just runs
 * independent simulations on independent OS threads.
 */

#ifndef CONSIM_EXEC_THREAD_POOL_HH
#define CONSIM_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace consim
{

/** Fixed-size worker pool draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (>= 1; clamped). */
    explicit ThreadPool(int threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** @return number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * @return worker count from the CONSIM_JOBS environment variable,
     * falling back to std::thread::hardware_concurrency().
     */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; ///< queued + executing
    bool stopping_ = false;
};

} // namespace consim

#endif // CONSIM_EXEC_THREAD_POOL_HH
