/**
 * @file
 * Sweep engine: run many independent simulation points in parallel.
 *
 * Every paper figure is a sweep over independent
 * (mix x sharing-degree x policy x seed) points; each point is a
 * self-contained single-threaded System, so host-level parallelism
 * is embarrassingly available. runSweep farms the configs out to a
 * work-queue thread pool (CONSIM_JOBS threads, default
 * hardware_concurrency) and returns results positionally.
 *
 * Determinism contract: a simulation's result depends only on its
 * RunConfig (including seed) — never on which host thread ran it,
 * the sweep's batch composition, or execution order. runSweep output
 * is therefore bit-identical to calling runExperiment serially on
 * the same configs (tests/test_determinism.cc enforces this).
 */

#ifndef CONSIM_EXEC_SWEEP_HH
#define CONSIM_EXEC_SWEEP_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "core/experiment.hh"

namespace consim
{

/** Sweep-engine knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = CONSIM_JOBS / hardware_concurrency. */
    int jobs = 0;
    /** Extra attempts per failed point (each with a fresh seed
     *  offset and exponential backoff). 0 = fail fast. */
    int maxRetries = 2;
    /** Per-point simulated-cycle budget applied to configs that do
     *  not set their own cycleDeadline. 0 = none. */
    Cycle pointDeadlineCycles = 0;
};

/** @return the resolved worker count for @p opts. */
int sweepJobs(const SweepOptions &opts = {});

/**
 * Outcome of one crash-isolated sweep point. A point that throws
 * (SimError from a tripped checker/watchdog/deadline, or any other
 * exception) is retried up to SweepOptions::maxRetries times with a
 * per-attempt seed offset; if every attempt fails, the last error is
 * recorded here and the rest of the batch is unaffected.
 */
struct SweepRun
{
    bool ok = false;
    int retries = 0;          ///< failed attempts before the outcome
    RunResult result;         ///< valid when ok
    /** Seed the successful attempt actually ran under. Retries mutate
     *  the seed, so this can differ from the config's seed — in which
     *  case the point's statistics answer a *different* question than
     *  asked, and consumers must be told (`effective_seed` in
     *  consim.sweep.v2, plus a warning at recovery time). */
    std::uint64_t effectiveSeed = 0;
    /** True when the point recovered by resuming the failed run from
     *  its pre-trip checkpoint (same seed) rather than re-running. */
    bool resumed = false;
    std::string errorKind;    ///< "invariant"|"watchdog"|"deadline"|
                              ///< "exception" (when !ok)
    std::string errorMessage; ///< exception what() (when !ok)
    std::string diag;         ///< consim.diag.v1 text ("" if none)
    /** `consim.ckpt.v5` text of the last pre-trip snapshot attached
     *  to the final error ("" when snapshotting was off or the point
     *  succeeded) — resumable via resumeExperiment / --resume. */
    std::string ckpt;
};

/**
 * Crash-isolated sweep: run every config (in parallel) and return
 * per-point outcomes positionally. Never throws for a point failure;
 * a failed point yields an !ok entry carrying the error and its
 * diagnostic dump.
 */
std::vector<SweepRun> runSweepEx(const std::vector<RunConfig> &configs,
                                 const SweepOptions &opts = {});

/**
 * Run every config (in parallel) and return results positionally:
 * result[i] corresponds to configs[i]. Points that fail even after
 * retries are salvaged as default-constructed RunResults with a
 * warning on stderr (use runSweepEx to see per-point outcomes).
 */
std::vector<RunResult> runSweep(const std::vector<RunConfig> &configs,
                                const SweepOptions &opts = {});

/**
 * Expand each config over @p seeds, run the flat (config x seed)
 * sweep in parallel, and reduce each config's seed runs with
 * averageRunResults. result[i] corresponds to configs[i]; each
 * config's own `seed` field is ignored in favour of @p seeds.
 * Failed seed runs are dropped from their config's average (with a
 * warning); a config whose every seed fails yields a default
 * RunResult.
 */
std::vector<RunResult>
runSweepAveraged(const std::vector<RunConfig> &configs,
                 const std::vector<std::uint64_t> &seeds,
                 const SweepOptions &opts = {});

/**
 * Serialize a sweep's outcomes as one "consim.sweep.v2" document.
 * points[i] carries {ok, retries} plus, for good points, the
 * consim.run.v1 envelope of configs[i]/results[i], or, for failed
 * points, the config echo and a structured error (kind, message,
 * parsed consim.diag.v1 dump). Because the JSON writer is
 * deterministic, parallel and serial sweeps of the same configs
 * produce byte-identical documents (tests/test_determinism.cc
 * enforces this).
 */
json::Value sweepResultsJson(const std::vector<RunConfig> &configs,
                             const std::vector<SweepRun> &runs);

/** Same envelope for an all-good result set (ok=true, retries=0). */
json::Value sweepResultsJson(const std::vector<RunConfig> &configs,
                             const std::vector<RunResult> &results);

} // namespace consim

#endif // CONSIM_EXEC_SWEEP_HH
