/**
 * @file
 * Sweep engine: run many independent simulation points in parallel.
 *
 * Every paper figure is a sweep over independent
 * (mix x sharing-degree x policy x seed) points; each point is a
 * self-contained single-threaded System, so host-level parallelism
 * is embarrassingly available. runSweep farms the configs out to a
 * work-queue thread pool (CONSIM_JOBS threads, default
 * hardware_concurrency) and returns results positionally.
 *
 * Determinism contract: a simulation's result depends only on its
 * RunConfig (including seed) — never on which host thread ran it,
 * the sweep's batch composition, or execution order. runSweep output
 * is therefore bit-identical to calling runExperiment serially on
 * the same configs (tests/test_determinism.cc enforces this).
 */

#ifndef CONSIM_EXEC_SWEEP_HH
#define CONSIM_EXEC_SWEEP_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "core/experiment.hh"

namespace consim
{

/** Sweep-engine knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = CONSIM_JOBS / hardware_concurrency. */
    int jobs = 0;
};

/** @return the resolved worker count for @p opts. */
int sweepJobs(const SweepOptions &opts = {});

/**
 * Run every config (in parallel) and return results positionally:
 * result[i] corresponds to configs[i].
 */
std::vector<RunResult> runSweep(const std::vector<RunConfig> &configs,
                                const SweepOptions &opts = {});

/**
 * Expand each config over @p seeds, run the flat (config x seed)
 * sweep in parallel, and reduce each config's seed runs with
 * averageRunResults. result[i] corresponds to configs[i]; each
 * config's own `seed` field is ignored in favour of @p seeds.
 */
std::vector<RunResult>
runSweepAveraged(const std::vector<RunConfig> &configs,
                 const std::vector<std::uint64_t> &seeds,
                 const SweepOptions &opts = {});

/**
 * Serialize a sweep's output as one "consim.sweep.v1" document:
 * points[i] is the consim.run.v1 envelope of configs[i]/results[i].
 * Because the JSON writer is deterministic, parallel and serial
 * sweeps of the same configs produce byte-identical documents
 * (tests/test_determinism.cc enforces this).
 */
json::Value sweepResultsJson(const std::vector<RunConfig> &configs,
                             const std::vector<RunResult> &results);

} // namespace consim

#endif // CONSIM_EXEC_SWEEP_HH
