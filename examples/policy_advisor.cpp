/**
 * @file
 * Policy advisor: the hypervisor-operator scenario the paper's
 * conclusions motivate. For a given consolidation mix, evaluate all
 * four scheduling policies and report which one minimizes mean
 * slowdown -- and which one is fairest (smallest spread between the
 * most- and least-slowed VM), since the paper argues consolidation
 * needs performance isolation, not just functional isolation.
 *
 * Usage: policy_advisor ["Mix 8"]
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <limits>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/report.hh"

int
main(int argc, char **argv)
{
    using namespace consim;

    const std::string mix_name = argc > 1 ? argv[1] : "Mix 8";
    const Mix &mix = Mix::byName(mix_name);

    std::cout << "Advising scheduling policy for " << mix.name
              << " (";
    for (std::size_t i = 0; i < mix.vms.size(); ++i)
        std::cout << (i ? ", " : "") << toString(mix.vms[i]);
    std::cout << ") on shared-4-way caches\n\n";

    const SchedPolicy policies[] = {
        SchedPolicy::RoundRobin, SchedPolicy::Affinity,
        SchedPolicy::AffinityRR, SchedPolicy::Random};

    // Per-kind isolation baselines with the same windows as the mix
    // runs, so the ratios compare like with like.
    std::map<WorkloadKind, double> baseline;
    for (auto kind : mix.vms) {
        if (baseline.count(kind))
            continue;
        RunConfig iso = isolationConfig(kind, SchedPolicy::Affinity,
                                        SharingDegree::Shared16);
        iso.warmupCycles = 1'500'000;
        iso.measureCycles = 1'500'000;
        const RunResult r = runExperiment(iso);
        baseline[kind] = r.meanCyclesPerTxn(kind);
    }

    TextTable table({"policy", "mean slowdown", "worst slowdown",
                     "fairness spread"});
    SchedPolicy best_mean = policies[0];
    SchedPolicy best_fair = policies[0];
    double best_mean_v = std::numeric_limits<double>::max();
    double best_fair_v = std::numeric_limits<double>::max();

    for (auto policy : policies) {
        RunConfig cfg = mixConfig(mix, policy, SharingDegree::Shared4);
        cfg.warmupCycles = 1'500'000;
        cfg.measureCycles = 1'500'000;
        const RunResult r = runExperiment(cfg);

        double mean = 0.0;
        double worst = 0.0;
        double best = std::numeric_limits<double>::max();
        for (const auto &v : r.vms) {
            const double slow =
                v.cyclesPerTransaction / baseline.at(v.kind);
            mean += slow;
            worst = std::max(worst, slow);
            best = std::min(best, slow);
        }
        mean /= static_cast<double>(r.vms.size());
        const double spread = worst - best;

        table.addRow({toString(policy), TextTable::num(mean, 2),
                      TextTable::num(worst, 2),
                      TextTable::num(spread, 2)});
        if (mean < best_mean_v) {
            best_mean_v = mean;
            best_mean = policy;
        }
        if (spread < best_fair_v) {
            best_fair_v = spread;
            best_fair = policy;
        }
    }
    table.print(std::cout);
    std::cout << "\nBest throughput: " << toString(best_mean)
              << " (mean slowdown "
              << TextTable::num(best_mean_v, 2) << ")\n";
    std::cout << "Fairest:         " << toString(best_fair)
              << " (spread " << TextTable::num(best_fair_v, 2)
              << ")\n";
    std::cout << "\n(slowdown = cycles/txn vs the VM alone with the "
                 "16MB fully-shared L2)\n";
    return 0;
}
