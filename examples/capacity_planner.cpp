/**
 * @file
 * Capacity planner: the server-consolidation sizing question from
 * the paper's introduction. Given a latency-critical workload and a
 * candidate co-runner, sweep the cache-sharing degree (the key
 * design knob of SS III) and report how much the workload's
 * performance and miss latency suffer at each point -- the data a
 * designer needs to trade isolation against utilization.
 *
 * Usage: capacity_planner [jbb|tpcw|tpch|web] [jbb|tpcw|tpch|web]
 * Default: SPECjbb protected, TPC-W co-runner (the paper's worst
 * pairing, Mixes 7-9).
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"

namespace
{

consim::WorkloadKind
parseKind(const std::string &s)
{
    using consim::WorkloadKind;
    if (s == "jbb")
        return WorkloadKind::SpecJbb;
    if (s == "tpcw")
        return WorkloadKind::TpcW;
    if (s == "tpch")
        return WorkloadKind::TpcH;
    if (s == "web")
        return WorkloadKind::SpecWeb;
    std::cerr << "unknown workload '" << s
              << "' (jbb|tpcw|tpch|web)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace consim;

    const WorkloadKind protectee =
        argc > 1 ? parseKind(argv[1]) : WorkloadKind::SpecJbb;
    const WorkloadKind corunner =
        argc > 2 ? parseKind(argv[2]) : WorkloadKind::TpcW;

    std::cout << "Consolidating 2x " << toString(protectee)
              << " with 2x " << toString(corunner)
              << " (affinity scheduling); protecting "
              << toString(protectee) << "\n\n";

    RunConfig base;
    base.workloads = {protectee, protectee, corunner, corunner};
    base.policy = SchedPolicy::Affinity;
    base.warmupCycles = 1'500'000;
    base.measureCycles = 1'500'000;

    RunConfig iso_cfg = isolationConfig(
        protectee, SchedPolicy::Affinity, SharingDegree::Shared16);
    iso_cfg.warmupCycles = base.warmupCycles;
    iso_cfg.measureCycles = base.measureCycles;
    const RunResult iso_run = runExperiment(iso_cfg);
    struct
    {
        double cyclesPerTxn;
    } iso{iso_run.meanCyclesPerTxn(protectee)};

    TextTable table({"sharing degree", "slowdown", "miss rate",
                     "miss lat (cy)", "occupancy share"});
    for (auto sharing :
         {SharingDegree::Private, SharingDegree::Shared2,
          SharingDegree::Shared4, SharingDegree::Shared8,
          SharingDegree::Shared16}) {
        RunConfig cfg = base;
        cfg.machine.sharing = sharing;
        const RunResult r = runExperiment(cfg);

        // Mean occupancy share of the protected VMs across caches.
        double occ = 0.0;
        int cells = 0;
        for (std::size_t g = 0; g < r.occupancy.lines.size(); ++g) {
            for (VmId vm = 0; vm < 2; ++vm) {
                occ += r.occupancy.share(static_cast<GroupId>(g), vm);
                ++cells;
            }
        }
        table.addRow(
            {toString(sharing),
             TextTable::num(r.meanCyclesPerTxn(protectee) /
                                iso.cyclesPerTxn,
                            2),
             TextTable::pct(r.meanMissRate(protectee)),
             TextTable::num(r.meanMissLatency(protectee), 1),
             TextTable::pct(cells ? occ / cells : 0.0)});
    }
    table.print(std::cout);
    std::cout << "\n(slowdown vs " << toString(protectee)
              << " alone with the 16MB fully-shared L2; smaller "
                 "partitions isolate, larger ones pool capacity)\n";
    return 0;
}
