/**
 * @file
 * Quickstart: consolidate four SPECjbb instances (Mix C) on the
 * 16-core CMP with shared-4-way caches, compare two scheduling
 * policies, and print the paper's three metrics per VM.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"

int
main()
{
    using namespace consim;

    std::cout << "consim quickstart: Mix C (4x SPECjbb), "
                 "shared-4-way L2, 16-core mesh CMP\n\n";

    TextTable table({"policy", "vm", "cycles/txn", "LLC miss rate",
                     "avg miss latency (cy)"});

    for (auto policy : {SchedPolicy::Affinity, SchedPolicy::RoundRobin}) {
        RunConfig cfg = mixConfig(Mix::byName("Mix C"), policy,
                                  SharingDegree::Shared4);
        cfg.warmupCycles = 1'000'000;
        cfg.measureCycles = 1'000'000;
        const RunResult result = runExperiment(cfg);

        for (std::size_t i = 0; i < result.vms.size(); ++i) {
            const auto &vm = result.vms[i];
            table.addRow({toString(policy),
                          toString(vm.kind) + " #" + std::to_string(i),
                          TextTable::num(vm.cyclesPerTransaction, 0),
                          TextTable::pct(vm.missRate),
                          TextTable::num(vm.avgMissLatency, 1)});
        }
        table.addSeparator();
    }

    table.print(std::cout);
    std::cout << "\nAffinity packs each workload into one quadrant "
                 "(sharing, low replication);\nround-robin spreads "
                 "threads chip-wide (capacity, more replication).\n";
    return 0;
}
