/**
 * @file
 * Mix explorer: run any Table IV mix under a chosen scheduling
 * policy and sharing degree, and print the full per-VM picture --
 * performance, miss behaviour, c2c breakdown, replication, and the
 * per-partition occupancy snapshot (the data behind Figs. 12/13).
 *
 * Usage:
 *   mix_explorer ["Mix 5"] [rr|affinity|aff-rr|random] [1|2|4|8|16]
 *
 * Example:
 *   ./build/examples/mix_explorer "Mix 7" rr 4
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/mix.hh"

namespace
{

consim::SchedPolicy
parsePolicy(const std::string &s)
{
    using consim::SchedPolicy;
    if (s == "rr")
        return SchedPolicy::RoundRobin;
    if (s == "affinity")
        return SchedPolicy::Affinity;
    if (s == "aff-rr")
        return SchedPolicy::AffinityRR;
    if (s == "random")
        return SchedPolicy::Random;
    std::cerr << "unknown policy '" << s
              << "' (rr|affinity|aff-rr|random)\n";
    std::exit(1);
}

consim::SharingDegree
parseSharing(const std::string &s)
{
    using consim::SharingDegree;
    switch (std::atoi(s.c_str())) {
      case 1:
        return SharingDegree::Private;
      case 2:
        return SharingDegree::Shared2;
      case 4:
        return SharingDegree::Shared4;
      case 8:
        return SharingDegree::Shared8;
      case 16:
        return SharingDegree::Shared16;
    }
    std::cerr << "unknown sharing degree '" << s
              << "' (1|2|4|8|16 cores per L2)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace consim;

    const std::string mix_name = argc > 1 ? argv[1] : "Mix 5";
    const SchedPolicy policy =
        argc > 2 ? parsePolicy(argv[2]) : SchedPolicy::Affinity;
    const SharingDegree sharing =
        argc > 3 ? parseSharing(argv[3]) : SharingDegree::Shared4;

    const Mix &mix = Mix::byName(mix_name);
    RunConfig cfg = mixConfig(mix, policy, sharing);
    cfg.warmupCycles = 1'000'000;
    cfg.measureCycles = 1'000'000;

    std::cout << "Running " << mix.name << " with "
              << toString(policy) << " scheduling on "
              << toString(sharing) << " caches...\n\n";
    const RunResult r = runExperiment(cfg);

    TextTable vm_table({"vm", "cycles/txn", "LLC miss rate",
                        "miss lat (cy)", "c2c of misses",
                        "c2c dirty share"});
    for (std::size_t i = 0; i < r.vms.size(); ++i) {
        const auto &v = r.vms[i];
        vm_table.addRow({toString(v.kind) + " #" + std::to_string(i),
                         TextTable::num(v.cyclesPerTransaction, 0),
                         TextTable::pct(v.missRate),
                         TextTable::num(v.avgMissLatency, 1),
                         TextTable::pct(v.c2cFraction),
                         TextTable::pct(v.c2cDirtyShare)});
    }
    vm_table.print(std::cout);

    std::cout << "\nInterconnect: avg packet latency "
              << TextTable::num(r.netAvgLatency, 1) << " cycles over "
              << r.netPackets << " packets\n";
    std::cout << "Replication: "
              << TextTable::pct(r.replication.replicatedFraction())
              << " of valid LLC lines have a copy in another "
                 "partition\n\n";

    std::cout << "Per-partition occupancy (rows = VMs):\n";
    std::vector<std::string> headers = {"vm"};
    for (std::size_t g = 0; g < r.occupancy.lines.size(); ++g)
        headers.push_back("$" + std::to_string(g));
    TextTable occ(headers);
    for (std::size_t vm = 0; vm < r.vms.size(); ++vm) {
        std::vector<std::string> row = {toString(r.vms[vm].kind) +
                                        " #" + std::to_string(vm)};
        for (std::size_t g = 0; g < r.occupancy.lines.size(); ++g) {
            row.push_back(TextTable::pct(
                r.occupancy.share(static_cast<GroupId>(g),
                                  static_cast<VmId>(vm)),
                0));
        }
        occ.addRow(std::move(row));
    }
    occ.print(std::cout);
    return 0;
}
