/**
 * @file
 * Unit tests for the cache substrate: geometry, set-associative
 * lookup/install/victim behaviour, LRU ordering, and the MSHR file.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"
#include "cache/cache_line.hh"
#include "cache/mshr.hh"

namespace consim
{
namespace
{

CacheGeometry
geo(std::uint64_t bytes, int assoc)
{
    CacheGeometry g;
    g.sizeBytes = bytes;
    g.assoc = assoc;
    return g;
}

TEST(CacheGeometry, DerivedCounts)
{
    const auto g = geo(64 * 1024, 4);
    EXPECT_EQ(g.numLines(), 1024u);
    EXPECT_EQ(g.numSets(), 256u);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    EXPECT_EQ(c.lookup(5), nullptr);
    auto *v = c.victim(5);
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->valid);
    c.install(v, 5);
    auto *hit = c.lookup(5);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, 5u);
    EXPECT_TRUE(hit->valid);
}

TEST(CacheArray, SetConflictEvictsLru)
{
    // 2-way, 32 sets: blocks 1, 33, 65 all map to set 1.
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    ASSERT_EQ(c.geometry().numSets(), 32u);
    for (BlockAddr b : {1u, 33u}) {
        auto *v = c.victim(b);
        ASSERT_FALSE(v->valid);
        c.install(v, b);
    }
    // Touch 1 so that 33 is LRU.
    c.touch(c.lookup(1));
    auto *v = c.victim(65);
    ASSERT_TRUE(v->valid);
    EXPECT_EQ(v->tag, 33u);
}

TEST(CacheArray, TouchUpdatesLru)
{
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    c.install(c.victim(1), 1);
    c.install(c.victim(33), 33);
    c.touch(c.lookup(33));
    c.touch(c.lookup(1));
    EXPECT_EQ(c.victim(65)->tag, 33u);
}

TEST(CacheArray, InvalidateFreesSlot)
{
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    c.install(c.victim(1), 1);
    c.invalidate(c.lookup(1));
    EXPECT_EQ(c.lookup(1), nullptr);
    EXPECT_EQ(c.countValid(), 0u);
}

TEST(CacheArray, InstallResetsDerivedState)
{
    CacheArray<L2CacheLine> c(geo(4096, 2));
    auto *slot = c.victim(7);
    c.install(slot, 7);
    for (int i = 0; i < 4; ++i)
        slot->presence.set(i);
    slot->dirty = true;
    slot->state = L2State::Modified;
    // Evict and reinstall another block in the same slot.
    c.invalidate(slot);
    c.install(slot, 7 + 32 * 2); // same set
    EXPECT_TRUE(slot->presence.none());
    EXPECT_FALSE(slot->dirty);
    EXPECT_EQ(slot->state, L2State::Invalid);
}

TEST(CacheArray, CountValidAndIteration)
{
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    for (BlockAddr b = 0; b < 10; ++b)
        c.install(c.victim(b), b);
    EXPECT_EQ(c.countValid(), 10u);
    std::uint64_t seen = 0;
    c.forEachLine([&](const PrivateCacheLine &l) {
        seen += l.valid ? 1 : 0;
    });
    EXPECT_EQ(seen, 10u);
}

TEST(CacheArray, ForEachInSetVisitsAssocLines)
{
    CacheArray<L2CacheLine> c(geo(4096, 4));
    int n = 0;
    c.forEachInSet(3, [&](L2CacheLine &) { ++n; });
    EXPECT_EQ(n, 4);
}

TEST(CacheArray, DistinctSetsDoNotConflict)
{
    CacheArray<PrivateCacheLine> c(geo(4096, 2));
    // Fill every set with two blocks; nothing should evict.
    const auto sets = c.geometry().numSets();
    for (std::uint64_t s = 0; s < sets; ++s) {
        for (int w = 0; w < 2; ++w) {
            auto *v = c.victim(s + w * sets);
            ASSERT_FALSE(v->valid);
            c.install(v, s + w * sets);
        }
    }
    EXPECT_EQ(c.countValid(), c.geometry().numLines());
}

struct Target
{
    int core;
    bool write;
};

TEST(MshrFile, AllocateFindRelease)
{
    MshrFile<Target> m(4);
    EXPECT_EQ(m.find(10), nullptr);
    auto &e = m.allocate(10, 100);
    e.targets.push_back({1, false});
    ASSERT_NE(m.find(10), nullptr);
    EXPECT_EQ(m.find(10)->issued, 100u);
    EXPECT_EQ(m.size(), 1u);
    m.release(10);
    EXPECT_EQ(m.find(10), nullptr);
}

TEST(MshrFile, FullBehaviour)
{
    MshrFile<Target> m(2);
    m.allocate(1, 0);
    m.allocate(2, 0);
    EXPECT_TRUE(m.full());
    m.release(1);
    EXPECT_FALSE(m.full());
}

TEST(MshrFile, CoalescedTargets)
{
    MshrFile<Target> m(4);
    auto &e = m.allocate(5, 0);
    e.targets.push_back({0, false});
    e.targets.push_back({1, true});
    e.wantsWrite = true;
    auto *found = m.find(5);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->targets.size(), 2u);
    EXPECT_TRUE(found->wantsWrite);
}

TEST(MshrFileDeathTest, DoubleAllocatePanics)
{
    MshrFile<Target> m(4);
    m.allocate(1, 0);
    EXPECT_DEATH(m.allocate(1, 0), "duplicate MSHR");
}

TEST(MshrFileDeathTest, ReleaseAbsentPanics)
{
    MshrFile<Target> m(4);
    EXPECT_DEATH(m.release(9), "absent MSHR");
}

} // namespace
} // namespace consim
