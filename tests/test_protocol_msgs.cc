/**
 * @file
 * Tests for the protocol message taxonomy: virtual-network
 * assignment (deadlock-freedom structure), data/control sizing,
 * intra-group classification, and diagnostics formatting.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "coherence/protocol.hh"

namespace consim
{
namespace
{

const std::vector<MsgType> &
allTypes()
{
    static const std::vector<MsgType> types = {
        MsgType::L1GetS, MsgType::L1GetM, MsgType::L1PutM,
        MsgType::L1Inv, MsgType::L1WbReq, MsgType::L1Data,
        MsgType::L1InvAck, MsgType::L1WbData, MsgType::GetS,
        MsgType::GetM, MsgType::PutM, MsgType::PutS,
        MsgType::FwdGetS, MsgType::FwdGetM, MsgType::Inv,
        MsgType::Data, MsgType::Grant, MsgType::InvAck,
        MsgType::FwdAck, MsgType::PutAck, MsgType::Done,
        MsgType::MemRead, MsgType::MemWrite};
    return types;
}

TEST(Protocol, EveryTypeHasAVnet)
{
    for (auto t : allTypes()) {
        const int v = vnetOf(t);
        EXPECT_GE(v, 0) << toString(t);
        EXPECT_LE(v, 2) << toString(t);
    }
}

TEST(Protocol, RequestsForwardsResponsesAreSeparated)
{
    // The deadlock-freedom argument: requests (vnet0) may generate
    // forwards (vnet1), forwards may generate responses (vnet2),
    // responses sink. Check class membership.
    for (auto t : {MsgType::L1GetS, MsgType::L1GetM, MsgType::L1PutM,
                   MsgType::GetS, MsgType::GetM, MsgType::PutM,
                   MsgType::PutS})
        EXPECT_EQ(vnetOf(t), 0) << toString(t);
    for (auto t : {MsgType::FwdGetS, MsgType::FwdGetM, MsgType::Inv,
                   MsgType::L1Inv, MsgType::L1WbReq, MsgType::MemRead,
                   MsgType::MemWrite})
        EXPECT_EQ(vnetOf(t), 1) << toString(t);
    for (auto t : {MsgType::Data, MsgType::Grant, MsgType::InvAck,
                   MsgType::FwdAck, MsgType::PutAck, MsgType::Done,
                   MsgType::L1Data, MsgType::L1InvAck,
                   MsgType::L1WbData})
        EXPECT_EQ(vnetOf(t), 2) << toString(t);
}

TEST(Protocol, DataCarryingTypes)
{
    const std::set<MsgType> data = {
        MsgType::L1PutM, MsgType::L1Data, MsgType::L1WbData,
        MsgType::PutM, MsgType::Data, MsgType::MemWrite};
    for (auto t : allTypes())
        EXPECT_EQ(carriesData(t), data.count(t) > 0) << toString(t);
}

TEST(Protocol, IntraGroupClassification)
{
    // Exactly the L1<->bank messages bypass the mesh when the flat
    // intra-partition path is enabled.
    const std::set<MsgType> intra = {
        MsgType::L1GetS, MsgType::L1GetM, MsgType::L1PutM,
        MsgType::L1Inv, MsgType::L1WbReq, MsgType::L1Data,
        MsgType::L1InvAck, MsgType::L1WbData};
    for (auto t : allTypes())
        EXPECT_EQ(isIntraGroup(t), intra.count(t) > 0) << toString(t);
}

TEST(Protocol, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (auto t : allTypes()) {
        const std::string n = toString(t);
        EXPECT_FALSE(n.empty());
        EXPECT_NE(n, "?");
        EXPECT_TRUE(names.insert(n).second) << "duplicate " << n;
    }
}

TEST(Protocol, DescribeContainsKeyFields)
{
    Msg m;
    m.type = MsgType::FwdGetS;
    m.block = 0xabc;
    m.srcTile = 3;
    m.dstTile = 9;
    m.reqCore = 5;
    const std::string d = describe(m);
    EXPECT_NE(d.find("FwdGetS"), std::string::npos);
    EXPECT_NE(d.find("abc"), std::string::npos);
    EXPECT_NE(d.find("3->9"), std::string::npos);
}

TEST(Protocol, MsgDefaultsAreInert)
{
    Msg m;
    EXPECT_FALSE(m.isWrite);
    EXPECT_FALSE(m.dirtyData);
    EXPECT_FALSE(m.noDataNeeded);
    EXPECT_FALSE(m.c2cTransfer);
    EXPECT_FALSE(m.stale);
    EXPECT_FALSE(m.overlappedFetch);
    EXPECT_EQ(m.grantState, L2State::Invalid);
    EXPECT_EQ(m.reqCore, invalidCore);
    EXPECT_EQ(m.vm, invalidVm);
}

TEST(Protocol, StateNames)
{
    EXPECT_STREQ(toString(L1State::Modified), "M");
    EXPECT_STREQ(toString(L1State::Shared), "S");
    EXPECT_STREQ(toString(L1State::Invalid), "I");
    EXPECT_STREQ(toString(L2State::Exclusive), "E");
}

} // namespace
} // namespace consim
