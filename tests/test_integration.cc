/**
 * @file
 * Integration tests: directed coherence-protocol scenarios driven by
 * scripted instruction streams on the full System (cores + caches +
 * directory + mesh), plus short end-to-end runs with the real
 * workload generators, invariant checks, and quiescence.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coherence/directory.hh"
#include "core/experiment.hh"
#include "core/system.hh"

namespace consim
{
namespace
{

/** Plays a fixed list of references, then idles forever. */
class ScriptedStream : public InstrStream
{
  public:
    void
    add(BlockAddr block, bool write)
    {
        script_.push_back({0, block, write, false});
    }

    WorkSlice
    next() override
    {
        if (pos_ < script_.size())
            return script_[pos_++];
        // Idle filler: poll the script again soon, touch nothing.
        WorkSlice idle;
        idle.computeCycles = 16;
        idle.noMemRef = true;
        return idle;
    }

    bool done() const { return pos_ >= script_.size(); }

  private:
    std::vector<WorkSlice> script_;
    std::size_t pos_ = 0;
};

/** A tiny profile so directed tests have a registered VM window. */
WorkloadProfile
tinyProfile()
{
    WorkloadProfile p;
    p.name = "tiny";
    p.sharedRoBlocks = 16384;
    p.migratoryBlocks = 1024;
    p.privateBlocksPerThread = 8192;
    p.pSharedRo = 0.3;
    p.pMigratory = 0.1;
    p.hotSharedBlocks = 256;
    p.hotPrivateBlocks = 128;
    p.hotSlidePeriod = 1000;
    p.refsPerTransaction = 100;
    return p;
}

/** Fixture: a full system with one tiny VM and scripted streams. */
class ProtocolTest : public ::testing::Test
{
  protected:
    void
    buildSystem(SharingDegree sharing)
    {
        prof_ = tinyProfile();
        vm_ = std::make_unique<VirtualMachine>(prof_, 0, 1);
        cfg_.sharing = sharing;
        // No placements: we bind scripted streams manually.
        sys_ = std::make_unique<System>(
            cfg_, std::vector<VirtualMachine *>{vm_.get()},
            std::vector<ThreadPlacement>{});
    }

    /** Bind a fresh scripted stream to a core. */
    ScriptedStream &
    onCore(CoreId c)
    {
        streams_.push_back(std::make_unique<ScriptedStream>());
        sys_->core(c).bindThread(streams_.back().get(), 0);
        return *streams_.back();
    }

    /** Run until every script is consumed and the machine drains. */
    void
    drain()
    {
        bool settled = false;
        for (int iter = 0; iter < 4000 && !settled; ++iter) {
            sys_->run(50);
            settled = sys_->quiesced();
            for (const auto &s : streams_)
                settled = settled && s->done();
        }
        ASSERT_TRUE(settled) << "system failed to quiesce";
        sys_->checkInvariants();
    }

    BlockAddr blk(std::uint64_t off) { return vmBaseBlock(0) + off; }

    MachineConfig cfg_;
    WorkloadProfile prof_;
    std::unique_ptr<VirtualMachine> vm_;
    std::unique_ptr<System> sys_;
    std::vector<std::unique_ptr<ScriptedStream>> streams_;
};

TEST_F(ProtocolTest, ColdReadMissGoesToMemory)
{
    buildSystem(SharingDegree::Shared4);
    auto &s = onCore(0);
    s.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.l1Misses.value(), 1u);
    EXPECT_EQ(st.l2Misses.value(), 1u);
    EXPECT_EQ(st.c2cClean.value(), 0u);
    EXPECT_EQ(st.c2cDirty.value(), 0u);
    // Latency must include the 150-cycle memory access.
    EXPECT_GT(st.missLatency.mean(), 150.0);
}

TEST_F(ProtocolTest, SecondReadHitsInL1)
{
    buildSystem(SharingDegree::Shared4);
    auto &s = onCore(0);
    s.add(blk(100), false);
    s.add(blk(100), false);
    drain();
    EXPECT_EQ(vm_->vmStats().l1Misses.value(), 1u);
}

TEST_F(ProtocolTest, IntraGroupSharingServedByPartition)
{
    buildSystem(SharingDegree::Shared4);
    // Cores 0 and 1 are both in quadrant group 0.
    auto &a = onCore(0);
    auto &b = onCore(1);
    a.add(blk(100), false);
    drain();
    b.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.l1Misses.value(), 2u);
    // Only the first miss left the partition.
    EXPECT_EQ(st.l2Misses.value(), 1u);
}

TEST_F(ProtocolTest, CrossGroupCleanTransfer)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0);  // group 0
    auto &b = onCore(15); // group 3
    a.add(blk(100), false);
    drain();
    b.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.l2Misses.value(), 2u);
    EXPECT_EQ(st.c2cClean.value(), 1u);
    EXPECT_EQ(st.c2cDirty.value(), 0u);
}

TEST_F(ProtocolTest, CrossGroupDirtyTransfer)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0);  // group 0
    auto &b = onCore(15); // group 3
    a.add(blk(100), true); // write: partition 0 owns it dirty
    drain();
    b.add(blk(100), false); // read from another partition
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.c2cDirty.value(), 1u);
}

TEST_F(ProtocolTest, WriteInvalidatesRemoteSharers)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0); // group 0
    auto &b = onCore(15); // group 3
    auto &c = onCore(8); // group 2
    a.add(blk(100), false);
    drain();
    b.add(blk(100), false);
    drain();
    c.add(blk(100), true); // invalidates partitions 0 and 3
    drain();
    // A re-read by core 0 must miss again (its copy was invalidated).
    a.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_GE(st.l2Misses.value(), 4u);
    // The re-read is served dirty from the writer's partition.
    EXPECT_GE(st.c2cDirty.value(), 1u);
}

TEST_F(ProtocolTest, UpgradeFromSharedToModified)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0);
    a.add(blk(100), false); // S in partition 0
    drain();
    a.add(blk(100), true); // upgrade in place
    drain();
    const auto &st = vm_->vmStats();
    // The upgrade is not a data miss: l2Misses counts data fills only.
    EXPECT_EQ(st.l2Misses.value(), 1u);
    EXPECT_EQ(st.l1Misses.value(), 2u);
}

TEST_F(ProtocolTest, IntraGroupWriteThenRemoteRead)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0); // group 0
    auto &b = onCore(1); // group 0 as well
    a.add(blk(100), true);
    drain();
    b.add(blk(100), false); // owner extraction inside the group
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.l1Misses.value(), 2u);
    EXPECT_EQ(st.l2Misses.value(), 1u); // one global fill only
}

TEST_F(ProtocolTest, PrivateCachesActLikeSixteenGroups)
{
    buildSystem(SharingDegree::Private);
    auto &a = onCore(0);
    auto &b = onCore(1); // separate private L2 now
    a.add(blk(100), false);
    drain();
    b.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.l2Misses.value(), 2u);
    EXPECT_EQ(st.c2cClean.value(), 1u);
}

TEST_F(ProtocolTest, FullySharedHasNoC2c)
{
    buildSystem(SharingDegree::Shared16);
    auto &a = onCore(0);
    auto &b = onCore(15);
    a.add(blk(100), false);
    drain();
    b.add(blk(100), false);
    drain();
    const auto &st = vm_->vmStats();
    // One partition only: the second access hits in the shared L2.
    EXPECT_EQ(st.l2Misses.value(), 1u);
    EXPECT_EQ(st.c2cClean.value() + st.c2cDirty.value(), 0u);
}

TEST_F(ProtocolTest, WriterMigratesOwnershipAcrossGroups)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0);   // group 0
    auto &b = onCore(15);  // group 3
    a.add(blk(200), true);
    drain();
    b.add(blk(200), true); // FwdGetM: ownership moves
    drain();
    a.add(blk(200), true); // and back again
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_EQ(st.c2cDirty.value(), 2u);
    sys_->checkInvariants();
}

TEST_F(ProtocolTest, ManyBlocksNoLeaks)
{
    buildSystem(SharingDegree::Shared4);
    auto &a = onCore(0);
    auto &b = onCore(15);
    for (int i = 0; i < 200; ++i) {
        a.add(blk(i), i % 3 == 0);
        b.add(blk(i + 100), i % 5 == 0);
    }
    drain();
    EXPECT_TRUE(sys_->quiesced());
    sys_->checkInvariants();
}

TEST_F(ProtocolTest, ConflictEvictionsWriteBack)
{
    buildSystem(SharingDegree::Private);
    auto &a = onCore(0);
    // Private bank: 1MB, 8-way => 2048 sets. Blocks spaced 2048 apart
    // collide in one set; 12 > assoc forces evictions.
    for (int i = 0; i < 12; ++i)
        a.add(blk(7 + i * 2048), true);
    drain();
    // Re-read the first block: it must have been evicted.
    a.add(blk(7), false);
    drain();
    const auto &st = vm_->vmStats();
    EXPECT_GE(st.l2Misses.value(), 13u);
    std::uint64_t dirty_evictions = 0;
    for (CoreId t = 0; t < 16; ++t)
        dirty_evictions += sys_->bank(t).bankStats().evictDirty.value();
    EXPECT_GE(dirty_evictions, 4u);
}

TEST(EndToEnd, ShortConsolidatedRunQuiescesAndBalances)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix C"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.warmupCycles = 5'000;
    cfg.measureCycles = 15'000;
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 4u);
    for (const auto &v : r.vms) {
        EXPECT_GT(v.instructions, 0u);
        EXPECT_GT(v.l1Misses, 0u);
        EXPECT_GT(v.l2Accesses, 0u);
        EXPECT_GE(v.missRate, 0.0);
        EXPECT_LE(v.missRate, 1.0);
        EXPECT_GT(v.avgMissLatency, 0.0);
    }
}

TEST(EndToEnd, IsolationRunsAllPoliciesAndDegrees)
{
    for (auto sharing : {SharingDegree::Private, SharingDegree::Shared4,
                         SharingDegree::Shared16}) {
        for (auto pol :
             {SchedPolicy::RoundRobin, SchedPolicy::Affinity}) {
            RunConfig cfg = isolationConfig(WorkloadKind::TpcH, pol,
                                            sharing);
            cfg.warmupCycles = 3'000;
            cfg.measureCycles = 8'000;
            const RunResult r = runExperiment(cfg);
            ASSERT_EQ(r.vms.size(), 1u);
            EXPECT_GT(r.vms[0].instructions, 0u)
                << toString(sharing) << " " << toString(pol);
        }
    }
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 5"),
                              SchedPolicy::RoundRobin,
                              SharingDegree::Shared4);
    cfg.warmupCycles = 3'000;
    cfg.measureCycles = 10'000;
    cfg.seed = 77;
    const RunResult a = runExperiment(cfg);
    const RunResult b = runExperiment(cfg);
    ASSERT_EQ(a.vms.size(), b.vms.size());
    for (std::size_t i = 0; i < a.vms.size(); ++i) {
        EXPECT_EQ(a.vms[i].instructions, b.vms[i].instructions);
        EXPECT_EQ(a.vms[i].l2Misses, b.vms[i].l2Misses);
        EXPECT_EQ(a.vms[i].transactions, b.vms[i].transactions);
    }
}

TEST(EndToEnd, IdealNocAblationRuns)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix B"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.machine.idealNoc = true;
    cfg.warmupCycles = 3'000;
    cfg.measureCycles = 8'000;
    const RunResult r = runExperiment(cfg);
    for (const auto &v : r.vms)
        EXPECT_GT(v.instructions, 0u);
}

TEST(EndToEnd, RandomPolicyAndSeedsVaryPlacement)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Random,
                              SharingDegree::Shared4);
    cfg.warmupCycles = 2'000;
    cfg.measureCycles = 6'000;
    cfg.seed = 1;
    const RunResult a = runExperiment(cfg);
    cfg.seed = 2;
    const RunResult b = runExperiment(cfg);
    // Different random placements must change *something* measurable.
    bool any_diff = false;
    for (std::size_t i = 0; i < a.vms.size(); ++i)
        any_diff |= a.vms[i].l2Misses != b.vms[i].l2Misses;
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace consim
