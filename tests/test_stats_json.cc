/**
 * @file
 * Tests for the hierarchical statistics registry (nested naming,
 * recursive reset, typed lookup, duplicate detection), the Histogram
 * percentile edge cases, the JSON writer/parser, and the
 * registry-derived RunResult JSON round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"
#include "core/mix.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

namespace consim
{
namespace
{

// --- hierarchical registry ----------------------------------------

TEST(StatsGroup, NestedNamingDotJoinsAncestors)
{
    stats::Group root("sys");
    stats::Group tile("tile03", &root);
    stats::Group l1("l1", &tile);

    EXPECT_EQ(root.fullName(), "sys");
    EXPECT_EQ(tile.fullName(), "sys.tile03");
    EXPECT_EQ(l1.fullName(), "sys.tile03.l1");

    stats::Counter misses;
    l1.add("misses", &misses);
    ++misses;

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sys.tile03.l1.misses 1"),
              std::string::npos);
}

TEST(StatsGroup, TypedLookupByDottedPath)
{
    stats::Group root("sys");
    stats::Group tile("tile00", &root);
    stats::Counter c;
    stats::Average a;
    stats::Histogram h(10, 8);
    tile.add("hits", &c);
    tile.add("latency", &a);
    tile.add("dist", &h);

    EXPECT_EQ(root.findGroup("tile00"), &tile);
    EXPECT_EQ(root.findCounter("tile00.hits"), &c);
    EXPECT_EQ(root.findAverage("tile00.latency"), &a);
    EXPECT_EQ(root.findHistogram("tile00.dist"), &h);

    // Wrong kind, wrong path, wrong group: all null, never a panic.
    EXPECT_EQ(root.findCounter("tile00.latency"), nullptr);
    EXPECT_EQ(root.findCounter("tile00.nope"), nullptr);
    EXPECT_EQ(root.findCounter("tile99.hits"), nullptr);
    EXPECT_EQ(root.findGroup("tile99"), nullptr);
}

TEST(StatsGroup, ResetAllRecursesTheWholeSubtree)
{
    stats::Group root("sys");
    stats::Group child("child", &root);
    stats::Group grandchild("grand", &child);

    stats::Counter c_root, c_deep;
    stats::Average avg;
    stats::Histogram hist(5, 4);
    root.add("top", &c_root);
    grandchild.add("deep", &c_deep);
    grandchild.add("avg", &avg);
    grandchild.add("hist", &hist);

    c_root += 3;
    c_deep += 7;
    avg.sample(2.0);
    hist.sample(12);

    root.resetAll();
    EXPECT_EQ(c_root.value(), 0u);
    EXPECT_EQ(c_deep.value(), 0u);
    EXPECT_EQ(avg.count(), 0u);
    EXPECT_EQ(hist.count(), 0u);
}

TEST(StatsGroup, AddChildReparentsFromPreviousParent)
{
    stats::Group old_root("old");
    stats::Group new_root("new");
    stats::Group child("c");

    old_root.addChild(&child);
    EXPECT_EQ(child.parent(), &old_root);
    new_root.addChild(&child);
    EXPECT_EQ(child.parent(), &new_root);
    EXPECT_TRUE(old_root.children().empty());
    EXPECT_EQ(child.fullName(), "new.c");
}

TEST(StatsGroupDeathTest, DuplicateStatNameAsserts)
{
    stats::Group g("g");
    stats::Counter a, b;
    g.add("hits", &a);
    EXPECT_DEATH(g.add("hits", &b), "duplicate");
}

TEST(StatsGroupDeathTest, ChildNameCollidingWithStatAsserts)
{
    stats::Group g("g");
    stats::Counter c;
    g.add("net", &c);
    stats::Group child("net");
    EXPECT_DEATH(g.addChild(&child), "collide");
}

// --- histogram edge cases -----------------------------------------

TEST(HistogramPercentileEdges, ZeroPercentileSkipsEmptyBuckets)
{
    stats::Histogram h(10, 4);
    h.sample(25); // bucket 2 only
    // p=0 must not report empty bucket 0's edge (the old code's
    // "0 >= 0" matched immediately and returned width_).
    EXPECT_EQ(h.percentile(0.0), 30u);
    EXPECT_EQ(h.percentile(1.0), 30u);
}

TEST(HistogramPercentileEdges, OverflowBucketReportsTrackedMax)
{
    stats::Histogram h(10, 4); // overflow at >= 40
    h.sample(1234);
    EXPECT_EQ(h.max(), 1234u);
    // The old code reported (n+1)*width = 50; the overflow bucket
    // must cap at the tracked maximum instead.
    EXPECT_EQ(h.percentile(0.5), 1234u);
    EXPECT_EQ(h.percentile(1.0), 1234u);
}

TEST(HistogramPercentileEdges, EmptyHistogramIsZero)
{
    stats::Histogram h(10, 4);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(HistogramDeathTest, ZeroBucketWidthAsserts)
{
    EXPECT_DEATH(stats::Histogram(0, 4), "width");
}

// --- JSON writer/parser -------------------------------------------

TEST(Json, WriterEscapesAndParsesBack)
{
    auto v = json::Value::object();
    v.set("text", "line\nbreak \"quoted\" \\slash\x01");
    v.set("neg", std::int64_t{-42});
    v.set("big", std::uint64_t{18446744073709551615ull});
    v.set("frac", 0.1);
    v.set("flag", true);
    v.set("none", nullptr);
    auto arr = json::Value::array();
    arr.push(1);
    arr.push(2);
    v.set("arr", std::move(arr));

    const std::string text = v.dump(2);
    json::Value back;
    std::string err;
    ASSERT_TRUE(json::parse(text, back, &err)) << err;
    EXPECT_EQ(back.find("text")->str(),
              "line\nbreak \"quoted\" \\slash\x01");
    EXPECT_EQ(back.find("neg")->number(), -42.0);
    EXPECT_EQ(back.find("big")->asUint(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(back.find("frac")->number(), 0.1);
    EXPECT_TRUE(back.find("flag")->boolean());
    EXPECT_TRUE(back.find("none")->isNull());
    EXPECT_EQ(back.find("arr")->size(), 2u);
}

TEST(Json, GroupToJsonMirrorsTheTree)
{
    stats::Group root("sys");
    stats::Group net("net", &root);
    stats::Counter pkts;
    stats::Average lat;
    net.add("packets", &pkts);
    net.add("latency", &lat);
    pkts += 5;
    lat.sample(4.0);
    lat.sample(6.0);

    const json::Value doc = root.toJson();
    const json::Value *jnet = doc.find("net");
    ASSERT_NE(jnet, nullptr);
    EXPECT_EQ(jnet->find("packets")->asUint(), 5u);
    EXPECT_DOUBLE_EQ(jnet->find("latency")->find("mean")->number(),
                     5.0);
    EXPECT_EQ(jnet->find("latency")->find("count")->asUint(), 2u);

    // The emitted text is valid JSON.
    json::Value back;
    std::string err;
    EXPECT_TRUE(json::parse(doc.dump(2), back, &err)) << err;
}

// --- RunResult round trip -----------------------------------------

TEST(RunResultJson, EnvelopeRoundTripsRegistryDerivedValues)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.seed = 11;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    const RunResult r = runExperiment(cfg);

    const json::Value doc = runResultJson(cfg, r);
    json::Value back;
    std::string err;
    ASSERT_TRUE(json::parse(doc.dump(2), back, &err)) << err;

    EXPECT_EQ(back.find("schema")->str(), "consim.run.v1");
    const json::Value *jcfg = back.find("config");
    ASSERT_NE(jcfg, nullptr);
    EXPECT_EQ(jcfg->find("policy")->str(), "affinity");
    EXPECT_EQ(jcfg->find("seed")->asUint(), 11u);
    EXPECT_EQ(jcfg->find("machine")->find("sharing")->str(),
              "shared-4-way");

    const json::Value *jres = back.find("result");
    ASSERT_NE(jres, nullptr);
    const json::Value *jvms = jres->find("vms");
    ASSERT_NE(jvms, nullptr);
    ASSERT_EQ(jvms->size(), r.vms.size());
    for (std::size_t i = 0; i < r.vms.size(); ++i) {
        const json::Value &jv = jvms->at(i);
        const VmResult &v = r.vms[i];
        EXPECT_EQ(jv.find("kind")->str(), toString(v.kind));
        EXPECT_EQ(jv.find("transactions")->asUint(), v.transactions);
        EXPECT_EQ(jv.find("l1_misses")->asUint(), v.l1Misses);
        EXPECT_EQ(jv.find("l2_accesses")->asUint(), v.l2Accesses);
        EXPECT_EQ(jv.find("l2_misses")->asUint(), v.l2Misses);
        // Doubles survive exactly: shortest-round-trip formatting.
        EXPECT_EQ(jv.find("cycles_per_transaction")->number(),
                  v.cyclesPerTransaction);
        EXPECT_EQ(jv.find("miss_rate")->number(), v.missRate);
        EXPECT_EQ(jv.find("avg_miss_latency")->number(),
                  v.avgMissLatency);
    }
    EXPECT_EQ(jres->find("net_packets")->asUint(), r.netPackets);
    EXPECT_EQ(jres->find("net_avg_latency")->number(),
              r.netAvgLatency);
    EXPECT_EQ(jres->find("replication")->find("valid_lines")->asUint(),
              r.replication.validLines);
}

TEST(RunResultJson, ExtractionMatchesLiveRegistry)
{
    // The RunResult must be exactly what the registry holds: compare
    // a fresh run against a by-hand walk of an identical system via
    // the sweep (single config, single seed).
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::RoundRobin,
                              SharingDegree::Shared4);
    cfg.seed = 3;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    const RunResult a = runExperiment(cfg);
    const RunResult b = runSweep({cfg}).front();
    EXPECT_EQ(runResultJson(cfg, a).dump(2),
              runResultJson(cfg, b).dump(2));
}

} // namespace
} // namespace consim
