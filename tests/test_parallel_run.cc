/**
 * @file
 * Tile-parallel event core (`--run-jobs` / CONSIM_RUN_JOBS) tests:
 * the parallel engine must be byte-identical to serial — same
 * RunResult bits, same `consim.run.v1` envelope, same periodic
 * `consim.ckpt.v5` snapshots — across every sharing degree,
 * scheduling policy, interconnect ablation, and worker count. A
 * multi-window stress case doubles as the TSan workload (tools/ci.sh
 * runs this binary under -DCONSIM_SAN=thread).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "core/experiment.hh"
#include "core/fault.hh"
#include "core/mix.hh"
#include "core/report.hh"

using namespace consim;

namespace
{

/** A consolidated 4-VM mix: all 16 cores busy, short windows. */
RunConfig
quickConfig(SchedPolicy policy, SharingDegree sharing,
            std::uint64_t seed)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"), policy, sharing);
    cfg.seed = seed;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    cfg.runJobs = 1;
    return cfg;
}

/** Full-envelope byte identity between serial and @p jobs workers. */
void
expectParallelByteIdentity(const RunConfig &serial_cfg, int jobs)
{
    const std::string serial_doc =
        runResultJson(serial_cfg, runExperiment(serial_cfg)).dump(2);
    RunConfig par = serial_cfg;
    par.runJobs = jobs;
    // Each side's own config echo: this also proves runJobs never
    // leaks into the consim.run.v1 envelope.
    const std::string par_doc =
        runResultJson(par, runExperiment(par)).dump(2);
    EXPECT_EQ(par_doc, serial_doc) << "run-jobs " << jobs;
}

} // namespace

// ---------------------------------------------------------------- //
// Byte identity across the paper's configuration axes.              //
// ---------------------------------------------------------------- //

TEST(ParallelRun, ByteIdenticalAcrossSharingDegrees)
{
    for (const SharingDegree d :
         {SharingDegree::Private, SharingDegree::Shared2,
          SharingDegree::Shared4, SharingDegree::Shared8,
          SharingDegree::Shared16}) {
        SCOPED_TRACE(toString(d));
        const RunConfig cfg =
            quickConfig(SchedPolicy::Affinity, d, 7);
        expectParallelByteIdentity(cfg, 2);
        expectParallelByteIdentity(cfg, 4);
    }
}

TEST(ParallelRun, ByteIdenticalAcrossSchedulingPolicies)
{
    for (const SchedPolicy p :
         {SchedPolicy::RoundRobin, SchedPolicy::Affinity,
          SchedPolicy::AffinityRR, SchedPolicy::Random}) {
        SCOPED_TRACE(toString(p));
        expectParallelByteIdentity(
            quickConfig(p, SharingDegree::Shared4, 11), 4);
    }
}

TEST(ParallelRun, ByteIdenticalUnderInterconnectAblations)
{
    // Ideal NoC: the lookahead window comes from idealNocLatency and
    // cross-tile traffic takes the transport-bypass path.
    RunConfig ideal =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 3);
    ideal.machine.idealNoc = true;
    expectParallelByteIdentity(ideal, 4);

    // Mesh-only routing (no flat intra-group path): every message
    // crosses the lagged mesh replay.
    RunConfig meshy =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 4);
    meshy.machine.flatIntraGroup = false;
    expectParallelByteIdentity(meshy, 4);
}

TEST(ParallelRun, OvercommittedAndClampedWorkerCounts)
{
    const RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 5);
    // More lanes than a partition can fill (16 cores / 16 jobs) and a
    // count past the core limit (clamped by System::setRunJobs).
    expectParallelByteIdentity(cfg, 16);
    expectParallelByteIdentity(cfg, 64);
}

// ---------------------------------------------------------------- //
// Checkpoints: snapshots land on window boundaries and match serial //
// byte-for-byte.                                                    //
// ---------------------------------------------------------------- //

namespace
{

/** Run @p cfg into a deadline trip and return the attached pre-trip
 *  `consim.ckpt.v5` snapshot text. */
std::string
tripAndGrabCheckpoint(RunConfig cfg)
{
    cfg.cycleDeadline = 20'000;
    cfg.ckptEveryCycles = 6'000;
    try {
        runExperiment(cfg);
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Deadline);
        EXPECT_FALSE(e.ckpt().empty());
        return e.ckpt();
    }
    ADD_FAILURE() << "deadline did not trip";
    return {};
}

} // namespace

TEST(ParallelRun, CheckpointsAreByteIdenticalToSerial)
{
    const RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 7);
    const std::string serial_ckpt = tripAndGrabCheckpoint(cfg);

    RunConfig par = cfg;
    par.runJobs = 4;
    const std::string par_ckpt = tripAndGrabCheckpoint(par);

    // The parallel engine only stops at window boundaries, but it
    // clamps windows to land exactly on the snapshot cycles — so the
    // snapshot ring is taken at the same instants with the same
    // machine state, and the documents match byte-for-byte.
    EXPECT_EQ(par_ckpt, serial_ckpt);

    // And a parallel-produced snapshot resumes (serially here) into
    // the uninterrupted run's exact envelope.
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(par_ckpt, doc, &err)) << err;
    const RunResult resumed = resumeExperiment(doc);
    const std::string full_doc =
        runResultJson(cfg, runExperiment(cfg)).dump(2);
    EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full_doc);
}

TEST(ParallelRun, ResumeOfParallelSnapshotMayItselfRunParallel)
{
    const RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared2, 9);
    RunConfig par = cfg;
    par.runJobs = 2;
    const std::string ckpt = tripAndGrabCheckpoint(par);
    json::Value doc;
    ASSERT_TRUE(json::parse(ckpt, doc));

    // CONSIM_RUN_JOBS steers the resume (runJobs is deliberately not
    // part of the checkpoint context).
    ::setenv("CONSIM_RUN_JOBS", "4", 1);
    const RunResult resumed = resumeExperiment(doc);
    ::unsetenv("CONSIM_RUN_JOBS");

    const std::string full_doc =
        runResultJson(cfg, runExperiment(cfg)).dump(2);
    EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full_doc);
}

// ---------------------------------------------------------------- //
// Serial fallbacks and stress.                                      //
// ---------------------------------------------------------------- //

TEST(ParallelRun, FaultPlansFallBackToSerialWithIdenticalResults)
{
    // A drop fault counts responses in global delivery order, which
    // the lanes cannot reproduce; the engine must detect this and run
    // the windows serially — same bits either way. The dropped
    // response deliberately wedges one transaction, which the Full
    // stuck-transaction audit would (rightly) trip on in both
    // engines; this test asserts identity of *completed* runs, so
    // pin the level below the audit for the CONSIM_CHECK=full pass.
    const check::Level prev_level = check::level();
    check::setLevel(check::Level::Basic);
    RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 13);
    ASSERT_TRUE(FaultPlan::parse("drop:nth=500", cfg.faults));
    expectParallelByteIdentity(cfg, 4);
    check::setLevel(prev_level);
}

TEST(ParallelRun, StressManyWindowsUnderMigration)
{
    // Long enough for thousands of lookahead windows, with periodic
    // thread migration forcing scatter/gather churn. This is the
    // TSan workload: any cross-lane data race surfaces here.
    RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 21);
    cfg.warmupCycles = 30'000;
    cfg.measureCycles = 60'000;
    cfg.migrationIntervalCycles = 7'000;
    expectParallelByteIdentity(cfg, 4);
}
