/**
 * @file
 * Hardening-layer tests: check levels, SimError, the deterministic
 * fault catalog tripping its matching checker/watchdog, and the
 * crash-isolated sweep engine salvaging poisoned batches.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "core/experiment.hh"
#include "core/fault.hh"
#include "core/mix.hh"
#include "exec/sweep.hh"

using namespace consim;

namespace
{

/** Restore the ambient check level on scope exit. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(check::Level l) : old_(check::level())
    {
        check::setLevel(l);
    }
    ~ScopedLevel() { check::setLevel(old_); }

  private:
    check::Level old_;
};

RunConfig
quickConfig(std::uint64_t seed)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.seed = seed;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    return cfg;
}

/** quickConfig plus a wedge that reliably stalls core 0 mid-measure. */
RunConfig
poisonedConfig(std::uint64_t seed)
{
    RunConfig cfg = quickConfig(seed);
    EXPECT_TRUE(FaultPlan::parse("wedge:core=0,at=15000", cfg.faults));
    cfg.watchdogIntervalCycles = 2'000;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------- //
// Check levels and SimError plumbing.                               //
// ---------------------------------------------------------------- //

TEST(CheckLevel, ParseAcceptsNamesAndNumbers)
{
    check::Level l;
    EXPECT_TRUE(check::parseLevel("off", l));
    EXPECT_EQ(l, check::Level::Off);
    EXPECT_TRUE(check::parseLevel("basic", l));
    EXPECT_EQ(l, check::Level::Basic);
    EXPECT_TRUE(check::parseLevel("full", l));
    EXPECT_EQ(l, check::Level::Full);
    EXPECT_TRUE(check::parseLevel("0", l));
    EXPECT_EQ(l, check::Level::Off);
    EXPECT_TRUE(check::parseLevel("2", l));
    EXPECT_EQ(l, check::Level::Full);
}

TEST(CheckLevel, ParseRejectsGarbage)
{
    check::Level l;
    EXPECT_FALSE(check::parseLevel("", l));
    EXPECT_FALSE(check::parseLevel("fulll", l));
    EXPECT_FALSE(check::parseLevel("3", l));
    EXPECT_FALSE(check::parseLevel("-1", l));
}

TEST(CheckLevel, AssertThrowsSimErrorUnderBasic)
{
    ScopedLevel guard(check::Level::Basic);
    try {
        CONSIM_ASSERT(false, "synthetic failure ", 42);
        FAIL() << "CONSIM_ASSERT did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Invariant);
        EXPECT_NE(std::string(e.what()).find("synthetic failure 42"),
                  std::string::npos);
    }
}

TEST(SimErrorTest, KindTagsAreStable)
{
    EXPECT_STREQ(toString(SimErrorKind::Invariant), "invariant");
    EXPECT_STREQ(toString(SimErrorKind::Watchdog), "watchdog");
    EXPECT_STREQ(toString(SimErrorKind::Deadline), "deadline");
}

// ---------------------------------------------------------------- //
// Fault-plan grammar.                                               //
// ---------------------------------------------------------------- //

TEST(FaultPlanTest, GrammarRoundTrips)
{
    const std::string text = "wedge:core=3,at=250000;drop:nth=1200;"
                             "memburst:at=5,len=10,extra=100";
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(text, plan, &err)) << err;
    ASSERT_EQ(plan.events.size(), 3u);
    EXPECT_EQ(plan.events[0].kind, FaultKind::WedgeCore);
    EXPECT_EQ(plan.events[0].core, 3);
    EXPECT_EQ(plan.events[0].at, 250000u);
    EXPECT_EQ(plan.events[1].kind, FaultKind::DropResponse);
    EXPECT_EQ(plan.events[1].nth, 1200u);
    EXPECT_EQ(plan.events[2].kind, FaultKind::MemBurst);
    EXPECT_EQ(plan.spec(), text);

    // And the round trip is a fixed point.
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.spec(), again, &err)) << err;
    EXPECT_EQ(again.spec(), text);
}

TEST(FaultPlanTest, RejectsGarbage)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("bogus:x=1", plan, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FaultPlan::parse("wedge:core=banana", plan, &err));
    EXPECT_FALSE(FaultPlan::parse("drop:nth=0", plan, &err));
    EXPECT_FALSE(FaultPlan::parse("memburst:at=1,len=0,extra=5",
                                  plan, &err));
    EXPECT_FALSE(FaultPlan::parse("wedge:core=1,at=5,junk=9", plan,
                                  &err));
}

// ---------------------------------------------------------------- //
// Fault catalog: every fault is caught deterministically — no       //
// silent hang, no abort, a parseable diag on every trip.            //
// ---------------------------------------------------------------- //

namespace
{

/** Run @p cfg expecting a SimError; validate its diag envelope. */
SimErrorKind
expectTrip(const RunConfig &cfg)
{
    try {
        runExperiment(cfg);
    } catch (const SimError &e) {
        EXPECT_FALSE(e.diag().empty());
        json::Value d;
        EXPECT_TRUE(json::parse(e.diag(), d));
        EXPECT_NE(d.find("schema"), nullptr);
        EXPECT_EQ(d.find("schema")->str(), "consim.diag.v1");
        EXPECT_NE(d.find("cycle"), nullptr);
        EXPECT_NE(d.find("cores"), nullptr);
        return e.kind();
    }
    ADD_FAILURE() << "expected the fault to trip";
    return SimErrorKind::Invariant;
}

} // namespace

TEST(FaultCatalog, WedgedCoreTripsWatchdog)
{
    EXPECT_EQ(expectTrip(poisonedConfig(1)), SimErrorKind::Watchdog);
}

TEST(FaultCatalog, DroppedResponseTripsWatchdog)
{
    RunConfig cfg = quickConfig(1);
    ASSERT_TRUE(FaultPlan::parse("drop:nth=100", cfg.faults));
    cfg.watchdogIntervalCycles = 2'000;
    EXPECT_EQ(expectTrip(cfg), SimErrorKind::Watchdog);
}

TEST(FaultCatalog, DroppedResponseTripsStuckTxnAudit)
{
    // With the watchdog out of the picture, the wedged transaction is
    // instead caught by the stuck-transaction audit at the next
    // measurement-window boundary (CONSIM_CHECK=full).
    ScopedLevel guard(check::Level::Full);
    RunConfig cfg = quickConfig(1);
    ASSERT_TRUE(FaultPlan::parse("drop:nth=100", cfg.faults));
    // Default 1M-cycle watchdog interval: never fires in 30k cycles.
    EXPECT_EQ(expectTrip(cfg), SimErrorKind::Invariant);
}

TEST(FaultCatalog, MemoryBurstTripsWatchdog)
{
    RunConfig cfg = quickConfig(1);
    ASSERT_TRUE(FaultPlan::parse(
        "memburst:at=12000,len=18000,extra=100000", cfg.faults));
    cfg.watchdogIntervalCycles = 2'000;
    EXPECT_EQ(expectTrip(cfg), SimErrorKind::Watchdog);
}

TEST(FaultCatalog, CycleDeadlineTrips)
{
    RunConfig cfg = quickConfig(1);
    cfg.cycleDeadline = 5'000;
    EXPECT_EQ(expectTrip(cfg), SimErrorKind::Deadline);
}

TEST(FaultCatalog, CleanRunPassesFullChecks)
{
    ScopedLevel guard(check::Level::Full);
    RunConfig cfg = quickConfig(1);
    cfg.watchdogIntervalCycles = 2'000;
    const RunResult r = runExperiment(cfg);
    ASSERT_FALSE(r.vms.empty());
    EXPECT_GT(r.vms[0].instructions, 0u);
}

// ---------------------------------------------------------------- //
// Crash-isolated sweeps.                                            //
// ---------------------------------------------------------------- //

TEST(SweepHardening, PoisonedPointIsIsolatedAndRetried)
{
    std::vector<RunConfig> configs = {quickConfig(1), quickConfig(2),
                                      poisonedConfig(3),
                                      quickConfig(4)};
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 1;
    const std::vector<SweepRun> runs = runSweepEx(configs, opts);
    ASSERT_EQ(runs.size(), 4u);
    for (const std::size_t i : {0u, 1u, 3u}) {
        EXPECT_TRUE(runs[i].ok) << "point " << i;
        EXPECT_EQ(runs[i].retries, 0) << "point " << i;
    }
    EXPECT_FALSE(runs[2].ok);
    EXPECT_EQ(runs[2].retries, opts.maxRetries);
    EXPECT_EQ(runs[2].errorKind, "watchdog");
    EXPECT_FALSE(runs[2].errorMessage.empty());
    EXPECT_FALSE(runs[2].diag.empty());

    // runSweep salvages the batch: good points keep their results.
    const std::vector<RunResult> salvaged = runSweep(configs, opts);
    ASSERT_EQ(salvaged.size(), 4u);
    EXPECT_GT(salvaged[0].vms.size(), 0u);
    EXPECT_EQ(salvaged[2].vms.size(), 0u); // default-constructed
    EXPECT_GT(salvaged[3].vms.size(), 0u);
}

TEST(SweepHardening, PointDeadlineAppliesToConfigsWithoutOne)
{
    SweepOptions opts;
    opts.jobs = 1;
    opts.maxRetries = 0;
    opts.pointDeadlineCycles = 5'000;
    const auto runs = runSweepEx({quickConfig(1)}, opts);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_FALSE(runs[0].ok);
    EXPECT_EQ(runs[0].errorKind, "deadline");
}

TEST(SweepHardening, PoisonedSweepJsonIsByteIdenticalSerialVsParallel)
{
    std::vector<RunConfig> configs = {quickConfig(5), poisonedConfig(6),
                                      quickConfig(7), quickConfig(8)};

    SweepOptions parallel_opts;
    parallel_opts.jobs = 3;
    parallel_opts.maxRetries = 1;
    const std::string parallel_doc =
        sweepResultsJson(configs, runSweepEx(configs, parallel_opts))
            .dump(2);

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.maxRetries = 1;
    const std::string serial_doc =
        sweepResultsJson(configs, runSweepEx(configs, serial_opts))
            .dump(2);

    EXPECT_EQ(parallel_doc, serial_doc);

    json::Value parsed;
    std::string err;
    ASSERT_TRUE(json::parse(parallel_doc, parsed, &err)) << err;
    EXPECT_EQ(parsed.find("schema")->str(), "consim.sweep.v2");
    const json::Value *points = parsed.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), configs.size());

    // The poisoned point carries a structured error with the parsed
    // consim.diag.v1 dump; the good points inline consim.run.v1.
    const json::Value &bad = points->at(1);
    EXPECT_FALSE(bad.find("ok")->boolean());
    const json::Value *error = bad.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("kind")->str(), "watchdog");
    const json::Value *diag = error->find("diag");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->find("schema")->str(), "consim.diag.v1");
    const json::Value &good = points->at(0);
    EXPECT_TRUE(good.find("ok")->boolean());
    EXPECT_EQ(good.find("schema")->str(), "consim.run.v1");
}

TEST(SweepHardening, SixteenPointSweepWithTwoFaultsSalvagesFourteen)
{
    std::vector<RunConfig> configs;
    for (std::uint64_t s = 1; s <= 16; ++s)
        configs.push_back(s == 4 || s == 11 ? poisonedConfig(s)
                                            : quickConfig(s));
    SweepOptions opts;
    opts.maxRetries = 1;
    const std::vector<SweepRun> runs = runSweepEx(configs, opts);
    ASSERT_EQ(runs.size(), 16u);
    int good = 0, bad = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].ok) {
            ++good;
        } else {
            ++bad;
            EXPECT_TRUE(i == 3 || i == 10) << "unexpected failure at "
                                           << i;
            EXPECT_EQ(runs[i].retries, opts.maxRetries);
            EXPECT_EQ(runs[i].errorKind, "watchdog");
        }
    }
    EXPECT_EQ(good, 14);
    EXPECT_EQ(bad, 2);
}

TEST(SweepHardening, AveragedSweepDropsFailedSeeds)
{
    // One config whose faults only fire under its own plan: averaging
    // over seeds where every seed fails yields a default result, and
    // a mixed batch drops only the failing config's seeds.
    std::vector<RunConfig> configs = {quickConfig(0),
                                      poisonedConfig(0)};
    const std::vector<std::uint64_t> seeds = {1, 2};
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 0;
    const auto results = runSweepAveraged(configs, seeds, opts);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].vms.size(), 0u);
    EXPECT_EQ(results[1].vms.size(), 0u);
}
