/**
 * @file
 * Tests for System-level address mapping and snapshot machinery:
 * bank/home/memory-tile distribution, VM windows, exact replication
 * and occupancy accounting on hand-constructed cache states, and the
 * statistics dump.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "core/system.hh"

namespace consim
{
namespace
{

WorkloadProfile
smallProfile()
{
    WorkloadProfile p;
    p.name = "small";
    p.sharedRoBlocks = 4096;
    p.migratoryBlocks = 256;
    p.privateBlocksPerThread = 512;
    p.pSharedRo = 0.4;
    p.pMigratory = 0.05;
    p.hotSharedBlocks = 256;
    p.hotPrivateBlocks = 64;
    p.refsPerTransaction = 50;
    return p;
}

/** Fixed-sequence stream for populating known blocks. */
class SeqStream : public InstrStream
{
  public:
    explicit SeqStream(std::vector<WorkSlice> script)
        : script_(std::move(script))
    {
    }

    WorkSlice
    next() override
    {
        if (pos_ < script_.size())
            return script_[pos_++];
        WorkSlice idle;
        idle.computeCycles = 16;
        idle.noMemRef = true;
        return idle;
    }

    bool done() const { return pos_ >= script_.size(); }

  private:
    std::vector<WorkSlice> script_;
    std::size_t pos_ = 0;
};

class SystemTopology : public ::testing::Test
{
  protected:
    SystemTopology()
        : prof_(smallProfile()), vm_(prof_, 0, 1)
    {
        cfg_.sharing = SharingDegree::Shared4;
        sys_ = std::make_unique<System>(
            cfg_, std::vector<VirtualMachine *>{&vm_},
            std::vector<ThreadPlacement>{});
    }

    MachineConfig cfg_;
    WorkloadProfile prof_;
    VirtualMachine vm_;
    std::unique_ptr<System> sys_;
};

TEST_F(SystemTopology, BankTileIsAGroupMember)
{
    for (GroupId g = 0; g < cfg_.numGroups(); ++g) {
        const auto members = cfg_.coresOfGroup(g);
        for (BlockAddr b = 0; b < 64; ++b) {
            const CoreId tile = sys_->bankTileFor(g, b);
            EXPECT_NE(std::find(members.begin(), members.end(), tile),
                      members.end());
        }
    }
}

TEST_F(SystemTopology, BankInterleavingCoversAllMembers)
{
    std::set<CoreId> tiles;
    for (BlockAddr b = 0; b < 64; ++b)
        tiles.insert(sys_->bankTileFor(0, b));
    EXPECT_EQ(tiles.size(), 4u); // every member is a bank
}

TEST_F(SystemTopology, HomeStripingUsesAllTiles)
{
    std::map<CoreId, int> counts;
    for (BlockAddr b = 0; b < 4096; ++b)
        ++counts[sys_->homeTileFor(b)];
    EXPECT_EQ(counts.size(), 16u);
    for (const auto &[tile, n] : counts) {
        EXPECT_GT(n, 4096 / 16 / 2) << "tile " << tile;
        EXPECT_LT(n, 4096 / 16 * 2) << "tile " << tile;
    }
}

TEST_F(SystemTopology, MemTilesAreTheConfiguredControllers)
{
    std::set<CoreId> tiles;
    for (BlockAddr b = 0; b < 1024; ++b)
        tiles.insert(sys_->memTileFor(b));
    EXPECT_EQ(static_cast<int>(tiles.size()), cfg_.numMemCtrls);
    // Corner placement on the 4x4 mesh.
    for (auto t : tiles)
        EXPECT_TRUE(t == 0 || t == 3 || t == 12 || t == 15);
}

TEST_F(SystemTopology, VmWindowDecoding)
{
    EXPECT_EQ(sys_->vmOfBlock(vmBaseBlock(0) + 5), 0);
    EXPECT_EQ(sys_->vmOfBlock(vmBaseBlock(3) + 5), 3);
}

TEST_F(SystemTopology, ReplicationSnapshotCountsExactly)
{
    // Two cores in different quadrants read the same two blocks, and
    // one core reads a third block alone.
    auto s0 = std::make_unique<SeqStream>(std::vector<WorkSlice>{
        {0, vmBaseBlock(0) + 100, false, false, false},
        {0, vmBaseBlock(0) + 200, false, false, false},
        {0, vmBaseBlock(0) + 300, false, false, false}});
    auto s15 = std::make_unique<SeqStream>(std::vector<WorkSlice>{
        {0, vmBaseBlock(0) + 100, false, false, false},
        {0, vmBaseBlock(0) + 200, false, false, false}});
    sys_->core(0).bindThread(s0.get(), 0);
    sys_->core(15).bindThread(s15.get(), 0);

    bool settled = false;
    for (int i = 0; i < 2000 && !settled; ++i) {
        sys_->run(50);
        settled = sys_->quiesced() && s0->done() && s15->done();
    }
    ASSERT_TRUE(settled);

    const auto snap = sys_->replicationSnapshot();
    EXPECT_EQ(snap.distinctBlocks, 3u);
    EXPECT_EQ(snap.validLines, 5u);      // 100,200 twice; 300 once
    EXPECT_EQ(snap.replicatedLines, 4u); // both copies of 100 and 200
    EXPECT_NEAR(snap.replicatedFraction(), 0.8, 1e-9);
    EXPECT_EQ(snap.validPerVm.at(0), 5u);
}

TEST_F(SystemTopology, OccupancySnapshotAttributesLinesToGroups)
{
    auto s0 = std::make_unique<SeqStream>(std::vector<WorkSlice>{
        {0, vmBaseBlock(0) + 100, false, false, false},
        {0, vmBaseBlock(0) + 200, false, false, false}});
    sys_->core(0).bindThread(s0.get(), 0);
    bool settled = false;
    for (int i = 0; i < 2000 && !settled; ++i) {
        sys_->run(50);
        settled = sys_->quiesced() && s0->done();
    }
    ASSERT_TRUE(settled);

    const auto occ = sys_->occupancySnapshot();
    // Core 0 is in group 0: exactly two of group 0's lines are VM 0's.
    EXPECT_EQ(occ.lines.at(0).at(0), 2u);
    EXPECT_EQ(occ.lines.at(1).at(0), 0u);
    EXPECT_EQ(occ.lines.at(2).at(0), 0u);
    EXPECT_EQ(occ.lines.at(3).at(0), 0u);
    // Capacity = 4 banks x 16K lines.
    EXPECT_EQ(occ.capacity.at(0),
              4 * cfg_.l2TotalBytes / 16 / blockBytes);
}

TEST_F(SystemTopology, DumpStatsEmitsAllSections)
{
    auto s0 = std::make_unique<SeqStream>(std::vector<WorkSlice>{
        {0, vmBaseBlock(0) + 100, true, false, false}});
    sys_->core(0).bindThread(s0.get(), 0);
    for (int i = 0; i < 200; ++i)
        sys_->run(10);
    std::ostringstream os;
    sys_->dumpStats(os);
    const std::string s = os.str();
    for (const char *key :
         {"sys.tile00.core.instructions", "sys.tile00.l1.misses",
          "sys.tile00.l2bank.hits", "sys.tile00.dir.requests",
          ".mc.reads", "sys.net.packets_injected",
          "sys.vm00.l2_accesses"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
}

TEST_F(SystemTopology, SwapThreadsMovesWork)
{
    auto s0 = std::make_unique<SeqStream>(std::vector<WorkSlice>{});
    sys_->core(0).bindThread(s0.get(), 0);
    ASSERT_FALSE(sys_->core(0).idle());
    ASSERT_TRUE(sys_->core(7).idle());

    // Swapping must eventually move the single thread elsewhere.
    Rng rng(3);
    bool moved = false;
    for (int i = 0; i < 200 && !moved; ++i) {
        sys_->run(20);
        sys_->swapRandomThreads(rng);
        moved = sys_->core(0).idle();
    }
    EXPECT_TRUE(moved);
    int active = 0;
    for (CoreId c = 0; c < 16; ++c)
        active += sys_->core(c).idle() ? 0 : 1;
    EXPECT_EQ(active, 1); // conservation: exactly one bound thread
}

TEST_F(SystemTopology, GlobalCoherenceHoldsAfterScriptedTraffic)
{
    auto s0 = std::make_unique<SeqStream>([] {
        std::vector<WorkSlice> v;
        for (int i = 0; i < 50; ++i)
            v.push_back({0, vmBaseBlock(0) + 4 * i, i % 2 == 0, false,
                         false});
        return v;
    }());
    auto s15 = std::make_unique<SeqStream>([] {
        std::vector<WorkSlice> v;
        for (int i = 0; i < 50; ++i)
            v.push_back({0, vmBaseBlock(0) + 2 * i, i % 3 == 0, false,
                         false});
        return v;
    }());
    sys_->core(0).bindThread(s0.get(), 0);
    sys_->core(15).bindThread(s15.get(), 0);
    bool settled = false;
    for (int i = 0; i < 4000 && !settled; ++i) {
        sys_->run(50);
        settled = sys_->quiesced() && s0->done() && s15->done();
    }
    ASSERT_TRUE(settled);
    sys_->checkGlobalCoherence();
}

} // namespace
} // namespace consim
