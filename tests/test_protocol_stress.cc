/**
 * @file
 * Property-based protocol stress tests: random multi-core traffic
 * over every sharing degree, with periodic quiesce points at which
 * the full-map directory, the partition caches, and the private L1s
 * must agree exactly (System::checkGlobalCoherence). This is the
 * strongest correctness net in the suite: any lost invalidation,
 * stale presence bit, mis-owned line, or leaked transaction shows up
 * here.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "core/system.hh"

namespace consim
{
namespace
{

/** Generates random slices over a small block range, then idles. */
class RandomStream : public InstrStream
{
  public:
    RandomStream(std::uint64_t seed, BlockAddr base,
                 std::uint64_t range, double write_fraction,
                 std::uint64_t total_refs)
        : rng_(seed), base_(base), range_(range),
          writeFraction_(write_fraction), remaining_(total_refs)
    {
    }

    WorkSlice
    next() override
    {
        WorkSlice s;
        if (remaining_ == 0) {
            s.computeCycles = 16;
            s.noMemRef = true;
            return s;
        }
        --remaining_;
        s.computeCycles = static_cast<std::uint32_t>(rng_.below(3));
        s.block = base_ + rng_.below(range_);
        s.isWrite = rng_.chance(writeFraction_);
        return s;
    }

    bool done() const { return remaining_ == 0; }

  private:
    Rng rng_;
    BlockAddr base_;
    std::uint64_t range_;
    double writeFraction_;
    std::uint64_t remaining_;
};

WorkloadProfile
stressProfile()
{
    WorkloadProfile p;
    p.name = "stress";
    // Small enough that the directory walk in the coherence check is
    // fast, and that conflict misses and evictions are frequent.
    p.sharedRoBlocks = 3000;
    p.migratoryBlocks = 500;
    p.privateBlocksPerThread = 500;
    p.pSharedRo = 0.3;
    p.pMigratory = 0.1;
    p.hotSharedBlocks = 256;
    p.hotPrivateBlocks = 64;
    p.refsPerTransaction = 100;
    return p;
}

struct StressParam
{
    SharingDegree sharing;
    double writeFraction;
    int activeCores;
};

class ProtocolStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(ProtocolStress, RandomTrafficKeepsGlobalCoherence)
{
    const auto param = GetParam();
    const WorkloadProfile prof = stressProfile();
    VirtualMachine vm(prof, 0, 1);
    MachineConfig cfg;
    cfg.sharing = param.sharing;
    System sys(cfg, {&vm}, {});

    // Random streams share a hot 2K-block range so that every core
    // fights over the same sets and lines.
    std::vector<std::unique_ptr<RandomStream>> streams;
    for (CoreId c = 0; c < param.activeCores; ++c) {
        streams.push_back(std::make_unique<RandomStream>(
            1000 + c, vmBaseBlock(0), 2048, param.writeFraction,
            4000));
        sys.core(c).bindThread(streams.back().get(), 0);
    }

    bool settled = false;
    for (int iter = 0; iter < 8000 && !settled; ++iter) {
        sys.run(64);
        settled = sys.quiesced();
        for (const auto &s : streams)
            settled = settled && s->done();
    }
    ASSERT_TRUE(settled) << "stress run failed to drain";
    sys.checkInvariants();
    sys.checkGlobalCoherence();

    // Work actually happened.
    EXPECT_GT(vm.vmStats().l2Misses.value(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ProtocolStress,
    ::testing::Values(
        StressParam{SharingDegree::Private, 0.3, 16},
        StressParam{SharingDegree::Private, 0.7, 8},
        StressParam{SharingDegree::Shared2, 0.3, 16},
        StressParam{SharingDegree::Shared2, 0.6, 6},
        StressParam{SharingDegree::Shared4, 0.1, 16},
        StressParam{SharingDegree::Shared4, 0.5, 16},
        StressParam{SharingDegree::Shared4, 0.9, 16},
        StressParam{SharingDegree::Shared8, 0.4, 16},
        StressParam{SharingDegree::Shared8, 0.8, 5},
        StressParam{SharingDegree::Shared16, 0.3, 16},
        StressParam{SharingDegree::Shared16, 0.7, 16}),
    [](const ::testing::TestParamInfo<StressParam> &info) {
        std::string name =
            toString(info.param.sharing) + "_w" +
            std::to_string(
                static_cast<int>(info.param.writeFraction * 10)) +
            "_c" + std::to_string(info.param.activeCores);
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(ProtocolStressExtra, TinySetsForceEvictionStorms)
{
    // Shrink the L2 so that eviction/writeback paths (including
    // victim extraction from owning L1s) dominate.
    WorkloadProfile prof = stressProfile();
    VirtualMachine vm(prof, 0, 7);
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared4;
    cfg.l2TotalBytes = 512 * 1024; // 32KB per tile, 2K lines/partition
    cfg.l1Bytes = 16 * 1024;
    System sys(cfg, {&vm}, {});

    std::vector<std::unique_ptr<RandomStream>> streams;
    for (CoreId c = 0; c < 16; ++c) {
        streams.push_back(std::make_unique<RandomStream>(
            55 + c, vmBaseBlock(0), 4000, 0.5, 3000));
        sys.core(c).bindThread(streams.back().get(), 0);
    }
    bool settled = false;
    for (int iter = 0; iter < 8000 && !settled; ++iter) {
        sys.run(64);
        settled = sys.quiesced();
        for (const auto &s : streams)
            settled = settled && s->done();
    }
    ASSERT_TRUE(settled);
    sys.checkGlobalCoherence();
    std::uint64_t evictions = 0;
    for (CoreId t = 0; t < 16; ++t) {
        evictions += sys.bank(t).bankStats().evictDirty.value() +
                     sys.bank(t).bankStats().evictClean.value();
    }
    EXPECT_GT(evictions, 1000u);
}

TEST(ProtocolStressExtra, SingleHotBlockAllWriters)
{
    // Pathological contention: every core writes one block.
    WorkloadProfile prof = stressProfile();
    VirtualMachine vm(prof, 0, 3);
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared4;
    System sys(cfg, {&vm}, {});

    std::vector<std::unique_ptr<RandomStream>> streams;
    for (CoreId c = 0; c < 16; ++c) {
        streams.push_back(std::make_unique<RandomStream>(
            99 + c, vmBaseBlock(0), 1, 1.0, 500));
        sys.core(c).bindThread(streams.back().get(), 0);
    }
    bool settled = false;
    for (int iter = 0; iter < 20000 && !settled; ++iter) {
        sys.run(64);
        settled = sys.quiesced();
        for (const auto &s : streams)
            settled = settled && s->done();
    }
    ASSERT_TRUE(settled) << "hot-block run failed to drain";
    sys.checkGlobalCoherence();
    // Ownership must have migrated across partitions many times.
    std::uint64_t fwds = 0;
    for (CoreId t = 0; t < 16; ++t)
        fwds += sys.dir(t).sliceStats().forwards.value();
    EXPECT_GT(fwds, 500u);
}

TEST(ProtocolStressExtra, ReadersAndOneWriterPingPong)
{
    // One writer invalidates a crowd of readers repeatedly: stresses
    // the Inv/ack collection and the upgrade path.
    WorkloadProfile prof = stressProfile();
    VirtualMachine vm(prof, 0, 5);
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared4;
    System sys(cfg, {&vm}, {});

    std::vector<std::unique_ptr<RandomStream>> streams;
    for (CoreId c = 0; c < 16; ++c) {
        const double wf = c == 0 ? 1.0 : 0.0;
        streams.push_back(std::make_unique<RandomStream>(
            7 + c, vmBaseBlock(0), 16, wf, 800));
        sys.core(c).bindThread(streams.back().get(), 0);
    }
    bool settled = false;
    for (int iter = 0; iter < 20000 && !settled; ++iter) {
        sys.run(64);
        settled = sys.quiesced();
        for (const auto &s : streams)
            settled = settled && s->done();
    }
    ASSERT_TRUE(settled);
    sys.checkGlobalCoherence();
    std::uint64_t invs = 0;
    for (CoreId t = 0; t < 16; ++t)
        invs += sys.dir(t).sliceStats().invalidations.value();
    EXPECT_GT(invs, 100u);
}

} // namespace
} // namespace consim
