/**
 * @file
 * Checkpoint/resume (`consim.ckpt.v5`) tests: resume byte-identity
 * across every sharing degree and scheduling policy (including the
 * migration-boundary corner), watchdog-trip checkpoints under fault
 * injection, the sweep engine's resume-before-reseed retry ladder and
 * its seed-honesty reporting, and the strict env parsing the
 * experiment defaults rely on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "core/fault.hh"
#include "core/mix.hh"
#include "core/report.hh"
#include "exec/sweep.hh"

using namespace consim;

namespace
{

/** A small two-VM point: fast, yet exercises sharing and the NoC. */
RunConfig
smallConfig(SharingDegree sharing, SchedPolicy policy)
{
    RunConfig cfg =
        mixConfig(Mix::byName("Mix 1"), policy, sharing);
    cfg.seed = 7;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    cfg.watchdogIntervalCycles = 5'000;
    return cfg;
}

/**
 * Trip @p cfg with a mid-run cycle deadline while snapshotting every
 * @p every cycles, resume the attached pre-trip checkpoint, and
 * require the resumed run's `consim.run.v1` envelope to be
 * byte-identical to the uninterrupted run's.
 */
void
expectResumeByteIdentity(const RunConfig &cfg, Cycle deadline,
                         Cycle every)
{
    const RunResult full = runExperiment(cfg);
    const std::string full_doc = runResultJson(cfg, full).dump(2);

    RunConfig trip = cfg;
    trip.cycleDeadline = deadline;
    trip.ckptEveryCycles = every;
    try {
        runExperiment(trip);
        FAIL() << "deadline did not trip";
    } catch (const SimError &e) {
        ASSERT_EQ(e.kind(), SimErrorKind::Deadline);
        ASSERT_FALSE(e.ckpt().empty())
            << "no pre-trip checkpoint attached";
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::parse(e.ckpt(), doc, &err)) << err;

        // The embedded config echo round-trips to the original.
        const RunConfig echoed = configFromCheckpoint(doc);
        EXPECT_EQ(toJson(echoed).dump(), toJson(trip).dump());

        const RunResult resumed = resumeExperiment(doc);
        // Same (deadline-free) config echo on both sides: equality
        // holds iff every result bit matches.
        EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full_doc);
    }
}

} // namespace

// ---------------------------------------------------------------- //
// Resume byte-identity across the paper's configuration axes.       //
// ---------------------------------------------------------------- //

TEST(CheckpointResume, ByteIdenticalAcrossSharingDegrees)
{
    for (const SharingDegree d :
         {SharingDegree::Private, SharingDegree::Shared2,
          SharingDegree::Shared4, SharingDegree::Shared8,
          SharingDegree::Shared16}) {
        SCOPED_TRACE(toString(d));
        // Latest snapshot lands mid-measure (cycle 18000).
        expectResumeByteIdentity(
            smallConfig(d, SchedPolicy::Affinity), 20'000, 6'000);
    }
}

TEST(CheckpointResume, ByteIdenticalAcrossSchedulingPolicies)
{
    for (const SchedPolicy p :
         {SchedPolicy::RoundRobin, SchedPolicy::Affinity,
          SchedPolicy::AffinityRR, SchedPolicy::Random}) {
        SCOPED_TRACE(toString(p));
        expectResumeByteIdentity(
            smallConfig(SharingDegree::Shared4, p), 20'000, 6'000);
    }
}

TEST(CheckpointResume, ByteIdenticalWhenSnapshotLandsInWarmup)
{
    // Deadline 8000 < warmup 10000: the latest snapshot (6000) sits
    // in the warmup phase, so the resume finishes warmup, resets
    // stats, and runs the whole measurement window.
    expectResumeByteIdentity(
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity),
        8'000, 3'000);
}

TEST(CheckpointResume, ByteIdenticalUnderMigration)
{
    RunConfig cfg =
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity);
    cfg.migrationIntervalCycles = 6'000;
    // Snapshot at absolute 22000 = 12000 cycles into the measurement
    // phase — exactly an interior migration boundary. The snapshot is
    // taken before the swap, so the resume must redo it with the
    // pre-swap RNG state carried in the context.
    expectResumeByteIdentity(cfg, 23'000, 11'000);
}

TEST(CheckpointResume, ByteIdenticalAt64Cores)
{
    // The scale model's word-array snapshots (CoreSets instead of the
    // old fixed 16-bit masks) must uphold the same byte-identity
    // contract beyond the paper's chip: 64 cores, 8-way sharing.
    RunConfig cfg = smallConfig(SharingDegree::Shared8,
                                SchedPolicy::Affinity);
    cfg.machine.meshX = 8;
    cfg.machine.meshY = 8;
    expectResumeByteIdentity(cfg, 20'000, 6'000);
}

TEST(CheckpointResume, HeterogeneousVmThreadsSurviveTheContext)
{
    // vm_threads rides in the checkpoint context: the resumed rig
    // must rebuild the same 2/4/8-thread VMs, and configFromCheckpoint
    // must echo the override (checked inside the helper via the
    // config-echo dump comparison).
    RunConfig cfg = smallConfig(SharingDegree::Shared4,
                                SchedPolicy::Affinity);
    cfg.machine.meshX = 8;
    cfg.machine.meshY = 4;
    cfg.workloads = {WorkloadKind::SpecJbb, WorkloadKind::TpcW,
                     WorkloadKind::TpcH};
    cfg.vmThreads = {2, 4, 8};
    expectResumeByteIdentity(cfg, 20'000, 6'000);
}

TEST(CheckpointSchemaDeathTest, OldSnapshotsRefusedWithExplanation)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // Pre-scale-model snapshots encode sharers as fixed 16-bit masks
    // and cannot be widened faithfully; the refusal must say so
    // rather than die decoding the machine section.
    json::Value v2 = json::Value::object();
    v2.set("schema", "consim.ckpt.v2");
    EXPECT_DEATH(resumeExperiment(v2), "fixed 16-bit masks");
    json::Value v1 = json::Value::object();
    v1.set("schema", "consim.ckpt.v1");
    EXPECT_DEATH(resumeExperiment(v1), "re-run the original");
    EXPECT_DEATH(resumeExperiment(json::Value::object()),
                 "not a consim.ckpt.v5 document");
}

// ---------------------------------------------------------------- //
// Watchdog trips under fault injection carry a resumable snapshot.  //
// ---------------------------------------------------------------- //

TEST(CheckpointResume, WatchdogTripCheckpointIsRestorable)
{
    RunConfig cfg =
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity);
    ASSERT_TRUE(
        FaultPlan::parse("wedge:core=0,at=15000", cfg.faults));
    cfg.watchdogIntervalCycles = 2'000;
    cfg.ckptEveryCycles = 5'000;
    try {
        runExperiment(cfg);
        FAIL() << "wedge did not trip the watchdog";
    } catch (const SimError &e) {
        ASSERT_EQ(e.kind(), SimErrorKind::Watchdog);
        ASSERT_FALSE(e.ckpt().empty());
        json::Value doc;
        ASSERT_TRUE(json::parse(e.ckpt(), doc));
        // The wedge is part of the machine state (fired flag or
        // pending event, not a re-armed plan), so a resume faithfully
        // reproduces the stall and trips the watchdog again instead
        // of silently dropping the fault.
        try {
            resumeExperiment(doc);
            FAIL() << "resumed run lost the wedge fault";
        } catch (const SimError &again) {
            EXPECT_EQ(again.kind(), SimErrorKind::Watchdog);
        }
    }
}

// ---------------------------------------------------------------- //
// Sweep retry ladder: resume first, reseed only after.              //
// ---------------------------------------------------------------- //

TEST(SweepRetry, ResumesFromPreTripSnapshotUnderConfiguredSeed)
{
    RunConfig cfg =
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity);
    const RunResult full = runExperiment(cfg);

    RunConfig trip = cfg;
    trip.cycleDeadline = 18'000;
    trip.ckptEveryCycles = 6'000;
    SweepOptions opts;
    opts.jobs = 1;
    opts.maxRetries = 1;
    const std::vector<SweepRun> runs = runSweepEx({trip}, opts);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_TRUE(runs[0].ok);
    EXPECT_EQ(runs[0].retries, 1);
    EXPECT_TRUE(runs[0].resumed);
    // Seed honesty: the resume kept the configured seed, so the
    // result answers the configured question...
    EXPECT_EQ(runs[0].effectiveSeed, trip.seed);
    // ...bit-for-bit: the salvaged point equals the uninterrupted
    // run of the same seed.
    EXPECT_EQ(runResultJson(cfg, runs[0].result).dump(2),
              runResultJson(cfg, full).dump(2));

    // And consim.sweep.v2 reports the recovery.
    const json::Value doc = sweepResultsJson({trip}, runs);
    const json::Value &p = doc.find("points")->at(0);
    EXPECT_TRUE(p.find("ok")->boolean());
    ASSERT_NE(p.find("effective_seed"), nullptr);
    EXPECT_EQ(p.find("effective_seed")->asUint(), trip.seed);
    ASSERT_NE(p.find("resumed"), nullptr);
    EXPECT_TRUE(p.find("resumed")->boolean());
}

TEST(SweepRetry, WithoutSnapshotsFallsBackToMutatedSeed)
{
    // No periodic snapshots: the deterministic wedge fails every
    // attempt, and the ladder's later rungs run under mutated seeds
    // (recorded faithfully even though they also fail).
    RunConfig cfg =
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity);
    ASSERT_TRUE(
        FaultPlan::parse("wedge:core=0,at=15000", cfg.faults));
    cfg.watchdogIntervalCycles = 2'000;
    SweepOptions opts;
    opts.jobs = 1;
    opts.maxRetries = 1;
    const std::vector<SweepRun> runs = runSweepEx({cfg}, opts);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_FALSE(runs[0].ok);
    EXPECT_FALSE(runs[0].resumed);
    EXPECT_EQ(runs[0].retries, opts.maxRetries);
    EXPECT_EQ(runs[0].errorKind, "watchdog");
    EXPECT_TRUE(runs[0].ckpt.empty());
}

// ---------------------------------------------------------------- //
// Averaged sweeps disclose how many seeds survived.                 //
// ---------------------------------------------------------------- //

TEST(SweepAveraged, PoisonedSeedGroupYieldsEmptyResultNotNan)
{
    RunConfig clean =
        smallConfig(SharingDegree::Shared4, SchedPolicy::Affinity);
    RunConfig poisoned = clean;
    ASSERT_TRUE(FaultPlan::parse("wedge:core=0,at=15000",
                                 poisoned.faults));
    poisoned.watchdogIntervalCycles = 2'000;

    const std::vector<std::uint64_t> seeds = {1, 2};
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxRetries = 0;
    const auto results =
        runSweepAveraged({clean, poisoned}, seeds, opts);
    ASSERT_EQ(results.size(), 2u);

    // Clean config: both seeds averaged in, and the result says so.
    EXPECT_GT(results[0].vms.size(), 0u);
    EXPECT_EQ(results[0].seedsUsed, 2);
    for (const auto &vm : results[0].vms) {
        EXPECT_EQ(vm.cyclesPerTransaction, vm.cyclesPerTransaction)
            << "NaN leaked into an averaged metric";
    }

    // Fault-poisoned config: every seed failed; the salvage result is
    // a well-formed empty (no division by zero), marked as covering
    // zero seeds.
    EXPECT_EQ(results[1].vms.size(), 0u);
    EXPECT_EQ(results[1].seedsUsed, 0);
    EXPECT_EQ(results[1].netPackets, 0u);
    EXPECT_EQ(results[1].netAvgLatency, 0.0);

    // seeds_used reaches the JSON envelope only for averaged results.
    const json::Value ok_doc = runResultJson(clean, results[0]);
    ASSERT_NE(ok_doc.find("result")->find("seeds_used"), nullptr);
    EXPECT_EQ(
        ok_doc.find("result")->find("seeds_used")->asUint(), 2u);
    const RunResult single = runExperiment(clean);
    const json::Value single_doc = runResultJson(clean, single);
    EXPECT_EQ(single_doc.find("result")->find("seeds_used"), nullptr);
}

// ---------------------------------------------------------------- //
// Protocol-message codec.                                           //
// ---------------------------------------------------------------- //

TEST(CheckpointCodec, MsgRoundTrips)
{
    Msg m;
    m.type = MsgType::GetS;
    m.block = 0x12345678u;
    m.srcTile = 3;
    m.dstTile = 14;
    m.srcUnit = Unit::L1;
    m.dstUnit = Unit::Dir;
    m.reqCore = 3;
    m.reqBankTile = 9;
    m.reqGroup = 2;
    m.vm = 1;
    m.isWrite = true;
    m.dirtyData = true;
    m.c2cTransfer = true;
    m.ackCount = -2;
    m.injectCycle = 987654321u;
    const Msg back = msgFromJson(msgToJson(m));
    EXPECT_EQ(back.type, m.type);
    EXPECT_EQ(back.block, m.block);
    EXPECT_EQ(back.srcTile, m.srcTile);
    EXPECT_EQ(back.dstTile, m.dstTile);
    EXPECT_EQ(back.srcUnit, m.srcUnit);
    EXPECT_EQ(back.dstUnit, m.dstUnit);
    EXPECT_EQ(back.reqCore, m.reqCore);
    EXPECT_EQ(back.reqBankTile, m.reqBankTile);
    EXPECT_EQ(back.reqGroup, m.reqGroup);
    EXPECT_EQ(back.vm, m.vm);
    EXPECT_EQ(back.isWrite, m.isWrite);
    EXPECT_EQ(back.dirtyData, m.dirtyData);
    EXPECT_EQ(back.c2cTransfer, m.c2cTransfer);
    EXPECT_EQ(back.ackCount, m.ackCount);
    EXPECT_EQ(back.injectCycle, m.injectCycle);
}

// ---------------------------------------------------------------- //
// Strict env parsing for the experiment defaults.                   //
// ---------------------------------------------------------------- //

namespace
{

/** Set an env var for one scope, restoring the old value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (old_.empty())
            ::unsetenv(name_);
        else
            ::setenv(name_, old_.c_str(), 1);
    }

  private:
    const char *name_;
    std::string old_;
};

} // namespace

TEST(EnvDefaults, WellFormedValuesApply)
{
    {
        ScopedEnv e("CONSIM_WARMUP", "123456");
        EXPECT_EQ(defaultWarmupCycles(), 123456u);
    }
    {
        // Explicit 0 means "use the built-in default" for windows...
        ScopedEnv e("CONSIM_MEASURE", "0");
        EXPECT_EQ(defaultMeasureCycles(), 3'000'000u);
    }
    {
        // ...but is meaningful (disable) for the watchdog.
        ScopedEnv e("CONSIM_WATCHDOG", "0");
        EXPECT_EQ(defaultWatchdogIntervalCycles(), 0u);
    }
    {
        ScopedEnv e("CONSIM_CKPT", "250000");
        EXPECT_EQ(defaultCheckpointIntervalCycles(), 250000u);
    }
    EXPECT_EQ(defaultCheckpointIntervalCycles(), 0u);
}

TEST(EnvDefaultsDeathTest, MalformedValuesAreFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    {
        ScopedEnv e("CONSIM_WARMUP", "4m");
        EXPECT_EXIT(defaultWarmupCycles(),
                    ::testing::ExitedWithCode(1), "CONSIM_WARMUP");
    }
    {
        ScopedEnv e("CONSIM_MEASURE", "");
        EXPECT_EXIT(defaultMeasureCycles(),
                    ::testing::ExitedWithCode(1), "CONSIM_MEASURE");
    }
    {
        ScopedEnv e("CONSIM_WATCHDOG", "-5");
        EXPECT_EXIT(defaultWatchdogIntervalCycles(),
                    ::testing::ExitedWithCode(1), "CONSIM_WATCHDOG");
    }
    {
        ScopedEnv e("CONSIM_CKPT", "1e6");
        EXPECT_EXIT(defaultCheckpointIntervalCycles(),
                    ::testing::ExitedWithCode(1), "CONSIM_CKPT");
    }
}
