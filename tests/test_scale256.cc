/**
 * @file
 * Large-scale determinism: the guarantees proven at 16 cores must
 * hold on the meshes the scale study sweeps — serial-vs-parallel
 * byte identity at 128 cores, checkpoint/resume byte identity at
 * 256 cores (CoreSet heap-spill codec: 256 private groups need four
 * presence words), and over-committed schedules (more VM threads
 * than cores) across run engines, snapshots, and resumes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/json.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/report.hh"

using namespace consim;

namespace
{

/** Mix 1 on an @p x x @p y mesh, short windows. */
RunConfig
scaleConfig(int x, int y, SharingDegree sharing, SchedPolicy policy)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"), policy, sharing);
    cfg.machine.meshX = x;
    cfg.machine.meshY = y;
    cfg.seed = 13;
    cfg.warmupCycles = 8'000;
    cfg.measureCycles = 12'000;
    return cfg;
}

/** Full-envelope byte identity between serial and @p jobs workers. */
void
expectParallelByteIdentity(const RunConfig &cfg, int jobs)
{
    RunConfig serial = cfg;
    serial.runJobs = 1;
    const std::string serial_doc =
        runResultJson(serial, runExperiment(serial)).dump(2);
    RunConfig par = cfg;
    par.runJobs = jobs;
    const std::string par_doc =
        runResultJson(par, runExperiment(par)).dump(2);
    EXPECT_EQ(par_doc, serial_doc) << "run-jobs " << jobs;
}

/** Deadline-trip + resume must reproduce the uninterrupted run. */
void
expectResumeByteIdentity(const RunConfig &cfg, Cycle deadline,
                         Cycle every)
{
    const std::string full_doc =
        runResultJson(cfg, runExperiment(cfg)).dump(2);
    RunConfig trip = cfg;
    trip.cycleDeadline = deadline;
    trip.ckptEveryCycles = every;
    try {
        runExperiment(trip);
        FAIL() << "deadline did not trip";
    } catch (const SimError &e) {
        ASSERT_EQ(e.kind(), SimErrorKind::Deadline);
        ASSERT_FALSE(e.ckpt().empty());
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::parse(e.ckpt(), doc, &err)) << err;
        const RunResult resumed = resumeExperiment(doc);
        EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full_doc);
    }
}

} // namespace

TEST(Scale256, SerialVsParallelByteIdenticalAt128Cores)
{
    // 16x8 mesh: the adaptive lookahead window is (16+8)/4 = 6
    // cycles here, twice the legacy fixed handoff — identity must
    // survive the wider window.
    RunConfig cfg = scaleConfig(16, 8, SharingDegree::Shared8,
                                SchedPolicy::RoundRobin);
    cfg.vmThreads = {32, 32, 32, 32};
    expectParallelByteIdentity(cfg, 2);
    expectParallelByteIdentity(cfg, 4);
}

TEST(Scale256, CheckpointRoundTripsAt256CoresPrivateSharing)
{
    // 256 private groups: every directory GroupSet and presence
    // CoreSet spills to four heap words, so the snapshot codec's
    // word-array paths (save, load, trailing-zero canonicalisation)
    // all run. Resume must be byte-identical.
    RunConfig cfg = scaleConfig(16, 16, SharingDegree::Private,
                                SchedPolicy::RoundRobin);
    cfg.vmThreads = {64, 64, 64, 64};
    expectResumeByteIdentity(cfg, 14'000, 5'000);
}

TEST(Scale256, OverCommittedScheduleMakesProgressForEveryVm)
{
    // 32 threads on 16 cores: time-slicing must keep every VM
    // retiring transactions, not just the first layer.
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.seed = 13;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 40'000;
    cfg.vmThreads = {8, 8, 8, 8};
    cfg.timesliceCycles = 5'000;
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 4u);
    // Per-VM instruction counts prove rotation: the second-layer VMs
    // (2 and 3 under affinity packing) only ever run when the first
    // layer is preempted. Round-robin rotation should also keep the
    // layers in the same ballpark — no layer starves.
    std::uint64_t lo = ~0ull, hi = 0;
    for (std::size_t i = 0; i < r.vms.size(); ++i) {
        EXPECT_GT(r.vms[i].instructions, 0u) << "vm " << i;
        lo = std::min(lo, r.vms[i].instructions);
        hi = std::max(hi, r.vms[i].instructions);
    }
    EXPECT_GT(lo * 4, hi)
        << "a VM starved: min " << lo << " vs max " << hi
        << " instructions";
}

TEST(Scale256, OverCommittedByteIdenticalSerialVsParallel)
{
    RunConfig cfg = scaleConfig(4, 4, SharingDegree::Shared4,
                                SchedPolicy::Affinity);
    cfg.measureCycles = 25'000;
    cfg.vmThreads = {8, 8, 8, 8};
    cfg.timesliceCycles = 4'000;
    expectParallelByteIdentity(cfg, 4);
}

TEST(Scale256, OverCommittedResumeRestoresRotationState)
{
    // The snapshot lands mid-quantum; the resumed run must preempt
    // on the same absolute boundaries (ctx_pos / next_slice codec).
    RunConfig cfg = scaleConfig(4, 4, SharingDegree::Shared4,
                                SchedPolicy::Affinity);
    cfg.measureCycles = 25'000;
    cfg.vmThreads = {8, 8, 8, 8};
    cfg.timesliceCycles = 4'000;
    expectResumeByteIdentity(cfg, 21'000, 9'000);
}

TEST(Scale256, OverCommitWorksOnLargeMeshes)
{
    // 256 threads on 128 cores, shared-16 partitions: the schedule
    // the fig16 bench sweeps.
    RunConfig cfg = scaleConfig(16, 8, SharingDegree::Shared16,
                                SchedPolicy::Affinity);
    cfg.warmupCycles = 6'000;
    cfg.measureCycles = 10'000;
    cfg.vmThreads = {64, 64, 64, 64};
    const RunResult r = runExperiment(cfg);
    std::uint64_t instr = 0;
    for (const auto &v : r.vms)
        instr += v.instructions;
    EXPECT_GT(instr, 0u);
}
