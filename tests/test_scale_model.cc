/**
 * @file
 * Tests for the parametric scale model: the CoreSet variable-width
 * bitset, contiguous rectangular group tiling on arbitrary meshes,
 * XY routing and mesh delivery beyond 4x4 (including the non-square
 * 8x4 and non-pow2 6x6 geometries), bank/home/memory-tile mapping on
 * scaled-out chips, heterogeneous per-VM thread counts, and — the
 * correctness anchor of the whole refactor — a golden-hash regression
 * pinning the paper's 16-core consim.run.v1 envelope byte-for-byte
 * across all five sharing degrees and all four scheduling policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/config.hh"
#include "common/coreset.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/system.hh"
#include "noc/mesh.hh"
#include "noc/network.hh"
#include "noc/routing.hh"

namespace consim
{
namespace
{

// --- CoreSet ------------------------------------------------------

TEST(CoreSet, StartsEmpty)
{
    CoreSet s;
    EXPECT_TRUE(s.none());
    EXPECT_FALSE(s.any());
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.findFirst(), -1);
}

TEST(CoreSet, SetTestClearWithinInlineWord)
{
    CoreSet s;
    s.set(0);
    s.set(15);
    s.set(63);
    EXPECT_TRUE(s.test(0) && s.test(15) && s.test(63));
    EXPECT_FALSE(s.test(1));
    EXPECT_EQ(s.count(), 3);
    s.clear(15);
    EXPECT_FALSE(s.test(15));
    EXPECT_EQ(s.count(), 2);
}

TEST(CoreSet, GrowsPast64Bits)
{
    CoreSet s;
    s.set(3);
    s.set(64);
    s.set(200);
    EXPECT_TRUE(s.test(3) && s.test(64) && s.test(200));
    EXPECT_FALSE(s.test(63) || s.test(65) || s.test(199));
    EXPECT_EQ(s.count(), 3);
    EXPECT_EQ(s.findFirst(), 3);
    s.clear(3);
    EXPECT_EQ(s.findFirst(), 64);
}

TEST(CoreSet, EqualityIgnoresStorageWidth)
{
    // A set that grew beyond 64 bits and then lost its high bits must
    // compare equal to one that never grew.
    CoreSet grew;
    grew.set(5);
    grew.set(130);
    grew.clear(130);
    CoreSet never;
    never.set(5);
    EXPECT_EQ(grew, never);
    EXPECT_EQ(never, grew);
    never.set(6);
    EXPECT_NE(grew, never);
}

TEST(CoreSet, ForEachSetIsAscending)
{
    CoreSet s;
    for (const int i : {190, 2, 64, 5, 127})
        s.set(i);
    std::vector<int> seen;
    s.forEachSet([&](int i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<int>{2, 5, 64, 127, 190}));
}

TEST(CoreSet, IsExactly)
{
    CoreSet s = CoreSet::single(7);
    EXPECT_TRUE(s.isExactly(7));
    EXPECT_FALSE(s.isExactly(6));
    s.set(90);
    EXPECT_FALSE(s.isExactly(7));
}

TEST(CoreSet, CopyIsDeep)
{
    CoreSet a;
    a.set(100);
    CoreSet b = a;
    b.set(101);
    EXPECT_FALSE(a.test(101));
    a = b;
    EXPECT_TRUE(a.test(101));
    a.clear(101);
    EXPECT_TRUE(b.test(101));
}

TEST(CoreSet, WordsRoundTrip)
{
    CoreSet s;
    s.set(1);
    s.set(70);
    s.set(300);
    const CoreSet back = CoreSet::fromWords(s.words());
    EXPECT_EQ(back, s);
    // Trimming: a small set serializes to at most one word.
    CoreSet small;
    small.set(9);
    EXPECT_EQ(small.words().size(), 1u);
    // The empty set serializes to no words at all.
    EXPECT_TRUE(CoreSet().words().empty());
    EXPECT_EQ(CoreSet::fromWords({}), CoreSet());
}

TEST(CoreSet, ResetKeepsNothingSet)
{
    CoreSet s;
    s.set(3);
    s.set(300);
    s.reset();
    EXPECT_TRUE(s.none());
    EXPECT_EQ(s, CoreSet());
    s.set(300); // storage is reusable after reset
    EXPECT_TRUE(s.test(300));
    EXPECT_EQ(s.count(), 1);
}

// --- group tiling -------------------------------------------------

MachineConfig
meshConfig(int mx, int my, int cpg)
{
    MachineConfig m;
    m.meshX = mx;
    m.meshY = my;
    m.sharing = sharingDegree(cpg);
    return m;
}

TEST(GroupTiling, PaperMeshReproducesFig1Groupings)
{
    // Degree 2: horizontal pairs (group = core/2).
    const MachineConfig pairs = meshConfig(4, 4, 2);
    EXPECT_EQ(pairs.groupTileShape(), (std::pair<int, int>{2, 1}));
    for (CoreId c = 0; c < 16; ++c)
        EXPECT_EQ(pairs.groupOfCore(c), c / 2);

    // Degree 4: the 2x2 quadrants.
    const MachineConfig quads = meshConfig(4, 4, 4);
    EXPECT_EQ(quads.groupTileShape(), (std::pair<int, int>{2, 2}));
    for (CoreId c = 0; c < 16; ++c) {
        const int x = c % 4, y = c / 4;
        EXPECT_EQ(quads.groupOfCore(c), (y / 2) * 2 + x / 2);
    }

    // Degree 8: the top/bottom halves.
    const MachineConfig halves = meshConfig(4, 4, 8);
    EXPECT_EQ(halves.groupTileShape(), (std::pair<int, int>{4, 2}));
    for (CoreId c = 0; c < 16; ++c)
        EXPECT_EQ(halves.groupOfCore(c), (c / 4) / 2);

    // Degrees 1 and 16: per-core and whole-chip.
    const MachineConfig priv = meshConfig(4, 4, 1);
    const MachineConfig full = meshConfig(4, 4, 16);
    for (CoreId c = 0; c < 16; ++c) {
        EXPECT_EQ(priv.groupOfCore(c), c);
        EXPECT_EQ(full.groupOfCore(c), 0);
    }
}

/** Groups must partition the mesh into equal contiguous rectangles. */
void
expectRectangularPartition(const MachineConfig &m)
{
    const int cpg = coresPerGroup(m.sharing);
    const auto [gx, gy] = m.groupTileShape();
    ASSERT_GT(gx, 0) << m.meshX << "x" << m.meshY << " cpg " << cpg;
    EXPECT_EQ(gx * gy, cpg);
    EXPECT_EQ(m.meshX % gx, 0);
    EXPECT_EQ(m.meshY % gy, 0);
    std::map<GroupId, std::vector<CoreId>> members;
    for (CoreId c = 0; c < m.numCores(); ++c)
        members[m.groupOfCore(c)].push_back(c);
    ASSERT_EQ(static_cast<int>(members.size()), m.numGroups());
    for (const auto &[g, cores] : members) {
        ASSERT_EQ(static_cast<int>(cores.size()), cpg) << "group " << g;
        // Contiguity: the member bounding box is exactly gx-by-gy.
        int min_x = m.meshX, max_x = -1, min_y = m.meshY, max_y = -1;
        for (CoreId c : cores) {
            min_x = std::min(min_x, c % m.meshX);
            max_x = std::max(max_x, c % m.meshX);
            min_y = std::min(min_y, c / m.meshX);
            max_y = std::max(max_y, c / m.meshX);
        }
        EXPECT_EQ(max_x - min_x + 1, gx) << "group " << g;
        EXPECT_EQ(max_y - min_y + 1, gy) << "group " << g;
        EXPECT_EQ(m.coresOfGroup(g), cores);
    }
}

TEST(GroupTiling, RectangularMeshes)
{
    for (const int cpg : {1, 2, 4, 8, 16, 32})
        expectRectangularPartition(meshConfig(8, 4, cpg));
    for (const int cpg : {1, 2, 4, 8, 16, 32, 64})
        expectRectangularPartition(meshConfig(8, 8, cpg));
    for (const int cpg : {1, 2, 4, 8, 16, 32, 64, 128})
        expectRectangularPartition(meshConfig(16, 8, cpg));
}

TEST(GroupTiling, NonPow2MeshAndDegrees)
{
    // 6x6 chip: 36 cores admit non-pow2 degrees.
    for (const int cpg : {1, 2, 3, 4, 6, 9, 12, 18, 36})
        expectRectangularPartition(meshConfig(6, 6, cpg));
    EXPECT_EQ(meshConfig(6, 6, 9).groupTileShape(),
              (std::pair<int, int>{3, 3}));
    EXPECT_EQ(meshConfig(6, 6, 6).groupTileShape(),
              (std::pair<int, int>{3, 2}));
}

// --- XY routing on non-4x4 meshes (satellite: mesh geometry) ------

/** Walk xyRoute hop by hop from src to dst, asserting every step
 *  stays on the mesh and the walk takes exactly hopDistance steps. */
void
expectXyWalkReaches(int mesh_x, int mesh_y, CoreId src, CoreId dst)
{
    CoreId here = src;
    int steps = 0;
    while (here != dst) {
        const int port = xyRoute(here, dst, mesh_x);
        const int x = here % mesh_x, y = here / mesh_x;
        switch (port) {
          case PortEast:
            ASSERT_LT(x, mesh_x - 1) << "east off-mesh at " << here;
            here += 1;
            break;
          case PortWest:
            ASSERT_GT(x, 0) << "west off-mesh at " << here;
            here -= 1;
            break;
          case PortSouth:
            ASSERT_LT(y, mesh_y - 1) << "south off-mesh at " << here;
            here += mesh_x;
            break;
          case PortNorth:
            ASSERT_GT(y, 0) << "north off-mesh at " << here;
            here -= mesh_x;
            break;
          default:
            FAIL() << "local port before reaching dst (tile " << here
                   << " -> " << dst << ")";
        }
        ASSERT_LE(++steps, mesh_x + mesh_y) << "routing loop";
    }
    EXPECT_EQ(steps, hopDistance(src, dst, mesh_x));
    EXPECT_EQ(xyRoute(dst, dst, mesh_x), PortLocal);
}

TEST(ScaledRouting, AllPairsReachableOn8x4And6x6)
{
    for (const auto &[mx, my] : {std::pair<int, int>{8, 4},
                                 std::pair<int, int>{6, 6}}) {
        for (CoreId s = 0; s < mx * my; ++s)
            for (CoreId d = 0; d < mx * my; ++d)
                expectXyWalkReaches(mx, my, s, d);
    }
}

TEST(ScaledRouting, MeshDeliversAllPairsOn8x4)
{
    MachineConfig cfg = meshConfig(8, 4, 8);
    Mesh mesh(cfg);
    std::vector<Msg> delivered;
    mesh.setDeliver([&](const Msg &m) { delivered.push_back(m); });
    Cycle now = 0;
    int injected = 0;
    for (CoreId src = 0; src < 32; ++src) {
        for (CoreId dst = 0; dst < 32; ++dst) {
            if (src == dst)
                continue;
            Msg m;
            m.type = MsgType::GetS;
            m.block = static_cast<BlockAddr>(src * 32 + dst);
            m.srcTile = src;
            m.dstTile = dst;
            m.srcUnit = m.dstUnit = Unit::L2Bank;
            m.injectCycle = now;
            mesh.inject(m);
            ++injected;
        }
    }
    for (int i = 0; i < 20000 && !mesh.idle(); ++i)
        mesh.tick(now++);
    ASSERT_EQ(static_cast<int>(delivered.size()), injected);
    EXPECT_TRUE(mesh.idle());
    for (const Msg &m : delivered)
        EXPECT_EQ(m.block,
                  static_cast<BlockAddr>(m.srcTile * 32 + m.dstTile));
}

TEST(ScaledRouting, MeshDeliversAllPairsOn6x6)
{
    MachineConfig cfg = meshConfig(6, 6, 6);
    Mesh mesh(cfg);
    int delivered = 0;
    mesh.setDeliver([&](const Msg &) { ++delivered; });
    Cycle now = 0;
    int injected = 0;
    for (CoreId src = 0; src < 36; ++src) {
        for (CoreId dst = 0; dst < 36; ++dst) {
            if (src == dst)
                continue;
            Msg m;
            m.type = MsgType::Data;
            m.block = 1;
            m.srcTile = src;
            m.dstTile = dst;
            m.srcUnit = m.dstUnit = Unit::L2Bank;
            m.injectCycle = now;
            mesh.inject(m);
            ++injected;
        }
    }
    for (int i = 0; i < 60000 && !mesh.idle(); ++i)
        mesh.tick(now++);
    EXPECT_EQ(delivered, injected);
    EXPECT_TRUE(mesh.idle());
}

// --- bank / home / memory mapping on scaled-out chips -------------

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p;
    p.name = "tiny";
    p.sharedRoBlocks = 4096;
    p.migratoryBlocks = 256;
    p.privateBlocksPerThread = 512;
    p.pSharedRo = 0.4;
    p.pMigratory = 0.05;
    p.hotSharedBlocks = 256;
    p.hotPrivateBlocks = 64;
    p.refsPerTransaction = 50;
    return p;
}

/** bankTileFor must be onto the group members and nothing else, and
 *  home striping must hit every tile. */
void
expectBankMapCoversGroups(const MachineConfig &cfg)
{
    WorkloadProfile prof = tinyProfile();
    VirtualMachine vm(prof, 0, 1);
    System sys(cfg, {&vm}, {});
    for (GroupId g = 0; g < cfg.numGroups(); ++g) {
        const auto members = cfg.coresOfGroup(g);
        std::set<CoreId> seen;
        for (BlockAddr b = 0; b < 256; ++b) {
            const CoreId tile = sys.bankTileFor(g, b);
            EXPECT_TRUE(std::find(members.begin(), members.end(),
                                  tile) != members.end())
                << "group " << g << " block " << b << " -> tile "
                << tile;
            seen.insert(tile);
        }
        EXPECT_EQ(seen.size(), members.size()) << "group " << g;
        // Interleaving is a bijection per stride: consecutive blocks
        // cycle through all members before repeating.
        const int size = static_cast<int>(members.size());
        std::set<CoreId> stride;
        for (BlockAddr b = 0; b < static_cast<BlockAddr>(size); ++b)
            stride.insert(sys.bankTileFor(g, b));
        EXPECT_EQ(static_cast<int>(stride.size()), size)
            << "group " << g;
    }
    std::set<CoreId> homes;
    for (BlockAddr b = 0; b < 8192; ++b)
        homes.insert(sys.homeTileFor(b));
    EXPECT_EQ(static_cast<int>(homes.size()), cfg.numCores());
}

TEST(ScaledTopology, BankMapOn8x4)
{
    MachineConfig cfg = meshConfig(8, 4, 8);
    expectBankMapCoversGroups(cfg);
}

TEST(ScaledTopology, BankMapOn6x6NonPow2Groups)
{
    // 6-core groups exercise the non-pow2 modulo interleave path; the
    // aggregate L2 is picked so every one of the 36 banks holds whole
    // sets (validate() rejects sizes that do not split).
    MachineConfig cfg = meshConfig(6, 6, 6);
    cfg.l2TotalBytes = 36ull * 64 * 1024;
    expectBankMapCoversGroups(cfg);
}

TEST(ScaledTopology, MemControllersSitOnCornersOf8x4)
{
    MachineConfig cfg = meshConfig(8, 4, 4);
    WorkloadProfile prof = tinyProfile();
    VirtualMachine vm(prof, 0, 1);
    System sys(cfg, {&vm}, {});
    std::set<CoreId> tiles;
    for (BlockAddr b = 0; b < 4096; ++b)
        tiles.insert(sys.memTileFor(b));
    EXPECT_EQ(static_cast<int>(tiles.size()), cfg.numMemCtrls);
    for (const CoreId t : tiles)
        EXPECT_TRUE(t == 0 || t == 7 || t == 24 || t == 31)
            << "tile " << t;
}

TEST(ScaledConfigDeathTest, ValidateRejectsBadScaleConfigs)
{
    EXPECT_DEATH(meshConfig(8, 4, 3).validate(), "divisible");
    EXPECT_DEATH(meshConfig(4, 4, 32).validate(), "out of range");
    MachineConfig bad_l2 = meshConfig(6, 6, 6);
    EXPECT_DEATH(bad_l2.validate(), "whole");
    MachineConfig bad_mc = meshConfig(4, 4, 4);
    bad_mc.numMemCtrls = 5;
    EXPECT_DEATH(bad_mc.validate(), "corners");
    MachineConfig thin = meshConfig(16, 1, 4);
    EXPECT_DEATH(thin.validate(), "at least 2x2");
}

// --- heterogeneous VM thread counts -------------------------------

TEST(HeterogeneousVms, ThreadOverrideScalesStreamsAndFootprint)
{
    WorkloadProfile prof = tinyProfile(); // numThreads defaults to 4
    VirtualMachine two(prof, 0, 1, 2);
    VirtualMachine dflt(prof, 1, 1);
    VirtualMachine eight(prof, 2, 1, 8);
    EXPECT_EQ(two.numThreads(), 2);
    EXPECT_EQ(dflt.numThreads(), 4);
    EXPECT_EQ(eight.numThreads(), 8);
    const std::uint64_t shared =
        prof.sharedRoBlocks + prof.migratoryBlocks;
    EXPECT_EQ(two.totalBlocks(),
              shared + 2 * prof.privateBlocksPerThread);
    EXPECT_EQ(dflt.totalBlocks(), prof.totalBlocks());
    EXPECT_EQ(eight.totalBlocks(),
              shared + 8 * prof.privateBlocksPerThread);
    // Streams exist exactly for the overridden count.
    EXPECT_NO_THROW(eight.instance().thread(7));
    EXPECT_THROW(two.instance().thread(2), std::out_of_range);
}

TEST(HeterogeneousVms, MixedSizesRunOnScaledChip)
{
    // One 2-, one 4- and one 8-thread VM on a 32-core chip: the run
    // must complete and attribute work to every VM.
    RunConfig cfg;
    cfg.machine.meshX = 8;
    cfg.machine.meshY = 4;
    cfg.machine.sharing = sharingDegree(4);
    cfg.workloads = {WorkloadKind::SpecJbb, WorkloadKind::TpcW,
                     WorkloadKind::TpcH};
    cfg.vmThreads = {2, 4, 8};
    cfg.warmupCycles = 30000;
    cfg.measureCycles = 30000;
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 3u);
    for (const auto &v : r.vms)
        EXPECT_GT(v.instructions, 0u);
}

TEST(HeterogeneousVms, VmThreadsEchoOnlyWhenConfigured)
{
    RunConfig plain;
    plain.workloads = {WorkloadKind::TpcW};
    EXPECT_EQ(toJson(plain).dump(2).find("vm_threads"),
              std::string::npos);
    plain.vmThreads = {2};
    EXPECT_NE(toJson(plain).dump(2).find("vm_threads"),
              std::string::npos);
}

// --- golden 16-core envelope (byte-identity anchor) ---------------

/** FNV-1a 64-bit over the exact bytes consim_run writes via --json. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

struct GoldenPoint
{
    int sharing;
    SchedPolicy policy;
    std::uint64_t hash;
};

/**
 * Hashes of the consim.run.v1 envelope for "Mix 5" at 200k/200k
 * cycles, seed 42, on the paper's 16-core machine, captured from the
 * pre-refactor (fixed 16-bit mask) implementation. The parametric
 * scale model must reproduce these documents byte-for-byte: any
 * change here is a behavioural change to the paper's machine and
 * must be justified, not waved through.
 */
const GoldenPoint kGolden[] = {
    {1, SchedPolicy::Affinity, 0x4c1b024cec98df7cull},
    {1, SchedPolicy::RoundRobin, 0xe2382c65c559e5d3ull},
    {1, SchedPolicy::AffinityRR, 0xe7f9c34f45662d42ull},
    {1, SchedPolicy::Random, 0x8cc83a30770bb703ull},
    {2, SchedPolicy::Affinity, 0x7d086a42e4d9a615ull},
    {2, SchedPolicy::RoundRobin, 0x836eee95d5cae122ull},
    {2, SchedPolicy::AffinityRR, 0x16855bb6d8aa35b3ull},
    {2, SchedPolicy::Random, 0x88aff1a0d72ae025ull},
    {4, SchedPolicy::Affinity, 0x6b9a9adecd4ab50aull},
    {4, SchedPolicy::RoundRobin, 0xd6e5cb58a3a6a1cbull},
    {4, SchedPolicy::AffinityRR, 0x8482c0d5c8bb153cull},
    {4, SchedPolicy::Random, 0xcca4e86c3ec9e73aull},
    {8, SchedPolicy::Affinity, 0x2674a47660d0954aull},
    {8, SchedPolicy::RoundRobin, 0xc3d0e077bccbf393ull},
    {8, SchedPolicy::AffinityRR, 0x3a4d9c189772ab3aull},
    {8, SchedPolicy::Random, 0x1e15727097ee4563ull},
    {16, SchedPolicy::Affinity, 0x430405a15fba54b3ull},
    {16, SchedPolicy::RoundRobin, 0x24f4a75ff4440f60ull},
    {16, SchedPolicy::AffinityRR, 0x746434f187096429ull},
    {16, SchedPolicy::Random, 0x12b8f4e28477d8f2ull},
};

TEST(GoldenEnvelope, PaperMachineByteIdenticalAcrossDegreesAndPolicies)
{
    for (const GoldenPoint &pt : kGolden) {
        RunConfig cfg = mixConfig(Mix::byName("Mix 5"), pt.policy,
                                  sharingDegree(pt.sharing));
        cfg.seed = 42;
        cfg.warmupCycles = 200000;
        cfg.measureCycles = 200000;
        // consim_run folds even a single seed through
        // averageRunResults (seeds_used lands in the envelope), so
        // the reproduction must too.
        const RunResult r = averageRunResults({runExperiment(cfg)});
        // Reproduce consim_run --json byte-exactly: two-space indent
        // plus a trailing newline.
        std::ostringstream os;
        runResultJson(cfg, r).write(os, 2);
        os << "\n";
        EXPECT_EQ(fnv1a(os.str()), pt.hash)
            << "sharing " << pt.sharing << ", policy "
            << toString(pt.policy)
            << ": run.v1 envelope changed on the paper's machine";
    }
}

} // namespace
} // namespace consim
