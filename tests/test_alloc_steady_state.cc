/**
 * @file
 * Steady-state allocation audit: once a System is warmed up —
 * transaction tables sized, ring buffers grown, sharer sets spilled,
 * event calendar settled — the measure window must perform ZERO
 * heap allocations. The global operator-new hook
 * (common/alloc_hook.hh) counts every allocation in the process, so
 * a nonzero delta pinpoints a hot-path regression (a std::deque
 * sneaking back in, a map rehash mid-window, a per-message closure
 * that outgrew the inline buffer).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/alloc_hook.hh"
#include "core/experiment.hh"
#include "core/mix.hh"
#include "core/scheduler.hh"
#include "core/system.hh"
#include "core/vm.hh"

using namespace consim;

namespace
{

/** VM storage + placements for @p cfg (runExperiment's rig, inlined
 *  here because the experiment driver doesn't expose phases). */
struct Rig
{
    std::vector<std::unique_ptr<VirtualMachine>> storage;
    std::vector<VirtualMachine *> vms;
    std::vector<ThreadPlacement> placements;
};

Rig
buildRig(const RunConfig &cfg)
{
    Rig rig;
    std::vector<int> threads_per_vm;
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i) {
        const auto &prof = WorkloadProfile::get(cfg.workloads[i]);
        const int nthreads =
            i < cfg.vmThreads.size() ? cfg.vmThreads[i] : 0;
        rig.storage.push_back(std::make_unique<VirtualMachine>(
            prof, static_cast<VmId>(i),
            cfg.seed * 1000003ull + i * 7919ull, nthreads));
        rig.vms.push_back(rig.storage.back().get());
        threads_per_vm.push_back(rig.storage.back()->numThreads());
    }
    rig.placements = scheduleThreads(cfg.machine, threads_per_vm,
                                     cfg.policy, cfg.seed);
    return rig;
}

/** Warm @p cfg up, then require an allocation-free measure window. */
void
expectZeroAllocWindow(const RunConfig &cfg, Cycle warmup,
                      Cycle window)
{
    Rig rig = buildRig(cfg);
    System sys(cfg.machine, rig.vms, rig.placements);
    // Warmup sizes every pool to its steady state: BlockMap tables,
    // WaitQueueMap node pools, router/NI rings, calendar lanes,
    // spilled CoreSet words.
    sys.run(warmup);
    // CONSIM_ALLOC_TRAP=1 turns the first in-window allocation into
    // a trap instruction: run under a debugger to see the call site.
    const bool trap = std::getenv("CONSIM_ALLOC_TRAP") != nullptr;
    const std::uint64_t before = allocCount();
    if (trap)
        allocTrap(true);
    sys.run(window);
    if (trap)
        allocTrap(false);
    const std::uint64_t delta = allocCount() - before;
    EXPECT_EQ(delta, 0u)
        << delta << " heap allocations leaked into a " << window
        << "-cycle measure window after " << warmup
        << " warmup cycles";
}

} // namespace

TEST(AllocSteadyState, SixteenCoreMixWindowIsAllocationFree)
{
    const RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                                    SchedPolicy::Affinity,
                                    SharingDegree::Shared4);
    expectZeroAllocWindow(cfg, 60'000, 30'000);
}

TEST(AllocSteadyState, PrivateSharingWindowIsAllocationFree)
{
    // Private partitions exercise the directory's 3-hop paths and
    // the c2c forwarding machinery hardest.
    const RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                                    SchedPolicy::RoundRobin,
                                    SharingDegree::Private);
    expectZeroAllocWindow(cfg, 60'000, 30'000);
}

TEST(AllocSteadyState, SixtyFourCoreWindowIsAllocationFree)
{
    // Scaled-up mesh: spilled CoreSets (64 cores > one word after
    // group math), longer wormhole routes, more routers — the paths
    // the 256-core sweeps lean on.
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared8);
    cfg.machine.meshX = 8;
    cfg.machine.meshY = 8;
    cfg.vmThreads = {16, 16, 16, 16};
    expectZeroAllocWindow(cfg, 60'000, 30'000);
}

TEST(AllocSteadyState, OverCommittedWindowIsAllocationFree)
{
    // Over-committed: 32 threads on 16 cores. Context rotation
    // (bindThread) must not allocate either.
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"),
                              SchedPolicy::Affinity,
                              SharingDegree::Shared4);
    cfg.vmThreads = {8, 8, 8, 8};
    expectZeroAllocWindow(cfg, 60'000, 30'000);
}
