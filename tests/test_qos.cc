/**
 * @file
 * Per-VM QoS / isolation tests: strict `--qos` spec parsing (and the
 * fault-catalog strictness it shares its error style with), the
 * way-restricted victim scan, router VC reservation admission, the
 * QoS guarantees under CONSIM_CHECK=full (way masks honoured, token
 * buckets conserved, unreserved VMs never starved), serial-vs-
 * parallel byte-identity of a bully run, and `consim.ckpt.v5`
 * round-tripping of the QoS runtime state.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/cache_array.hh"
#include "common/check.hh"
#include "common/json.hh"
#include "core/experiment.hh"
#include "core/fault.hh"
#include "core/qos.hh"
#include "core/report.hh"
#include "noc/router.hh"
#include "workload/profile.hh"

using namespace consim;

namespace
{

/** Pin the check level for one scope, restoring the old level. */
class ScopedCheckLevel
{
  public:
    explicit ScopedCheckLevel(check::Level l) : old_(check::level())
    {
        check::setLevel(l);
    }
    ~ScopedCheckLevel() { check::setLevel(old_); }

  private:
    check::Level old_;
};

/**
 * The isolation scenario the benches use, shrunk for test speed: a
 * protected SPECjbb VM plus three bully antagonists on a bandwidth-
 * constrained 16-core chip with a small (2 MB) LLC, so every QoS
 * mechanism (way masks, VC reservation, MC token buckets) actually
 * engages inside a short window.
 */
RunConfig
bullyConfig(const std::string &qos_spec)
{
    RunConfig cfg;
    cfg.machine.sharing = sharingDegree(16);
    cfg.machine.memIssueInterval = 96;
    cfg.machine.l2TotalBytes = 2ull << 20;
    cfg.workloads = {WorkloadKind::SpecJbb, WorkloadKind::Bully,
                     WorkloadKind::Bully, WorkloadKind::Bully};
    cfg.seed = 7;
    cfg.warmupCycles = 20'000;
    cfg.measureCycles = 60'000;
    if (!qos_spec.empty()) {
        QosConfig q;
        std::string err;
        EXPECT_TRUE(QosConfig::parse(qos_spec, q, &err)) << err;
        cfg.qos = q;
    }
    return cfg;
}

} // namespace

// ---------------------------------------------------------------- //
// Spec parsing: strict grammar, catalog-style errors.               //
// ---------------------------------------------------------------- //

TEST(QosParse, DefaultsAndRoundTrip)
{
    QosConfig q;
    EXPECT_FALSE(q.enabled());
    EXPECT_EQ(q.spec(), "off");

    std::string err;
    ASSERT_TRUE(QosConfig::parse("static:vm=0,ways=4", q, &err)) << err;
    EXPECT_TRUE(q.enabled());
    EXPECT_EQ(q.mode, QosMode::Static);
    EXPECT_EQ(q.protectedVm, 0);
    EXPECT_EQ(q.protectedWays, 4);
    EXPECT_EQ(q.reservedVcs, 1);   // defaults
    EXPECT_EQ(q.mcTokens, 8u);
    EXPECT_EQ(q.mcRefillCycles, 64u);

    // spec() is parseable back to an identical config.
    QosConfig q2;
    ASSERT_TRUE(QosConfig::parse(
        "dynamic:vm=2,ways=3,vcs=0,tokens=2,refill=128,epoch=5000", q,
        &err))
        << err;
    ASSERT_TRUE(QosConfig::parse(q.spec(), q2, &err)) << err;
    EXPECT_EQ(q.spec(), q2.spec());
    EXPECT_EQ(q.toJson().dump(), q2.toJson().dump());
    EXPECT_EQ(q2.epochCycles, 5000u);
    EXPECT_EQ(q2.reservedVcs, 0);

    ASSERT_TRUE(QosConfig::parse("off", q, &err)) << err;
    EXPECT_FALSE(q.enabled());
}

TEST(QosParse, RejectsMalformedSpecsWithGrammar)
{
    const struct
    {
        const char *spec;
        const char *expect;
    } bad[] = {
        {"banana:vm=0,ways=1", "unknown qos mode"},
        {"static:ways=4", "vm is required"},
        {"static:vm=0", "ways is required"},
        {"static:vm=0,ways=4,epoch=100",
         "epoch is only valid in dynamic mode"},
        {"static:vm=0,ways=4,foo=1", "unknown qos parameter 'foo'"},
        {"static:vm=0,ways=x", "bad number 'x' for ways"},
        {"off:vm=1", "takes no parameters"},
        {"static:vm=0,ways=0", "ways must be >= 1"},
        {"dynamic:vm=0,ways=2,epoch=0", "epoch must be >= 1"},
        {"static:vm=0,ways=4,tokens=0", "tokens must be >= 1"},
    };
    for (const auto &b : bad) {
        SCOPED_TRACE(b.spec);
        QosConfig q;
        std::string err;
        EXPECT_FALSE(QosConfig::parse(b.spec, q, &err));
        EXPECT_NE(err.find(b.expect), std::string::npos) << err;
        // Every rejection teaches the full grammar.
        EXPECT_NE(err.find("valid:"), std::string::npos) << err;
        EXPECT_NE(err.find("dynamic:vm=V"), std::string::npos) << err;
    }
}

// ---------------------------------------------------------------- //
// Fault-plan strictness (shares the catalog-error style).           //
// ---------------------------------------------------------------- //

TEST(FaultPlanStrict, RejectsUnknownKindsAndParameters)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("drop:core=1", plan, &err));
    EXPECT_NE(err.find("drop does not take parameter 'core'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("wedge:core=C,at=CYCLE"), std::string::npos)
        << err;

    EXPECT_FALSE(FaultPlan::parse("wedge", plan, &err));
    EXPECT_NE(err.find("wedge: missing parameter 'core'"),
              std::string::npos)
        << err;

    EXPECT_FALSE(
        FaultPlan::parse("wedge:core=1,at=5,core=2", plan, &err));
    EXPECT_NE(err.find("duplicate parameter 'core'"),
              std::string::npos)
        << err;

    EXPECT_FALSE(FaultPlan::parse("typo:nth=1", plan, &err));
    EXPECT_NE(err.find("unknown fault kind 'typo'"),
              std::string::npos)
        << err;

    // Well-formed plans still parse.
    EXPECT_TRUE(FaultPlan::parse("wedge:core=3,at=250000;drop:nth=800",
                                 plan, &err))
        << err;
    EXPECT_EQ(plan.events.size(), 2u);
}

// ---------------------------------------------------------------- //
// Way-restricted victim selection.                                  //
// ---------------------------------------------------------------- //

TEST(VictimInWays, RestrictsReplacementToMaskedWays)
{
    // One 8-way set is enough; two sets keep setIndex honest.
    CacheGeometry geom;
    geom.sizeBytes = static_cast<std::uint64_t>(blockBytes) * 16;
    geom.assoc = 8;
    CacheArray<CacheLineBase> array(geom);

    // Empty set: the first masked way wins, not way 0.
    CacheLineBase *slot = array.victimInWays(0, 0xF0);
    EXPECT_EQ(array.wayOf(0, slot), 4);

    // Fill the set with blocks 0, 2, 4, ... (set 0 of 2), touching in
    // install order so way 0 holds the globally-LRU line.
    for (int w = 0; w < 8; ++w) {
        CacheLineBase *v = array.victim(2 * w);
        array.install(v, 2 * w);
        EXPECT_EQ(array.wayOf(2 * w, v), w);
    }

    // Unrestricted: victimInWays(all ways) agrees with victim().
    EXPECT_EQ(array.victimInWays(16, 0xFF), array.victim(16));
    EXPECT_EQ(array.wayOf(16, array.victim(16)), 0);

    // Restricted to the high half: the masked LRU (way 4), even
    // though ways 0..3 hold strictly older lines.
    slot = array.victimInWays(16, 0xF0);
    EXPECT_EQ(array.wayOf(16, slot), 4);

    // Refresh way 4; the masked LRU moves to way 5.
    array.touch(array.lookup(2 * 4));
    slot = array.victimInWays(16, 0xF0);
    EXPECT_EQ(array.wayOf(16, slot), 5);

    // A single-way mask is a direct-mapped partition.
    slot = array.victimInWays(16, 1u << 7);
    EXPECT_EQ(array.wayOf(16, slot), 7);

    // An empty mask is a wiring bug: recoverable invariant failure.
    ScopedCheckLevel lvl(check::Level::Basic);
    EXPECT_THROW(array.victimInWays(16, 0), SimError);
}

// ---------------------------------------------------------------- //
// Router VC reservation admission.                                  //
// ---------------------------------------------------------------- //

TEST(RouterQos, ReservedVcsAdmitOnlyTheProtectedVm)
{
    NocParams params; // 3 vnets x 2 VCs, 8-flit buffers
    NetworkStats stats;
    Router router(0, params, &stats);
    router.setQos(0, 1);

    // Unprotected traffic is confined to the shared VC 0 of its vnet.
    int vc = -1;
    ASSERT_TRUE(router.canAccept(PortLocal, 0, 1, 1, &vc));
    EXPECT_EQ(vc, 0);
    // The protected VM prefers its reserved VC 1.
    ASSERT_TRUE(router.canAccept(PortLocal, 0, 1, 0, &vc));
    EXPECT_EQ(vc, 1);

    // Fill the shared VC: unprotected traffic has nowhere to go (it
    // must NOT spill into the reservation) while the protected VM
    // still gets in.
    router.reserve(PortLocal, 0, params.vcBufferFlits);
    EXPECT_FALSE(router.canAccept(PortLocal, 0, 1, 1, nullptr));
    ASSERT_TRUE(router.canAccept(PortLocal, 0, 1, 0, &vc));
    EXPECT_EQ(vc, 1);

    // Other vnets are unaffected by vnet 0's congestion.
    ASSERT_TRUE(router.canAccept(PortLocal, 1, 1, 1, &vc));
    EXPECT_EQ(vc, params.vcsPerVnet);

    // Fill the reservation too: the protected VM falls back to the
    // shared VCs (here full), so it reports no space rather than
    // claiming an over-full VC.
    router.reserve(PortLocal, 1, params.vcBufferFlits);
    EXPECT_FALSE(router.canAccept(PortLocal, 0, 1, 0, nullptr));

    // Zero reservation restores the original first-fit scan exactly:
    // every VM may use every VC.
    Router plain(0, params, &stats);
    plain.setQos(invalidVm, 0);
    ASSERT_TRUE(plain.canAccept(PortLocal, 0, 1, 1, &vc));
    EXPECT_EQ(vc, 0);
    plain.reserve(PortLocal, 0, params.vcBufferFlits);
    ASSERT_TRUE(plain.canAccept(PortLocal, 0, 1, 1, &vc));
    EXPECT_EQ(vc, 1);
}

// ---------------------------------------------------------------- //
// QoS guarantees under CONSIM_CHECK=full.                           //
// ---------------------------------------------------------------- //

TEST(QosGuarantees, FullCheckBullyRunHoldsEveryInvariant)
{
    // CONSIM_CHECK=full arms the L2 fill-time way-mask audit and the
    // MC token-conservation audit on every event, plus the window-
    // boundary coherence/NoC audits. A clean run IS the assertion
    // that no fill ever violated its VM's way mask and no bucket
    // over-issued its window.
    ScopedCheckLevel lvl(check::Level::Full);
    RunConfig cfg =
        bullyConfig("static:vm=0,ways=2,vcs=1,tokens=1,refill=512");
    // Long enough for the protected VM to retire whole 400-ref
    // transactions under the constrained memory system.
    cfg.measureCycles = 200'000;
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 4u);

    // Token buckets throttle the bullies, never the protected VM.
    EXPECT_EQ(r.vms[0].mcThrottleStalls, 0u);
    std::uint64_t bully_stalls = 0;
    for (std::size_t v = 1; v < r.vms.size(); ++v)
        bully_stalls += r.vms[v].mcThrottleStalls;
    EXPECT_GT(bully_stalls, 0u);

    // VC reservation + throttling never starve the unreserved VMs:
    // every bully keeps retiring instructions and missing into the
    // LLC it is (mostly) masked out of. (A throttled bully completes
    // few whole 1000-ref transactions in this short window, so
    // forward progress — not transaction count — is the guarantee.)
    for (std::size_t v = 1; v < r.vms.size(); ++v) {
        SCOPED_TRACE(v);
        EXPECT_GT(r.vms[v].instructions, 0u);
        EXPECT_GT(r.vms[v].l2Misses, 0u);
    }
    EXPECT_GT(r.vms[0].transactions, 0u);
}

TEST(QosGuarantees, DynamicRepartitionerStaysWithinBounds)
{
    // The dynamic mode must also survive full checking (masks move at
    // epoch boundaries), and the metrics flow into the run result the
    // same way.
    ScopedCheckLevel lvl(check::Level::Full);
    const RunConfig cfg = bullyConfig(
        "dynamic:vm=0,ways=2,vcs=1,tokens=1,refill=512,epoch=10000");
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 4u);
    EXPECT_EQ(r.vms[0].mcThrottleStalls, 0u);
    for (std::size_t v = 1; v < r.vms.size(); ++v)
        EXPECT_GT(r.vms[v].instructions, 0u);
}

// ---------------------------------------------------------------- //
// Envelope stability and conditional QoS reporting.                 //
// ---------------------------------------------------------------- //

TEST(QosEnvelope, QosFieldsAppearOnlyWhenEnabled)
{
    const RunConfig off = bullyConfig("");
    const RunResult r_off = runExperiment(off);
    const json::Value doc_off = runResultJson(off, r_off);
    EXPECT_EQ(doc_off.find("config")->find("qos"), nullptr);
    for (std::size_t v = 0; v < r_off.vms.size(); ++v) {
        EXPECT_EQ(doc_off.find("result")
                      ->find("vms")
                      ->at(v)
                      .find("mc_throttle_stalls"),
                  nullptr);
    }

    const RunConfig on =
        bullyConfig("static:vm=0,ways=2,vcs=1,tokens=1,refill=512");
    const RunResult r_on = runExperiment(on);
    const json::Value doc_on = runResultJson(on, r_on);
    const json::Value *qos = doc_on.find("config")->find("qos");
    ASSERT_NE(qos, nullptr);
    EXPECT_EQ(qos->find("mode")->str(), "static");
    // At least one bully reports its throttle stalls.
    bool any = false;
    for (std::size_t v = 1; v < r_on.vms.size(); ++v) {
        if (doc_on.find("result")
                ->find("vms")
                ->at(v)
                .find("mc_throttle_stalls"))
            any = true;
    }
    EXPECT_TRUE(any);
}

// ---------------------------------------------------------------- //
// Parallel-engine byte-identity with QoS enabled.                   //
// ---------------------------------------------------------------- //

TEST(QosParallelRun, BullyRunByteIdenticalAcrossRunJobs)
{
    // QoS epochs are service points: both engines must land the
    // repartitioner on the same absolute cycles, and the MC buckets
    // must fill identically, for the envelopes to match bit-for-bit.
    RunConfig cfg = bullyConfig(
        "dynamic:vm=0,ways=2,vcs=1,tokens=1,refill=512,epoch=10000");
    cfg.runJobs = 1;
    const std::string serial =
        runResultJson(cfg, runExperiment(cfg)).dump(2);
    for (const int jobs : {2, 5}) {
        SCOPED_TRACE(jobs);
        RunConfig par = cfg;
        par.runJobs = jobs;
        // The config echo never includes runJobs, so dumps are equal
        // iff every result bit matches.
        EXPECT_EQ(runResultJson(cfg, runExperiment(par)).dump(2),
                  serial);
    }
}

// ---------------------------------------------------------------- //
// consim.ckpt.v5: QoS runtime state round-trips.                    //
// ---------------------------------------------------------------- //

TEST(QosCheckpoint, V4RoundTripsBucketAndRepartitionerState)
{
    // Trip a dynamic-QoS bully run mid-measurement and resume the
    // attached snapshot: the restored run re-creates the token-bucket
    // windows and the repartitioner's dyn_ways/miss-curve samples, so
    // the envelope must be byte-identical to the uninterrupted run.
    const RunConfig cfg = bullyConfig(
        "dynamic:vm=0,ways=2,vcs=1,tokens=1,refill=512,epoch=10000");
    const std::string full =
        runResultJson(cfg, runExperiment(cfg)).dump(2);

    RunConfig trip = cfg;
    trip.cycleDeadline = 60'000; // mid-measure (warmup 20k + 60k of 80k)
    trip.ckptEveryCycles = 15'000;
    try {
        runExperiment(trip);
        FAIL() << "deadline did not trip";
    } catch (const SimError &e) {
        ASSERT_EQ(e.kind(), SimErrorKind::Deadline);
        ASSERT_FALSE(e.ckpt().empty());
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::parse(e.ckpt(), doc, &err)) << err;
        EXPECT_EQ(doc.find("schema")->str(), "consim.ckpt.v5");
        // The snapshot carries the QoS machine section and the
        // per-MC bucket arrays.
        ASSERT_NE(doc.find("machine"), nullptr);
        EXPECT_NE(doc.find("machine")->find("qos"), nullptr);
        // The embedded config echoes the qos spec.
        const RunConfig echoed = configFromCheckpoint(doc);
        EXPECT_EQ(echoed.qos.spec(), cfg.qos.spec());
        const RunResult resumed = resumeExperiment(doc);
        EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full);
    }
}

TEST(QosCheckpointDeathTest, V3RefusedWithQosExplanation)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // v3 snapshots predate the QoS runtime state (MC token buckets,
    // repartitioner way allocation); the refusal must say so.
    json::Value v3 = json::Value::object();
    v3.set("schema", "consim.ckpt.v3");
    EXPECT_DEATH(resumeExperiment(v3), "lack the QoS runtime state");
}
