/**
 * @file
 * Dynamic hypervisor scheduling tests: strict `--dyn-sched` spec
 * parsing, the three MigrationPolicy decision functions on synthetic
 * epoch samples (including their no-churn guards and tie-breaks), a
 * forced-migration bursty run under CONSIM_CHECK=full, envelope
 * stability of the conditional dyn-sched fields, serial-vs-parallel
 * byte-identity with migrations armed, and `consim.ckpt.v5`
 * round-tripping of the migration-policy runtime state.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hh"
#include "common/json.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scheduler.hh"
#include "workload/profile.hh"

using namespace consim;

namespace
{

/** Pin the check level for one scope, restoring the old level. */
class ScopedCheckLevel
{
  public:
    explicit ScopedCheckLevel(check::Level l) : old_(check::level())
    {
        check::setLevel(l);
    }
    ~ScopedCheckLevel() { check::setLevel(old_); }

  private:
    check::Level old_;
};

/**
 * The dynamic-scheduling scenario the fig17 bench uses, shrunk for
 * test speed: three 4-thread Bursty VMs affinity-packed onto a
 * sharing-2 chip with a 2 MB L2 (256 KB partitions), four cores left
 * idle. VM 0 holds the burst slot from the first reference, so its
 * packed partitions overflow and show a contention signal a
 * migration policy can act on within a short window.
 */
RunConfig
burstyConfig(const std::string &dyn_spec)
{
    RunConfig cfg;
    cfg.machine.sharing = sharingDegree(2);
    cfg.machine.l2TotalBytes = 2ull << 20; // 256 KB partitions
    cfg.workloads = {WorkloadKind::Bursty, WorkloadKind::Bursty,
                     WorkloadKind::Bursty};
    cfg.vmThreads = {4, 4, 4};
    cfg.seed = 7;
    cfg.warmupCycles = 20'000;
    cfg.measureCycles = 60'000;
    if (!dyn_spec.empty()) {
        DynSchedConfig d;
        std::string err;
        EXPECT_TRUE(DynSchedConfig::parse(dyn_spec, d, &err)) << err;
        cfg.dynSched = d;
    }
    return cfg;
}

/** A 16-core sharing-4 machine (4 groups of 4 cores). */
MachineConfig
quadMachine()
{
    MachineConfig cfg;
    cfg.sharing = sharingDegree(4);
    return cfg;
}

/** An all-idle, all-eligible sample sized for @p cfg. */
DynSample
emptySample(const MachineConfig &cfg, std::size_t num_vms)
{
    DynSample s;
    s.cores.resize(static_cast<std::size_t>(cfg.numCores()));
    for (auto &c : s.cores) {
        c.eligible = true;
        c.idle = true;
    }
    s.vms.resize(num_vms);
    s.groups.resize(static_cast<std::size_t>(cfg.numGroups()));
    return s;
}

/** Bind @p core to @p vm with @p retired instructions this epoch. */
void
bind(DynSample &s, CoreId core, VmId vm, std::uint64_t retired)
{
    s.cores[core].vm = vm;
    s.cores[core].idle = false;
    s.cores[core].retired = retired;
}

} // namespace

// ---------------------------------------------------------------- //
// Spec parsing: strict grammar, catalog-style errors.               //
// ---------------------------------------------------------------- //

TEST(DynSchedParse, DefaultsAndRoundTrip)
{
    DynSchedConfig d;
    EXPECT_FALSE(d.enabled());
    EXPECT_EQ(d.spec(), "off");

    std::string err;
    ASSERT_TRUE(DynSchedConfig::parse("load-balance", d, &err)) << err;
    EXPECT_TRUE(d.enabled());
    EXPECT_EQ(d.policy, DynSchedPolicy::LoadBalance);
    EXPECT_EQ(d.epochCycles, 100'000u); // default epoch

    // spec() is parseable back to an identical config.
    DynSchedConfig d2;
    ASSERT_TRUE(DynSchedConfig::parse("contention-aware,epoch=5000", d,
                                      &err))
        << err;
    ASSERT_TRUE(DynSchedConfig::parse(d.spec(), d2, &err)) << err;
    EXPECT_EQ(d.spec(), d2.spec());
    EXPECT_EQ(d.toJson().dump(), d2.toJson().dump());
    EXPECT_EQ(d2.policy, DynSchedPolicy::ContentionAware);
    EXPECT_EQ(d2.epochCycles, 5000u);

    ASSERT_TRUE(DynSchedConfig::parse("affinity-repair", d, &err))
        << err;
    EXPECT_EQ(d.policy, DynSchedPolicy::AffinityRepair);

    ASSERT_TRUE(DynSchedConfig::parse("off", d, &err)) << err;
    EXPECT_FALSE(d.enabled());

    // Whitespace is cosmetic, as in the QoS grammar.
    ASSERT_TRUE(DynSchedConfig::parse(" load-balance , epoch = 42 ", d,
                                      &err))
        << err;
    EXPECT_EQ(d.epochCycles, 42u);
}

TEST(DynSchedParse, RejectsMalformedSpecsWithGrammar)
{
    const struct
    {
        const char *spec;
        const char *expect;
    } bad[] = {
        {"", "empty dyn-sched spec"},
        {"banana", "unknown dyn-sched policy 'banana'"},
        {"off,epoch=5", "'off' takes no parameters"},
        {"load-balance,epoch=0", "epoch must be >= 1"},
        {"load-balance,epoch=x", "bad number 'x' for epoch"},
        {"load-balance,epoch=5q", "bad number '5q' for epoch"},
        {"load-balance,epoch=-1", "bad number '-1' for epoch"},
        {"contention-aware,foo=1",
         "unknown dyn-sched parameter 'foo'"},
        {"contention-aware,epoch", "expected key=value, got 'epoch'"},
        {"load-balance;epoch=5",
         "unknown dyn-sched policy 'load-balance;epoch=5'"},
    };
    for (const auto &b : bad) {
        SCOPED_TRACE(b.spec);
        DynSchedConfig d;
        std::string err;
        EXPECT_FALSE(DynSchedConfig::parse(b.spec, d, &err));
        EXPECT_NE(err.find(b.expect), std::string::npos) << err;
        // Every rejection teaches the full grammar.
        EXPECT_NE(err.find("valid:"), std::string::npos) << err;
        EXPECT_NE(err.find("affinity-repair[,epoch=E]"),
                  std::string::npos)
            << err;
    }
}

// ---------------------------------------------------------------- //
// Policy decision functions on synthetic epoch samples.             //
// ---------------------------------------------------------------- //

TEST(DynSchedPolicies, LoadBalanceMovesBusiestTowardLightest)
{
    // Note groups on the 4x4 mesh are 2x2 quadrants, not consecutive
    // core-id ranges, so every binding goes through coresOfGroup().
    const MachineConfig cfg = quadMachine();
    const auto policy =
        makeMigrationPolicy(DynSchedPolicy::LoadBalance);
    DynSample s = emptySample(cfg, 4);
    // Group 0 heavy (3400), group 1 light (400), groups 2/3 middling.
    const std::uint64_t heavy[] = {1000, 900, 800, 700};
    for (int i = 0; i < 4; ++i)
        bind(s, cfg.coresOfGroup(0)[i], 0, heavy[i]);
    for (const CoreId c : cfg.coresOfGroup(1))
        bind(s, c, 1, 100);
    for (const GroupId g : {2, 3})
        for (const CoreId c : cfg.coresOfGroup(g))
            bind(s, c, g, 500);

    const ThreadSwap swap = policy->decide(cfg, s);
    ASSERT_TRUE(swap.decided());
    // Busiest thread of the heaviest group swaps with the lightest
    // partner in the lightest group; ties break toward lowest id.
    EXPECT_EQ(swap.a, cfg.coresOfGroup(0)[0]);
    EXPECT_EQ(swap.b, cfg.coresOfGroup(1)[0]);

    // Balanced loads: no churn.
    DynSample flat = emptySample(cfg, 4);
    for (CoreId c = 0; c < 16; ++c)
        bind(flat, c, cfg.groupOfCore(c), 500);
    EXPECT_FALSE(policy->decide(cfg, flat).decided());

    // Spread under 1/8 of the heavy load: still no churn.
    DynSample close = flat;
    close.cores[cfg.coresOfGroup(0)[0]].retired = 540;
    EXPECT_FALSE(policy->decide(cfg, close).decided());
}

TEST(DynSchedPolicies, ContentionAwareEvictsFromHotPartition)
{
    const MachineConfig cfg = quadMachine();
    const auto policy =
        makeMigrationPolicy(DynSchedPolicy::ContentionAware);
    DynSample s = emptySample(cfg, 2);
    // Group 0: vm 0, thrashing (50% miss rate). Group 1: vm 1, quiet.
    // Groups 2/3: idle (group 2 is the first zero-rate target).
    for (const CoreId c : cfg.coresOfGroup(0))
        bind(s, c, 0, 500);
    for (const CoreId c : cfg.coresOfGroup(1))
        bind(s, c, 1, 500);
    s.vms[0] = {1000, 500, 0};
    s.vms[1] = {1000, 100, 0};
    s.groups[0] = {500, 500};
    s.groups[1] = {900, 100};

    const ThreadSwap swap = policy->decide(cfg, s);
    ASSERT_TRUE(swap.decided());
    // Worst-miss-rate VM's thread, lowest id in the hot group, moves
    // to the lowest-id idle core of the coolest group.
    EXPECT_EQ(swap.a, cfg.coresOfGroup(0)[0]);
    EXPECT_EQ(swap.b, cfg.coresOfGroup(2)[0]);

    // Source gate: a tiny partition with a terrible rate is not a
    // meaningful eviction source; with every gated-in group equal
    // there is no margin and the policy must sit still.
    DynSample gated = emptySample(cfg, 2);
    for (const CoreId c : cfg.coresOfGroup(0))
        bind(gated, c, 0, 500);
    for (const CoreId c : cfg.coresOfGroup(1))
        bind(gated, c, 1, 500);
    bind(gated, cfg.coresOfGroup(3)[0], 1, 10);
    gated.vms[0] = {1000, 10, 0};
    gated.vms[1] = {1000, 10, 0};
    gated.groups[0] = {990, 10};
    gated.groups[1] = {990, 10};
    // 90% missing, but 100 accesses is under a quarter of the mean
    // per-group traffic (2100/4 groups) — gated out as a source.
    gated.groups[3] = {10, 90};
    EXPECT_FALSE(policy->decide(cfg, gated).decided());
}

TEST(DynSchedPolicies, AffinityRepairRePacksSplitVm)
{
    const MachineConfig cfg = quadMachine();
    const auto policy =
        makeMigrationPolicy(DynSchedPolicy::AffinityRepair);
    DynSample s = emptySample(cfg, 2);
    // VM 0: three threads at home in group 0, one stray in group 1,
    // paying a 40% c2c fraction. Group 0's last slot stays idle.
    for (int i = 0; i < 3; ++i)
        bind(s, cfg.coresOfGroup(0)[i], 0, 500);
    bind(s, cfg.coresOfGroup(1)[0], 0, 500); // the stray
    s.vms[0] = {2000, 1000, 400};

    const ThreadSwap swap = policy->decide(cfg, s);
    ASSERT_TRUE(swap.decided());
    EXPECT_EQ(swap.a, cfg.coresOfGroup(1)[0]); // the stray
    EXPECT_EQ(swap.b, cfg.coresOfGroup(0)[3]); // idle home slot

    // Already packed: nothing to repair.
    DynSample packed = emptySample(cfg, 1);
    for (const CoreId c : cfg.coresOfGroup(0))
        bind(packed, c, 0, 500);
    packed.vms[0] = {2000, 1000, 400};
    EXPECT_FALSE(policy->decide(cfg, packed).decided());

    // Low c2c fraction: splitting is fine, leave it alone.
    DynSample cheap = s;
    cheap.vms[0] = {2000, 1000, 50}; // 5% c2c
    EXPECT_FALSE(policy->decide(cfg, cheap).decided());
}

// ---------------------------------------------------------------- //
// Forced migrations under CONSIM_CHECK=full.                        //
// ---------------------------------------------------------------- //

TEST(DynSchedRun, FullCheckBurstyRunMigrates)
{
    // The bursting VM thrashes its 2 MB partitions while four cores
    // sit idle; contention-aware must move at least one thread, and
    // the full-check audits (window boundary coherence, post-run
    // audit) must hold across the rebind.
    ScopedCheckLevel lvl(check::Level::Full);
    const RunConfig cfg = burstyConfig("contention-aware,epoch=5000");
    const RunResult r = runExperiment(cfg);
    ASSERT_EQ(r.vms.size(), 3u);
    EXPECT_GT(r.dynMigrations, 0u);
    for (std::size_t v = 0; v < r.vms.size(); ++v) {
        SCOPED_TRACE(v);
        EXPECT_GT(r.vms[v].instructions, 0u);
    }
}

// ---------------------------------------------------------------- //
// Envelope stability and conditional dyn-sched reporting.           //
// ---------------------------------------------------------------- //

TEST(DynSchedEnvelope, FieldsAppearOnlyWhenEnabled)
{
    const RunConfig off = burstyConfig("");
    const json::Value doc_off =
        runResultJson(off, runExperiment(off));
    EXPECT_EQ(doc_off.find("config")->find("dyn_sched"), nullptr);
    EXPECT_EQ(doc_off.find("result")->find("dyn_migrations"), nullptr);

    const RunConfig on = burstyConfig("contention-aware,epoch=5000");
    const json::Value doc_on = runResultJson(on, runExperiment(on));
    const json::Value *dyn = doc_on.find("config")->find("dyn_sched");
    ASSERT_NE(dyn, nullptr);
    EXPECT_EQ(dyn->find("policy")->str(), "contention-aware");
    EXPECT_EQ(dyn->find("epoch_cycles")->asUint(), 5000u);
    ASSERT_NE(doc_on.find("result")->find("dyn_migrations"), nullptr);
    EXPECT_GT(doc_on.find("result")->find("dyn_migrations")->asUint(),
              0u);
}

// ---------------------------------------------------------------- //
// Parallel-engine byte-identity with migrations armed.              //
// ---------------------------------------------------------------- //

TEST(DynSchedParallelRun, MigratingRunByteIdenticalAcrossRunJobs)
{
    // Dyn-sched epochs are service points: both engines must sample
    // the same epoch deltas at the same absolute cycles and decide
    // the same swaps for the envelopes to match bit-for-bit.
    RunConfig cfg = burstyConfig("contention-aware,epoch=5000");
    cfg.runJobs = 1;
    const std::string serial =
        runResultJson(cfg, runExperiment(cfg)).dump(2);
    for (const int jobs : {2, 4}) {
        SCOPED_TRACE(jobs);
        RunConfig par = cfg;
        par.runJobs = jobs;
        // The config echo never includes runJobs, so dumps are equal
        // iff every result bit matches.
        EXPECT_EQ(runResultJson(cfg, runExperiment(par)).dump(2),
                  serial);
    }
}

// ---------------------------------------------------------------- //
// consim.ckpt.v5: migration-policy runtime state round-trips.       //
// ---------------------------------------------------------------- //

TEST(DynSchedCheckpoint, V5RoundTripsEpochBaselinesAndCount)
{
    // Trip a migrating bursty run mid-measurement and resume the
    // attached snapshot: the restored run re-creates the policy's
    // epoch baselines and migration count, so the envelope must be
    // byte-identical to the uninterrupted run — including migrations
    // decided after the resume point.
    const RunConfig cfg = burstyConfig("contention-aware,epoch=5000");
    const std::string full =
        runResultJson(cfg, runExperiment(cfg)).dump(2);

    RunConfig trip = cfg;
    trip.cycleDeadline = 60'000; // mid-measure (warmup 20k of 80k)
    trip.ckptEveryCycles = 15'000;
    try {
        runExperiment(trip);
        FAIL() << "deadline did not trip";
    } catch (const SimError &e) {
        ASSERT_EQ(e.kind(), SimErrorKind::Deadline);
        ASSERT_FALSE(e.ckpt().empty());
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::parse(e.ckpt(), doc, &err)) << err;
        EXPECT_EQ(doc.find("schema")->str(), "consim.ckpt.v5");
        // The snapshot carries the dyn-sched machine section with
        // the per-core/VM/group epoch baselines.
        ASSERT_NE(doc.find("machine"), nullptr);
        const json::Value *dyn =
            doc.find("machine")->find("dyn_sched");
        ASSERT_NE(dyn, nullptr);
        EXPECT_NE(dyn->find("last_retired"), nullptr);
        // The embedded config echoes the dyn-sched spec.
        const RunConfig echoed = configFromCheckpoint(doc);
        EXPECT_EQ(echoed.dynSched.spec(), cfg.dynSched.spec());
        const RunResult resumed = resumeExperiment(doc);
        EXPECT_EQ(runResultJson(cfg, resumed).dump(2), full);
    }
}

TEST(DynSchedCheckpointDeathTest, V4RefusedWithDynSchedExplanation)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // v4 snapshots predate the migration-policy runtime state (epoch
    // baselines, migration count); the refusal must say so.
    json::Value v4 = json::Value::object();
    v4.set("schema", "consim.ckpt.v4");
    EXPECT_DEATH(resumeExperiment(v4),
                 "lack the migration-policy runtime state");
}
