/**
 * @file
 * Unit tests for the L1 controller (private L0+L1 hierarchy) through
 * the mock fabric: hit/miss latencies, fill handling, dirty
 * writebacks on eviction, invalidations, and writeback requests
 * (including the stale-crossing case).
 */

#include <gtest/gtest.h>

#include "coherence/l1_controller.hh"

#include "mock_fabric.hh"

namespace consim
{
namespace
{

class L1Unit : public ::testing::Test
{
  protected:
    L1Unit() : l1_(fab_, 0)
    {
        l1_.setMissCallback([this] { ++fills_; });
    }

    /** Deliver a fill for an outstanding miss. */
    void
    fill(BlockAddr block, bool is_write)
    {
        Msg m;
        m.type = MsgType::L1Data;
        m.block = block;
        m.isWrite = is_write;
        m.vm = 0;
        m.srcTile = 1;
        m.dstTile = 0;
        l1_.handle(m);
    }

    /** Miss on a block and immediately fill it. */
    void
    missAndFill(BlockAddr block, bool is_write)
    {
        const auto res = l1_.access(block, is_write);
        ASSERT_FALSE(res.hit);
        fill(block, is_write);
    }

    MockFabric fab_;
    L1Controller l1_;
    int fills_ = 0;
};

TEST_F(L1Unit, ColdReadMissSendsGetSToCorrectBank)
{
    const BlockAddr block = 6; // group 0 bank = members[6 % 4] = 4
    const auto res = l1_.access(block, false);
    EXPECT_FALSE(res.hit);
    const auto reqs = fab_.ofType(MsgType::L1GetS);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].dstTile, 4);
    EXPECT_EQ(reqs[0].dstUnit, Unit::L2Bank);
    EXPECT_EQ(reqs[0].reqCore, 0);
}

TEST_F(L1Unit, FillCompletesAndSubsequentReadHitsInL0)
{
    missAndFill(6, false);
    EXPECT_EQ(fills_, 1);
    EXPECT_EQ(fab_.l1Misses, 1);
    const auto res = l1_.access(6, false);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.latency, fab_.config().l0Latency);
}

TEST_F(L1Unit, L0MissL1HitPaysBothLatencies)
{
    missAndFill(6, false);
    // Evict 6 from the tiny L0 by filling conflicting blocks through
    // reads that are L1 misses; L0 is 8KB/2-way = 64 sets.
    const auto sets =
        fab_.config().l0Bytes / blockBytes / fab_.config().l0Assoc;
    missAndFill(6 + sets, false);
    missAndFill(6 + 2 * sets, false);
    const auto res = l1_.access(6, false);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.latency,
              fab_.config().l0Latency + fab_.config().l1Latency);
}

TEST_F(L1Unit, WriteToSharedLineUpgrades)
{
    missAndFill(6, false); // line now S
    const auto res = l1_.access(6, true);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(fab_.ofType(MsgType::L1GetM).size(), 1u);
    fill(6, true);
    // Now the write hits locally.
    const auto res2 = l1_.access(6, true);
    EXPECT_TRUE(res2.hit);
}

TEST_F(L1Unit, DirtyEvictionSendsPutM)
{
    // L1: 64KB 4-way = 256 sets. Fill five conflicting lines; the
    // first (dirty) must be written back.
    const auto sets =
        fab_.config().l1Bytes / blockBytes / fab_.config().l1Assoc;
    missAndFill(8, true); // dirty
    for (int i = 1; i <= 4; ++i)
        missAndFill(8 + i * sets * 1, false);
    const auto puts = fab_.ofType(MsgType::L1PutM);
    ASSERT_EQ(puts.size(), 1u);
    EXPECT_EQ(puts[0].block, 8u);
    // The block is gone now.
    EXPECT_FALSE(l1_.access(8, false).hit);
}

TEST_F(L1Unit, CleanEvictionIsSilent)
{
    const auto sets =
        fab_.config().l1Bytes / blockBytes / fab_.config().l1Assoc;
    for (int i = 0; i <= 4; ++i)
        missAndFill(8 + i * sets, false);
    EXPECT_TRUE(fab_.ofType(MsgType::L1PutM).empty());
}

TEST_F(L1Unit, InvalidationDropsLineAndAcks)
{
    missAndFill(6, false);
    Msg inv;
    inv.type = MsgType::L1Inv;
    inv.block = 6;
    inv.srcTile = 4;
    l1_.handle(inv);
    EXPECT_EQ(fab_.ofType(MsgType::L1InvAck).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::L1InvAck)[0].dstTile, 4);
    EXPECT_FALSE(l1_.access(6, false).hit);
    l1_.checkInvariants();
}

TEST_F(L1Unit, InvalidationForAbsentLineStillAcks)
{
    Msg inv;
    inv.type = MsgType::L1Inv;
    inv.block = 99;
    inv.srcTile = 4;
    l1_.handle(inv);
    EXPECT_EQ(fab_.ofType(MsgType::L1InvAck).size(), 1u);
}

TEST_F(L1Unit, WbReqDowngradesOwnerToShared)
{
    missAndFill(6, true); // M
    Msg wb;
    wb.type = MsgType::L1WbReq;
    wb.block = 6;
    wb.srcTile = 4;
    wb.toInvalid = false;
    l1_.handle(wb);
    const auto data = fab_.ofType(MsgType::L1WbData);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_FALSE(data[0].stale);
    // Still readable (S), but a write must upgrade again.
    EXPECT_TRUE(l1_.access(6, false).hit);
    EXPECT_FALSE(l1_.access(6, true).hit);
}

TEST_F(L1Unit, WbReqToInvalidDropsLine)
{
    missAndFill(6, true);
    Msg wb;
    wb.type = MsgType::L1WbReq;
    wb.block = 6;
    wb.srcTile = 4;
    wb.toInvalid = true;
    l1_.handle(wb);
    ASSERT_EQ(fab_.ofType(MsgType::L1WbData).size(), 1u);
    EXPECT_FALSE(l1_.access(6, false).hit);
    l1_.checkInvariants();
}

TEST_F(L1Unit, WbReqForAbsentLineRepliesStale)
{
    Msg wb;
    wb.type = MsgType::L1WbReq;
    wb.block = 6;
    wb.srcTile = 4;
    wb.toInvalid = true;
    l1_.handle(wb);
    const auto data = fab_.ofType(MsgType::L1WbData);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_TRUE(data[0].stale);
}

TEST_F(L1Unit, MissLatencyIsRecorded)
{
    const auto res = l1_.access(6, false);
    ASSERT_FALSE(res.hit);
    // Simulate 40 cycles of fabric time before the fill arrives.
    fab_.schedule(40, [] {});
    fab_.drainEvents();
    fill(6, false);
    EXPECT_EQ(fab_.lastMissLatency, 40u);
    EXPECT_EQ(l1_.l1Stats().missLatency.count(), 1u);
}

TEST_F(L1Unit, StatsCountHitsAndMisses)
{
    missAndFill(6, false);
    l1_.access(6, false); // L0 hit
    const auto sets =
        fab_.config().l0Bytes / blockBytes / fab_.config().l0Assoc;
    missAndFill(6 + sets, false);
    missAndFill(6 + 2 * sets, false);
    l1_.access(6, false); // L0 miss, L1 hit
    EXPECT_EQ(l1_.l1Stats().l0Hits.value(), 1u);
    EXPECT_EQ(l1_.l1Stats().l1Hits.value(), 1u);
    EXPECT_EQ(l1_.l1Stats().misses.value(), 3u);
}

} // namespace
} // namespace consim
