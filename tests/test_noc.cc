/**
 * @file
 * Unit tests for the interconnect: XY routing, mesh delivery,
 * latency/ordering properties, virtual-network separation, back
 * pressure, and the ideal-network ablation.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/config.hh"
#include "noc/mesh.hh"
#include "noc/network.hh"
#include "noc/routing.hh"

namespace consim
{
namespace
{

Msg
makeMsg(MsgType type, CoreId src, CoreId dst, BlockAddr block = 1)
{
    Msg m;
    m.type = type;
    m.block = block;
    m.srcTile = src;
    m.dstTile = dst;
    m.srcUnit = Unit::L2Bank;
    m.dstUnit = Unit::L2Bank;
    return m;
}

TEST(Routing, XyRouteResolvesXFirst)
{
    // Tile 0 = (0,0), tile 15 = (3,3) on a 4-wide mesh.
    EXPECT_EQ(xyRoute(0, 15, 4), PortEast);
    EXPECT_EQ(xyRoute(3, 15, 4), PortSouth);
    EXPECT_EQ(xyRoute(15, 0, 4), PortWest);
    EXPECT_EQ(xyRoute(12, 0, 4), PortNorth);
    EXPECT_EQ(xyRoute(5, 5, 4), PortLocal);
}

TEST(Routing, OppositePorts)
{
    EXPECT_EQ(oppositePort(PortNorth), PortSouth);
    EXPECT_EQ(oppositePort(PortEast), PortWest);
}

TEST(Routing, HopDistance)
{
    EXPECT_EQ(hopDistance(0, 15, 4), 6);
    EXPECT_EQ(hopDistance(0, 0, 4), 0);
    EXPECT_EQ(hopDistance(0, 3, 4), 3);
    EXPECT_EQ(hopDistance(0, 12, 4), 3);
}

class MeshTest : public ::testing::Test
{
  protected:
    MeshTest() : mesh_(cfg_)
    {
        mesh_.setDeliver([this](const Msg &m) {
            delivered_.push_back(m);
        });
    }

    void
    runCycles(int n)
    {
        for (int i = 0; i < n; ++i)
            mesh_.tick(now_++);
    }

    MachineConfig cfg_;
    Mesh mesh_;
    Cycle now_ = 0;
    std::vector<Msg> delivered_;
};

TEST_F(MeshTest, DeliversSingleControlPacket)
{
    Msg m = makeMsg(MsgType::GetS, 0, 15);
    m.injectCycle = now_;
    mesh_.inject(m);
    runCycles(100);
    ASSERT_EQ(delivered_.size(), 1u);
    EXPECT_EQ(delivered_[0].dstTile, 15);
    EXPECT_EQ(delivered_[0].type, MsgType::GetS);
    EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshTest, LatencyScalesWithDistance)
{
    // Measure 1-hop vs 6-hop delivery times.
    auto measure = [&](CoreId src, CoreId dst) {
        delivered_.clear();
        Msg m = makeMsg(MsgType::GetS, src, dst);
        m.injectCycle = now_;
        const Cycle start = now_;
        mesh_.inject(m);
        while (delivered_.empty())
            mesh_.tick(now_++);
        return now_ - start;
    };
    const Cycle one_hop = measure(0, 1);
    const Cycle six_hops = measure(0, 15);
    EXPECT_GT(six_hops, one_hop);
    EXPECT_GE(one_hop, 3u); // pipeline + serialization floor
}

TEST_F(MeshTest, DataPacketsSlowerThanControl)
{
    auto measure = [&](MsgType t) {
        delivered_.clear();
        Msg m = makeMsg(t, 0, 3);
        m.injectCycle = now_;
        const Cycle start = now_;
        mesh_.inject(m);
        while (delivered_.empty())
            mesh_.tick(now_++);
        return now_ - start;
    };
    const Cycle ctrl = measure(MsgType::GetS);
    const Cycle data = measure(MsgType::Data);
    EXPECT_GT(data, ctrl); // serialization of 5 flits vs 1
}

TEST_F(MeshTest, ManyPacketsAllArrive)
{
    int injected = 0;
    for (CoreId src = 0; src < 16; ++src) {
        for (CoreId dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            Msg m = makeMsg(MsgType::GetS, src, dst,
                            static_cast<BlockAddr>(src * 16 + dst));
            m.injectCycle = now_;
            mesh_.inject(m);
            ++injected;
        }
    }
    runCycles(2000);
    EXPECT_EQ(static_cast<int>(delivered_.size()), injected);
    EXPECT_TRUE(mesh_.idle());
    EXPECT_EQ(mesh_.netStats().packetsEjected.value(),
              static_cast<std::uint64_t>(injected));
}

TEST_F(MeshTest, HeavyDataLoadDrainsWithoutLossOrDeadlock)
{
    int injected = 0;
    for (int round = 0; round < 20; ++round) {
        for (CoreId src = 0; src < 16; ++src) {
            Msg m = makeMsg(MsgType::Data, src, 15 - src,
                            static_cast<BlockAddr>(round * 16 + src));
            if (m.srcTile == m.dstTile)
                continue;
            m.injectCycle = now_;
            mesh_.inject(m);
            ++injected;
        }
    }
    runCycles(20000);
    EXPECT_EQ(static_cast<int>(delivered_.size()), injected);
    EXPECT_TRUE(mesh_.idle());
}

TEST_F(MeshTest, VnetsDoNotBlockEachOther)
{
    // Saturate the request vnet along a path, then send one response
    // along the same path; the response must still be delivered
    // promptly (separate VCs).
    for (int i = 0; i < 50; ++i) {
        Msg m = makeMsg(MsgType::GetS, 0, 3, i);
        m.injectCycle = now_;
        mesh_.inject(m);
    }
    Msg resp = makeMsg(MsgType::Grant, 0, 3, 999);
    resp.injectCycle = now_;
    mesh_.inject(resp);
    // The response should arrive among the earliest packets even
    // though 50 requests were queued ahead of it at the NI.
    int arrival_index = -1;
    runCycles(5000);
    for (std::size_t i = 0; i < delivered_.size(); ++i) {
        if (delivered_[i].type == MsgType::Grant)
            arrival_index = static_cast<int>(i);
    }
    ASSERT_EQ(delivered_.size(), 51u);
    ASSERT_GE(arrival_index, 0);
    EXPECT_LT(arrival_index, 10);
}

TEST_F(MeshTest, PerSourceOrderingWithinVnet)
{
    // Same src/dst/vnet single-VC traffic should not reorder when
    // injected back-to-back with identical sizes.
    for (int i = 0; i < 10; ++i) {
        Msg m = makeMsg(MsgType::GetS, 2, 13, i);
        m.injectCycle = now_;
        mesh_.inject(m);
    }
    runCycles(2000);
    ASSERT_EQ(delivered_.size(), 10u);
    // Allow adjacent swaps from dual VCs, but the stream must be
    // near-ordered: each block within 2 of its slot.
    for (std::size_t i = 0; i < delivered_.size(); ++i) {
        EXPECT_LE(
            std::abs(static_cast<long>(delivered_[i].block) -
                     static_cast<long>(i)),
            2);
    }
}

TEST_F(MeshTest, StatsAccumulate)
{
    Msg m = makeMsg(MsgType::Data, 0, 15);
    m.injectCycle = now_;
    mesh_.inject(m);
    runCycles(200);
    const auto &s = mesh_.netStats();
    EXPECT_EQ(s.packetsInjected.value(), 1u);
    EXPECT_EQ(s.packetsEjected.value(), 1u);
    EXPECT_GT(s.flitHops.value(), 0u);
    EXPECT_GT(s.latency.mean(), 0.0);
}

TEST(IdealNetwork, FixedLatencyDelivery)
{
    IdealNetwork net(10);
    std::vector<std::pair<Cycle, Msg>> got;
    Cycle now = 0;
    net.setDeliver([&](const Msg &m) { got.emplace_back(now, m); });
    Msg m = makeMsg(MsgType::GetS, 0, 15);
    m.injectCycle = 0;
    net.inject(m);
    for (; now < 50; ++now)
        net.tick(now);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, 10u);
    EXPECT_TRUE(net.idle());
}

TEST(IdealNetwork, DistanceIndependent)
{
    IdealNetwork net(7);
    std::map<CoreId, Cycle> arrivals;
    Cycle now = 0;
    net.setDeliver([&](const Msg &m) { arrivals[m.dstTile] = now; });
    for (CoreId d : {1, 15}) {
        Msg m = makeMsg(MsgType::Data, 0, d);
        m.injectCycle = 0;
        net.inject(m);
    }
    for (; now < 50; ++now)
        net.tick(now);
    EXPECT_EQ(arrivals[1], arrivals[15]);
}

} // namespace
} // namespace consim
