/**
 * @file
 * Message-level unit tests for the directory slice and the memory
 * controller, driven through a mock Fabric so every outgoing message
 * and scheduled event is observable. These pin down the protocol
 * decisions themselves (who is forwarded to, when grants carry data,
 * how stale writebacks are treated) independently of the full system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/memory_controller.hh"

#include "mock_fabric.hh"

namespace consim
{
namespace
{

Msg
bankRequest(MsgType t, BlockAddr block, GroupId group,
            CoreId bank_tile)
{
    Msg m;
    m.type = t;
    m.block = block;
    m.srcTile = bank_tile;
    m.srcUnit = Unit::L2Bank;
    m.dstTile = 0;
    m.dstUnit = Unit::Dir;
    m.reqCore = bank_tile;
    m.reqBankTile = bank_tile;
    m.reqGroup = group;
    m.vm = 0;
    return m;
}

class DirectoryUnit : public ::testing::Test
{
  protected:
    DirectoryUnit() : slice_(fab_, 0, store_)
    {
        store_.registerVm(0, 4096);
    }

    void
    sendDone(BlockAddr block)
    {
        Msg d;
        d.type = MsgType::Done;
        d.block = block;
        slice_.handle(d);
        fab_.drainEvents();
    }

    MockFabric fab_;
    DirectoryStorage store_;
    DirectorySlice slice_;
};

TEST_F(DirectoryUnit, ColdGetSReadsMemoryAndGrantsExclusive)
{
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();

    const auto reads = fab_.ofType(MsgType::MemRead);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].dstTile, 15);
    EXPECT_EQ(reads[0].reqBankTile, 4);

    const auto grants = fab_.ofType(MsgType::Grant);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_EQ(grants[0].grantState, L2State::Exclusive);
    EXPECT_FALSE(grants[0].noDataNeeded);

    const auto &e = store_.entry(10);
    EXPECT_EQ(e.state, L2State::Exclusive);
    EXPECT_EQ(static_cast<GroupId>(e.owner), 1);
}

TEST_F(DirectoryUnit, GetSFromOwnerStateForwards)
{
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();
    sendDone(10);
    fab_.sent.clear();

    // Group 2 reads the same block: must forward to group 1's bank.
    slice_.handle(bankRequest(MsgType::GetS, 10, 2, 8));
    fab_.drainEvents();

    const auto fwds = fab_.ofType(MsgType::FwdGetS);
    ASSERT_EQ(fwds.size(), 1u);
    EXPECT_EQ(fab_.groupOfTile(fwds[0].dstTile), 1);
    EXPECT_TRUE(fab_.ofType(MsgType::MemRead).empty());

    const auto &e = store_.entry(10);
    EXPECT_EQ(e.state, L2State::Shared);
    GroupSet expect;
    expect.set(1);
    expect.set(2);
    EXPECT_EQ(e.sharers, expect); // groups 1 and 2
}

TEST_F(DirectoryUnit, DirtyFwdAckTriggersSharingWriteback)
{
    slice_.handle(bankRequest(MsgType::GetM, 10, 1, 4));
    fab_.drainEvents();
    sendDone(10);
    fab_.sent.clear();

    slice_.handle(bankRequest(MsgType::GetS, 10, 2, 8));
    fab_.drainEvents();
    ASSERT_EQ(fab_.ofType(MsgType::FwdGetS).size(), 1u);

    // Owner answers with dirty data: home must write memory back.
    Msg ack;
    ack.type = MsgType::FwdAck;
    ack.block = 10;
    ack.dirtyData = true;
    slice_.handle(ack);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::MemWrite).size(), 1u);
}

TEST_F(DirectoryUnit, GetMInvalidatesAllOtherSharers)
{
    // Three groups read, then one of them writes.
    for (GroupId g : {1, 2, 3}) {
        slice_.handle(
            bankRequest(MsgType::GetS, 10, g,
                        fab_.cfg_.coresOfGroup(g).front()));
        fab_.drainEvents();
        if (g != 1) {
            Msg ack;
            ack.type = MsgType::FwdAck;
            ack.block = 10;
            slice_.handle(ack);
            fab_.drainEvents();
        }
        sendDone(10);
    }
    fab_.sent.clear();

    slice_.handle(bankRequest(MsgType::GetM, 10, 1, 4));
    fab_.drainEvents();

    // Requester already holds a copy: grant needs no data; the other
    // two sharers each receive an invalidation.
    const auto grants = fab_.ofType(MsgType::Grant);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_TRUE(grants[0].noDataNeeded);
    EXPECT_EQ(grants[0].grantState, L2State::Modified);
    EXPECT_EQ(fab_.ofType(MsgType::Inv).size(), 2u);

    // Acks + Done retire the transaction.
    for (int i = 0; i < 2; ++i) {
        Msg ack;
        ack.type = MsgType::InvAck;
        ack.block = 10;
        slice_.handle(ack);
    }
    sendDone(10);
    EXPECT_TRUE(slice_.idle());
    EXPECT_EQ(store_.entry(10).state, L2State::Modified);
}

TEST_F(DirectoryUnit, GetMWithoutCopyPicksForwarder)
{
    for (GroupId g : {1, 2}) {
        slice_.handle(
            bankRequest(MsgType::GetS, 10, g,
                        fab_.cfg_.coresOfGroup(g).front()));
        fab_.drainEvents();
        if (g != 1) {
            Msg ack;
            ack.type = MsgType::FwdAck;
            ack.block = 10;
            slice_.handle(ack);
            fab_.drainEvents();
        }
        sendDone(10);
    }
    fab_.sent.clear();

    // Group 3 writes without ever having read.
    slice_.handle(bankRequest(MsgType::GetM, 10, 3, 12));
    fab_.drainEvents();
    // One sharer forwards (FwdGetM), the other is invalidated.
    EXPECT_EQ(fab_.ofType(MsgType::FwdGetM).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::Inv).size(), 1u);
    const auto grants = fab_.ofType(MsgType::Grant);
    ASSERT_EQ(grants.size(), 1u);
    EXPECT_FALSE(grants[0].noDataNeeded);
}

TEST_F(DirectoryUnit, RequestsQueueBehindBusyBlock)
{
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();
    // Second request for the same block while the first is open.
    slice_.handle(bankRequest(MsgType::GetS, 10, 2, 8));
    fab_.drainEvents();
    // Only the first grant so far.
    EXPECT_EQ(fab_.ofType(MsgType::Grant).size(), 1u);

    sendDone(10);
    // Now the queued request is processed (forwarded to group 1).
    EXPECT_EQ(fab_.ofType(MsgType::Grant).size(), 2u);
    EXPECT_EQ(fab_.ofType(MsgType::FwdGetS).size(), 1u);
}

TEST_F(DirectoryUnit, PutMFromOwnerWritesBackAndInvalidates)
{
    slice_.handle(bankRequest(MsgType::GetM, 10, 1, 4));
    fab_.drainEvents();
    sendDone(10);
    fab_.sent.clear();

    Msg put = bankRequest(MsgType::PutM, 10, 1, 4);
    put.dirtyData = true;
    slice_.handle(put);
    fab_.drainEvents();

    EXPECT_EQ(fab_.ofType(MsgType::MemWrite).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::PutAck).size(), 1u);
    EXPECT_EQ(store_.entry(10).state, L2State::Invalid);
    EXPECT_TRUE(slice_.idle());
}

TEST_F(DirectoryUnit, StalePutIsAckedWithoutStateChange)
{
    slice_.handle(bankRequest(MsgType::GetM, 10, 1, 4));
    fab_.drainEvents();
    sendDone(10);
    fab_.sent.clear();

    // A Put from a group that is not the owner (stale) is just acked.
    Msg put = bankRequest(MsgType::PutM, 10, 2, 8);
    put.dirtyData = true;
    slice_.handle(put);
    fab_.drainEvents();
    EXPECT_EQ(fab_.ofType(MsgType::PutAck).size(), 1u);
    EXPECT_EQ(fab_.ofType(MsgType::MemWrite).size(), 0u);
    EXPECT_EQ(store_.entry(10).state, L2State::Modified);
    EXPECT_EQ(static_cast<GroupId>(store_.entry(10).owner), 1);
}

TEST_F(DirectoryUnit, LastSharerPutCollapsesToInvalid)
{
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();
    sendDone(10);
    // E-state owner does a clean eviction.
    slice_.handle(bankRequest(MsgType::PutS, 10, 1, 4));
    fab_.drainEvents();
    EXPECT_EQ(store_.entry(10).state, L2State::Invalid);
}

TEST_F(DirectoryUnit, CleanForwardingOffReadsMemoryForSharedData)
{
    fab_.cfg_.cleanForwarding = false;
    // Reader 1 -> E (memory); reader 2 -> forward from the E owner
    // (owner-state forwards are unconditional); reader 3 hits the S
    // state, where clean forwarding is disabled -> memory again.
    for (GroupId g : {1, 2, 3}) {
        slice_.handle(
            bankRequest(MsgType::GetS, 10, g,
                        fab_.cfg_.coresOfGroup(g).front()));
        fab_.drainEvents();
        if (g == 2) {
            Msg ack;
            ack.type = MsgType::FwdAck;
            ack.block = 10;
            slice_.handle(ack);
            fab_.drainEvents();
        }
        sendDone(10);
    }
    EXPECT_EQ(fab_.ofType(MsgType::MemRead).size(), 2u);
    EXPECT_EQ(fab_.ofType(MsgType::FwdGetS).size(), 1u);
}

TEST_F(DirectoryUnit, OverlappedFetchFlagsWhenDirCacheMisses)
{
    // First access: dir-cache miss -> the MemRead is overlapped.
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();
    auto reads = fab_.ofType(MsgType::MemRead);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_TRUE(reads[0].overlappedFetch);
    sendDone(10);
    // Return to Invalid so a second GetS reads memory again.
    slice_.handle(bankRequest(MsgType::PutS, 10, 1, 4));
    fab_.drainEvents();
    fab_.sent.clear();

    // Second access: dir cache hits -> full-latency memory read.
    slice_.handle(bankRequest(MsgType::GetS, 10, 1, 4));
    fab_.drainEvents();
    reads = fab_.ofType(MsgType::MemRead);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_FALSE(reads[0].overlappedFetch);
    sendDone(10);
}

TEST(MemoryControllerUnit, ReadRepliesWithDataAfterLatency)
{
    MockFabric fab;
    MemoryController mc(fab, 15);
    Msg m;
    m.type = MsgType::MemRead;
    m.block = 7;
    m.reqBankTile = 3;
    mc.handle(m);
    EXPECT_FALSE(mc.idle());
    fab.drainEvents();
    EXPECT_TRUE(mc.idle());
    const auto data = fab.ofType(MsgType::Data);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0].dstTile, 3);
    EXPECT_EQ(data[0].dstUnit, Unit::L2Bank);
    EXPECT_FALSE(data[0].c2cTransfer);
    EXPECT_EQ(mc.reads.value(), 1u);
}

TEST(MemoryControllerUnit, WritesAreAbsorbed)
{
    MockFabric fab;
    MemoryController mc(fab, 15);
    Msg m;
    m.type = MsgType::MemWrite;
    m.block = 7;
    mc.handle(m);
    fab.drainEvents();
    EXPECT_TRUE(fab.ofType(MsgType::Data).empty());
    EXPECT_EQ(mc.writes.value(), 1u);
}

TEST(MemoryControllerUnit, BandwidthQueuesBackToBackRequests)
{
    MockFabric fab;
    MemoryController mc(fab, 15);
    for (int i = 0; i < 8; ++i) {
        Msg m;
        m.type = MsgType::MemRead;
        m.block = static_cast<BlockAddr>(i);
        m.reqBankTile = 3;
        mc.handle(m);
    }
    // The eighth request waited 7 issue slots.
    EXPECT_GT(mc.queueDelay.mean(), 0.0);
    fab.drainEvents();
    EXPECT_EQ(fab.ofType(MsgType::Data).size(), 8u);
}

TEST(MemoryControllerUnit, OverlappedFetchIsCheaper)
{
    MockFabric fab;
    MemoryController mc(fab, 15);
    // Normal read.
    Msg slow;
    slow.type = MsgType::MemRead;
    slow.block = 1;
    slow.reqBankTile = 3;
    mc.handle(slow);
    fab.drainEvents();
    const Cycle t_slow = fab.now();

    MockFabric fab2;
    MemoryController mc2(fab2, 15);
    Msg fast = slow;
    fast.overlappedFetch = true;
    mc2.handle(fast);
    fab2.drainEvents();
    const Cycle t_fast = fab2.now();
    EXPECT_LT(t_fast, t_slow);
}

} // namespace
} // namespace consim
