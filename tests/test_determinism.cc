/**
 * @file
 * Determinism contract of the simulator and the sweep engine:
 *  (a) the same RunConfig + seed always produces bit-identical
 *      RunResults, and
 *  (b) the parallel sweep engine (runSweep / runSweepAveraged) is
 *      bit-identical to serial runExperiment / averaging, regardless
 *      of worker count.
 * This is what makes the paper figures reproducible and lets the
 * benches fan out over host threads without changing any number.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hh"
#include "core/mix.hh"
#include "exec/sweep.hh"

namespace consim
{
namespace
{

/** Short windows: determinism does not need a warmed-up cache. */
RunConfig
quickConfig(SchedPolicy policy, SharingDegree sharing,
            std::uint64_t seed)
{
    RunConfig cfg = mixConfig(Mix::byName("Mix 1"), policy, sharing);
    cfg.seed = seed;
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 20'000;
    return cfg;
}

::testing::AssertionResult
identical(const RunResult &a, const RunResult &b)
{
    if (a.vms.size() != b.vms.size())
        return ::testing::AssertionFailure() << "vm count differs";
    for (std::size_t i = 0; i < a.vms.size(); ++i) {
        const VmResult &x = a.vms[i];
        const VmResult &y = b.vms[i];
        if (x.kind != y.kind || x.transactions != y.transactions ||
            x.instructions != y.instructions ||
            x.l1Misses != y.l1Misses ||
            x.l2Accesses != y.l2Accesses ||
            x.l2Misses != y.l2Misses || x.c2cClean != y.c2cClean ||
            x.c2cDirty != y.c2cDirty ||
            x.distinctBlocks != y.distinctBlocks ||
            x.cyclesPerTransaction != y.cyclesPerTransaction ||
            x.missRate != y.missRate ||
            x.avgMissLatency != y.avgMissLatency ||
            x.c2cFraction != y.c2cFraction ||
            x.c2cDirtyShare != y.c2cDirtyShare) {
            return ::testing::AssertionFailure()
                   << "vm " << i << " metrics differ";
        }
    }
    if (a.measuredCycles != b.measuredCycles ||
        a.netAvgLatency != b.netAvgLatency ||
        a.netPackets != b.netPackets)
        return ::testing::AssertionFailure() << "net metrics differ";
    if (a.replication.validLines != b.replication.validLines ||
        a.replication.replicatedLines !=
            b.replication.replicatedLines ||
        a.replication.distinctBlocks !=
            b.replication.distinctBlocks ||
        a.replication.validPerVm != b.replication.validPerVm ||
        a.replication.replicatedPerVm != b.replication.replicatedPerVm)
        return ::testing::AssertionFailure()
               << "replication snapshot differs";
    if (a.occupancy.lines != b.occupancy.lines ||
        a.occupancy.capacity != b.occupancy.capacity)
        return ::testing::AssertionFailure()
               << "occupancy snapshot differs";
    return ::testing::AssertionSuccess();
}

TEST(Determinism, SerialRerunIsBitIdentical)
{
    const RunConfig cfg =
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 7);
    const RunResult a = runExperiment(cfg);
    const RunResult b = runExperiment(cfg);
    EXPECT_TRUE(identical(a, b));
}

TEST(Determinism, ParallelSweepMatchesSerialRuns)
{
    std::vector<RunConfig> configs = {
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 1),
        quickConfig(SchedPolicy::RoundRobin, SharingDegree::Shared4,
                    2),
        quickConfig(SchedPolicy::Affinity, SharingDegree::Private, 3),
        quickConfig(SchedPolicy::Random, SharingDegree::Shared8, 4),
    };

    // Force real pool parallelism even on a single-core host.
    SweepOptions opts;
    opts.jobs = 4;
    const auto parallel = runSweep(configs, opts);

    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunResult serial = runExperiment(configs[i]);
        EXPECT_TRUE(identical(serial, parallel[i]))
            << "config " << i;
    }
}

TEST(Determinism, SweepAveragedMatchesSerialAveraging)
{
    const std::vector<std::uint64_t> seeds = {1, 2, 3};
    const RunConfig cfg = quickConfig(SchedPolicy::Affinity,
                                      SharingDegree::Shared4, 999);

    SweepOptions opts;
    opts.jobs = 3;
    const RunResult parallel =
        runSweepAveraged({cfg}, seeds, opts).front();

    std::vector<RunResult> runs;
    for (const auto seed : seeds) {
        RunConfig c = cfg;
        c.seed = seed;
        runs.push_back(runExperiment(c));
    }
    const RunResult serial = averageRunResults(std::move(runs));
    EXPECT_TRUE(identical(serial, parallel));
}

TEST(Determinism, ParallelAndSerialSweepJsonIsByteIdentical)
{
    // The JSON writer formats numbers with shortest-round-trip
    // std::to_chars and objects keep insertion order, so bit-identical
    // sweep results must serialize to byte-identical documents.
    std::vector<RunConfig> configs = {
        quickConfig(SchedPolicy::Affinity, SharingDegree::Shared4, 5),
        quickConfig(SchedPolicy::RoundRobin, SharingDegree::Shared2,
                    6),
        quickConfig(SchedPolicy::Random, SharingDegree::Shared16, 7),
    };

    SweepOptions parallel_opts;
    parallel_opts.jobs = 3;
    const std::string parallel_doc =
        sweepResultsJson(configs, runSweep(configs, parallel_opts))
            .dump(2);

    SweepOptions serial_opts;
    serial_opts.jobs = 1;
    const std::string serial_doc =
        sweepResultsJson(configs, runSweep(configs, serial_opts))
            .dump(2);

    EXPECT_EQ(parallel_doc, serial_doc);

    // And the document is valid JSON with the expected schema tag.
    json::Value parsed;
    std::string err;
    ASSERT_TRUE(json::parse(parallel_doc, parsed, &err)) << err;
    ASSERT_NE(parsed.find("schema"), nullptr);
    EXPECT_EQ(parsed.find("schema")->str(), "consim.sweep.v2");
    EXPECT_EQ(parsed.find("points")->size(), configs.size());
}

TEST(Determinism, AveragedNetPacketsIsAMeanNotASum)
{
    const std::vector<std::uint64_t> seeds = {1, 2};
    const RunConfig cfg = quickConfig(SchedPolicy::Affinity,
                                      SharingDegree::Shared4, 1);
    RunConfig c1 = cfg;
    c1.seed = 1;
    RunConfig c2 = cfg;
    c2.seed = 2;
    const RunResult a = runExperiment(c1);
    const RunResult b = runExperiment(c2);
    const RunResult avg = runAveraged(cfg, seeds);
    const std::uint64_t expected = static_cast<std::uint64_t>(
        (static_cast<double>(a.netPackets) +
         static_cast<double>(b.netPackets)) /
            2.0 +
        0.5);
    EXPECT_EQ(avg.netPackets, expected);
    EXPECT_LE(avg.netPackets,
              std::max(a.netPackets, b.netPackets));
    // Raw counters stay sums (totals over all seeds' windows).
    EXPECT_EQ(avg.vms[0].l2Accesses,
              a.vms[0].l2Accesses + b.vms[0].l2Accesses);
}

} // namespace
} // namespace consim
