/**
 * @file
 * Unit tests for the common substrate: RNG, bit utilities, stats,
 * table rendering, and machine configuration / group topology.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "common/bitops.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace consim
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int bound : {1, 2, 3, 10, 1000, 1 << 20}) {
        for (int i = 0; i < 200; ++i) {
            const auto v = r.below(bound);
            EXPECT_LT(v, static_cast<std::uint64_t>(bound));
        }
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.range(3, 6));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.begin(), 3u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdges)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(19);
    std::vector<int> v(32);
    for (int i = 0; i < 32; ++i)
        v[i] = i;
    auto orig = v;
    r.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
    EXPECT_NE(v, orig); // astronomically unlikely to be identity
}

TEST(Bitops, Pow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
}

TEST(Bitops, Log2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(64), 6);
    EXPECT_EQ(floorLog2(65), 6);
    EXPECT_EQ(ceilLog2(64), 6);
    EXPECT_EQ(ceilLog2(65), 7);
}

TEST(Bitops, PopCountAndLowestBit)
{
    EXPECT_EQ(popCount(0b1011), 3);
    EXPECT_EQ(lowestSetBit(0b1000), 3);
}

TEST(Bitops, MixBitsSpreads)
{
    // Consecutive inputs should land in different low-bit buckets.
    std::set<std::uint64_t> buckets;
    for (std::uint64_t i = 0; i < 64; ++i)
        buckets.insert(mixBits(i) % 16);
    EXPECT_GE(buckets.size(), 12u);
}

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(10, 5);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(49);
    h.sample(1000); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 1u); // overflow bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Stats, HistogramPercentile)
{
    stats::Histogram h(1, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 2.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 90.0, 2.0);
}

TEST(Stats, GroupDumpAndReset)
{
    stats::Group g("unit");
    stats::Counter c;
    stats::Average a;
    g.add("count", &c);
    g.add("avg", &a);
    ++c;
    a.sample(3.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("unit.count 1"), std::string::npos);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Table, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const auto s = os.str();
    EXPECT_NE(s.find("| name "), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // All lines equal length (aligned box).
    std::istringstream in(s);
    std::string line;
    std::size_t len = 0;
    while (std::getline(in, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_EQ(line.size(), len);
    }
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::pct(0.153, 1), "15.3%");
}

TEST(Config, CoresPerGroup)
{
    EXPECT_EQ(coresPerGroup(SharingDegree::Private), 1);
    EXPECT_EQ(coresPerGroup(SharingDegree::Shared8), 8);
}

TEST(Config, GroupCountsAndPartitionSizes)
{
    MachineConfig cfg;
    for (auto d : {SharingDegree::Private, SharingDegree::Shared2,
                   SharingDegree::Shared4, SharingDegree::Shared8,
                   SharingDegree::Shared16}) {
        cfg.sharing = d;
        EXPECT_EQ(cfg.numGroups(), 16 / coresPerGroup(d));
        EXPECT_EQ(cfg.l2PartitionBytes(),
                  cfg.l2TotalBytes / cfg.numGroups());
    }
}

TEST(Config, GroupsPartitionTheChip)
{
    MachineConfig cfg;
    for (auto d : {SharingDegree::Private, SharingDegree::Shared2,
                   SharingDegree::Shared4, SharingDegree::Shared8,
                   SharingDegree::Shared16}) {
        cfg.sharing = d;
        std::set<CoreId> seen;
        for (GroupId g = 0; g < cfg.numGroups(); ++g) {
            const auto members = cfg.coresOfGroup(g);
            EXPECT_EQ(static_cast<int>(members.size()),
                      coresPerGroup(d));
            for (auto c : members) {
                EXPECT_EQ(cfg.groupOfCore(c), g);
                EXPECT_TRUE(seen.insert(c).second);
            }
        }
        EXPECT_EQ(static_cast<int>(seen.size()), cfg.numCores());
    }
}

TEST(Config, Shared4GroupsAreQuadrants)
{
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared4;
    // Quadrant 0 on the 4x4 mesh: tiles 0,1,4,5.
    const auto q0 = cfg.coresOfGroup(0);
    EXPECT_EQ(q0, (std::vector<CoreId>{0, 1, 4, 5}));
    const auto q3 = cfg.coresOfGroup(3);
    EXPECT_EQ(q3, (std::vector<CoreId>{10, 11, 14, 15}));
}

TEST(Config, Shared2GroupsAreAdjacentPairs)
{
    MachineConfig cfg;
    cfg.sharing = SharingDegree::Shared2;
    EXPECT_EQ(cfg.coresOfGroup(0), (std::vector<CoreId>{0, 1}));
    EXPECT_EQ(cfg.coresOfGroup(7), (std::vector<CoreId>{14, 15}));
}

TEST(Config, PolicyAndDegreeNames)
{
    EXPECT_EQ(toString(SharingDegree::Shared4), "shared-4-way");
    EXPECT_EQ(toString(SchedPolicy::AffinityRR), "aff-rr");
}

} // namespace
} // namespace consim
